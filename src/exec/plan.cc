#include "exec/plan.h"

#include <sstream>

namespace d2stgnn::exec {

int64_t ExecutionPlan::total_slot_floats() const {
  int64_t total = 0;
  for (const SlotInfo& slot : slots_) total += slot.numel;
  return total;
}

bool ExecutionPlan::ConstantsValid() const {
  for (const PlanConstant& c : constants_) {
    if (c.tensor.Data().data() != c.captured_data) return false;
  }
  return true;
}

std::string ExecutionPlan::Summary() const {
  std::ostringstream os;
  os << "plan{steps=" << steps_.size() << " levels=" << levels_.size()
     << " slots=" << slots_.size() << " constants=" << constants_.size()
     << " slab_floats=" << slab_floats_
     << " unplanned_floats=" << total_slot_floats()
     << " output=" << ShapeToString(output_shape_) << "}";
  return os.str();
}

}  // namespace d2stgnn::exec
