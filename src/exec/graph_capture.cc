#include "exec/graph_capture.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "exec/memory_planner.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::exec {
namespace {

thread_local GraphCapture* g_active_capture = nullptr;

}  // namespace

namespace internal {

bool CaptureActive() { return g_active_capture != nullptr; }

void RecordStep(const char* op, std::vector<Tensor> inputs,
                const Tensor& output, std::function<void(const StepIo&)> run,
                bool zero_output) {
  GraphCapture* capture = g_active_capture;
  if (capture == nullptr) return;
  GraphCapture::Recorded recorded;
  recorded.op = op;
  recorded.inputs = std::move(inputs);
  recorded.output = output;
  recorded.run = std::move(run);
  recorded.zero_output = zero_output;
  capture->Record(std::move(recorded));
}

void RecordIndexedStep(const char* op, std::vector<Tensor> inputs,
                       const std::vector<int64_t>& indices,
                       const Tensor& output,
                       std::function<void(const StepIo&)> run) {
  GraphCapture* capture = g_active_capture;
  if (capture == nullptr) return;
  GraphCapture::Recorded recorded;
  recorded.op = op;
  recorded.inputs = std::move(inputs);
  recorded.output = output;
  recorded.run = std::move(run);
  recorded.indexed = true;
  recorded.indices_addr = &indices;
  recorded.baked_indices = indices;  // dropped in Finish if bound
  capture->Record(std::move(recorded));
}

void MarkCaptureUnsupported(const char* reason) {
  GraphCapture* capture = g_active_capture;
  if (capture == nullptr) return;
  capture->MarkUnsupported(reason);
}

}  // namespace internal

GraphCapture::GraphCapture() {
  D2_CHECK(g_active_capture == nullptr)
      << "nested GraphCapture on one thread";
  g_active_capture = this;
}

GraphCapture::~GraphCapture() {
  if (g_active_capture == this) g_active_capture = nullptr;
}

bool GraphCapture::Active() { return g_active_capture != nullptr; }

void GraphCapture::BindInput(const std::string& name, const Tensor& t) {
  D2_CHECK(t.defined()) << "BindInput(" << name << "): undefined tensor";
  for (const FloatBinding& b : float_bindings_) {
    D2_CHECK(b.name != name) << "duplicate input binding: " << name;
    D2_CHECK(b.tensor.impl() != t.impl())
        << "tensor bound twice: " << b.name << " and " << name;
  }
  float_bindings_.push_back(FloatBinding{name, t});
}

void GraphCapture::BindIndexInput(const std::string& name,
                                  const std::vector<int64_t>& indices) {
  for (const IndexBinding& b : index_bindings_) {
    D2_CHECK(b.name != name) << "duplicate index binding: " << name;
    D2_CHECK(b.indices != &indices)
        << "index vector bound twice: " << b.name << " and " << name;
  }
  index_bindings_.push_back(IndexBinding{name, &indices});
}

void GraphCapture::Record(Recorded recorded) {
  D2_CHECK(recorded.output.defined());
  D2_CHECK(recorded.run != nullptr);
  recorded_.push_back(std::move(recorded));
}

void GraphCapture::MarkUnsupported(const char* reason) {
  if (unsupported_.empty()) unsupported_ = reason;
}

std::shared_ptr<const ExecutionPlan> GraphCapture::Finish(
    const Tensor& output) {
  D2_CHECK(!finished_) << "GraphCapture::Finish called twice";
  finished_ = true;
  if (g_active_capture == this) g_active_capture = nullptr;

  if (!unsupported_.empty()) {
    error_ = "capture unsupported: " + unsupported_;
    return nullptr;
  }
  D2_CHECK(output.defined()) << "Finish: undefined output";

  // Producer lookup by impl address. Addresses are unique across recorded
  // steps because every Recorded holds its output handle alive.
  std::unordered_map<const d2stgnn::internal::TensorImpl*, size_t> producer;
  producer.reserve(recorded_.size());
  for (size_t i = 0; i < recorded_.size(); ++i) {
    const auto* impl = recorded_[i].output.impl().get();
    D2_CHECK(producer.emplace(impl, i).second)
        << "two recorded steps share an output tensor";
  }

  const auto output_it = producer.find(output.impl().get());
  if (output_it == producer.end()) {
    error_ = "output tensor was not produced by a recorded op";
    return nullptr;
  }

  // Prune steps that do not feed the output (computed eagerly but dead for
  // replay purposes).
  std::vector<char> live(recorded_.size(), 0);
  std::vector<size_t> stack{output_it->second};
  live[output_it->second] = 1;
  while (!stack.empty()) {
    const size_t step = stack.back();
    stack.pop_back();
    for (const Tensor& in : recorded_[step].inputs) {
      const auto it = producer.find(in.impl().get());
      if (it != producer.end() && !live[it->second]) {
        live[it->second] = 1;
        stack.push_back(it->second);
      }
    }
  }

  // Levels: 1 + max over producing steps, in capture order (producers
  // always precede consumers on the tape).
  std::vector<int32_t> level(recorded_.size(), 0);
  int32_t max_level = 0;
  for (size_t i = 0; i < recorded_.size(); ++i) {
    if (!live[i]) continue;
    int32_t lvl = 1;
    for (const Tensor& in : recorded_[i].inputs) {
      const auto it = producer.find(in.impl().get());
      if (it != producer.end()) {
        D2_CHECK_LT(it->second, i) << "consumer recorded before producer";
        lvl = std::max(lvl, level[it->second] + 1);
      }
    }
    level[i] = lvl;
    max_level = std::max(max_level, lvl);
  }

  // Execution order: by level, capture order within a level. slot id ==
  // position in this order.
  std::vector<size_t> order;
  order.reserve(recorded_.size());
  for (size_t i = 0; i < recorded_.size(); ++i) {
    if (live[i]) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return level[a] < level[b]; });
  std::unordered_map<size_t, int32_t> slot_of;
  slot_of.reserve(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    slot_of.emplace(order[pos], static_cast<int32_t>(pos));
  }

  auto plan = std::shared_ptr<ExecutionPlan>(new ExecutionPlan());
  plan->steps_.reserve(order.size());
  plan->slots_.resize(order.size());

  for (const FloatBinding& b : float_bindings_) {
    plan->inputs_.push_back(PlanInput{b.name, b.tensor.numel()});
  }
  for (const IndexBinding& b : index_bindings_) {
    plan->index_inputs_.push_back(
        PlanIndexInput{b.name, static_cast<int64_t>(b.indices->size())});
  }

  std::unordered_map<const d2stgnn::internal::TensorImpl*, int32_t>
      constant_of;
  auto resolve = [&](const Tensor& t) -> ValueRef {
    const auto* impl = t.impl().get();
    const auto prod = producer.find(impl);
    if (prod != producer.end()) {
      return ValueRef{ValueRef::Kind::kSlot, slot_of.at(prod->second)};
    }
    for (size_t b = 0; b < float_bindings_.size(); ++b) {
      if (float_bindings_[b].tensor.impl().get() == impl) {
        return ValueRef{ValueRef::Kind::kInput, static_cast<int32_t>(b)};
      }
    }
    const auto it = constant_of.find(impl);
    if (it != constant_of.end()) {
      return ValueRef{ValueRef::Kind::kConstant, it->second};
    }
    const int32_t id = static_cast<int32_t>(plan->constants_.size());
    plan->constants_.push_back(
        PlanConstant{t, t.Data().data(), t.numel()});
    constant_of.emplace(impl, id);
    return ValueRef{ValueRef::Kind::kConstant, id};
  };

  for (size_t pos = 0; pos < order.size(); ++pos) {
    Recorded& rec = recorded_[order[pos]];
    PlanStep step;
    step.op = rec.op;
    step.output_slot = static_cast<int32_t>(pos);
    step.level = level[order[pos]];
    step.zero_output = rec.zero_output;
    step.run = std::move(rec.run);
    step.inputs.reserve(rec.inputs.size());
    for (const Tensor& in : rec.inputs) step.inputs.push_back(resolve(in));
    if (rec.indexed) {
      for (size_t b = 0; b < index_bindings_.size(); ++b) {
        if (index_bindings_[b].indices == rec.indices_addr) {
          step.index_input = static_cast<int32_t>(b);
          break;
        }
      }
      if (step.index_input < 0) {
        step.baked_indices = std::move(rec.baked_indices);
      }
    }
    plan->steps_.push_back(std::move(step));

    SlotInfo& slot = plan->slots_[pos];
    slot.numel = rec.output.numel();
    slot.def_level = level[order[pos]];
    slot.last_use_level = slot.def_level;
  }

  // Slot lifetimes: last use is the highest level of any consumer; the
  // output slot stays live to the final level so nothing overwrites it.
  for (const PlanStep& step : plan->steps_) {
    for (const ValueRef& in : step.inputs) {
      if (in.kind != ValueRef::Kind::kSlot) continue;
      SlotInfo& slot = plan->slots_[static_cast<size_t>(in.index)];
      slot.last_use_level = std::max(slot.last_use_level, step.level);
    }
  }
  plan->output_slot_ = slot_of.at(output_it->second);
  plan->slots_[static_cast<size_t>(plan->output_slot_)].last_use_level =
      max_level;
  plan->output_shape_ = output.shape();
  // The recorded closures hold the backend that was active while the eager
  // pass ran; the plan is only replayable under that same backend.
  plan->backend_name_ = kernels::ActiveBackend().name;

  std::vector<BufferRequest> requests;
  requests.reserve(plan->slots_.size());
  for (const SlotInfo& slot : plan->slots_) {
    requests.push_back(
        BufferRequest{slot.numel, slot.def_level, slot.last_use_level});
  }
  const BufferAssignment assignment = PlanBuffers(requests);
  for (size_t i = 0; i < plan->slots_.size(); ++i) {
    plan->slots_[i].offset = assignment.offsets[i];
  }
  plan->slab_floats_ = assignment.slab_floats;

  plan->levels_.reserve(static_cast<size_t>(max_level));
  int32_t begin = 0;
  for (int32_t pos = 0; pos <= static_cast<int32_t>(plan->steps_.size());
       ++pos) {
    const bool boundary =
        pos == static_cast<int32_t>(plan->steps_.size()) ||
        (pos > begin &&
         plan->steps_[static_cast<size_t>(pos)].level !=
             plan->steps_[static_cast<size_t>(begin)].level);
    if (boundary) {
      if (pos > begin) plan->levels_.emplace_back(begin, pos);
      begin = pos;
    }
  }

  recorded_.clear();  // release pinned tensors; constants stay via plan
  return plan;
}

}  // namespace d2stgnn::exec
