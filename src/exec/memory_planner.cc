#include "exec/memory_planner.h"

#include <algorithm>

#include "common/check.h"

namespace d2stgnn::exec {
namespace {

struct FreeBlock {
  int64_t offset = 0;
  int64_t size = 0;
};

int64_t AlignUp(int64_t v, int64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

// Inserts [offset, offset+size) into the offset-sorted free list, merging
// with adjacent blocks so first-fit sees the largest contiguous holes.
void ReleaseBlock(std::vector<FreeBlock>& free_list, int64_t offset,
                  int64_t size) {
  if (size <= 0) return;
  auto it = std::lower_bound(
      free_list.begin(), free_list.end(), offset,
      [](const FreeBlock& b, int64_t off) { return b.offset < off; });
  it = free_list.insert(it, FreeBlock{offset, size});
  if (it + 1 != free_list.end() && it->offset + it->size == (it + 1)->offset) {
    it->size += (it + 1)->size;
    free_list.erase(it + 1);
  }
  if (it != free_list.begin() &&
      (it - 1)->offset + (it - 1)->size == it->offset) {
    (it - 1)->size += it->size;
    it = free_list.erase(it) - 1;
  }
}

}  // namespace

BufferAssignment PlanBuffers(const std::vector<BufferRequest>& requests,
                             int64_t alignment) {
  D2_CHECK_GT(alignment, 0);
  BufferAssignment out;
  out.offsets.assign(requests.size(), 0);
  if (requests.empty()) return out;

  int32_t max_level = 0;
  for (const BufferRequest& r : requests) {
    D2_CHECK_GE(r.numel, 0);
    D2_CHECK_LE(r.def_level, r.last_use_level);
    max_level = std::max(max_level, r.last_use_level);
  }

  // Buckets of request indices born / dying at each level.
  std::vector<std::vector<size_t>> born(static_cast<size_t>(max_level) + 1);
  std::vector<std::vector<size_t>> dies(static_cast<size_t>(max_level) + 1);
  for (size_t i = 0; i < requests.size(); ++i) {
    born[static_cast<size_t>(requests[i].def_level)].push_back(i);
    dies[static_cast<size_t>(requests[i].last_use_level)].push_back(i);
  }

  std::vector<FreeBlock> free_list;
  int64_t slab_end = 0;
  for (int32_t level = 0; level <= max_level; ++level) {
    // A buffer whose last use is at level L-1 is reusable from level L on:
    // under level-parallel replay all steps of L-1 finish before L starts.
    if (level > 0) {
      for (size_t i : dies[static_cast<size_t>(level - 1)]) {
        ReleaseBlock(free_list, out.offsets[i],
                     AlignUp(requests[i].numel, alignment));
      }
    }
    std::vector<size_t> batch = born[static_cast<size_t>(level)];
    std::stable_sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
      return requests[a].numel > requests[b].numel;
    });
    for (size_t i : batch) {
      const int64_t need = AlignUp(requests[i].numel, alignment);
      auto fit = free_list.end();
      for (auto it = free_list.begin(); it != free_list.end(); ++it) {
        if (it->size >= need) {
          fit = it;
          break;
        }
      }
      if (fit != free_list.end()) {
        out.offsets[i] = fit->offset;
        fit->offset += need;
        fit->size -= need;
        if (fit->size == 0) free_list.erase(fit);
        continue;
      }
      // No hole fits: grow the slab, absorbing a trailing hole if the free
      // list ends flush against the slab end.
      int64_t offset = slab_end;
      if (!free_list.empty()) {
        FreeBlock& last = free_list.back();
        if (last.offset + last.size == slab_end) {
          offset = last.offset;
          free_list.pop_back();
        }
      }
      out.offsets[i] = offset;
      slab_end = offset + need;
    }
  }
  out.slab_floats = slab_end;
  return out;
}

}  // namespace d2stgnn::exec
