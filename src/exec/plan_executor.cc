#include "exec/plan_executor.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::exec {

PlanExecutor::PlanExecutor(std::shared_ptr<const ExecutionPlan> plan)
    : plan_(std::move(plan)) {
  D2_CHECK(plan_ != nullptr);
  slab_.assign(static_cast<size_t>(plan_->slab_floats()), 0.0f);

  size_t pool_size = 0;
  for (const PlanStep& step : plan_->steps()) pool_size += step.inputs.size();
  pointer_pool_.assign(pool_size, nullptr);
  states_.resize(plan_->steps().size());

  size_t pool_pos = 0;
  for (size_t s = 0; s < plan_->steps().size(); ++s) {
    const PlanStep& step = plan_->steps()[s];
    StepState& state = states_[s];
    state.inputs = pointer_pool_.data() + pool_pos;
    const SlotInfo& out_slot =
        plan_->slots()[static_cast<size_t>(step.output_slot)];
    state.output = slab_.data() + out_slot.offset;
    state.output_numel = out_slot.numel;
    for (const ValueRef& in : step.inputs) {
      switch (in.kind) {
        case ValueRef::Kind::kSlot:
          pointer_pool_[pool_pos] =
              slab_.data() +
              plan_->slots()[static_cast<size_t>(in.index)].offset;
          break;
        case ValueRef::Kind::kConstant:
          // ConstantsValid() (checked every Run) guarantees the constant
          // still lives at its captured address, so resolving once here is
          // safe; in-place mutation of the same buffer is picked up for
          // free because this is a pointer, not a snapshot.
          pointer_pool_[pool_pos] =
              plan_->constants()[static_cast<size_t>(in.index)].captured_data;
          break;
        case ValueRef::Kind::kInput:
          input_patches_.push_back(InputPatch{pool_pos, in.index});
          break;
      }
      ++pool_pos;
    }
    if (step.index_input >= 0) {
      index_patches_.push_back(IndexPatch{s, step.index_input});
    } else if (!step.baked_indices.empty()) {
      state.indices = &step.baked_indices;
    }
  }
}

ReplayStatus PlanExecutor::Run(
    const std::vector<InputBinding>& inputs,
    const std::vector<const std::vector<int64_t>*>& index_inputs,
    ReplayMode mode, std::string* error) {
  auto fail = [&](ReplayStatus status, const std::string& why) {
    if (error != nullptr) *error = why;
    return status;
  };
  if (inputs.size() != plan_->inputs().size()) {
    std::ostringstream os;
    os << "bound " << inputs.size() << " inputs, plan has "
       << plan_->inputs().size();
    return fail(ReplayStatus::kBindingMismatch, os.str());
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].data == nullptr ||
        inputs[i].numel != plan_->inputs()[i].numel) {
      std::ostringstream os;
      os << "input '" << plan_->inputs()[i].name << "' bound with "
         << inputs[i].numel << " floats, plan captured "
         << plan_->inputs()[i].numel;
      return fail(ReplayStatus::kBindingMismatch, os.str());
    }
  }
  if (index_inputs.size() != plan_->index_inputs().size()) {
    std::ostringstream os;
    os << "bound " << index_inputs.size() << " index inputs, plan has "
       << plan_->index_inputs().size();
    return fail(ReplayStatus::kBindingMismatch, os.str());
  }
  for (size_t i = 0; i < index_inputs.size(); ++i) {
    if (index_inputs[i] == nullptr ||
        static_cast<int64_t>(index_inputs[i]->size()) !=
            plan_->index_inputs()[i].count) {
      std::ostringstream os;
      os << "index input '" << plan_->index_inputs()[i].name
         << "' bound with "
         << (index_inputs[i] == nullptr
                 ? int64_t{-1}
                 : static_cast<int64_t>(index_inputs[i]->size()))
         << " indices, plan captured " << plan_->index_inputs()[i].count;
      return fail(ReplayStatus::kBindingMismatch, os.str());
    }
  }
  if (!plan_->ConstantsValid()) {
    return fail(ReplayStatus::kStaleConstants,
                "a captured constant's storage was reassigned");
  }
  if (plan_->backend_name() != kernels::ActiveBackend().name) {
    std::ostringstream os;
    os << "plan captured under kernel backend '" << plan_->backend_name()
       << "', active backend is '" << kernels::ActiveBackend().name << "'";
    return fail(ReplayStatus::kBackendMismatch, os.str());
  }

  for (const InputPatch& patch : input_patches_) {
    pointer_pool_[patch.pool_pos] =
        inputs[static_cast<size_t>(patch.input_id)].data;
  }
  for (const IndexPatch& patch : index_patches_) {
    states_[patch.step].indices =
        index_inputs[static_cast<size_t>(patch.index_id)];
  }

  for (const auto& [begin, end] : plan_->levels()) {
    if (mode == ReplayMode::kLevelParallel && end - begin > 1) {
      // Steps of one level write disjoint slots, so any interleaving is
      // race-free. Their inner kernels run serially (nested ParallelFor),
      // but chunk boundaries — hence results — are unchanged.
      ParallelFor(begin, end, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) RunStep(static_cast<size_t>(s));
      });
    } else {
      // Single-step levels bypass ParallelFor so the step's own kernel can
      // still parallelize (ParallelFor marks even its serial path as a
      // parallel region, which would force nested calls serial).
      for (int32_t s = begin; s < end; ++s) RunStep(static_cast<size_t>(s));
    }
  }

  output_ = slab_.data() +
            plan_->slots()[static_cast<size_t>(plan_->output_slot())].offset;
  return ReplayStatus::kOk;
}

void PlanExecutor::RunStep(size_t step_index) const {
  const PlanStep& step = plan_->steps()[step_index];
  const StepState& state = states_[step_index];
  if (step.zero_output) {
    std::fill(state.output, state.output + state.output_numel, 0.0f);
  }
  StepIo io;
  io.inputs = state.inputs;
  io.output = state.output;
  io.indices = state.indices;
  step.run(io);
}

}  // namespace d2stgnn::exec
