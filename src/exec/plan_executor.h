#ifndef D2STGNN_EXEC_PLAN_EXECUTOR_H_
#define D2STGNN_EXEC_PLAN_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/plan.h"

// Replays an ExecutionPlan (DESIGN.md §10). The executor owns the plan's
// slab and precomputed per-step pointer tables, so a replay is: validate
// bindings, patch the per-request input pointers, then walk the level
// schedule calling each step's kernel closure. No Tensor handles, no shape
// checks, no tape, no allocations.

namespace d2stgnn::exec {

/// How the executor walks the level schedule.
enum class ReplayMode {
  /// Steps run one after another in plan order.
  kSerial,
  /// Steps of one level run concurrently on the shared thread pool.
  /// Bitwise-identical to kSerial: same-level steps write disjoint slots
  /// and every kernel is thread-count-deterministic.
  kLevelParallel,
};

/// Outcome of PlanExecutor::Run.
enum class ReplayStatus {
  kOk,
  /// The caller's bindings do not match the plan (count or size mismatch).
  /// The plan itself is still valid for correctly-shaped requests.
  kBindingMismatch,
  /// A captured constant's storage was reassigned since capture (e.g. a
  /// checkpoint reload replaced parameter buffers). The plan is stale and
  /// must be rebuilt.
  kStaleConstants,
  /// The active kernel backend differs from the one the plan was captured
  /// under. The plan is valid, but only on its own backend — the caller
  /// must capture a fresh plan (the session keys its plan cache by backend
  /// name, so this is a programming-error guard, not a routine path).
  kBackendMismatch,
};

/// A per-request float binding: the buffer replacing one PlanInput, in
/// plan->inputs() order.
struct InputBinding {
  const float* data = nullptr;
  int64_t numel = 0;
};

class PlanExecutor {
 public:
  /// Allocates the slab and resolves every static pointer (slots and
  /// constants). The plan is shared and immutable; one executor instance
  /// owns mutable replay state and is NOT thread-safe — callers serialize
  /// Run() (InferenceSession holds its session mutex).
  explicit PlanExecutor(std::shared_ptr<const ExecutionPlan> plan);

  /// Replays the plan. `inputs` matches plan->inputs() by position,
  /// `index_inputs` matches plan->index_inputs() by position. On kOk the
  /// result is readable via output() until the next Run. On failure
  /// `error` (if non-null) describes the mismatch.
  ReplayStatus Run(const std::vector<InputBinding>& inputs,
                   const std::vector<const std::vector<int64_t>*>& index_inputs,
                   ReplayMode mode, std::string* error = nullptr);

  /// The output slot of the last successful Run (plan->output_shape()
  /// floats). Points into the slab.
  const float* output() const { return output_; }

  const ExecutionPlan& plan() const { return *plan_; }

 private:
  void RunStep(size_t step_index) const;

  std::shared_ptr<const ExecutionPlan> plan_;
  std::vector<float> slab_;
  /// Flattened per-step input pointer arrays. Slot and constant entries are
  /// filled at construction; kInput entries are patched each Run.
  std::vector<const float*> pointer_pool_;
  struct StepState {
    const float* const* inputs = nullptr;  // into pointer_pool_
    float* output = nullptr;               // into slab_
    int64_t output_numel = 0;
    const std::vector<int64_t>* indices = nullptr;
  };
  std::vector<StepState> states_;
  /// Positions in pointer_pool_ to patch from the caller's input bindings.
  struct InputPatch {
    size_t pool_pos = 0;
    int32_t input_id = 0;
  };
  std::vector<InputPatch> input_patches_;
  /// Steps whose StepState::indices comes from the caller's index bindings.
  struct IndexPatch {
    size_t step = 0;
    int32_t index_id = 0;
  };
  std::vector<IndexPatch> index_patches_;
  const float* output_ = nullptr;
};

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_PLAN_EXECUTOR_H_
