#include "exec/plan_verifier.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/align.h"
#include "tensor/kernels/registry.h"
#include "tensor/op_registry.h"

namespace d2stgnn::exec {
namespace {

/// Fragmentation below this share of the slab is considered healthy packing
/// overhead (alignment padding, first-fit holes) and not worth an advisory.
constexpr double kFragmentationAdvisoryPct = 25.0;

/// Must match the PlanBuffers default: offsets are handed out in aligned
/// units, so peak-live accounting has to align the same way.
constexpr int64_t kSlabAlignFloats = common::kSlabAlignFloats;

int64_t AlignUp(int64_t v, int64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

/// Half-open float range inside the slab.
struct Range {
  int64_t begin = 0;
  int64_t end = 0;
  bool Overlaps(const Range& o) const {
    return begin < o.end && o.begin < end;
  }
};

std::string RangeString(const Range& r) {
  std::ostringstream os;
  os << "[" << r.begin << ", " << r.end << ") floats (bytes ["
     << r.begin * static_cast<int64_t>(sizeof(float)) << ", "
     << r.end * static_cast<int64_t>(sizeof(float)) << "))";
  return os.str();
}

class Verifier {
 public:
  explicit Verifier(const ExecutionPlan& plan) : plan_(plan) {}

  VerifierReport Run() {
    CheckSteps();
    CheckLevelRanges();
    CheckConstants();
    CheckBackend();
    CheckOutputSlot();
    // The memory-level analyses index slots by step position; with the
    // counts out of sync (already an error above) they would read garbage.
    if (plan_.slots().size() == plan_.steps().size()) {
      CheckSlots();
      CheckLevelSchedule();
      CheckLifetimes();
      CheckInterference();
      EmitAdvisories();
    }
    return std::move(report_);
  }

 private:
  void Emit(DiagSeverity severity, DiagCode code, int32_t step,
            int32_t other_step, std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.code = code;
    d.step = step;
    d.other_step = other_step;
    if (step >= 0 && step < static_cast<int32_t>(plan_.steps().size())) {
      d.op = plan_.steps()[static_cast<size_t>(step)].op;
      d.level = plan_.steps()[static_cast<size_t>(step)].level;
    }
    d.message = std::move(message);
    if (severity == DiagSeverity::kError) {
      ++report_.errors;
    } else {
      ++report_.advisories;
    }
    report_.diagnostics.push_back(std::move(d));
  }

  void Error(DiagCode code, int32_t step, int32_t other_step,
             std::string message) {
    Emit(DiagSeverity::kError, code, step, other_step, std::move(message));
  }

  void Advise(DiagCode code, int32_t step, int32_t other_step,
              std::string message) {
    Emit(DiagSeverity::kAdvisory, code, step, other_step, std::move(message));
  }

  /// "step 12 (MatMul, level 4)" — the provenance prefix every message uses.
  std::string Tag(int32_t step) const {
    std::ostringstream os;
    if (step < 0 || step >= static_cast<int32_t>(plan_.steps().size())) {
      os << "step " << step << " (?)";
      return os.str();
    }
    const PlanStep& s = plan_.steps()[static_cast<size_t>(step)];
    os << "step " << step << " (" << s.op << ", level " << s.level << ")";
    return os.str();
  }

  /// Step i's write range; slot id == step id once density holds.
  Range WriteRange(int32_t step) const {
    const SlotInfo& slot = plan_.slots()[static_cast<size_t>(step)];
    return Range{slot.offset, slot.offset + slot.numel};
  }

  bool ValidSlotRef(const ValueRef& ref) const {
    return ref.kind == ValueRef::Kind::kSlot && ref.index >= 0 &&
           ref.index < static_cast<int32_t>(plan_.slots().size());
  }

  // ---- Structural invariants -------------------------------------------

  void CheckSteps() {
    const auto& steps = plan_.steps();
    if (plan_.slots().size() != steps.size()) {
      std::ostringstream os;
      os << "plan has " << steps.size() << " steps but " << plan_.slots().size()
         << " slots; slot ids cannot be dense";
      Error(DiagCode::kSlotNotDense, -1, -1, os.str());
    }
    for (size_t i = 0; i < steps.size(); ++i) {
      const PlanStep& step = steps[i];
      const auto step_id = static_cast<int32_t>(i);

      if (step.output_slot != step_id) {
        std::ostringstream os;
        os << Tag(step_id) << " writes slot " << step.output_slot
           << " but slot ids are dense by construction (expected " << step_id
           << ")";
        Error(DiagCode::kSlotNotDense, step_id, -1, os.str());
      }
      if (step.run == nullptr) {
        Error(DiagCode::kMissingRunClosure, step_id, -1,
              Tag(step_id) + " has no run closure; replay would crash");
      }
      if (step.level < 1 ||
          (i > 0 && step.level < steps[i - 1].level)) {
        std::ostringstream os;
        os << Tag(step_id) << " breaks the level-sorted step order (previous "
           << "step level " << (i > 0 ? steps[i - 1].level : 0) << ")";
        Error(DiagCode::kBadStepOrder, step_id, -1, os.str());
      }

      const PlanOpTraits* traits = FindPlanOpTraits(step.op);
      if (traits == nullptr) {
        Error(DiagCode::kUnknownOp, step_id, -1,
              Tag(step_id) + " uses an op outside the recordable vocabulary "
                             "(tensor/op_registry.h PlanOpNames)");
      } else {
        if (step.zero_output != traits->accumulates) {
          std::ostringstream os;
          os << Tag(step_id) << " has zero_output="
             << (step.zero_output ? "true" : "false") << " but " << step.op
             << (traits->accumulates
                     ? " accumulates into its output and needs the slot "
                       "zeroed first"
                     : " overwrites its output; zeroing is wasted work and "
                       "marks a non-accumulating op as accumulating");
          Error(DiagCode::kWrongZeroOutput, step_id, -1, os.str());
        }
        const bool bound = step.index_input >= 0;
        const bool baked = !step.baked_indices.empty();
        if (!traits->indexed && (bound || baked)) {
          Error(DiagCode::kIndexBindingConflict, step_id, -1,
                Tag(step_id) + " carries index data but " + step.op +
                    " is not an indexed op");
        }
        if (bound && baked) {
          Error(DiagCode::kIndexBindingConflict, step_id, -1,
                Tag(step_id) +
                    " has both a bound index_input and baked_indices; they "
                    "are mutually exclusive");
        }
        if (bound &&
            step.index_input >=
                static_cast<int32_t>(plan_.index_inputs().size())) {
          std::ostringstream os;
          os << Tag(step_id) << " binds index input " << step.index_input
             << " but the plan declares only " << plan_.index_inputs().size();
          Error(DiagCode::kValueRefOutOfRange, step_id, -1, os.str());
        }
      }

      for (size_t j = 0; j < step.inputs.size(); ++j) {
        const ValueRef& ref = step.inputs[j];
        int64_t limit = -1;
        const char* pool = "?";
        switch (ref.kind) {
          case ValueRef::Kind::kSlot:
            limit = static_cast<int64_t>(plan_.slots().size());
            pool = "slot";
            break;
          case ValueRef::Kind::kConstant:
            limit = static_cast<int64_t>(plan_.constants().size());
            pool = "constant";
            break;
          case ValueRef::Kind::kInput:
            limit = static_cast<int64_t>(plan_.inputs().size());
            pool = "input";
            break;
        }
        if (limit < 0 || ref.index < 0 || ref.index >= limit) {
          std::ostringstream os;
          os << Tag(step_id) << " input " << j << " dangles: " << pool
             << " index " << ref.index << " outside [0, " << limit << ")";
          Error(DiagCode::kValueRefOutOfRange, step_id, -1, os.str());
        }
      }
    }
  }

  void CheckLevelRanges() {
    const auto& steps = plan_.steps();
    const auto& levels = plan_.levels();
    int32_t expect_begin = 0;
    int32_t prev_level = 0;
    bool ok = true;
    for (const auto& [begin, end] : levels) {
      if (begin != expect_begin || end <= begin ||
          end > static_cast<int32_t>(steps.size())) {
        ok = false;
        break;
      }
      const int32_t lvl = steps[static_cast<size_t>(begin)].level;
      if (lvl <= prev_level) ok = false;
      for (int32_t pos = begin; pos < end && ok; ++pos) {
        if (steps[static_cast<size_t>(pos)].level != lvl) ok = false;
      }
      if (!ok) break;
      prev_level = lvl;
      expect_begin = end;
    }
    if (ok && expect_begin != static_cast<int32_t>(steps.size())) ok = false;
    if (!ok) {
      Error(DiagCode::kBadStepOrder, -1, -1,
            "levels() ranges do not partition the steps into contiguous, "
            "strictly ascending same-level runs");
    }
  }

  void CheckConstants() {
    for (size_t i = 0; i < plan_.constants().size(); ++i) {
      const PlanConstant& c = plan_.constants()[i];
      const float* now = c.tensor.defined() ? c.tensor.Data().data() : nullptr;
      if (now != c.captured_data || c.numel != c.tensor.numel()) {
        std::ostringstream os;
        os << "constant " << i << " is stale: captured data/numel ("
           << static_cast<const void*>(c.captured_data) << ", " << c.numel
           << ") vs current (" << static_cast<const void*>(now) << ", "
           << c.tensor.numel()
           << "); replay would read freed or reassigned storage";
        Error(DiagCode::kConstantMismatch, -1, -1, os.str());
      }
    }
  }

  void CheckBackend() {
    const std::string& name = plan_.backend_name();
    for (const std::string& known : kernels::AvailableBackendNames()) {
      if (name == known) return;
    }
    std::ostringstream os;
    os << "plan records kernel backend '" << name
       << "' which is not a registered backend on this host; the step "
          "closures cannot be trusted to match any runnable backend";
    Error(DiagCode::kUnknownBackend, -1, -1, os.str());
  }

  void CheckOutputSlot() {
    const int32_t out = plan_.output_slot();
    if (out < 0 || out >= static_cast<int32_t>(plan_.slots().size())) {
      std::ostringstream os;
      os << "output slot " << out << " outside [0, " << plan_.slots().size()
         << ")";
      Error(DiagCode::kBadOutputSlot, -1, -1, os.str());
      return;
    }
    int32_t max_level = 0;
    for (const PlanStep& step : plan_.steps()) {
      max_level = std::max(max_level, step.level);
    }
    const SlotInfo& slot = plan_.slots()[static_cast<size_t>(out)];
    if (slot.last_use_level < max_level) {
      std::ostringstream os;
      os << "output slot " << out << " retires at level "
         << slot.last_use_level << " before the final level " << max_level
         << "; the result region may be reused before the caller reads it";
      Error(DiagCode::kBadOutputSlot, out, -1, os.str());
    }
  }

  // ---- Slab geometry ---------------------------------------------------

  void CheckSlots() {
    for (size_t i = 0; i < plan_.slots().size(); ++i) {
      const SlotInfo& slot = plan_.slots()[i];
      const auto step_id = static_cast<int32_t>(i);
      if (slot.numel < 0 || slot.offset < 0 ||
          slot.offset + slot.numel > plan_.slab_floats()) {
        std::ostringstream os;
        os << Tag(step_id) << " slot range " << RangeString(WriteRange(step_id))
           << " escapes the slab of " << plan_.slab_floats() << " floats";
        Error(DiagCode::kSlotOutOfSlab, step_id, -1, os.str());
      }
      if (slot.def_level > slot.last_use_level ||
          slot.def_level != plan_.steps()[i].level) {
        std::ostringstream os;
        os << Tag(step_id) << " has inconsistent lifetime metadata: interval ["
           << slot.def_level << ", " << slot.last_use_level
           << "] vs producing level " << plan_.steps()[i].level;
        Error(DiagCode::kLifetimeTooShort, step_id, -1, os.str());
      }
    }
  }

  // ---- Level-schedule soundness ----------------------------------------

  void CheckLevelSchedule() {
    const auto& steps = plan_.steps();

    // Producer ordering: every slot input must come from a strictly
    // earlier level, else level-parallel replay races producer against
    // consumer.
    for (size_t i = 0; i < steps.size(); ++i) {
      for (const ValueRef& ref : steps[i].inputs) {
        if (!ValidSlotRef(ref)) continue;
        const PlanStep& producer = steps[static_cast<size_t>(ref.index)];
        if (producer.level >= steps[i].level) {
          std::ostringstream os;
          os << Tag(static_cast<int32_t>(i)) << " reads the output of "
             << Tag(ref.index)
             << " which is not in a strictly earlier level";
          Error(DiagCode::kLevelOrderViolation, static_cast<int32_t>(i),
                ref.index, os.str());
        }
      }
    }

    // Same-level overlap: group by the steps' own level field (robust to a
    // corrupted levels() table) and compare step-derived read/write sets.
    std::map<int32_t, std::vector<int32_t>> by_level;
    for (size_t i = 0; i < steps.size(); ++i) {
      by_level[steps[i].level].push_back(static_cast<int32_t>(i));
    }
    for (const auto& [level, members] : by_level) {
      for (size_t a = 0; a < members.size(); ++a) {
        const Range wa = WriteRange(members[a]);
        for (size_t b = a + 1; b < members.size(); ++b) {
          const Range wb = WriteRange(members[b]);
          if (wa.Overlaps(wb)) {
            std::ostringstream os;
            os << Tag(members[a]) << " and " << Tag(members[b])
               << " write overlapping slab ranges " << RangeString(wa)
               << " / " << RangeString(wb)
               << " in the same level — write/write race under parallel "
                  "replay";
            Error(DiagCode::kSameLevelWriteOverlap, members[a], members[b],
                  os.str());
          }
        }
        // Reads of `a` against writes of every other same-level step.
        for (const ValueRef& ref : steps[static_cast<size_t>(members[a])]
                                       .inputs) {
          if (!ValidSlotRef(ref)) continue;
          const Range read = WriteRange(ref.index);
          if (read.begin >= read.end) continue;
          for (const int32_t other : members) {
            if (other == members[a]) continue;
            // Reading `other`'s own output is the level-order violation
            // reported above; here we catch distinct slots aliased by reuse.
            if (other == ref.index) continue;
            if (read.Overlaps(WriteRange(other))) {
              std::ostringstream os;
              os << Tag(members[a]) << " reads slot " << ref.index << " "
                 << RangeString(read) << " while " << Tag(other)
                 << " writes " << RangeString(WriteRange(other))
                 << " in the same level — read/write race under parallel "
                    "replay";
              Error(DiagCode::kSameLevelReadWriteOverlap, members[a], other,
                    os.str());
            }
          }
        }
      }
    }
  }

  // ---- Slab-lifetime soundness -----------------------------------------

  void CheckLifetimes() {
    const auto& steps = plan_.steps();
    for (size_t i = 0; i < steps.size(); ++i) {
      for (const ValueRef& ref : steps[i].inputs) {
        if (!ValidSlotRef(ref)) continue;
        const SlotInfo& slot = plan_.slots()[static_cast<size_t>(ref.index)];
        if (steps[i].level > slot.last_use_level) {
          std::ostringstream os;
          os << Tag(static_cast<int32_t>(i)) << " reads slot " << ref.index
             << " (produced by " << Tag(ref.index)
             << ") whose lifetime ended at level " << slot.last_use_level
             << " — the planner may have reused " << RangeString(
                    WriteRange(ref.index))
             << " for a later value";
          Error(DiagCode::kLifetimeTooShort, static_cast<int32_t>(i),
                ref.index, os.str());
        }
      }
    }
  }

  void CheckInterference() {
    // Byte-granular check of the planner's claim: two slots may share slab
    // bytes only if their inclusive level intervals are disjoint (a buffer
    // freed at level L is reusable from L+1 on).
    const auto& slots = plan_.slots();
    for (size_t a = 0; a < slots.size(); ++a) {
      if (slots[a].numel <= 0) continue;
      const Range ra = WriteRange(static_cast<int32_t>(a));
      for (size_t b = a + 1; b < slots.size(); ++b) {
        if (slots[b].numel <= 0) continue;
        if (!ra.Overlaps(WriteRange(static_cast<int32_t>(b)))) continue;
        const bool levels_overlap =
            slots[a].def_level <= slots[b].last_use_level &&
            slots[b].def_level <= slots[a].last_use_level;
        if (levels_overlap) {
          std::ostringstream os;
          os << "slots " << a << " and " << b << " (produced by "
             << Tag(static_cast<int32_t>(a)) << " and "
             << Tag(static_cast<int32_t>(b)) << ") share slab bytes "
             << RangeString(ra) << " / "
             << RangeString(WriteRange(static_cast<int32_t>(b)))
             << " while live intervals [" << slots[a].def_level << ", "
             << slots[a].last_use_level << "] and [" << slots[b].def_level
             << ", " << slots[b].last_use_level << "] overlap";
          Error(DiagCode::kSlabInterference, static_cast<int32_t>(a),
                static_cast<int32_t>(b), os.str());
        }
      }
    }
  }

  // ---- Advisories ------------------------------------------------------

  void EmitAdvisories() {
    const auto& steps = plan_.steps();

    std::vector<int32_t> reads(steps.size(), 0);
    for (const PlanStep& step : steps) {
      for (const ValueRef& ref : step.inputs) {
        if (ValidSlotRef(ref)) ++reads[static_cast<size_t>(ref.index)];
      }
    }
    for (size_t i = 0; i < steps.size(); ++i) {
      if (reads[i] == 0 && static_cast<int32_t>(i) != plan_.output_slot()) {
        Advise(DiagCode::kDeadStep, static_cast<int32_t>(i), -1,
               Tag(static_cast<int32_t>(i)) +
                   " produces a value no step reads and is not the plan "
                   "output — eliminable");
      }
      const PlanOpTraits* traits = FindPlanOpTraits(steps[i].op);
      if (traits != nullptr && traits->pure_copy) {
        std::string note;
        if (steps[i].inputs.size() == 1 && ValidSlotRef(steps[i].inputs[0])) {
          const PlanOpTraits* up = FindPlanOpTraits(
              steps[static_cast<size_t>(steps[i].inputs[0].index)].op);
          if (up != nullptr && up->pure_copy) {
            note = " (copy chain: its input is itself a pure copy)";
          }
        }
        Advise(DiagCode::kCopyStep, static_cast<int32_t>(i), -1,
               Tag(static_cast<int32_t>(i)) +
                   " is a verbatim element-order copy — fusion / "
                   "copy-elimination candidate" +
                   note);
      }
    }

    // Fragmentation: peak aligned live floats over all levels vs slab size.
    int32_t max_level = 0;
    for (const PlanStep& step : steps) {
      max_level = std::max(max_level, step.level);
    }
    int64_t peak = 0;
    for (int32_t level = 1; level <= max_level; ++level) {
      int64_t live = 0;
      for (const SlotInfo& slot : plan_.slots()) {
        if (slot.def_level <= level && level <= slot.last_use_level) {
          live += AlignUp(slot.numel, kSlabAlignFloats);
        }
      }
      peak = std::max(peak, live);
    }
    if (plan_.slab_floats() > 0) {
      report_.slab_fragmentation_pct =
          100.0 *
          static_cast<double>(plan_.slab_floats() - std::min(
              peak, plan_.slab_floats())) /
          static_cast<double>(plan_.slab_floats());
    }
    if (report_.slab_fragmentation_pct > kFragmentationAdvisoryPct) {
      std::ostringstream os;
      os << "slab of " << plan_.slab_floats() << " floats is "
         << report_.slab_fragmentation_pct
         << "% larger than the peak live set of " << peak
         << " floats — the interval allocator is fragmenting on this plan";
      Advise(DiagCode::kSlabFragmentation, -1, -1, os.str());
    }
  }

  const ExecutionPlan& plan_;
  VerifierReport report_;
};

}  // namespace

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kSlotNotDense:
      return "SlotNotDense";
    case DiagCode::kValueRefOutOfRange:
      return "ValueRefOutOfRange";
    case DiagCode::kIndexBindingConflict:
      return "IndexBindingConflict";
    case DiagCode::kWrongZeroOutput:
      return "WrongZeroOutput";
    case DiagCode::kConstantMismatch:
      return "ConstantMismatch";
    case DiagCode::kUnknownOp:
      return "UnknownOp";
    case DiagCode::kUnknownBackend:
      return "UnknownBackend";
    case DiagCode::kMissingRunClosure:
      return "MissingRunClosure";
    case DiagCode::kBadOutputSlot:
      return "BadOutputSlot";
    case DiagCode::kBadStepOrder:
      return "BadStepOrder";
    case DiagCode::kLevelOrderViolation:
      return "LevelOrderViolation";
    case DiagCode::kSameLevelWriteOverlap:
      return "SameLevelWriteOverlap";
    case DiagCode::kSameLevelReadWriteOverlap:
      return "SameLevelReadWriteOverlap";
    case DiagCode::kLifetimeTooShort:
      return "LifetimeTooShort";
    case DiagCode::kSlabInterference:
      return "SlabInterference";
    case DiagCode::kSlotOutOfSlab:
      return "SlotOutOfSlab";
    case DiagCode::kDeadStep:
      return "DeadStep";
    case DiagCode::kCopyStep:
      return "CopyStep";
    case DiagCode::kSlabFragmentation:
      return "SlabFragmentation";
  }
  return "Unknown";
}

bool VerifierReport::HasCode(DiagCode code) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

std::string VerifierReport::ToString() const {
  std::ostringstream os;
  os << "plan verification: " << errors << " error(s), " << advisories
     << " advisory(ies), slab fragmentation " << slab_fragmentation_pct
     << "%";
  for (const Diagnostic& d : diagnostics) {
    os << "\n  "
       << (d.severity == DiagSeverity::kError ? "error" : "advisory") << "["
       << DiagCodeName(d.code) << "] " << d.message;
  }
  return os.str();
}

VerifierReport VerifyPlan(const ExecutionPlan& plan) {
  return Verifier(plan).Run();
}

}  // namespace d2stgnn::exec
