#ifndef D2STGNN_EXEC_PLAN_VERIFIER_H_
#define D2STGNN_EXEC_PLAN_VERIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/plan.h"

// Static plan-IR verifier (DESIGN.md §12).
//
// VerifyPlan analyzes a captured ExecutionPlan without running it and proves
// the three properties replay correctness rests on:
//
//  1. Level-schedule soundness — per-step read/write float-ranges in the
//     slab are derived from each step's ValueRefs and its output slot, and
//     no two steps scheduled in the same level have write/write or
//     read/write overlap; every slot input's producing step sits in a
//     strictly earlier level. Level-parallel replay is then race-free by
//     construction, not merely TSan-clean on the runs we happened to test.
//  2. Slab-lifetime soundness — the memory planner may hand one byte range
//     to several slots whose live intervals (inclusive, in levels) do not
//     overlap; the verifier re-checks that byte-granular interference claim
//     against the plan's recorded intervals, and separately that no step
//     reads a slot at a level past the slot's last_use_level (the point
//     after which its region may already hold another value).
//  3. Structural invariants — dense slot ids (slot id == step position),
//     in-range ValueRef indices, index_input/baked_indices mutual
//     exclusion, zero_output set exactly for accumulating ops, constants
//     whose captured_data still matches tensor.Data(), op names drawn from
//     the recordable vocabulary (tensor/op_registry.h PlanOpNames), and a
//     run closure on every step.
//
// Race detection is computed from the steps' own read/write sets,
// independently of the slot lifetime metadata, so a plan whose intervals
// were corrupted (or whose planner mis-assigned offsets) is still caught.
//
// Limits of the soundness claims: the verifier trusts each step's kernel
// closure to touch exactly [slot.offset, slot.offset + slot.numel) of its
// output and only read its declared inputs — the closure is opaque, so that
// contract is established by the per-op traits table and the bitwise
// eager-vs-replay parity tests, not by this analysis. Constants are
// validated by address and size, not by content hash.
//
// Beyond errors the report carries advisories — dead steps, copy steps and
// copy chains (Reshape), slab fragmentation — which are exactly the
// worklist a future fusion / copy-elimination pass consumes.

namespace d2stgnn::exec {

enum class DiagSeverity : uint8_t { kError, kAdvisory };

/// Stable machine-readable finding classes. Tests assert on these; the
/// string form (DiagCodeName) appears in reports.
enum class DiagCode : uint8_t {
  // Structural errors.
  kSlotNotDense,          ///< output_slot != step position, or slot/step count skew
  kValueRefOutOfRange,    ///< input or index_input references a missing value
  kIndexBindingConflict,  ///< index_input/baked_indices both set, or on a non-indexed op
  kWrongZeroOutput,       ///< zero_output disagrees with the op's accumulate trait
  kConstantMismatch,      ///< captured_data/numel no longer match the tensor
  kUnknownOp,             ///< op name outside the recordable vocabulary
  kUnknownBackend,        ///< backend_name not a registered kernel backend
  kMissingRunClosure,     ///< step.run is empty
  kBadOutputSlot,         ///< plan output slot missing or retired early
  kBadStepOrder,          ///< steps not level-sorted, or levels() ranges wrong
  // Scheduling / memory errors.
  kLevelOrderViolation,        ///< input produced in the same or a later level
  kSameLevelWriteOverlap,      ///< two same-level steps write overlapping ranges
  kSameLevelReadWriteOverlap,  ///< same-level read overlaps another step's write
  kLifetimeTooShort,           ///< read past last_use_level, or interval metadata skew
  kSlabInterference,           ///< overlapping-lifetime slots share slab bytes
  kSlotOutOfSlab,              ///< slot range escapes [0, slab_floats)
  // Advisories (fusion-pass worklist).
  kDeadStep,           ///< non-output slot no step ever reads
  kCopyStep,           ///< pure element-order copy (fusion/elimination candidate)
  kSlabFragmentation,  ///< slab noticeably larger than peak live bytes
};

/// Stable name for `code` ("SameLevelWriteOverlap", ...).
const char* DiagCodeName(DiagCode code);

/// One finding, with step/op/level provenance. Pairwise findings (overlaps,
/// interference) carry the second step in `other_step`.
struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  DiagCode code = DiagCode::kUnknownOp;
  /// Offending step index (== its output slot id), or -1 for plan-wide.
  int32_t step = -1;
  /// Second step for pairwise findings, else -1.
  int32_t other_step = -1;
  /// Op name of `step`, empty for plan-wide findings.
  std::string op;
  /// Scheduling level of `step`, or -1.
  int32_t level = -1;
  /// Self-contained human-readable sentence (includes provenance).
  std::string message;
};

/// The verifier's lint-style output: every finding plus summary counters.
struct VerifierReport {
  std::vector<Diagnostic> diagnostics;
  int errors = 0;
  int advisories = 0;
  /// 100 * (slab - peak live floats) / slab; 0 for an empty slab. Always
  /// computed; reported as an advisory only past a threshold.
  double slab_fragmentation_pct = 0.0;

  /// True when the plan is safe to replay (advisories allowed).
  bool ok() const { return errors == 0; }
  /// True if any diagnostic carries `code`.
  bool HasCode(DiagCode code) const;
  /// Multi-line report: summary header, then one line per diagnostic.
  std::string ToString() const;
};

/// Statically verifies `plan`. Never executes step closures; safe to call
/// on corrupted plans (including ones that would crash if replayed).
VerifierReport VerifyPlan(const ExecutionPlan& plan);

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_PLAN_VERIFIER_H_
