#ifndef D2STGNN_EXEC_MEMORY_PLANNER_H_
#define D2STGNN_EXEC_MEMORY_PLANNER_H_

#include <cstdint>
#include <vector>

#include "common/align.h"

// Static buffer planning for captured execution plans (DESIGN.md §10).
//
// A captured forward knows every intermediate buffer it will ever need and
// the level interval over which each one is live, so instead of a pool of
// individually recycled buffers (the eager arena) the whole forward can run
// inside ONE preallocated slab: each buffer is assigned a fixed offset, and
// buffers whose live intervals do not overlap share bytes. Replay then
// performs zero allocator traffic by construction.
//
// Lifetimes are expressed in *levels* (the plan executor's scheduling unit)
// rather than step indices: steps inside one level may run concurrently in
// any order, so a buffer freed at level L can only be reused by a buffer
// born at level L+1 or later. This makes one assignment valid for both the
// serial and the level-parallel replay modes.

namespace d2stgnn::exec {

/// One buffer the plan needs: its size and the half-open-in-levels live
/// interval [def_level, last_use_level] (inclusive on both ends).
struct BufferRequest {
  int64_t numel = 0;
  int32_t def_level = 0;
  int32_t last_use_level = 0;
};

/// The planner's output: an offset (in floats) per request into a slab of
/// `slab_floats` total floats.
struct BufferAssignment {
  std::vector<int64_t> offsets;
  int64_t slab_floats = 0;
};

/// Assigns slab offsets with greedy interval allocation: walk levels in
/// ascending order, return buffers whose last use has passed to a free
/// list (coalescing adjacent holes), and serve new buffers first-fit,
/// largest-first within a level. Offsets are aligned to `alignment` floats
/// (64-byte cache lines at the default common::kSlabAlignFloats == 16,
/// which also keeps every slot start on a full SIMD vector — see
/// common/align.h). Deterministic for a given request vector.
BufferAssignment PlanBuffers(const std::vector<BufferRequest>& requests,
                             int64_t alignment = common::kSlabAlignFloats);

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_MEMORY_PLANNER_H_
