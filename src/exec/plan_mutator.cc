#include "exec/plan_mutator.h"

#include <memory>

namespace d2stgnn::exec {

/// The friend-of-ExecutionPlan surface lives on this class so plan.h only
/// has to name one test hook; the public entry point is MutatePlan below.
class PlanMutator {
 public:
  static std::shared_ptr<const ExecutionPlan> Apply(const ExecutionPlan& plan,
                                                    PlanMutation mutation) {
    auto mutant = std::shared_ptr<ExecutionPlan>(new ExecutionPlan(plan));
    switch (mutation) {
      case PlanMutation::kOverlapSameLevelWrites: {
        // Alias the second step's slot onto the first within some level
        // that schedules two real (non-empty) outputs.
        for (const auto& [begin, end] : mutant->levels_) {
          for (int32_t a = begin; a < end; ++a) {
            if (mutant->slots_[static_cast<size_t>(a)].numel <= 0) continue;
            for (int32_t b = a + 1; b < end; ++b) {
              if (mutant->slots_[static_cast<size_t>(b)].numel <= 0) continue;
              mutant->slots_[static_cast<size_t>(b)].offset =
                  mutant->slots_[static_cast<size_t>(a)].offset;
              return mutant;
            }
          }
        }
        return nullptr;
      }
      case PlanMutation::kReadReusedSlabRegion: {
        // Find a slot consumed at a level past its def level and retire it
        // at birth — the planner's intervals now say the consumer reads a
        // region that may already hold another value.
        for (const PlanStep& step : mutant->steps_) {
          for (const ValueRef& ref : step.inputs) {
            if (ref.kind != ValueRef::Kind::kSlot) continue;
            SlotInfo& slot = mutant->slots_[static_cast<size_t>(ref.index)];
            if (step.level > slot.def_level) {
              slot.last_use_level = slot.def_level;
              return mutant;
            }
          }
        }
        return nullptr;
      }
      case PlanMutation::kDanglingValueRef: {
        for (PlanStep& step : mutant->steps_) {
          for (ValueRef& ref : step.inputs) {
            if (ref.kind != ValueRef::Kind::kSlot) continue;
            ref.index = static_cast<int32_t>(mutant->slots_.size()) + 7;
            return mutant;
          }
        }
        return nullptr;
      }
      case PlanMutation::kWrongZeroOutput: {
        if (mutant->steps_.empty()) return nullptr;
        PlanStep& step = mutant->steps_.front();
        step.zero_output = !step.zero_output;
        return mutant;
      }
      case PlanMutation::kStaleConstantPointer: {
        if (mutant->constants_.empty()) return nullptr;
        // One float past the real storage: a plausible stale pointer after
        // the owner reassigned the tensor's buffer.
        mutant->constants_.front().captured_data += 1;
        return mutant;
      }
      case PlanMutation::kCorruptBackend: {
        // A name the registry can never resolve: both the verifier
        // (kUnknownBackend) and the executor (kBackendMismatch) must reject
        // the plan regardless of which backends this host offers.
        mutant->backend_name_ = "corrupted-backend";
        return mutant;
      }
    }
    return nullptr;
  }
};

std::shared_ptr<const ExecutionPlan> MutatePlan(const ExecutionPlan& plan,
                                                PlanMutation mutation) {
  return PlanMutator::Apply(plan, mutation);
}

}  // namespace d2stgnn::exec
