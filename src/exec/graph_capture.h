#ifndef D2STGNN_EXEC_GRAPH_CAPTURE_H_
#define D2STGNN_EXEC_GRAPH_CAPTURE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "tensor/tensor.h"

// Records one eager forward pass into an ExecutionPlan (DESIGN.md §10).
//
// While a GraphCapture is alive on a thread, every op dispatched in
// tensor/ops.cc additionally records a replay closure via the internal
// hooks below. The caller binds the per-request tensors by identity
// *before* running the forward, runs it once eagerly (the capture run
// produces normal, correct results), then calls Finish() with the output:
//
//   exec::GraphCapture capture;
//   capture.BindInput("x", batch.x);
//   capture.BindIndexInput("tod", batch.time_of_day);
//   Tensor out = model.Forward(batch);          // eager, but recorded
//   auto plan = capture.Finish(out);            // null + error() on failure
//
// Any tensor an op reads that is neither a bound input nor produced by a
// recorded op is captured as a plan constant (weights, scaler statistics).
// Steps that do not contribute to the output are pruned, levels are
// assigned for the parallel schedule, and the memory planner lays every
// intermediate into one slab.

namespace d2stgnn::exec {

namespace internal {

/// True when ops.cc should record the op it is about to dispatch. Kept as
/// a cheap thread-local flag check so the eager fast path is unaffected.
bool CaptureActive();

/// Records a dispatched op. `inputs` are the tensors whose buffers the
/// closure will read (in StepIo::inputs order), `output` the tensor it
/// writes, `run` the shape-specialized kernel closure. `zero_output` marks
/// kernels that accumulate (+=) into their output. No-op when capture is
/// inactive — but callers should gate on CaptureActive() to skip closure
/// construction entirely.
void RecordStep(const char* op, std::vector<Tensor> inputs,
                const Tensor& output, std::function<void(const StepIo&)> run,
                bool zero_output = false);

/// Records an op driven by an int64 index vector (EmbeddingLookup). The
/// closure reads StepIo::indices: the bound vector when `indices` matches a
/// BindIndexInput address, otherwise a snapshot taken here.
void RecordIndexedStep(const char* op, std::vector<Tensor> inputs,
                       const std::vector<int64_t>& indices,
                       const Tensor& output,
                       std::function<void(const StepIo&)> run);

/// Poisons the active capture: the op being dispatched has no replay
/// closure (e.g. Dropout in training mode). The eager result is still
/// correct; Finish() will fail with `reason`.
void MarkCaptureUnsupported(const char* reason);

}  // namespace internal

class GraphCapture {
 public:
  /// Activates capture on the current thread. At most one GraphCapture may
  /// be alive per thread.
  GraphCapture();
  ~GraphCapture();
  GraphCapture(const GraphCapture&) = delete;
  GraphCapture& operator=(const GraphCapture&) = delete;

  /// Declares `t` as a per-request float input: replay reads it from a
  /// caller-provided pointer instead of a captured constant. Matched by
  /// tensor identity, so bind the exact handle the forward will consume.
  void BindInput(const std::string& name, const Tensor& t);

  /// Declares `indices` as a per-request index vector (time-of-day /
  /// day-of-week). Matched by vector address, so bind the exact vector the
  /// forward will pass to EmbeddingLookup.
  void BindIndexInput(const std::string& name,
                      const std::vector<int64_t>& indices);

  /// Resolves the recorded steps against `output` and builds the plan.
  /// Returns null if the forward used an op capture does not support or
  /// the output was not produced by a recorded op; error() says why.
  /// Recording stops either way; Finish may be called once.
  std::shared_ptr<const ExecutionPlan> Finish(const Tensor& output);

  /// Why Finish() returned null (empty on success / before Finish).
  const std::string& error() const { return error_; }

  /// True if a capture is active on the current thread.
  static bool Active();

 private:
  struct Recorded {
    std::string op;
    std::vector<Tensor> inputs;  // pins impl identity until Finish
    Tensor output;
    std::function<void(const StepIo&)> run;
    bool zero_output = false;
    bool indexed = false;
    const std::vector<int64_t>* indices_addr = nullptr;
    std::vector<int64_t> baked_indices;
  };

  struct FloatBinding {
    std::string name;
    Tensor tensor;
  };
  struct IndexBinding {
    std::string name;
    const std::vector<int64_t>* indices = nullptr;
  };

  void Record(Recorded recorded);
  void MarkUnsupported(const char* reason);

  std::vector<Recorded> recorded_;
  std::vector<FloatBinding> float_bindings_;
  std::vector<IndexBinding> index_bindings_;
  std::string unsupported_;
  std::string error_;
  bool finished_ = false;

  friend void internal::RecordStep(const char*, std::vector<Tensor>,
                                   const Tensor&,
                                   std::function<void(const StepIo&)>, bool);
  friend void internal::RecordIndexedStep(const char*, std::vector<Tensor>,
                                          const std::vector<int64_t>&,
                                          const Tensor&,
                                          std::function<void(const StepIo&)>);
  friend void internal::MarkCaptureUnsupported(const char*);
};

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_GRAPH_CAPTURE_H_
