#ifndef D2STGNN_EXEC_PLAN_H_
#define D2STGNN_EXEC_PLAN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

// Captured execution plans (DESIGN.md §10).
//
// An ExecutionPlan is the record of one eager forward pass: the ordered
// kernel dispatches it performed, where each dispatch read its inputs from,
// and a static buffer assignment that lets the whole forward replay inside
// one preallocated slab. Plans are built by exec::GraphCapture, are
// immutable afterwards, and are replayed by exec::PlanExecutor — which
// skips everything the eager path pays per op (shape inference, tape
// bookkeeping, arena lookups, Tensor handle churn) and dispatches straight
// to tensor/kernels.

namespace d2stgnn::exec {

/// Resolved pointers handed to a step's kernel closure at replay time.
struct StepIo {
  /// One pointer per recorded input, in recording order.
  const float* const* inputs = nullptr;
  /// The step's output buffer (a fixed slab slot).
  float* output = nullptr;
  /// Index vector for indexed steps (EmbeddingLookup); null otherwise.
  const std::vector<int64_t>* indices = nullptr;
};

/// Where a step input comes from at replay time.
struct ValueRef {
  enum class Kind : uint8_t {
    kSlot,      ///< output of an earlier step (slab slot)
    kConstant,  ///< tensor captured by value (weights, biases, ...)
    kInput,     ///< caller-bound per-request buffer ("x")
  };
  Kind kind = Kind::kSlot;
  int32_t index = 0;
};

/// One recorded kernel dispatch. `run` is a shape-specialized closure that
/// already holds every static attribute (strides, matmul offsets, reduce
/// extents); the only per-replay state it sees is the StepIo pointers.
struct PlanStep {
  /// Op name as it appears in tensor/ops.h (registry completeness checks
  /// cross-reference these; "SumDim" aliases the dim overload of Sum).
  std::string op;
  std::vector<ValueRef> inputs;
  /// Slot this step writes. Slot ids are dense per plan.
  int32_t output_slot = 0;
  /// Scheduling level: 1 + max(level of producing steps), 1 for steps fed
  /// only by inputs/constants. Steps of equal level are independent.
  int32_t level = 1;
  /// Id into ExecutionPlan::index_inputs() for steps whose index vector is
  /// rebound per request, or -1 when `baked_indices` (possibly empty) apply.
  int32_t index_input = -1;
  /// Snapshot of the index vector for indexed steps not bound as an input.
  std::vector<int64_t> baked_indices;
  /// True when the kernel accumulates into its output (BatchedMatMul) and
  /// the executor must zero the slot first.
  bool zero_output = false;
  std::function<void(const StepIo&)> run;
};

/// A per-request float buffer the caller rebinds on every replay.
struct PlanInput {
  std::string name;
  int64_t numel = 0;
};

/// A per-request index vector the caller rebinds on every replay.
struct PlanIndexInput {
  std::string name;
  int64_t count = 0;
};

/// A tensor captured by value. The Tensor handle keeps the buffer alive;
/// `captured_data` is the buffer's address at capture time. The executor
/// re-reads `tensor.Data()` on every replay — in-place parameter updates
/// are picked up automatically — and treats an address change (the owner
/// reassigned the tensor's storage) as a stale plan.
struct PlanConstant {
  Tensor tensor;
  const float* captured_data = nullptr;
  int64_t numel = 0;
};

/// One slab slot: size, assigned offset, and its live interval in levels.
struct SlotInfo {
  int64_t numel = 0;
  int64_t offset = 0;
  int32_t def_level = 1;
  int32_t last_use_level = 1;
};

/// Immutable record of a captured forward. Thread-safe to share; all
/// mutable replay state lives in PlanExecutor.
class ExecutionPlan {
 public:
  /// Steps in execution order (sorted by level, capture order within one).
  const std::vector<PlanStep>& steps() const { return steps_; }
  /// Contiguous [begin, end) step ranges, one per level, ascending.
  const std::vector<std::pair<int32_t, int32_t>>& levels() const {
    return levels_;
  }
  const std::vector<SlotInfo>& slots() const { return slots_; }
  const std::vector<PlanConstant>& constants() const { return constants_; }
  const std::vector<PlanInput>& inputs() const { return inputs_; }
  const std::vector<PlanIndexInput>& index_inputs() const {
    return index_inputs_;
  }

  /// Slot holding the forward's result, and its shape.
  int32_t output_slot() const { return output_slot_; }
  const Shape& output_shape() const { return output_shape_; }

  /// Name of the kernel backend every step closure was recorded against
  /// (tensor/kernels/registry.h). Replay under any other backend is
  /// rejected (ReplayStatus::kBackendMismatch): the closures hold the
  /// captured backend's function pointers, and mixing backends across
  /// capture/replay would break the bitwise eager-vs-plan parity contract.
  const std::string& backend_name() const { return backend_name_; }

  /// Size of the preallocated slab, in floats (after slot reuse).
  int64_t slab_floats() const { return slab_floats_; }
  /// Sum of all slot sizes — what the slab would cost without reuse.
  int64_t total_slot_floats() const;

  /// True while every constant still lives at its captured address.
  bool ConstantsValid() const;

  /// One-line summary for logs/benches: step, level, slab and reuse stats.
  std::string Summary() const;

 private:
  friend class GraphCapture;
  /// Test-only corruption harness (plan_mutator.h) used to prove the static
  /// verifier detects each class of malformed plan. Never part of the
  /// production capture/replay path.
  friend class PlanMutator;
  ExecutionPlan() = default;

  std::vector<PlanStep> steps_;
  std::vector<std::pair<int32_t, int32_t>> levels_;
  std::vector<SlotInfo> slots_;
  std::vector<PlanConstant> constants_;
  std::vector<PlanInput> inputs_;
  std::vector<PlanIndexInput> index_inputs_;
  int32_t output_slot_ = 0;
  Shape output_shape_;
  int64_t slab_floats_ = 0;
  std::string backend_name_;
};

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_PLAN_H_
