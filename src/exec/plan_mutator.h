#ifndef D2STGNN_EXEC_PLAN_MUTATOR_H_
#define D2STGNN_EXEC_PLAN_MUTATOR_H_

#include <memory>

#include "exec/plan.h"

// Test-only plan corruption (the mutation-testing half of the static
// verifier): clone a valid captured plan, then break exactly one invariant
// so tests can assert the verifier reports the matching diagnostic. Mutated
// plans must only ever be *verified* — several corruption classes would
// read or write out of bounds if replayed.

namespace d2stgnn::exec {

/// One corruption class, mirroring a DiagCode the verifier must raise.
enum class PlanMutation {
  /// Alias the slab offsets of two same-level steps → write/write race
  /// (DiagCode::kSameLevelWriteOverlap, and slab interference).
  kOverlapSameLevelWrites,
  /// Shrink a consumed slot's last_use_level below its consumer's level —
  /// the planner would hand its region to a later value
  /// (DiagCode::kLifetimeTooShort).
  kReadReusedSlabRegion,
  /// Point a slot ValueRef past the slot table
  /// (DiagCode::kValueRefOutOfRange).
  kDanglingValueRef,
  /// Flip one step's zero_output against its op's accumulate trait
  /// (DiagCode::kWrongZeroOutput).
  kWrongZeroOutput,
  /// Shift one constant's captured_data off its tensor's storage
  /// (DiagCode::kConstantMismatch).
  kStaleConstantPointer,
  /// Rewrite the plan's recorded kernel backend to a name no registry entry
  /// matches (DiagCode::kUnknownBackend; replay under the real active
  /// backend also rejects it with ReplayStatus::kBackendMismatch).
  kCorruptBackend,
};

/// Deep-copies `plan` and applies `mutation`. Returns nullptr when the plan
/// lacks the shape the mutation needs (e.g. no level holds two steps).
/// Never mutates `plan` itself.
std::shared_ptr<const ExecutionPlan> MutatePlan(const ExecutionPlan& plan,
                                                PlanMutation mutation);

}  // namespace d2stgnn::exec

#endif  // D2STGNN_EXEC_PLAN_MUTATOR_H_
