#ifndef D2STGNN_INFER_SESSION_H_
#define D2STGNN_INFER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/scaler.h"
#include "data/sliding_window.h"
#include "exec/plan_executor.h"
#include "exec/plan_verifier.h"
#include "infer/overload.h"
#include "tensor/buffer_arena.h"
#include "train/forecasting_model.h"

// Forward-only inference engine (DESIGN.md §9, §10).
//
// An InferenceSession is the serving counterpart of the Trainer: it loads
// trained weights from a checkpoint into a frozen ForecastingModel and runs
// batched no-grad forwards with pooled tensor storage, so steady-state
// inference builds no autograd tape and allocates no new tensor buffers.
// Warmup additionally captures the forward into an ExecutionPlan per batch
// size; matching requests then replay the plan (kernels only — no shape
// checks, no dispatch, no Tensor churn) with bitwise-identical results.
// Sessions are the unit every serving layer (BatchingServer today; sharding
// and caching later) composes over.

namespace d2stgnn::infer {

/// Default for SessionOptions::verify_plans: always on in debug builds,
/// and opt-in via D2STGNN_VERIFY_PLANS=1 in release builds.
bool DefaultVerifyPlans();

/// One serving request: the raw (original-unit) readings of every sensor
/// over the input window, plus the wall-clock position of the window's
/// first step so the time-of-day / day-of-week features the models embed
/// can be derived.
struct ForecastRequest {
  /// Raw readings, row-major [t][node], size input_len * num_nodes.
  std::vector<float> window;
  /// Time-of-day slot (0 .. steps_per_day-1) of the first input step.
  int64_t time_of_day = 0;
  /// Day of week (0 .. 6) of the first input step.
  int64_t day_of_week = 0;
  /// Latency budget from Submit(), microseconds (0: no deadline). A request
  /// still queued when its budget runs out is dropped *before* dispatch —
  /// it never pads a batch — and resolves as kDeadlineExceeded.
  int64_t deadline_us = 0;
  /// Shed class under sustained overload (see OverloadTier::kShedding).
  RequestPriority priority = RequestPriority::kHigh;
};

/// The answer to one request.
struct Forecast {
  bool ok = false;
  /// Why `ok` is false ("cancelled", "queue full (...)", "bad request: ...").
  std::string error;
  /// Typed rejection (kNone when ok), so clients branch without parsing
  /// `error`.
  RejectReason reason = RejectReason::kNone;
  /// Backoff hint for retryable rejections, microseconds (0 otherwise).
  int64_t retry_after_us = 0;
  /// Predicted readings in original units, row-major [t][node], size
  /// horizon * num_nodes. Empty when !ok.
  std::vector<float> values;
  int64_t horizon = 0;
  int64_t num_nodes = 0;
};

/// Static description of the stream a session serves. The model itself only
/// exposes its horizon, so the serving-side window geometry comes from here
/// (it must match what the model was trained on).
struct SessionOptions {
  int64_t num_nodes = 0;       ///< required
  int64_t input_len = 12;      ///< T_h
  int64_t steps_per_day = 288; ///< time-of-day slots (Table 2 presets: 288)
  /// Pool tensor buffers across requests (zero steady-state allocations).
  /// Off = plain no-grad forwards; useful for A/B-ing the arena.
  bool use_arena = true;
  /// Capture an ExecutionPlan per warmed-up batch size and replay it for
  /// matching requests. Off = always eager (useful for A/B parity runs).
  bool use_plans = true;
  /// Replay independent plan steps concurrently (level schedule) instead of
  /// serially. Bitwise-identical either way.
  bool plan_parallel = true;
  /// When a batch is smaller than every captured plan, pad it with blank
  /// requests up to the nearest plan size and replay (valid because model
  /// forwards are batch-independent — see the parity tests); the padding
  /// rows are discarded. Off = undersized batches run eager.
  bool pad_to_plan = true;
  /// Statically verify every captured plan (exec/plan_verifier.h) before it
  /// may serve: a plan with verification errors is rejected and its batch
  /// size keeps running eagerly. Defaults on in debug builds and when
  /// D2STGNN_VERIFY_PLANS=1.
  bool verify_plans = DefaultVerifyPlans();
};

/// Plan-cache traffic counters (see SessionOptions::use_plans).
struct SessionStats {
  int64_t plans_built = 0;       ///< successful Warmup captures
  int64_t plan_replays = 0;      ///< forwards served from a plan
  int64_t padded_replays = 0;    ///< of which padded up to the plan size
  int64_t eager_forwards = 0;    ///< forwards that ran the eager path
  int64_t plan_invalidations = 0;  ///< plans dropped (stale constants)
  int64_t plans_verified = 0;    ///< static verifier runs over captured plans
  int64_t plan_verifier_errors = 0;  ///< error diagnostics across those runs
};

/// A frozen model + scaler + reusable buffer arena, serving predictions.
///
/// Thread safety: every Predict* call is serialized on an internal mutex
/// (models are not reentrant; their kernels parallelize internally over the
/// shared thread pool). Concurrent callers should go through BatchingServer,
/// which amortizes the model cost over coalesced batches instead of queuing
/// on the mutex.
class InferenceSession {
 public:
  /// Loads `checkpoint_path` (v1 or v2; only the params section is used)
  /// into `model` and wraps the result. Returns null after logging on any
  /// failure — missing file, corrupt or truncated checkpoint, architecture
  /// mismatch — with no partially-initialized session escaping (the fault
  /// point "infer.checkpoint_load" injects such failures in tests).
  static std::unique_ptr<InferenceSession> Load(
      std::unique_ptr<train::ForecastingModel> model,
      const std::string& checkpoint_path, const data::StandardScaler& scaler,
      const SessionOptions& options);

  /// Wraps an already-initialized model (tests, benches, freshly trained
  /// models served without a checkpoint round-trip). Returns null after
  /// logging when `model` is null or `options` is inconsistent.
  static std::unique_ptr<InferenceSession> Wrap(
      std::unique_ptr<train::ForecastingModel> model,
      const data::StandardScaler& scaler, const SessionOptions& options);

  /// Serves a coalesced batch of requests in one model forward. Requests
  /// that fail validation get an error Forecast; the valid remainder runs
  /// as one batch. Order of results matches the request order.
  std::vector<Forecast> PredictRequests(
      const std::vector<ForecastRequest>& requests);

  /// Single-request convenience (a batch of one).
  Forecast PredictOne(const ForecastRequest& request);

  /// Runs an assembled batch through the frozen model and returns
  /// predictions in original units, [B, Tf, N, 1]. This is the exact
  /// computation the training-stack evaluator performs (the parity tests
  /// assert bitwise equality), minus tape and allocation traffic.
  Tensor Predict(const data::Batch& batch);

  /// Builds the model input batch for `requests` — z-scored readings plus
  /// time-of-day / day-of-week channels and index vectors, mirroring
  /// WindowDataLoader::GetBatch. Requests must be pre-validated.
  data::Batch AssembleBatch(const std::vector<ForecastRequest>& requests) const;

  /// "" when `request` is well-formed, else the reason it is not.
  std::string ValidateRequest(const ForecastRequest& request) const;

  /// Primes the session for batches of `batch_size`: captures an execution
  /// plan at that size (when use_plans is on) and runs `runs` synthetic
  /// forwards so the first real request replays a warm plan / hits the
  /// buffer pool. Distinct batch sizes are planned and pooled independently.
  void Warmup(int64_t batch_size, int64_t runs = 1);

  /// Allocation counters of the session arena (all zeros when use_arena is
  /// off). After warm-up at a given batch size, further forwards at that
  /// size must not move fresh_allocations or external_adopts.
  BufferArenaStats arena_stats() const;

  /// Plan-cache counters (a consistent snapshot).
  SessionStats session_stats() const;

  /// Batch sizes with a captured plan under the *active* kernel backend,
  /// ascending. Plans captured under other backends are cached separately
  /// and invisible here until that backend is active again.
  std::vector<int64_t> planned_batch_sizes() const;

  /// Verifier reports for the active backend's cached plans, keyed by batch
  /// size. Empty when verify_plans is off; entries disappear with their
  /// plans (invalidation, staleness). Reports of *rejected* plans are not
  /// kept — their error counts surface in
  /// SessionStats::plan_verifier_errors.
  std::map<int64_t, exec::VerifierReport> verifier_reports() const;

  /// Drops every captured plan (counted as invalidations). Call after
  /// swapping parameter tensors; in-place mutation of existing parameter
  /// buffers is picked up by replays automatically, and a reassigned
  /// parameter buffer is detected and invalidates the plan on its own.
  void InvalidatePlans();

  int64_t horizon() const { return model_->horizon(); }
  int64_t num_nodes() const { return options_.num_nodes; }
  int64_t input_len() const { return options_.input_len; }
  const SessionOptions& options() const { return options_; }

 private:
  InferenceSession(std::unique_ptr<train::ForecastingModel> model,
                   const data::StandardScaler& scaler,
                   const SessionOptions& options);

  /// Runs one eager forward under capture, statically verifies the result
  /// (when verify_plans is on), and caches plans that pass. Requires mu_
  /// held. False (after logging) when capture or verification fails; the
  /// session keeps serving eagerly.
  bool CapturePlanLocked(int64_t batch_size);

  /// Verifies the already-cached plan for `batch_size` (cache-hit path:
  /// plans captured before verification was enabled, or whose report was
  /// dropped). Requires mu_ held. A failing plan is dropped and counted as
  /// an invalidation.
  void VerifyCachedPlanLocked(int64_t batch_size);

  /// Replays the cached plan for `batch`'s batch size, if any. Requires mu_
  /// held. Returns the output pointer (plan output shape) or null when no
  /// plan matches — a stale plan is dropped and counted, then null.
  const float* TryReplayLocked(const data::Batch& batch);

  /// A blank (all-zero window) request sized for this session.
  ForecastRequest BlankRequest() const;

  /// One backend's slice of the plan cache. Plans bind the kernel backend
  /// they were captured under (exec/plan.h backend_name), so the cache is
  /// sharded by backend name: switching backends mid-session never replays
  /// a foreign plan, and switching back reuses the earlier captures.
  struct BackendPlans {
    /// Captured plans keyed by batch size (ordered: padding picks the
    /// nearest size >= the request count).
    std::map<int64_t, std::unique_ptr<exec::PlanExecutor>> plans;
    /// Verifier reports for `plans`, same keys; cleared whenever the
    /// matching plans are dropped so a stale report can never describe a
    /// live plan.
    std::map<int64_t, exec::VerifierReport> verify_reports;
  };

  /// The cache shard of the currently active kernel backend (created on
  /// first use). Requires mu_ held.
  BackendPlans& ShardLocked();

  mutable std::mutex mu_;
  std::unique_ptr<train::ForecastingModel> model_;
  data::StandardScaler scaler_;
  SessionOptions options_;
  std::shared_ptr<BufferArena> arena_;  ///< null when use_arena is off
  /// Plan-cache shards keyed by kernel backend name.
  std::map<std::string, BackendPlans> shards_;
  SessionStats stats_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_SESSION_H_
