#ifndef D2STGNN_INFER_RETRY_H_
#define D2STGNN_INFER_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/rng.h"
#include "infer/batching_server.h"

// Client-side retry with jittered exponential backoff (DESIGN.md §13).
//
// The server's typed rejections split into two classes: permanent
// (kBadRequest, kDeadlineExceeded, kShuttingDown — retrying cannot help)
// and transient (IsRetryableReject — the server asked the client to back
// off). SubmitWithRetry handles the second class the way a well-behaved
// client should: wait max(server retry_after_us hint, exponential backoff),
// jittered so a shed burst of clients does not resynchronize into the next
// burst, then resubmit.

namespace d2stgnn::infer {

/// Backoff schedule. Defaults give 1ms, 2ms, 4ms between four attempts.
struct RetryPolicy {
  int64_t max_attempts = 4;         ///< total tries, including the first
  int64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 250000;  ///< cap on the exponential term
  /// Uniform jitter fraction in [0, 1): each delay is scaled by a factor in
  /// [1 - jitter, 1 + jitter). 0 disables jitter.
  double jitter = 0.2;
  uint64_t jitter_seed = 0;         ///< deterministic jitter stream
  /// Injected time source for the inter-attempt sleeps (null: RealClock()).
  /// Tests pass a FakeClock so backoff "waits" complete instantly.
  Clock* clock = nullptr;
};

/// The delay before retry number `attempt` (1-based: attempt 1 follows the
/// first rejection). Takes the max of the exponential schedule and the
/// server's retry_after_us hint, then applies jitter from `rng` (may be
/// null: no jitter). Exposed separately so tests can pin the schedule.
int64_t BackoffDelayUs(const RetryPolicy& policy, int64_t attempt,
                       int64_t server_hint_us, Rng* rng);

/// What SubmitWithRetry did.
struct RetryResult {
  Forecast forecast;      ///< the final answer (served, or the last reject)
  int64_t attempts = 0;   ///< submissions made (>= 1)
  int64_t backoff_us = 0; ///< total time slept between attempts
};

/// Submits `request`, retrying transient rejections per `policy` (sleeping
/// between attempts). Permanent rejections and served forecasts return
/// immediately. Blocks the calling thread.
RetryResult SubmitWithRetry(BatchingServer* server,
                            const ForecastRequest& request,
                            const RetryPolicy& policy = RetryPolicy());

class FleetServer;  // infer/fleet/fleet_server.h

/// The fleet flavor: submits to `model_id` on a FleetServer, with the same
/// transient-vs-permanent split (quota rejections are transient).
RetryResult SubmitWithRetry(FleetServer* server, const std::string& model_id,
                            const ForecastRequest& request,
                            const RetryPolicy& policy = RetryPolicy());

/// The retry loop itself, decoupled from any server type: `submit` performs
/// one attempt and returns the settled Forecast. Both SubmitWithRetry
/// overloads are thin wrappers over this.
RetryResult RetryWithBackoff(const std::function<Forecast()>& submit,
                             const RetryPolicy& policy = RetryPolicy());

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_RETRY_H_
