#include "infer/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.h"

namespace d2stgnn::infer {

int64_t BackoffDelayUs(const RetryPolicy& policy, int64_t attempt,
                       int64_t server_hint_us, Rng* rng) {
  D2_CHECK_GE(attempt, 1);
  double base = static_cast<double>(policy.initial_backoff_us);
  for (int64_t i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_us));
  // The server's hint dominates when it is larger: it knows how long the
  // queue (or token bucket) actually needs.
  double delay = std::max(base, static_cast<double>(server_hint_us));
  if (rng != nullptr && policy.jitter > 0.0) {
    const double factor =
        1.0 + policy.jitter * (2.0 * static_cast<double>(rng->Uniform()) - 1.0);
    delay *= factor;
  }
  return std::max<int64_t>(static_cast<int64_t>(delay), 0);
}

RetryResult SubmitWithRetry(BatchingServer* server,
                            const ForecastRequest& request,
                            const RetryPolicy& policy) {
  D2_CHECK(server != nullptr);
  D2_CHECK_GE(policy.max_attempts, 1);
  Rng rng(policy.jitter_seed);
  RetryResult result;
  for (;;) {
    ++result.attempts;
    result.forecast = server->Submit(request).get();
    if (result.forecast.ok || !IsRetryableReject(result.forecast.reason) ||
        result.attempts >= policy.max_attempts) {
      return result;
    }
    const int64_t delay_us = BackoffDelayUs(
        policy, result.attempts, result.forecast.retry_after_us, &rng);
    result.backoff_us += delay_us;
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
}

}  // namespace d2stgnn::infer
