#include "infer/retry.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "infer/fleet/fleet_server.h"

namespace d2stgnn::infer {

int64_t BackoffDelayUs(const RetryPolicy& policy, int64_t attempt,
                       int64_t server_hint_us, Rng* rng) {
  D2_CHECK_GE(attempt, 1);
  double base = static_cast<double>(policy.initial_backoff_us);
  for (int64_t i = 1; i < attempt; ++i) base *= policy.backoff_multiplier;
  base = std::min(base, static_cast<double>(policy.max_backoff_us));
  // The server's hint dominates when it is larger: it knows how long the
  // queue (or token bucket) actually needs.
  double delay = std::max(base, static_cast<double>(server_hint_us));
  if (rng != nullptr && policy.jitter > 0.0) {
    const double factor =
        1.0 + policy.jitter * (2.0 * static_cast<double>(rng->Uniform()) - 1.0);
    delay *= factor;
  }
  return std::max<int64_t>(static_cast<int64_t>(delay), 0);
}

RetryResult RetryWithBackoff(const std::function<Forecast()>& submit,
                             const RetryPolicy& policy) {
  D2_CHECK(submit != nullptr);
  D2_CHECK_GE(policy.max_attempts, 1);
  Clock* clock = ClockOrReal(policy.clock);
  Rng rng(policy.jitter_seed);
  RetryResult result;
  for (;;) {
    ++result.attempts;
    result.forecast = submit();
    if (result.forecast.ok || !IsRetryableReject(result.forecast.reason) ||
        result.attempts >= policy.max_attempts) {
      return result;
    }
    const int64_t delay_us = BackoffDelayUs(
        policy, result.attempts, result.forecast.retry_after_us, &rng);
    result.backoff_us += delay_us;
    if (delay_us > 0) clock->SleepFor(std::chrono::microseconds(delay_us));
  }
}

RetryResult SubmitWithRetry(BatchingServer* server,
                            const ForecastRequest& request,
                            const RetryPolicy& policy) {
  D2_CHECK(server != nullptr);
  return RetryWithBackoff(
      [server, &request] { return server->Submit(request).get(); }, policy);
}

RetryResult SubmitWithRetry(FleetServer* server, const std::string& model_id,
                            const ForecastRequest& request,
                            const RetryPolicy& policy) {
  D2_CHECK(server != nullptr);
  return RetryWithBackoff(
      [server, &model_id, &request] {
        return server->Submit(model_id, request).get();
      },
      policy);
}

}  // namespace d2stgnn::infer
