#ifndef D2STGNN_INFER_SESSION_HOST_H_
#define D2STGNN_INFER_SESSION_HOST_H_

#include <cstdint>
#include <memory>

#include "infer/session.h"

namespace d2stgnn::infer {

/// Anything that serves one (swappable) InferenceSession. CheckpointReloader
/// stages shadow sessions against this interface, so the same reloader
/// drives a standalone BatchingServer and a single model inside a
/// FleetServer — the fleet hands out one SessionHost per model.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Atomically replaces the served session. In-flight work finishes on the
  /// old session (implementations pin it per batch); every later dispatch
  /// runs on `next`.
  virtual void SwapSession(std::shared_ptr<InferenceSession> next) = 0;

  /// The largest batch this host dispatches — the default shadow-warmup
  /// size, so staged plans cover what the host will actually replay.
  virtual int64_t max_batch_size() const = 0;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_SESSION_HOST_H_
