#ifndef D2STGNN_INFER_HOT_RELOAD_H_
#define D2STGNN_INFER_HOT_RELOAD_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "data/scaler.h"
#include "infer/session.h"
#include "infer/session_host.h"
#include "train/forecasting_model.h"

// Transactional checkpoint hot-reload (DESIGN.md §13).
//
// A CheckpointReloader watches a directory of ckpt-*.d2ck files (what the
// Trainer writes) and, when a newer one appears, stages it into a *shadow*
// session: a fresh model instance, a transactional checkpoint load, warm-up
// forwards, plan capture and static verification — all while live traffic
// keeps running on the old session. Only a shadow that survives every gate
// is swapped in (SessionHost::SwapSession — a standalone BatchingServer or
// one model's lane inside a FleetServer); any failure keeps the old
// session serving and is reported as a typed ReloadStatus, never an
// exception into the serving path. In-flight batches finish on the weights
// they started with.
//
// The fault point "infer.hot_reload" fails the staging step (as a scripted
// corrupt/unreadable checkpoint would); because PollOnce retries the same
// checkpoint on the next poll, a transient injected fault heals on its own.

namespace d2stgnn::infer {

/// Builds a fresh (architecture-matching, uninitialized) model for each
/// staged checkpoint.
using ModelFactory =
    std::function<std::unique_ptr<train::ForecastingModel>()>;

struct HotReloadOptions {
  std::string directory;          ///< watched checkpoint directory
  /// Watcher thread poll period. Configurable end to end: the fleet spec's
  /// [fleet] reload_poll_ms and serve_forecasts --reload-poll-ms land here.
  int64_t poll_interval_ms = 200;
  /// Batch sizes warmed (and planned) on the shadow session before a swap.
  /// Deduplicated before use; empty: sizes 1 and the host's
  /// max_batch_size().
  std::vector<int64_t> warmup_batch_sizes;
  /// Require every warmed batch size to have a captured, verifier-clean
  /// plan before the swap (only meaningful when the session uses plans).
  bool verify_plans = true;
  /// Injected time source for staging-duration accounting (null:
  /// RealClock()).
  Clock* clock = nullptr;
};

enum class ReloadOutcome {
  kNoChange = 0,  ///< no new checkpoint in the directory
  kSwapped,       ///< shadow session passed every gate and is now serving
  kRejected,      ///< staging failed; the old session keeps serving
};

/// The result of one poll.
struct ReloadStatus {
  ReloadOutcome outcome = ReloadOutcome::kNoChange;
  std::string checkpoint;  ///< the checkpoint examined ("" for kNoChange)
  std::string error;       ///< why a kRejected poll failed
};

/// Cumulative reloader counters (a consistent snapshot).
struct ReloadStats {
  int64_t attempts = 0;  ///< polls that found a new checkpoint
  int64_t swaps = 0;     ///< successful swaps
  int64_t rejects = 0;   ///< staging failures (old session kept)
  /// How long the most recent staging attempt spent off the serving path
  /// (load + warmup + verification), by the injected clock.
  int64_t last_staging_us = 0;
  std::string active_checkpoint;  ///< last successfully swapped-in path
  std::string last_error;         ///< from the most recent reject
};

/// Watches a checkpoint directory and hot-swaps the host's session.
/// One reloader per SessionHost; the host must outlive it.
class CheckpointReloader {
 public:
  /// `session_options` must describe the same stream geometry the host's
  /// current session was built with (the swap does not re-negotiate shapes).
  CheckpointReloader(SessionHost* host, ModelFactory factory,
                     const data::StandardScaler& scaler,
                     const SessionOptions& session_options,
                     const HotReloadOptions& options);
  ~CheckpointReloader();  ///< Stop()

  CheckpointReloader(const CheckpointReloader&) = delete;
  CheckpointReloader& operator=(const CheckpointReloader&) = delete;

  /// One synchronous watch step: check the directory, stage + verify + swap
  /// if a new checkpoint appeared. Callable directly (tests, manual
  /// drivers) or via the Start() thread — but not concurrently with itself.
  ReloadStatus PollOnce();

  /// Starts the background watcher thread (idempotent).
  void Start();

  /// Stops and joins the watcher thread (idempotent).
  void Stop();

  ReloadStats stats() const;

 private:
  ReloadStatus StageAndSwap(const std::string& checkpoint);

  SessionHost* host_;
  ModelFactory factory_;
  data::StandardScaler scaler_;
  SessionOptions session_options_;
  HotReloadOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  ReloadStats stats_;
  std::string active_;  ///< checkpoint currently serving (or staged-at-boot)
  std::thread watcher_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_HOT_RELOAD_H_
