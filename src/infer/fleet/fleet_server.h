#ifndef D2STGNN_INFER_FLEET_FLEET_SERVER_H_
#define D2STGNN_INFER_FLEET_FLEET_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "infer/fleet/fleet.h"
#include "infer/overload.h"
#include "infer/session.h"
#include "infer/session_host.h"

// Fleet serving: one dispatcher, many models (DESIGN.md §14).
//
// The FleetServer routes ForecastRequests by model id into per-model
// micro-batch queues and dispatches them from a single thread, so dispatch
// order is a real scheduling decision instead of an accident of N
// independent servers racing for CPU. A batch never mixes models — plans
// are shape- and weight-specialized — so each dispatch picks one model and
// coalesces only that model's queue.
//
// The admission path layers fleet concerns on PR 8's single-model
// machinery, every rejection typed with a retry hint:
//
//   shutdown → validation (kBadRequest) → shared OverloadGovernor tier
//   (kShedding refuses low-priority requests and the lowest-priority SLO
//   class) → shared AdmissionController (hard bound on the *total* queue,
//   fleet-wide rate limit / EWMA shed) → FleetArbiter quota (kQuotaExceeded
//   once the shared queue is contended and this model is over its weighted
//   share) → per-model AdmissionController (tenant token bucket / EWMA
//   shed) → deadline stamp → enqueue.
//
// Dispatch: expired deadlines are swept across all lanes first; a lane is
// "ready" when its batch is full or its oldest request has aged past the
// (SLO-tightened, tier-shrunk) flush timer; the FleetArbiter picks among
// ready lanes by strict SLO priority, then weighted-fair virtual time.
//
// Hot reload: host(model_id) exposes a per-model SessionHost, so one
// CheckpointReloader per model stages and swaps exactly as it would
// against a standalone BatchingServer. A swap touches only its own lane;
// in-flight batches pin the session they started with.
//
// The chaos fault points "server.admit" and "server.deadline" fire here
// exactly as in the BatchingServer, so the overload chaos scripts drive
// fleets too.

namespace d2stgnn::infer {

/// Fleet-wide serving knobs (per-model knobs live in FleetModelOptions).
struct FleetOptions {
  /// Hard bound on the *sum* of all per-model queues (<= 0: unbounded,
  /// which also disables degrade tiers and quotas).
  int64_t max_queue_depth = 4096;
  /// Shared admission gate across all models (the hard bound above plus an
  /// optional fleet-wide rate limit / EWMA shed).
  AdmissionOptions admission;
  /// Degradation-tier watermarks on total queue pressure.
  DegradeOptions degrade;
  /// max_wait_us divisor at tier kDegraded (and a further 2x at kCapped+).
  int64_t degraded_wait_divisor = 4;
  /// Fraction of max_queue_depth at which per-model quotas arm.
  double arbitration_watermark = 0.5;
  /// Injected time source (null: RealClock()).
  Clock* clock = nullptr;
};

/// Per-model traffic counters (a consistent snapshot; the same shape as
/// BatchingServerStats plus the fleet-only quota reason).
struct FleetModelStats {
  int64_t submitted = 0;
  int64_t rejected = 0;  ///< sum of the rejected_* reasons below
  int64_t completed = 0;
  int64_t cancelled = 0;
  int64_t batches = 0;
  int64_t full_flushes = 0;
  int64_t timeout_flushes = 0;
  int64_t shutdown_flushes = 0;
  int64_t max_queue_depth_seen = 0;

  int64_t rejected_bad_request = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_rate_limited = 0;
  int64_t rejected_overloaded = 0;
  int64_t rejected_low_priority = 0;
  int64_t rejected_quota = 0;  ///< kQuotaExceeded (fleet arbitration)
  int64_t rejected_shutdown = 0;
  int64_t expired_deadlines = 0;  ///< accepted, then dropped in-queue

  int64_t session_swaps = 0;
  int64_t queue_depth = 0;       ///< at snapshot time
  double ewma_request_us = 0.0;  ///< per-model admission EWMA
};

/// Fleet-wide snapshot. The totals are sums over `models` (computed at
/// snapshot time, so they cannot drift from the per-model counters);
/// tier / transitions / unknown-model rejects are fleet-level.
struct FleetStats {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t cancelled = 0;
  int64_t batches = 0;
  int64_t expired_deadlines = 0;
  int64_t session_swaps = 0;

  int64_t rejected_unknown_model = 0;  ///< routed to no lane
  int64_t max_total_queue_depth_seen = 0;
  OverloadTier tier = OverloadTier::kNormal;
  int64_t degrade_transitions = 0;
  double ewma_request_us = 0.0;  ///< shared admission EWMA

  std::map<std::string, FleetModelStats> models;
};

/// One dispatcher thread serving every model registered in a ModelFleet.
class FleetServer {
 public:
  /// Snapshots `fleet`'s membership (register every model first) and
  /// starts the dispatcher. The fleet must outlive the server; live
  /// sessions are kept in sync with the fleet registry across swaps.
  FleetServer(ModelFleet* fleet, const FleetOptions& options);

  /// Graceful drain-and-join (Shutdown(true)).
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Enqueues one request for `model_id`. The future always becomes
  /// ready: with a prediction, or with ok=false and a typed RejectReason.
  std::future<Forecast> Submit(const std::string& model_id,
                               ForecastRequest request);

  /// Atomically replaces `model_id`'s session (hot reload). Only this
  /// model's lane is touched; when its options request warmup, `next` is
  /// warmed before the swap (already-planned sizes are not re-warmed).
  void SwapSession(const std::string& model_id,
                   std::shared_ptr<InferenceSession> next);

  /// The model's live session (nullptr for unknown ids).
  std::shared_ptr<InferenceSession> session(const std::string& model_id) const;

  /// The per-model SessionHost a CheckpointReloader targets. Stable for
  /// the server's lifetime; nullptr for unknown ids.
  SessionHost* host(const std::string& model_id);

  /// Stops accepting requests and joins the dispatcher. drain=true serves
  /// every queued request (all lanes); drain=false cancels them.
  /// Idempotent; the first call's drain mode wins.
  void Shutdown(bool drain = true);

  /// Total requests queued across all models.
  int64_t QueueDepth() const;

  FleetStats stats() const;
  const FleetOptions& options() const { return options_; }
  std::vector<std::string> model_ids() const;

 private:
  struct Pending {
    ForecastRequest request;
    std::promise<Forecast> promise;
    SteadyTime enqueued;
    SteadyTime deadline;
    bool has_deadline = false;
  };

  /// Adapts one lane to the SessionHost interface for CheckpointReloader.
  class LaneHost : public SessionHost {
   public:
    LaneHost() = default;
    void Bind(FleetServer* server, std::string model_id, int64_t batch_size) {
      server_ = server;
      model_id_ = std::move(model_id);
      max_batch_size_ = batch_size;
    }
    void SwapSession(std::shared_ptr<InferenceSession> next) override {
      server_->SwapSession(model_id_, std::move(next));
    }
    int64_t max_batch_size() const override { return max_batch_size_; }

   private:
    FleetServer* server_ = nullptr;
    std::string model_id_;
    int64_t max_batch_size_ = 0;
  };

  struct Lane {
    FleetModelOptions options;
    int64_t base_wait_us = 0;  ///< max_wait_us after the SLO p99 cap
    std::shared_ptr<InferenceSession> session;
    int64_t plan_cap = 0;
    std::deque<Pending> queue;
    std::unique_ptr<AdmissionController> admission;
    FleetModelStats stats;
    LaneHost host;
  };

  void DispatcherLoop();
  int64_t TotalDepthLocked() const;
  int64_t EffectiveWaitUs(const Lane& lane, OverloadTier tier) const;
  int64_t EffectiveBatchCap(const Lane& lane, OverloadTier tier) const;
  /// Warms `session` at sizes 1 and the lane max (skipping already-planned
  /// sizes) and returns the largest planned size.
  int64_t WarmLane(const Lane& lane, InferenceSession* session) const;
  /// Collects expired entries across all lanes (attributing per-lane
  /// stats). Requires mu_; the caller resolves the result unlocked.
  std::deque<Pending> TakeExpiredLocked(SteadyTime now);
  void CountRejectLocked(Lane* lane, RejectReason reason);

  FleetOptions options_;
  ModelFleet* fleet_;
  Clock* clock_;
  /// The lowest-ranked SLO priority in the fleet: at tier kShedding these
  /// models' requests are refused alongside low-priority requests — but
  /// only when the fleet actually has more than one priority class
  /// (shedding *every* model would be worse than the overload).
  int64_t worst_slo_priority_ = 0;
  bool slo_shed_enabled_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<Lane>> lanes_;  ///< guarded by mu_
  std::vector<std::string> ids_;  ///< registration order (immutable)
  FleetArbiter arbiter_;          ///< guarded by mu_
  bool shutdown_ = false;
  bool drain_ = true;
  int64_t max_total_depth_seen_ = 0;
  int64_t rejected_unknown_model_ = 0;
  AdmissionController shared_admission_;  ///< guarded by mu_
  OverloadGovernor governor_;             ///< guarded by mu_
  OverloadTier tier_ = OverloadTier::kNormal;
  int64_t degrade_transitions_ = 0;

  std::thread dispatcher_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_FLEET_FLEET_SERVER_H_
