#ifndef D2STGNN_INFER_FLEET_FLEET_H_
#define D2STGNN_INFER_FLEET_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "data/scaler.h"
#include "infer/hot_reload.h"
#include "infer/overload.h"
#include "infer/session.h"
#include "infer/session_host.h"

// Multi-model fleet registry and arbitration policy (DESIGN.md §14).
//
// One serving process hosts many city models — the paper's four dataset
// presets plus synthetic cities — behind a single shared queue bound. Each
// model keeps its own InferenceSession (and therefore its own plan cache:
// plans are shape- and weight-specialized, so a batch never mixes models)
// and its own CheckpointReloader. What the models *share* is capacity, and
// sharing capacity fairly under overload is the point of this header:
//
//   * SloClass — a named serving tier (gold/silver/bronze): a strict
//     dispatch priority, a target p99 that tightens the flush timer, and a
//     weight that sizes the model's fair share of the shared queue.
//   * FleetArbiter — the pure arbitration policy: weight-proportional
//     admission quotas that arm once the shared queue passes a watermark,
//     and a (priority, weighted-fair virtual time) pick among dispatch-
//     ready models. No clocks, no threads — unit-testable in isolation.
//   * ModelFleet — the registry owning per-model configuration, the live
//     session handle, and the per-model reloader.
//
// The FleetServer (fleet_server.h) wires these to real queues and threads.

namespace d2stgnn::infer {

/// A named serving tier. Lower `priority` is served first (strictly);
/// `weight` sets the model's share of contended capacity among equal
/// priorities and its admission quota; `target_p99_ms` is the latency
/// objective that tightens the model's batch flush timer (a model with a
/// 50ms objective must not sit out a 2ms coalescing window that was sized
/// for a 400ms one — the timer is capped at target_p99/8).
struct SloClass {
  std::string name = "standard";
  int64_t priority = 1;
  int64_t target_p99_ms = 0;  ///< 0: no objective, flush timer unchanged
  double weight = 1.0;
};

/// The built-in tiers: gold (priority 0, weight 4, 50ms), silver
/// (priority 1, weight 2, 150ms), bronze (priority 2, weight 1, 400ms).
const std::vector<SloClass>& BuiltinSloClasses();

/// Looks up a built-in tier by name; false (and `slo` untouched) when
/// unknown.
bool ResolveSloClass(const std::string& name, SloClass* slo);

/// Per-model serving configuration inside a fleet.
struct FleetModelOptions {
  std::string model_id;  ///< routing key (must be unique in the fleet)
  SloClass slo;
  /// Largest batch one forward serves for this model (plans are captured
  /// at this size and 1).
  int64_t max_batch_size = 8;
  /// Base coalescing window; capped at slo.target_p99_ms / 8 when the SLO
  /// sets an objective, and shrunk further under degrade tiers.
  int64_t max_wait_us = 2000;
  /// Per-model admission gate (token bucket, EWMA shed). The *hard* queue
  /// bound is fleet-wide; this gate shapes one tenant's arrival rate.
  AdmissionOptions admission;
  /// Explicit share of the shared queue for this model's quota, in (0, 1].
  /// 0: derived from slo.weight relative to the whole fleet.
  double queue_share = 0.0;
  /// Warm the session (capture plans) when the FleetServer starts.
  bool warmup = true;
};

/// Cross-model capacity arbitration. Externally synchronized (the
/// FleetServer calls it under its queue mutex). Two decisions live here:
///
///   1. Admission quotas — once the *shared* queue passes
///      `arbitration_watermark`, each model is capped at its weighted
///      share of the queue. Below the watermark any model may burst into
///      the free headroom (work-conserving); past it, an overloaded tenant
///      is typed-rejected (kQuotaExceeded) instead of squeezing out the
///      others.
///   2. Dispatch order — among models with a flushable batch, strict SLO
///      priority first; within a priority, start-time-fair queuing: each
///      model carries a virtual time advanced by batch_size / weight on
///      every dispatch, and the smallest virtual time wins. A model that
///      was idle re-enters at the current virtual floor, so it cannot
///      hoard credit and then monopolize the dispatcher.
class FleetArbiter {
 public:
  /// `shared_capacity` <= 0 disables quotas (an unbounded queue has no
  /// shares to protect).
  FleetArbiter(int64_t shared_capacity, double arbitration_watermark);

  /// Registers one model. `queue_share` as in FleetModelOptions.
  void AddLane(const std::string& model_id, int64_t priority, double weight,
               double queue_share = 0.0);

  /// True once the shared queue is contended enough for quotas to apply.
  bool QuotaArmed(int64_t total_depth) const;

  /// This model's admission cap on the shared queue (>= 1). Only enforced
  /// by callers when QuotaArmed(); INT64_MAX when quotas are disabled.
  int64_t Quota(const std::string& model_id) const;

  /// Picks the next model to dispatch among `ready` (each with a full or
  /// aged batch). Empty string when `ready` is empty.
  std::string Pick(const std::vector<std::string>& ready) const;

  /// Accounts one dispatched batch against `model_id`, advancing its
  /// weighted virtual time and the fleet-wide virtual floor.
  void Account(const std::string& model_id, int64_t batch_size);

 private:
  struct Lane {
    int64_t priority = 1;
    double weight = 1.0;
    double queue_share = 0.0;
    double virtual_time = 0.0;
  };

  int64_t shared_capacity_;
  double watermark_;
  double total_weight_ = 0.0;
  double virtual_floor_ = 0.0;
  std::map<std::string, Lane> lanes_;
};

/// The registry: per-model options, the live session, and the reloader.
/// Thread-safe. Register every model (AddModel) before constructing the
/// FleetServer — the server snapshots the membership once; reloaders may
/// be attached and started at any point after the server exists.
class ModelFleet {
 public:
  ModelFleet() = default;
  ModelFleet(const ModelFleet&) = delete;
  ModelFleet& operator=(const ModelFleet&) = delete;

  /// Registers a model. False (with `*error` set, when given) on a null
  /// session, a duplicate or empty model_id, or invalid options.
  bool AddModel(std::shared_ptr<InferenceSession> session,
                const FleetModelOptions& options, std::string* error = nullptr);

  /// Registered model ids, in registration order.
  std::vector<std::string> model_ids() const;
  size_t size() const;

  /// The live session for `model_id` (kept current across hot swaps by the
  /// FleetServer); nullptr for unknown ids.
  std::shared_ptr<InferenceSession> session(const std::string& model_id) const;

  /// Registered options; nullptr for unknown ids. The pointer stays valid
  /// for the fleet's lifetime (entries are never removed).
  const FleetModelOptions* model_options(const std::string& model_id) const;

  /// Records a hot swap. Called by the FleetServer; not for general use.
  void SetSession(const std::string& model_id,
                  std::shared_ptr<InferenceSession> session);

  /// Creates this model's CheckpointReloader, watching
  /// `options.directory` and swapping into `host` (usually
  /// FleetServer::host(model_id)). One reloader per model; false on an
  /// unknown id or an already-attached reloader.
  bool AttachReloader(const std::string& model_id, SessionHost* host,
                      ModelFactory factory, const data::StandardScaler& scaler,
                      const SessionOptions& session_options,
                      const HotReloadOptions& options,
                      std::string* error = nullptr);

  /// The model's reloader (nullptr when none attached).
  CheckpointReloader* reloader(const std::string& model_id) const;

  /// Starts / stops every attached reloader's watcher thread.
  void StartReloaders();
  void StopReloaders();

 private:
  struct Entry {
    FleetModelOptions options;
    std::shared_ptr<InferenceSession> session;
    std::unique_ptr<CheckpointReloader> reloader;
  };

  mutable std::mutex mu_;
  std::vector<std::string> ids_;
  std::map<std::string, Entry> entries_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_FLEET_FLEET_H_
