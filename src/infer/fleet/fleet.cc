#include "infer/fleet/fleet.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace d2stgnn::infer {

const std::vector<SloClass>& BuiltinSloClasses() {
  static const std::vector<SloClass>* const classes =
      new std::vector<SloClass>{
          {"gold", /*priority=*/0, /*target_p99_ms=*/50, /*weight=*/4.0},
          {"silver", /*priority=*/1, /*target_p99_ms=*/150, /*weight=*/2.0},
          {"bronze", /*priority=*/2, /*target_p99_ms=*/400, /*weight=*/1.0},
      };
  return *classes;
}

bool ResolveSloClass(const std::string& name, SloClass* slo) {
  for (const SloClass& builtin : BuiltinSloClasses()) {
    if (builtin.name == name) {
      if (slo != nullptr) *slo = builtin;
      return true;
    }
  }
  return false;
}

FleetArbiter::FleetArbiter(int64_t shared_capacity,
                           double arbitration_watermark)
    : shared_capacity_(shared_capacity), watermark_(arbitration_watermark) {
  D2_CHECK_GE(watermark_, 0.0);
  D2_CHECK_LE(watermark_, 1.0);
}

void FleetArbiter::AddLane(const std::string& model_id, int64_t priority,
                           double weight, double queue_share) {
  D2_CHECK_GT(weight, 0.0);
  D2_CHECK(lanes_.find(model_id) == lanes_.end());
  Lane lane;
  lane.priority = priority;
  lane.weight = weight;
  lane.queue_share = queue_share;
  // A newcomer starts at the virtual floor: no retroactive credit for the
  // time before it existed.
  lane.virtual_time = virtual_floor_;
  lanes_.emplace(model_id, lane);
  total_weight_ += weight;
}

bool FleetArbiter::QuotaArmed(int64_t total_depth) const {
  if (shared_capacity_ <= 0) return false;
  return static_cast<double>(total_depth) >=
         watermark_ * static_cast<double>(shared_capacity_);
}

int64_t FleetArbiter::Quota(const std::string& model_id) const {
  if (shared_capacity_ <= 0) return std::numeric_limits<int64_t>::max();
  const auto it = lanes_.find(model_id);
  if (it == lanes_.end()) return 0;
  const Lane& lane = it->second;
  const double share = lane.queue_share > 0.0
                           ? lane.queue_share
                           : (total_weight_ > 0.0
                                  ? lane.weight / total_weight_
                                  : 0.0);
  const int64_t quota = static_cast<int64_t>(
      share * static_cast<double>(shared_capacity_));
  return std::max<int64_t>(quota, 1);
}

std::string FleetArbiter::Pick(const std::vector<std::string>& ready) const {
  std::string best;
  int64_t best_priority = 0;
  double best_vt = 0.0;
  for (const std::string& id : ready) {
    const auto it = lanes_.find(id);
    if (it == lanes_.end()) continue;
    const Lane& lane = it->second;
    // An idle lane's stale virtual time is floored: it competes from "now",
    // not from credit accumulated while it had nothing to send.
    const double vt = std::max(lane.virtual_time, virtual_floor_);
    if (best.empty() || lane.priority < best_priority ||
        (lane.priority == best_priority &&
         (vt < best_vt || (vt == best_vt && id < best)))) {
      best = id;
      best_priority = lane.priority;
      best_vt = vt;
    }
  }
  return best;
}

void FleetArbiter::Account(const std::string& model_id, int64_t batch_size) {
  const auto it = lanes_.find(model_id);
  if (it == lanes_.end() || batch_size <= 0) return;
  Lane& lane = it->second;
  const double start = std::max(lane.virtual_time, virtual_floor_);
  lane.virtual_time = start + static_cast<double>(batch_size) / lane.weight;
  // Start-time fairness: the floor tracks the start tag of the batch in
  // service, so lanes that go idle cannot fall behind it.
  virtual_floor_ = start;
}

bool ModelFleet::AddModel(std::shared_ptr<InferenceSession> session,
                          const FleetModelOptions& options,
                          std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (session == nullptr) return fail("fleet: null session");
  if (options.model_id.empty()) return fail("fleet: empty model_id");
  if (options.max_batch_size <= 0) {
    return fail("fleet: max_batch_size must be positive for model '" +
                options.model_id + "'");
  }
  if (options.max_wait_us < 0) {
    return fail("fleet: max_wait_us must be >= 0 for model '" +
                options.model_id + "'");
  }
  if (options.slo.weight <= 0.0) {
    return fail("fleet: slo weight must be positive for model '" +
                options.model_id + "'");
  }
  if (options.queue_share < 0.0 || options.queue_share > 1.0) {
    return fail("fleet: queue_share must be in [0, 1] for model '" +
                options.model_id + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.find(options.model_id) != entries_.end()) {
    return fail("fleet: duplicate model_id '" + options.model_id + "'");
  }
  Entry entry;
  entry.options = options;
  entry.session = std::move(session);
  entries_.emplace(options.model_id, std::move(entry));
  ids_.push_back(options.model_id);
  return true;
}

std::vector<std::string> ModelFleet::model_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_;
}

size_t ModelFleet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::shared_ptr<InferenceSession> ModelFleet::session(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(model_id);
  return it == entries_.end() ? nullptr : it->second.session;
}

const FleetModelOptions* ModelFleet::model_options(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(model_id);
  return it == entries_.end() ? nullptr : &it->second.options;
}

void ModelFleet::SetSession(const std::string& model_id,
                            std::shared_ptr<InferenceSession> session) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(model_id);
  if (it != entries_.end() && session != nullptr) {
    it->second.session = std::move(session);
  }
}

bool ModelFleet::AttachReloader(const std::string& model_id, SessionHost* host,
                                ModelFactory factory,
                                const data::StandardScaler& scaler,
                                const SessionOptions& session_options,
                                const HotReloadOptions& options,
                                std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (host == nullptr) return fail("fleet: null host");
  if (factory == nullptr) return fail("fleet: null model factory");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(model_id);
  if (it == entries_.end()) {
    return fail("fleet: unknown model_id '" + model_id + "'");
  }
  if (it->second.reloader != nullptr) {
    return fail("fleet: model '" + model_id + "' already has a reloader");
  }
  it->second.reloader = std::make_unique<CheckpointReloader>(
      host, std::move(factory), scaler, session_options, options);
  return true;
}

CheckpointReloader* ModelFleet::reloader(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(model_id);
  return it == entries_.end() ? nullptr : it->second.reloader.get();
}

void ModelFleet::StartReloaders() {
  // Start/Stop run outside mu_: a watcher mid-swap re-enters the fleet via
  // SetSession, so joining it under mu_ (Stop) would deadlock. The pointers
  // are stable — entries are never removed.
  std::vector<CheckpointReloader*> reloaders;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : entries_) {
      if (entry.reloader != nullptr) reloaders.push_back(entry.reloader.get());
    }
  }
  for (CheckpointReloader* reloader : reloaders) reloader->Start();
}

void ModelFleet::StopReloaders() {
  std::vector<CheckpointReloader*> reloaders;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : entries_) {
      if (entry.reloader != nullptr) reloaders.push_back(entry.reloader.get());
    }
  }
  for (CheckpointReloader* reloader : reloaders) reloader->Stop();
}

}  // namespace d2stgnn::infer
