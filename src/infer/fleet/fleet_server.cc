#include "infer/fleet/fleet_server.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace d2stgnn::infer {

namespace {

std::future<Forecast> ResolvedRejection(RejectReason reason, std::string error,
                                        int64_t retry_after_us) {
  std::promise<Forecast> promise;
  Forecast forecast;
  forecast.error = std::move(error);
  forecast.reason = reason;
  forecast.retry_after_us = retry_after_us;
  promise.set_value(std::move(forecast));
  return promise.get_future();
}

Forecast DeadlineMiss() {
  Forecast miss;
  miss.error = "deadline exceeded in queue";
  miss.reason = RejectReason::kDeadlineExceeded;
  return miss;
}

}  // namespace

FleetServer::FleetServer(ModelFleet* fleet, const FleetOptions& options)
    : options_(options),
      fleet_(fleet),
      clock_(ClockOrReal(options.clock)),
      arbiter_(options.max_queue_depth, options.arbitration_watermark),
      shared_admission_(options.admission, options.clock),
      governor_(options.degrade) {
  D2_CHECK(fleet_ != nullptr);
  D2_CHECK_GT(fleet_->size(), 0u);
  D2_CHECK_GT(options_.degraded_wait_divisor, 0);

  ids_ = fleet_->model_ids();
  int64_t min_priority = std::numeric_limits<int64_t>::max();
  int64_t max_priority = std::numeric_limits<int64_t>::min();
  for (const std::string& id : ids_) {
    const FleetModelOptions* model_options = fleet_->model_options(id);
    D2_CHECK(model_options != nullptr);
    auto lane = std::make_unique<Lane>();
    lane->options = *model_options;
    lane->base_wait_us = model_options->max_wait_us;
    if (model_options->slo.target_p99_ms > 0) {
      // The SLO objective bounds the coalescing delay: a request must not
      // spend more than ~1/8 of its p99 budget waiting for batch-mates.
      lane->base_wait_us = std::min(lane->base_wait_us,
                                    model_options->slo.target_p99_ms * 125);
    }
    lane->session = fleet_->session(id);
    D2_CHECK(lane->session != nullptr);
    lane->admission = std::make_unique<AdmissionController>(
        model_options->admission, options_.clock);
    lane->host.Bind(this, id, model_options->max_batch_size);
    if (model_options->warmup) {
      lane->plan_cap = WarmLane(*lane, lane->session.get());
    }
    arbiter_.AddLane(id, model_options->slo.priority,
                     model_options->slo.weight, model_options->queue_share);
    min_priority = std::min(min_priority, model_options->slo.priority);
    max_priority = std::max(max_priority, model_options->slo.priority);
    lanes_.emplace(id, std::move(lane));
  }
  worst_slo_priority_ = max_priority;
  slo_shed_enabled_ = min_priority != max_priority;

  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

FleetServer::~FleetServer() { Shutdown(/*drain=*/true); }

int64_t FleetServer::WarmLane(const Lane& lane,
                              InferenceSession* session) const {
  std::vector<int64_t> planned = session->planned_batch_sizes();
  const auto has_plan = [&planned](int64_t size) {
    return std::binary_search(planned.begin(), planned.end(), size);
  };
  if (!has_plan(1)) session->Warmup(1);
  if (lane.options.max_batch_size > 1 &&
      !has_plan(lane.options.max_batch_size)) {
    session->Warmup(lane.options.max_batch_size);
  }
  planned = session->planned_batch_sizes();
  return planned.empty() ? 0 : planned.back();
}

int64_t FleetServer::TotalDepthLocked() const {
  int64_t total = 0;
  for (const auto& [id, lane] : lanes_) {
    total += static_cast<int64_t>(lane->queue.size());
  }
  return total;
}

int64_t FleetServer::EffectiveWaitUs(const Lane& lane,
                                     OverloadTier tier) const {
  int64_t wait_us = lane.base_wait_us;
  if (tier >= OverloadTier::kDegraded) {
    wait_us /= options_.degraded_wait_divisor;
  }
  if (tier >= OverloadTier::kCapped) wait_us /= 2;
  return wait_us;
}

int64_t FleetServer::EffectiveBatchCap(const Lane& lane,
                                       OverloadTier tier) const {
  int64_t cap = lane.options.max_batch_size;
  if (tier >= OverloadTier::kCapped && lane.plan_cap > 0) {
    cap = std::min(cap, lane.plan_cap);
  }
  return cap;
}

void FleetServer::CountRejectLocked(Lane* lane, RejectReason reason) {
  ++lane->stats.rejected;
  switch (reason) {
    case RejectReason::kBadRequest: ++lane->stats.rejected_bad_request; break;
    case RejectReason::kQueueFull: ++lane->stats.rejected_queue_full; break;
    case RejectReason::kRateLimited:
      ++lane->stats.rejected_rate_limited;
      break;
    case RejectReason::kOverloaded: ++lane->stats.rejected_overloaded; break;
    case RejectReason::kShedLowPriority:
      ++lane->stats.rejected_low_priority;
      break;
    case RejectReason::kQuotaExceeded: ++lane->stats.rejected_quota; break;
    case RejectReason::kShuttingDown: ++lane->stats.rejected_shutdown; break;
    default: break;
  }
}

std::future<Forecast> FleetServer::Submit(const std::string& model_id,
                                          ForecastRequest request) {
  const auto lane_it = lanes_.find(model_id);
  if (lane_it == lanes_.end()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_unknown_model_;
    return ResolvedRejection(RejectReason::kBadRequest,
                             "unknown model '" + model_id + "'", 0);
  }
  Lane& lane = *lane_it->second;

  // Validation against the lane's live session (shapes do not change
  // across swaps, so a stale read here is still correct).
  std::shared_ptr<InferenceSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    session = lane.session;
  }
  const std::string validation = session->ValidateRequest(request);

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = clock_->Now();
  std::future<Forecast> future = pending.promise.get_future();
  RejectReason reject = RejectReason::kNone;
  std::string reject_error;
  int64_t retry_after_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      CountRejectLocked(&lane, RejectReason::kShuttingDown);
      return ResolvedRejection(RejectReason::kShuttingDown, "shutting down",
                               0);
    }
    if (!validation.empty()) {
      CountRejectLocked(&lane, RejectReason::kBadRequest);
      return ResolvedRejection(RejectReason::kBadRequest, validation, 0);
    }

    const int64_t total_depth = TotalDepthLocked();
    const int64_t capacity = options_.max_queue_depth;
    const int64_t lane_depth = static_cast<int64_t>(lane.queue.size());

    // Chaos seam "server.admit", shared with the BatchingServer: scripted
    // admission-path failures surface as typed, retryable rejections.
    if (fault::ConsumeFault("server.admit")) {
      reject = RejectReason::kOverloaded;
      reject_error = "admission fault injected";
      retry_after_us = 1000;
    }

    // Degradation tier from *total* queue pressure. At kShedding, requests
    // marked low-priority are refused — and so is every request for the
    // fleet's lowest SLO class, when the fleet has more than one class:
    // the capacity that remains under sustained overload serves the
    // higher tiers.
    const OverloadTier tier = governor_.Observe(total_depth, capacity);
    tier_ = tier;
    degrade_transitions_ = governor_.transitions();
    if (reject == RejectReason::kNone && tier == OverloadTier::kShedding &&
        (pending.request.priority == RequestPriority::kLow ||
         (slo_shed_enabled_ &&
          lane.options.slo.priority == worst_slo_priority_))) {
      reject = RejectReason::kShedLowPriority;
      std::ostringstream os;
      os << "shed (tier=" << OverloadTierName(tier) << ", slo="
         << lane.options.slo.name << ", fleet queue " << total_depth << "/"
         << capacity << ")";
      reject_error = os.str();
      retry_after_us = static_cast<int64_t>(
          std::max(shared_admission_.ewma_request_us(), 1000.0) *
          static_cast<double>(std::max<int64_t>(total_depth, 1)));
    }

    // Shared admission: the hard bound on the total queue plus any
    // fleet-wide rate limit / EWMA shed.
    if (reject == RejectReason::kNone) {
      const AdmissionDecision decision =
          shared_admission_.Admit(total_depth, capacity);
      if (!decision.admitted) {
        reject = decision.reason;
        retry_after_us = decision.retry_after_us;
        std::ostringstream os;
        os << RejectReasonName(decision.reason) << " (fleet queue "
           << total_depth << "/" << capacity << ")";
        reject_error = os.str();
      }
    }

    // Cross-model arbitration: once the shared queue is contended, a model
    // over its weighted share is refused so it cannot squeeze out healthy
    // tenants. The hint estimates this lane's own drain time.
    if (reject == RejectReason::kNone && arbiter_.QuotaArmed(total_depth)) {
      const int64_t quota = arbiter_.Quota(model_id);
      if (lane_depth >= quota) {
        reject = RejectReason::kQuotaExceeded;
        std::ostringstream os;
        os << "model '" << model_id << "' over quota (" << lane_depth << "/"
           << quota << " of fleet queue " << total_depth << "/" << capacity
           << ")";
        reject_error = os.str();
        const double per_request_us =
            std::max({lane.admission->ewma_request_us(),
                      shared_admission_.ewma_request_us(), 1000.0});
        retry_after_us = static_cast<int64_t>(
            per_request_us * static_cast<double>(std::max<int64_t>(
                                 lane_depth, 1)));
      }
    }

    // Per-model gate: this tenant's token bucket / EWMA shed (the hard
    // queue bound is fleet-wide, so capacity 0 here).
    if (reject == RejectReason::kNone) {
      const AdmissionDecision decision = lane.admission->Admit(lane_depth, 0);
      if (!decision.admitted) {
        reject = decision.reason;
        retry_after_us = decision.retry_after_us;
        std::ostringstream os;
        os << RejectReasonName(decision.reason) << " (model '" << model_id
           << "')";
        reject_error = os.str();
      }
    }

    if (reject == RejectReason::kNone) {
      if (pending.request.deadline_us > 0) {
        pending.deadline =
            pending.enqueued +
            std::chrono::microseconds(pending.request.deadline_us);
        // Chaos seam "server.deadline": the budget is treated as spent.
        if (fault::ConsumeFault("server.deadline")) {
          pending.deadline = pending.enqueued;
        }
        pending.has_deadline = true;
      }
      lane.queue.push_back(std::move(pending));
      ++lane.stats.submitted;
      lane.stats.max_queue_depth_seen =
          std::max(lane.stats.max_queue_depth_seen,
                   static_cast<int64_t>(lane.queue.size()));
      max_total_depth_seen_ =
          std::max(max_total_depth_seen_, TotalDepthLocked());
    } else {
      CountRejectLocked(&lane, reject);
    }
  }
  if (reject != RejectReason::kNone) {
    return ResolvedRejection(reject, std::move(reject_error), retry_after_us);
  }
  cv_.notify_all();
  return future;
}

std::deque<FleetServer::Pending> FleetServer::TakeExpiredLocked(
    SteadyTime now) {
  std::deque<Pending> expired;
  for (const std::string& id : ids_) {
    Lane& lane = *lanes_.at(id);
    for (auto it = lane.queue.begin(); it != lane.queue.end();) {
      if (it->has_deadline && it->deadline <= now) {
        expired.push_back(std::move(*it));
        it = lane.queue.erase(it);
        ++lane.stats.expired_deadlines;
      } else {
        ++it;
      }
    }
  }
  return expired;
}

void FleetServer::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || TotalDepthLocked() > 0; });
    if (shutdown_ && !drain_) break;  // leave queues for cancellation

    // Expired requests never pad a batch.
    {
      std::deque<Pending> expired = TakeExpiredLocked(clock_->Now());
      if (!expired.empty()) {
        lock.unlock();
        for (Pending& p : expired) p.promise.set_value(DeadlineMiss());
        lock.lock();
        continue;  // queues changed; re-evaluate
      }
    }
    if (TotalDepthLocked() == 0) {
      if (shutdown_) break;
      continue;
    }

    // Find the lanes with a flushable batch: full, aged past the
    // (SLO-tightened, tier-shrunk) flush timer, or a shutdown drain.
    const OverloadTier tier = governor_.tier();
    const SteadyTime now = clock_->Now();
    SteadyTime wake_at = now + std::chrono::milliseconds(50);
    std::vector<std::string> ready;
    for (const std::string& id : ids_) {
      Lane& lane = *lanes_.at(id);
      if (lane.queue.empty()) continue;
      const int64_t cap = EffectiveBatchCap(lane, tier);
      if (shutdown_ || static_cast<int64_t>(lane.queue.size()) >= cap) {
        ready.push_back(id);
        continue;
      }
      const SteadyTime flush_at =
          lane.queue.front().enqueued +
          std::chrono::microseconds(EffectiveWaitUs(lane, tier));
      if (flush_at <= now) {
        ready.push_back(id);
        continue;
      }
      if (flush_at < wake_at) wake_at = flush_at;
      for (const Pending& p : lane.queue) {
        if (p.has_deadline && p.deadline < wake_at) wake_at = p.deadline;
      }
    }
    if (ready.empty()) {
      // Sleep to the earliest flush timer or request deadline; a Submit
      // that fills a batch wakes us sooner.
      cv_.wait_until(lock, wake_at);
      continue;
    }

    // Arbitration: strict SLO priority, then weighted-fair virtual time.
    const std::string pick = arbiter_.Pick(ready);
    D2_CHECK(!pick.empty());
    Lane& lane = *lanes_.at(pick);
    const int64_t cap = EffectiveBatchCap(lane, tier);
    const int64_t take =
        std::min<int64_t>(static_cast<int64_t>(lane.queue.size()), cap);
    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(lane.queue.front()));
      lane.queue.pop_front();
    }
    ++lane.stats.batches;
    if (take >= cap) {
      ++lane.stats.full_flushes;
    } else if (shutdown_) {
      ++lane.stats.shutdown_flushes;
    } else {
      ++lane.stats.timeout_flushes;
    }
    arbiter_.Account(pick, take);
    // Draining the backlog is a calm observation for tier recovery.
    governor_.Observe(TotalDepthLocked(), options_.max_queue_depth);
    tier_ = governor_.tier();
    degrade_transitions_ = governor_.transitions();
    // The batch pins its session: a concurrent swap of this model retires
    // the old weights only after this forward finishes.
    std::shared_ptr<InferenceSession> session = lane.session;
    lock.unlock();

    // Test seam shared with the BatchingServer: a stalled consumer.
    if (fault::ConsumeFault("infer.slow_consumer")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    std::vector<ForecastRequest> requests;
    requests.reserve(batch.size());
    for (Pending& p : batch) requests.push_back(std::move(p.request));
    const SteadyTime batch_start = clock_->Now();
    std::vector<Forecast> results = session->PredictRequests(requests);
    const int64_t batch_us =
        std::chrono::duration_cast<std::chrono::microseconds>(clock_->Now() -
                                                              batch_start)
            .count();
    D2_CHECK_EQ(results.size(), batch.size());

    // Count before resolving, so a woken client sees itself completed.
    lock.lock();
    lane.stats.completed += static_cast<int64_t>(batch.size());
    lane.admission->RecordBatch(batch_us, take);
    lane.stats.ewma_request_us = lane.admission->ewma_request_us();
    shared_admission_.RecordBatch(batch_us, take);
    lock.unlock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }

    lock.lock();
  }

  // Cancel whatever remains (non-drain shutdown only).
  std::deque<Pending> leftover;
  for (const std::string& id : ids_) {
    Lane& lane = *lanes_.at(id);
    lane.stats.cancelled += static_cast<int64_t>(lane.queue.size());
    while (!lane.queue.empty()) {
      leftover.push_back(std::move(lane.queue.front()));
      lane.queue.pop_front();
    }
  }
  lock.unlock();
  for (Pending& p : leftover) {
    Forecast cancelled;
    cancelled.error = "cancelled";
    cancelled.reason = RejectReason::kCancelled;
    p.promise.set_value(std::move(cancelled));
  }
}

void FleetServer::SwapSession(const std::string& model_id,
                              std::shared_ptr<InferenceSession> next) {
  D2_CHECK(next != nullptr);
  const auto lane_it = lanes_.find(model_id);
  D2_CHECK(lane_it != lanes_.end());
  Lane& lane = *lane_it->second;
  // Warm before the swap (a pre-warmed staged session skips straight
  // through — its sizes already have plans).
  int64_t cap = 0;
  if (lane.options.warmup) cap = WarmLane(lane, next.get());
  {
    std::lock_guard<std::mutex> lock(mu_);
    lane.session = next;
    lane.plan_cap = cap;
    ++lane.stats.session_swaps;
  }
  // Keep the registry's view current (outside mu_; the fleet has its own
  // lock and never calls back into the server).
  fleet_->SetSession(model_id, std::move(next));
}

std::shared_ptr<InferenceSession> FleetServer::session(
    const std::string& model_id) const {
  const auto it = lanes_.find(model_id);
  if (it == lanes_.end()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  return it->second->session;
}

SessionHost* FleetServer::host(const std::string& model_id) {
  const auto it = lanes_.find(model_id);
  return it == lanes_.end() ? nullptr : &it->second->host;
}

void FleetServer::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

int64_t FleetServer::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalDepthLocked();
}

std::vector<std::string> FleetServer::model_ids() const { return ids_; }

FleetStats FleetServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetStats stats;
  stats.rejected_unknown_model = rejected_unknown_model_;
  stats.max_total_queue_depth_seen = max_total_depth_seen_;
  stats.tier = tier_;
  stats.degrade_transitions = degrade_transitions_;
  stats.ewma_request_us = shared_admission_.ewma_request_us();
  for (const std::string& id : ids_) {
    const Lane& lane = *lanes_.at(id);
    FleetModelStats model = lane.stats;
    model.queue_depth = static_cast<int64_t>(lane.queue.size());
    stats.models.emplace(id, model);
    stats.submitted += model.submitted;
    stats.rejected += model.rejected;
    stats.completed += model.completed;
    stats.cancelled += model.cancelled;
    stats.batches += model.batches;
    stats.expired_deadlines += model.expired_deadlines;
    stats.session_swaps += model.session_swaps;
  }
  return stats;
}

}  // namespace d2stgnn::infer
