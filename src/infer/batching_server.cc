#include "infer/batching_server.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace d2stgnn::infer {

namespace {

// A future that is already resolved with an error (rejections never touch
// the queue or the dispatcher).
std::future<Forecast> RejectedFuture(std::string error) {
  std::promise<Forecast> promise;
  Forecast forecast;
  forecast.error = std::move(error);
  promise.set_value(std::move(forecast));
  return promise.get_future();
}

}  // namespace

BatchingServer::BatchingServer(InferenceSession* session,
                               const BatchingOptions& options)
    : session_(session), options_(options) {
  D2_CHECK(session != nullptr);
  D2_CHECK_GT(options_.max_batch_size, 0);
  D2_CHECK_GE(options_.max_wait_us, 0);
  if (options_.warmup) {
    session_->Warmup(1);
    if (options_.max_batch_size > 1) session_->Warmup(options_.max_batch_size);
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BatchingServer::~BatchingServer() { Shutdown(/*drain=*/true); }

std::future<Forecast> BatchingServer::Submit(ForecastRequest request) {
  std::string error = session_->ValidateRequest(request);
  if (!error.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return RejectedFuture(std::move(error));
  }
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  std::future<Forecast> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      return RejectedFuture("shutting down");
    }
    if (options_.max_queue_depth > 0 &&
        static_cast<int64_t>(queue_.size()) >= options_.max_queue_depth) {
      ++stats_.rejected;
      return RejectedFuture("queue full");
    }
    queue_.push_back(std::move(pending));
    ++stats_.submitted;
    stats_.max_queue_depth_seen = std::max(
        stats_.max_queue_depth_seen, static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

void BatchingServer::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) break;  // shutdown with nothing left to do
    if (shutdown_ && !drain_) break;  // leave the queue for cancellation

    // Coalesce: hold the batch open until it fills, the oldest request's
    // max-wait deadline passes, or shutdown asks for an immediate flush.
    const auto deadline =
        queue_.front().enqueued + std::chrono::microseconds(options_.max_wait_us);
    bool timed_out = false;
    while (!shutdown_ &&
           static_cast<int64_t>(queue_.size()) < options_.max_batch_size) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
    if (shutdown_ && !drain_) break;

    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), options_.max_batch_size);
    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    if (take >= options_.max_batch_size) {
      ++stats_.full_flushes;
    } else if (timed_out) {
      ++stats_.timeout_flushes;
    } else {
      ++stats_.shutdown_flushes;  // drain flush: partial batch, no timer
    }
    lock.unlock();

    // Test seam: a slow consumer stalls here, *after* dequeuing — newly
    // arriving requests must still be served by the next max-wait flush.
    if (fault::ConsumeFault("infer.slow_consumer")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    std::vector<ForecastRequest> requests;
    requests.reserve(batch.size());
    for (Pending& p : batch) requests.push_back(std::move(p.request));
    std::vector<Forecast> results = session_->PredictRequests(requests);
    D2_CHECK_EQ(results.size(), batch.size());

    // Count the batch before resolving its futures, so a client that just
    // saw its future become ready also sees itself in stats().completed.
    lock.lock();
    stats_.completed += static_cast<int64_t>(batch.size());
    lock.unlock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }

    lock.lock();
  }

  // Cancel whatever remains (non-drain shutdown only; a drain leaves the
  // queue empty). Promises are resolved outside the lock.
  std::deque<Pending> leftover;
  leftover.swap(queue_);
  stats_.cancelled += static_cast<int64_t>(leftover.size());
  lock.unlock();
  for (Pending& p : leftover) {
    Forecast cancelled;
    cancelled.error = "cancelled";
    p.promise.set_value(std::move(cancelled));
  }
}

void BatchingServer::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

int64_t BatchingServer::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

BatchingServerStats BatchingServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace d2stgnn::infer
