#include "infer/batching_server.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"

namespace d2stgnn::infer {

namespace {

using Clock = std::chrono::steady_clock;

// A future that is already resolved with an error (rejections never touch
// the queue or the dispatcher).
std::future<Forecast> ResolvedRejection(RejectReason reason, std::string error,
                                        int64_t retry_after_us) {
  std::promise<Forecast> promise;
  Forecast forecast;
  forecast.error = std::move(error);
  forecast.reason = reason;
  forecast.retry_after_us = retry_after_us;
  promise.set_value(std::move(forecast));
  return promise.get_future();
}

}  // namespace

BatchingServer::BatchingServer(std::shared_ptr<InferenceSession> session,
                               const BatchingOptions& options)
    : options_(options),
      session_(std::move(session)),
      admission_(options.admission),
      governor_(options.degrade) {
  D2_CHECK(session_ != nullptr);
  D2_CHECK_GT(options_.max_batch_size, 0);
  D2_CHECK_GE(options_.max_wait_us, 0);
  D2_CHECK_GT(options_.degraded_wait_divisor, 0);
  if (options_.warmup) {
    plan_cap_ = WarmAndPlanCap(session_.get());
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

BatchingServer::BatchingServer(InferenceSession* session,
                               const BatchingOptions& options)
    : BatchingServer(
          std::shared_ptr<InferenceSession>(session,
                                            [](InferenceSession*) {}),
          options) {
  D2_CHECK(session != nullptr);
}

BatchingServer::~BatchingServer() { Shutdown(/*drain=*/true); }

int64_t BatchingServer::WarmAndPlanCap(InferenceSession* session) const {
  // A staged shadow session (CheckpointReloader) arrives pre-warmed: its
  // plans are already captured and verified. Re-warming a planned size
  // would burn a redundant forward per size on the swap path, so only
  // sizes without a plan are warmed here. (With plans disabled `planned`
  // is empty and both sizes warm the buffer pool, as before.)
  std::vector<int64_t> planned = session->planned_batch_sizes();
  const auto has_plan = [&planned](int64_t size) {
    return std::binary_search(planned.begin(), planned.end(), size);
  };
  if (!has_plan(1)) session->Warmup(1);
  if (options_.max_batch_size > 1 && !has_plan(options_.max_batch_size)) {
    session->Warmup(options_.max_batch_size);
  }
  planned = session->planned_batch_sizes();
  return planned.empty() ? 0 : planned.back();
}

std::future<Forecast> BatchingServer::Reject(RejectReason reason,
                                             std::string error,
                                             int64_t retry_after_us) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    switch (reason) {
      case RejectReason::kBadRequest: ++stats_.rejected_bad_request; break;
      case RejectReason::kQueueFull: ++stats_.rejected_queue_full; break;
      case RejectReason::kRateLimited: ++stats_.rejected_rate_limited; break;
      case RejectReason::kOverloaded: ++stats_.rejected_overloaded; break;
      case RejectReason::kShedLowPriority:
        ++stats_.rejected_low_priority;
        break;
      case RejectReason::kShuttingDown: ++stats_.rejected_shutdown; break;
      default: break;
    }
  }
  return ResolvedRejection(reason, std::move(error), retry_after_us);
}

std::future<Forecast> BatchingServer::Submit(ForecastRequest request) {
  std::string error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    error = session_->ValidateRequest(request);
  }
  if (!error.empty()) {
    return Reject(RejectReason::kBadRequest, std::move(error), 0);
  }

  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  std::future<Forecast> future = pending.promise.get_future();
  RejectReason reject = RejectReason::kNone;
  std::string reject_error;
  int64_t retry_after_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ++stats_.rejected;
      ++stats_.rejected_shutdown;
      return ResolvedRejection(RejectReason::kShuttingDown, "shutting down",
                               0);
    }
    const int64_t depth = static_cast<int64_t>(queue_.size());
    const int64_t capacity = options_.max_queue_depth;

    // Chaos seam "server.admit": a scripted errno-shaped fault stands in
    // for an admission-path failure; callers see a typed, retryable
    // rejection, never a crash or a hung future.
    if (fault::ConsumeFault("server.admit")) {
      reject = RejectReason::kOverloaded;
      reject_error = "admission fault injected";
      retry_after_us = 1000;
    }

    // Degradation tier from queue pressure (and the forced-degrade fault).
    OverloadTier tier = governor_.Observe(depth, capacity);
    stats_.tier = tier;
    stats_.degrade_transitions = governor_.transitions();
    if (reject == RejectReason::kNone && tier == OverloadTier::kShedding &&
        pending.request.priority == RequestPriority::kLow) {
      reject = RejectReason::kShedLowPriority;
      std::ostringstream os;
      os << "shed low-priority request (tier=" << OverloadTierName(tier)
         << ", queue " << depth << "/" << capacity << ")";
      reject_error = os.str();
      retry_after_us = static_cast<int64_t>(
          std::max(admission_.ewma_request_us(), 1000.0) *
          static_cast<double>(std::max<int64_t>(depth, 1)));
    }

    if (reject == RejectReason::kNone) {
      const AdmissionDecision decision = admission_.Admit(depth, capacity);
      if (!decision.admitted) {
        reject = decision.reason;
        retry_after_us = decision.retry_after_us;
        std::ostringstream os;
        if (decision.reason == RejectReason::kQueueFull) {
          os << "queue full (depth " << depth << "/" << capacity
             << ", active batch "
             << std::min<int64_t>(options_.max_batch_size,
                                  plan_cap_ > 0 && tier >= OverloadTier::kCapped
                                      ? plan_cap_
                                      : options_.max_batch_size)
             << ")";
        } else if (decision.reason == RejectReason::kRateLimited) {
          os << "rate limited (" << options_.admission.rate_rps
             << " rps, retry in " << decision.retry_after_us << " us)";
        } else {
          os << "overloaded (ewma request latency "
             << static_cast<int64_t>(admission_.ewma_request_us())
             << " us > shed budget " << options_.admission.shed_latency_us
             << " us)";
        }
        reject_error = os.str();
      }
    }

    if (reject == RejectReason::kNone) {
      if (pending.request.deadline_us > 0) {
        pending.deadline = pending.enqueued +
                           std::chrono::microseconds(
                               pending.request.deadline_us);
        // Chaos seam "server.deadline": a deadline storm — the budget is
        // treated as already spent, so the request expires in-queue.
        if (fault::ConsumeFault("server.deadline")) {
          pending.deadline = pending.enqueued;
        }
        pending.has_deadline = true;
      }
      queue_.push_back(std::move(pending));
      ++stats_.submitted;
      stats_.max_queue_depth_seen = std::max(
          stats_.max_queue_depth_seen, static_cast<int64_t>(queue_.size()));
    } else {
      ++stats_.rejected;
      switch (reject) {
        case RejectReason::kQueueFull: ++stats_.rejected_queue_full; break;
        case RejectReason::kRateLimited:
          ++stats_.rejected_rate_limited;
          break;
        case RejectReason::kOverloaded: ++stats_.rejected_overloaded; break;
        case RejectReason::kShedLowPriority:
          ++stats_.rejected_low_priority;
          break;
        default: break;
      }
    }
  }
  if (reject != RejectReason::kNone) {
    return ResolvedRejection(reject, std::move(reject_error), retry_after_us);
  }
  cv_.notify_all();
  return future;
}

std::deque<BatchingServer::Pending> BatchingServer::TakeExpiredLocked(
    Clock::time_point now) {
  std::deque<Pending> expired;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->has_deadline && it->deadline <= now) {
      expired.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  stats_.expired_deadlines += static_cast<int64_t>(expired.size());
  return expired;
}

void BatchingServer::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_ && !drain_) break;  // leave the queue for cancellation

    // Drop whatever has already expired — an expired request must never
    // pad a batch, let alone be dispatched.
    {
      std::deque<Pending> expired = TakeExpiredLocked(Clock::now());
      if (!expired.empty()) {
        lock.unlock();
        for (Pending& p : expired) {
          Forecast miss;
          miss.error = "deadline exceeded in queue";
          miss.reason = RejectReason::kDeadlineExceeded;
          p.promise.set_value(std::move(miss));
        }
        lock.lock();
        continue;  // queue changed; re-evaluate from the top
      }
    }
    if (queue_.empty()) {
      if (shutdown_) break;
      continue;
    }

    // Effective knobs for this flush, per the degradation tier: a degraded
    // server flushes sooner (smaller queueing delay), a capped server also
    // keeps batches at planned sizes so every dispatch replays a plan.
    const OverloadTier tier = governor_.tier();
    int64_t wait_us = options_.max_wait_us;
    if (tier >= OverloadTier::kDegraded) {
      wait_us /= options_.degraded_wait_divisor;
    }
    if (tier >= OverloadTier::kCapped) wait_us /= 2;
    int64_t batch_cap = options_.max_batch_size;
    if (tier >= OverloadTier::kCapped && plan_cap_ > 0) {
      batch_cap = std::min(batch_cap, plan_cap_);
    }

    // Coalesce: hold the batch open until it fills, the oldest request's
    // max-wait deadline passes, or shutdown asks for an immediate flush.
    // The wait also wakes at the earliest request deadline, so an expiring
    // request is dropped promptly instead of riding out the flush timer.
    auto flush_at = queue_.front().enqueued + std::chrono::microseconds(wait_us);
    bool timed_out = false;
    while (!shutdown_ &&
           static_cast<int64_t>(queue_.size()) < batch_cap) {
      auto wake_at = flush_at;
      for (const Pending& p : queue_) {
        if (p.has_deadline && p.deadline < wake_at) wake_at = p.deadline;
      }
      if (cv_.wait_until(lock, wake_at) == std::cv_status::timeout) {
        const auto now = Clock::now();
        std::deque<Pending> expired = TakeExpiredLocked(now);
        if (!expired.empty()) {
          lock.unlock();
          for (Pending& p : expired) {
            Forecast miss;
            miss.error = "deadline exceeded in queue";
            miss.reason = RejectReason::kDeadlineExceeded;
            p.promise.set_value(std::move(miss));
          }
          lock.lock();
          if (queue_.empty()) break;  // everything expired; nothing to flush
          // The oldest survivor re-anchors the flush timer.
          flush_at =
              queue_.front().enqueued + std::chrono::microseconds(wait_us);
        }
        if (now >= flush_at) {
          timed_out = true;
          break;
        }
      }
    }
    if (shutdown_ && !drain_) break;

    // Last-chance expiry sweep: a request whose deadline passed while the
    // batch was filling is dropped here, never dispatched as padding.
    {
      std::deque<Pending> expired = TakeExpiredLocked(Clock::now());
      if (!expired.empty()) {
        lock.unlock();
        for (Pending& p : expired) {
          Forecast miss;
          miss.error = "deadline exceeded in queue";
          miss.reason = RejectReason::kDeadlineExceeded;
          p.promise.set_value(std::move(miss));
        }
        lock.lock();
      }
    }
    if (queue_.empty()) {
      if (shutdown_) break;
      continue;
    }

    const int64_t take = std::min<int64_t>(
        static_cast<int64_t>(queue_.size()), batch_cap);
    std::vector<Pending> batch;
    batch.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    if (take >= batch_cap) {
      ++stats_.full_flushes;
    } else if (shutdown_) {
      ++stats_.shutdown_flushes;  // drain flush: partial batch, no timer
    } else {
      ++stats_.timeout_flushes;
      (void)timed_out;
    }
    // Draining the backlog is a calm observation for tier recovery.
    governor_.Observe(static_cast<int64_t>(queue_.size()),
                      options_.max_queue_depth);
    stats_.tier = governor_.tier();
    stats_.degrade_transitions = governor_.transitions();
    // The batch pins its session: a concurrent SwapSession retires the old
    // weights only after this forward finishes.
    std::shared_ptr<InferenceSession> session = session_;
    lock.unlock();

    // Test seam: a slow consumer stalls here, *after* dequeuing — newly
    // arriving requests must still be served by the next max-wait flush.
    if (fault::ConsumeFault("infer.slow_consumer")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    std::vector<ForecastRequest> requests;
    requests.reserve(batch.size());
    for (Pending& p : batch) requests.push_back(std::move(p.request));
    const auto batch_start = Clock::now();
    std::vector<Forecast> results = session->PredictRequests(requests);
    const int64_t batch_us =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              batch_start)
            .count();
    D2_CHECK_EQ(results.size(), batch.size());

    // Count the batch before resolving its futures, so a client that just
    // saw its future become ready also sees itself in stats().completed.
    lock.lock();
    stats_.completed += static_cast<int64_t>(batch.size());
    admission_.RecordBatch(batch_us, take);
    stats_.ewma_request_us = admission_.ewma_request_us();
    lock.unlock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }

    lock.lock();
  }

  // Cancel whatever remains (non-drain shutdown only; a drain leaves the
  // queue empty). Promises are resolved outside the lock.
  std::deque<Pending> leftover;
  leftover.swap(queue_);
  stats_.cancelled += static_cast<int64_t>(leftover.size());
  lock.unlock();
  for (Pending& p : leftover) {
    Forecast cancelled;
    cancelled.error = "cancelled";
    cancelled.reason = RejectReason::kCancelled;
    p.promise.set_value(std::move(cancelled));
  }
}

void BatchingServer::SwapSession(std::shared_ptr<InferenceSession> next) {
  D2_CHECK(next != nullptr);
  // Warm the incoming session *before* it serves: plans captured (and
  // verified, per its SessionOptions) while traffic still runs on the old
  // weights.
  int64_t cap = 0;
  if (options_.warmup) cap = WarmAndPlanCap(next.get());
  std::shared_ptr<InferenceSession> retired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::move(session_);
    session_ = std::move(next);
    plan_cap_ = cap;
    ++stats_.session_swaps;
  }
  // `retired` drops here; an in-flight batch still holds its own reference
  // and finishes on the old weights.
}

std::shared_ptr<InferenceSession> BatchingServer::session() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_;
}

void BatchingServer::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      drain_ = drain;
    }
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

int64_t BatchingServer::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

BatchingServerStats BatchingServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace d2stgnn::infer
