#ifndef D2STGNN_INFER_OVERLOAD_H_
#define D2STGNN_INFER_OVERLOAD_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/clock.h"

// Overload protection for the serving stack (DESIGN.md §13).
//
// A forecast delivered after its window is worthless, so a saturated server
// must shed early and cheaply rather than queue unboundedly and answer
// late. Two small, externally-synchronized policy classes implement that
// (the BatchingServer calls both under its queue mutex):
//
//   * AdmissionController — the gate in front of the bounded queue. Rejects
//     with a *typed* reason (so clients can tell "back off and retry" from
//     "give up") and a retry_after_us hint: the hard queue bound, a
//     token-bucket rate limit, and an EWMA-latency shed that refuses new
//     work once the observed per-request service time exceeds a budget.
//
//   * OverloadGovernor — graceful-degradation tiers driven by queue
//     pressure. Escalation is immediate (one hot observation bumps the
//     tier); recovery is hysteretic (the queue must stay below a low
//     watermark for `recover_ticks` consecutive observations, and tiers
//     step down one at a time), so a server hovering at a threshold does
//     not flap between policies. What each tier *does* — shrink the batch
//     timer, cap batches to planned sizes, shed low-priority work — lives
//     in the BatchingServer; the governor only decides the tier.
//
// The fault point "server.degrade" forces the governor to kShedding, so
// chaos runs can script the worst tier without real pressure.

namespace d2stgnn::infer {

/// Why a request was not served. Carried by Forecast::reason so callers can
/// branch without parsing error strings.
enum class RejectReason {
  kNone = 0,          ///< served (Forecast::ok)
  kBadRequest,        ///< malformed; retrying the same payload cannot help
  kQueueFull,         ///< bounded queue at capacity
  kRateLimited,       ///< token bucket empty
  kOverloaded,        ///< EWMA service latency above the shed budget
  kShedLowPriority,   ///< degrade tier kShedding refused low-priority work
  kQuotaExceeded,     ///< model over its fair share of a contended fleet
                      ///< queue (infer/fleet); other tenants stay healthy
  kDeadlineExceeded,  ///< expired in the queue; never dispatched
  kShuttingDown,      ///< submitted after Shutdown
  kCancelled,         ///< queued at a non-drain Shutdown
};

/// Stable lowercase name ("queue_full", "rate_limited", ...).
const char* RejectReasonName(RejectReason reason);

/// True for rejections worth retrying after a backoff (kQueueFull,
/// kRateLimited, kOverloaded, kShedLowPriority, kQuotaExceeded). Deadline
/// misses are not retryable: the window the client asked about has aged
/// past its budget.
bool IsRetryableReject(RejectReason reason);

/// Two-level priority for load shedding: under sustained overload (tier
/// kShedding) low-priority requests are refused at admission so the
/// capacity that remains serves the high-priority stream.
enum class RequestPriority { kHigh = 0, kLow = 1 };

/// Admission-gate knobs. Zeros disable each mechanism, so a
/// default-constructed controller only enforces the queue bound.
struct AdmissionOptions {
  /// Token-bucket refill rate in requests/second (<= 0: no rate limit).
  double rate_rps = 0.0;
  /// Bucket capacity; <= 0 defaults to max(rate_rps, 1).
  double burst = 0.0;
  /// Shed new arrivals once the EWMA per-request service time exceeds this
  /// (<= 0: no latency shed).
  int64_t shed_latency_us = 0;
  /// EWMA smoothing factor in (0, 1]; the weight of the newest batch.
  double ewma_alpha = 0.2;
};

/// The outcome of one admission check.
struct AdmissionDecision {
  bool admitted = true;
  RejectReason reason = RejectReason::kNone;
  /// How long the client should wait before retrying (a hint: estimated
  /// queue drain or token refill time). 0 when admitted.
  int64_t retry_after_us = 0;
};

/// The gate in front of the bounded queue. Externally synchronized: the
/// server calls Admit / RecordBatch under its own mutex.
class AdmissionController {
 public:
  /// `clock` is the injectable time source for token-bucket refill (null:
  /// the process RealClock()). Tests pass a FakeClock and advance it
  /// instead of threading `now` parameters through every call.
  explicit AdmissionController(const AdmissionOptions& options,
                               Clock* clock = nullptr);

  /// Decides one submission given the current queue depth and the hard
  /// capacity (`queue_capacity` <= 0 means unbounded).
  AdmissionDecision Admit(int64_t queue_depth, int64_t queue_capacity);

  /// Feeds one dispatched batch into the EWMA service-time estimate.
  void RecordBatch(int64_t batch_latency_us, int64_t batch_size);

  /// Smoothed per-request service time (microseconds; 0 before any batch).
  double ewma_request_us() const { return ewma_request_us_; }

 private:
  AdmissionOptions options_;
  Clock* clock_;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  SteadyTime last_refill_{};
  bool bucket_primed_ = false;
  double ewma_request_us_ = 0.0;
};

/// Graceful-degradation tiers, mildest to harshest. Ordered: comparisons
/// like `tier >= kCapped` select "this tier or worse".
enum class OverloadTier {
  kNormal = 0,    ///< full batching window, full batch sizes
  kDegraded = 1,  ///< shrink max_wait_us: flush sooner, cut queueing delay
  kCapped = 2,    ///< also cap batches to the largest *planned* size, so
                  ///< every dispatch replays a captured plan (no eager
                  ///< fallback burning extra CPU mid-overload)
  kShedding = 3,  ///< also refuse low-priority work at admission
};

/// Stable lowercase name ("normal", "degraded", "capped", "shedding").
const char* OverloadTierName(OverloadTier tier);

/// Watermarks are fractions of the queue capacity; see OverloadGovernor.
struct DegradeOptions {
  double degrade_watermark = 0.50;  ///< depth fraction => >= kDegraded
  double cap_watermark = 0.75;      ///< depth fraction => >= kCapped
  double shed_watermark = 0.90;     ///< depth fraction => kShedding
  /// Hysteresis: recovery requires depth below this fraction...
  double recover_watermark = 0.25;
  /// ...for this many consecutive observations, and steps down one tier at
  /// a time.
  int64_t recover_ticks = 8;
};

/// Decides the degradation tier from queue pressure. Externally
/// synchronized (called under the server mutex on every Submit and flush).
class OverloadGovernor {
 public:
  explicit OverloadGovernor(const DegradeOptions& options);

  /// Feeds one queue observation and returns the (possibly changed) tier.
  /// With an unbounded queue (capacity <= 0) pressure is undefined and the
  /// tier stays kNormal unless the "server.degrade" fault point forces it.
  OverloadTier Observe(int64_t queue_depth, int64_t queue_capacity);

  OverloadTier tier() const { return tier_; }

  /// Tier changes (either direction) since construction.
  int64_t transitions() const { return transitions_; }

 private:
  void SetTier(OverloadTier next);

  DegradeOptions options_;
  OverloadTier tier_ = OverloadTier::kNormal;
  int64_t calm_ticks_ = 0;
  int64_t transitions_ = 0;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_OVERLOAD_H_
