#include "infer/overload.h"

#include <algorithm>

#include "common/check.h"
#include "common/fault_injection.h"

namespace d2stgnn::infer {

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kBadRequest: return "bad_request";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kRateLimited: return "rate_limited";
    case RejectReason::kOverloaded: return "overloaded";
    case RejectReason::kShedLowPriority: return "shed_low_priority";
    case RejectReason::kQuotaExceeded: return "quota_exceeded";
    case RejectReason::kDeadlineExceeded: return "deadline_exceeded";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool IsRetryableReject(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
    case RejectReason::kRateLimited:
    case RejectReason::kOverloaded:
    case RejectReason::kShedLowPriority:
    case RejectReason::kQuotaExceeded:
      return true;
    default:
      return false;
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         Clock* clock)
    : options_(options), clock_(ClockOrReal(clock)) {
  D2_CHECK_GT(options_.ewma_alpha, 0.0);
  D2_CHECK_LE(options_.ewma_alpha, 1.0);
  if (options_.rate_rps > 0.0) {
    burst_ = options_.burst > 0.0 ? options_.burst
                                  : std::max(options_.rate_rps, 1.0);
    tokens_ = burst_;  // a bucket starts full: bursts up to `burst_` pass
  }
}

AdmissionDecision AdmissionController::Admit(int64_t queue_depth,
                                             int64_t queue_capacity) {
  AdmissionDecision decision;

  // Estimated time for the dispatcher to work off the current queue — the
  // retry hint for depth-shaped rejections. Before any batch has been
  // observed, fall back to a millisecond so hints are never zero.
  const double per_request_us =
      ewma_request_us_ > 0.0 ? ewma_request_us_ : 1000.0;

  // 1. Hard queue bound.
  if (queue_capacity > 0 && queue_depth >= queue_capacity) {
    decision.admitted = false;
    decision.reason = RejectReason::kQueueFull;
    decision.retry_after_us = static_cast<int64_t>(
        per_request_us * static_cast<double>(std::max<int64_t>(queue_depth, 1)));
    return decision;
  }

  // 2. Token bucket. Refill from elapsed wall time, then spend one token
  // per admitted request.
  if (options_.rate_rps > 0.0) {
    const SteadyTime now = clock_->Now();
    if (!bucket_primed_) {
      bucket_primed_ = true;
      last_refill_ = now;
    }
    const double elapsed_s =
        std::chrono::duration<double>(now - last_refill_).count();
    if (elapsed_s > 0.0) {
      tokens_ = std::min(burst_, tokens_ + elapsed_s * options_.rate_rps);
      last_refill_ = now;
    }
    if (tokens_ < 1.0) {
      decision.admitted = false;
      decision.reason = RejectReason::kRateLimited;
      decision.retry_after_us = static_cast<int64_t>(
          (1.0 - tokens_) / options_.rate_rps * 1e6) + 1;
      return decision;
    }
    tokens_ -= 1.0;
  }

  // 3. EWMA-latency shed: once the smoothed service time blows the budget,
  // refuse new arrivals until dispatched batches pull it back down.
  if (options_.shed_latency_us > 0 &&
      ewma_request_us_ > static_cast<double>(options_.shed_latency_us)) {
    decision.admitted = false;
    decision.reason = RejectReason::kOverloaded;
    decision.retry_after_us = static_cast<int64_t>(
        ewma_request_us_ - static_cast<double>(options_.shed_latency_us)) +
        static_cast<int64_t>(per_request_us);
    return decision;
  }

  return decision;
}

void AdmissionController::RecordBatch(int64_t batch_latency_us,
                                      int64_t batch_size) {
  if (batch_size <= 0 || batch_latency_us < 0) return;
  const double per_request =
      static_cast<double>(batch_latency_us) / static_cast<double>(batch_size);
  if (ewma_request_us_ <= 0.0) {
    ewma_request_us_ = per_request;  // seed with the first observation
  } else {
    ewma_request_us_ = options_.ewma_alpha * per_request +
                       (1.0 - options_.ewma_alpha) * ewma_request_us_;
  }
}

const char* OverloadTierName(OverloadTier tier) {
  switch (tier) {
    case OverloadTier::kNormal: return "normal";
    case OverloadTier::kDegraded: return "degraded";
    case OverloadTier::kCapped: return "capped";
    case OverloadTier::kShedding: return "shedding";
  }
  return "unknown";
}

OverloadGovernor::OverloadGovernor(const DegradeOptions& options)
    : options_(options) {
  D2_CHECK_GT(options_.recover_ticks, 0);
  D2_CHECK_LE(options_.recover_watermark, options_.degrade_watermark);
  D2_CHECK_LE(options_.degrade_watermark, options_.cap_watermark);
  D2_CHECK_LE(options_.cap_watermark, options_.shed_watermark);
}

void OverloadGovernor::SetTier(OverloadTier next) {
  if (next == tier_) return;
  tier_ = next;
  ++transitions_;
  calm_ticks_ = 0;
}

OverloadTier OverloadGovernor::Observe(int64_t queue_depth,
                                       int64_t queue_capacity) {
  // Chaos seam: a scripted fault forces the harshest tier, so degrade-path
  // behavior is testable without building real queue pressure.
  if (fault::ConsumeFault("server.degrade")) {
    SetTier(OverloadTier::kShedding);
    return tier_;
  }
  if (queue_capacity <= 0) return tier_;  // unbounded: pressure undefined

  const double fraction = static_cast<double>(queue_depth) /
                          static_cast<double>(queue_capacity);
  OverloadTier target = OverloadTier::kNormal;
  if (fraction >= options_.shed_watermark) {
    target = OverloadTier::kShedding;
  } else if (fraction >= options_.cap_watermark) {
    target = OverloadTier::kCapped;
  } else if (fraction >= options_.degrade_watermark) {
    target = OverloadTier::kDegraded;
  }

  if (target > tier_) {
    SetTier(target);  // escalation is immediate
  } else if (tier_ > OverloadTier::kNormal) {
    // Recovery is hysteretic: `recover_ticks` consecutive calm
    // observations step the tier down by one.
    if (fraction <= options_.recover_watermark) {
      if (++calm_ticks_ >= options_.recover_ticks) {
        SetTier(static_cast<OverloadTier>(static_cast<int>(tier_) - 1));
      }
    } else {
      calm_ticks_ = 0;
    }
  }
  return tier_;
}

}  // namespace d2stgnn::infer
