#include "infer/session.h"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "exec/graph_capture.h"
#include "exec/plan_verifier.h"
#include "tensor/kernels/registry.h"
#include "train/checkpoint.h"

namespace d2stgnn::infer {

bool DefaultVerifyPlans() {
#ifndef NDEBUG
  return true;  // debug builds always verify
#else
  const char* env = std::getenv("D2STGNN_VERIFY_PLANS");
  return env != nullptr && std::strcmp(env, "1") == 0;
#endif
}

InferenceSession::InferenceSession(
    std::unique_ptr<train::ForecastingModel> model,
    const data::StandardScaler& scaler, const SessionOptions& options)
    : model_(std::move(model)), scaler_(scaler), options_(options) {
  model_->SetTraining(false);  // frozen: no dropout, no tape (see Predict)
  if (options_.use_arena) arena_ = std::make_shared<BufferArena>();
}

std::unique_ptr<InferenceSession> InferenceSession::Wrap(
    std::unique_ptr<train::ForecastingModel> model,
    const data::StandardScaler& scaler, const SessionOptions& options) {
  if (model == nullptr) {
    D2_LOG(ERROR) << "infer: cannot create a session around a null model";
    return nullptr;
  }
  if (options.num_nodes <= 0 || options.input_len <= 0 ||
      options.steps_per_day <= 0) {
    D2_LOG(ERROR) << "infer: invalid session options (num_nodes="
                  << options.num_nodes << ", input_len=" << options.input_len
                  << ", steps_per_day=" << options.steps_per_day << ")";
    return nullptr;
  }
  return std::unique_ptr<InferenceSession>(
      new InferenceSession(std::move(model), scaler, options));
}

std::unique_ptr<InferenceSession> InferenceSession::Load(
    std::unique_ptr<train::ForecastingModel> model,
    const std::string& checkpoint_path, const data::StandardScaler& scaler,
    const SessionOptions& options) {
  if (model == nullptr) {
    D2_LOG(ERROR) << "infer: cannot load " << checkpoint_path
                  << " into a null model";
    return nullptr;
  }
  if (fault::ConsumeFault("infer.checkpoint_load")) {
    D2_LOG(ERROR) << "infer: injected fault while loading "
                  << checkpoint_path;
    return nullptr;
  }
  // LoadCheckpoint is transactional: on corrupt / truncated / mismatched
  // files the model is untouched and we fail before any session exists.
  if (!train::LoadCheckpoint(model.get(), checkpoint_path)) {
    D2_LOG(ERROR) << "infer: checkpoint " << checkpoint_path
                  << " rejected; no session created";
    return nullptr;
  }
  return Wrap(std::move(model), scaler, options);
}

std::string InferenceSession::ValidateRequest(
    const ForecastRequest& request) const {
  const int64_t expected = options_.input_len * options_.num_nodes;
  if (static_cast<int64_t>(request.window.size()) != expected) {
    std::ostringstream os;
    os << "bad request: window has " << request.window.size()
       << " readings, expected input_len * num_nodes = " << expected;
    return os.str();
  }
  if (request.time_of_day < 0 || request.time_of_day >= options_.steps_per_day) {
    return "bad request: time_of_day out of [0, steps_per_day)";
  }
  if (request.day_of_week < 0 || request.day_of_week >= 7) {
    return "bad request: day_of_week out of [0, 7)";
  }
  if (request.deadline_us < 0) {
    return "bad request: deadline_us must be >= 0";
  }
  return "";
}

data::Batch InferenceSession::AssembleBatch(
    const std::vector<ForecastRequest>& requests) const {
  const int64_t b = static_cast<int64_t>(requests.size());
  const int64_t th = options_.input_len;
  const int64_t n = options_.num_nodes;
  D2_CHECK_GT(b, 0);

  data::Batch batch;
  batch.batch_size = b;
  batch.input_len = th;
  batch.time_of_day.resize(static_cast<size_t>(b * th));
  batch.day_of_week.resize(static_cast<size_t>(b * th));

  // Same feature construction as WindowDataLoader::GetBatch: channel 0 the
  // z-scored reading, channel 1 the time-of-day fraction, channel 2 the
  // day-of-week fraction; slot indices advance from the request's first
  // step, wrapping across midnight.
  Tensor x({b, th, n, data::kInputFeatures});
  float* xd = x.Data().data();
  const float mean = scaler_.mean();
  const float inv_std = 1.0f / scaler_.std_dev();
  const float inv_day = 1.0f / static_cast<float>(options_.steps_per_day);
  for (int64_t i = 0; i < b; ++i) {
    const ForecastRequest& req = requests[static_cast<size_t>(i)];
    D2_CHECK_EQ(static_cast<int64_t>(req.window.size()), th * n)
        << "unvalidated request reached AssembleBatch";
    for (int64_t t = 0; t < th; ++t) {
      const int64_t slot = req.time_of_day + t;
      const int64_t tod = slot % options_.steps_per_day;
      const int64_t dow =
          (req.day_of_week + slot / options_.steps_per_day) % 7;
      const float* src = req.window.data() + t * n;
      float* dst = xd + (i * th + t) * n * data::kInputFeatures;
      for (int64_t node = 0; node < n; ++node) {
        dst[node * 3] = (src[node] - mean) * inv_std;
        dst[node * 3 + 1] = static_cast<float>(tod) * inv_day;
        dst[node * 3 + 2] = static_cast<float>(dow) / 7.0f;
      }
      batch.time_of_day[static_cast<size_t>(i * th + t)] = tod;
      batch.day_of_week[static_cast<size_t>(i * th + t)] = dow;
    }
  }
  batch.x = std::move(x);
  return batch;
}

Tensor InferenceSession::Predict(const data::Batch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  NoGradGuard no_grad;
  std::optional<ArenaGuard> arena_scope;
  if (arena_ != nullptr) arena_scope.emplace(arena_);
  if (const float* out = TryReplayLocked(batch)) {
    const Shape& shape =
        ShardLocked().plans.at(batch.batch_size)->plan().output_shape();
    Tensor prediction(shape);
    std::copy(out, out + NumElements(shape), prediction.Data().begin());
    return prediction;
  }
  ++stats_.eager_forwards;
  return scaler_.InverseTransform(model_->Forward(batch));
}

InferenceSession::BackendPlans& InferenceSession::ShardLocked() {
  return shards_[kernels::ActiveBackend().name];
}

const float* InferenceSession::TryReplayLocked(const data::Batch& batch) {
  if (!options_.use_plans || !batch.x.defined()) return nullptr;
  BackendPlans& shard = ShardLocked();
  const auto it = shard.plans.find(batch.batch_size);
  if (it == shard.plans.end()) return nullptr;
  exec::PlanExecutor& executor = *it->second;

  std::vector<exec::InputBinding> inputs;
  inputs.push_back(exec::InputBinding{batch.x.Data().data(), batch.x.numel()});
  const std::vector<const std::vector<int64_t>*> index_inputs = {
      &batch.time_of_day, &batch.day_of_week};
  std::string error;
  const exec::ReplayMode mode = options_.plan_parallel
                                    ? exec::ReplayMode::kLevelParallel
                                    : exec::ReplayMode::kSerial;
  switch (executor.Run(inputs, index_inputs, mode, &error)) {
    case exec::ReplayStatus::kOk:
      ++stats_.plan_replays;
      return executor.output();
    case exec::ReplayStatus::kStaleConstants: {
      // Parameter storage was reassigned; every cached plan (in every
      // backend shard) captured the same parameters, so drop them all and
      // fall back to eager (the next Warmup rebuilds).
      int64_t dropped = 0;
      for (const auto& [name, s] : shards_) {
        dropped += static_cast<int64_t>(s.plans.size());
      }
      D2_LOG(WARNING) << "infer: dropping " << dropped
                      << " stale execution plan(s): " << error;
      stats_.plan_invalidations += dropped;
      shards_.clear();  // the reports described the dropped plans
      return nullptr;
    }
    case exec::ReplayStatus::kBindingMismatch:
      // A batch with this batch size but different geometry (input_len /
      // nodes) than the plan captured; the eager path handles it.
      D2_LOG(WARNING) << "infer: plan binding mismatch, running eager: "
                      << error;
      return nullptr;
    case exec::ReplayStatus::kBackendMismatch:
      // Should be unreachable — the cache is sharded by backend name — but
      // the executor's own guard stays authoritative: log and run eager.
      D2_LOG(WARNING) << "infer: plan backend mismatch, running eager: "
                      << error;
      return nullptr;
  }
  return nullptr;
}

ForecastRequest InferenceSession::BlankRequest() const {
  ForecastRequest blank;
  blank.window.assign(
      static_cast<size_t>(options_.input_len * options_.num_nodes), 0.0f);
  return blank;
}

bool InferenceSession::CapturePlanLocked(int64_t batch_size) {
  const std::vector<ForecastRequest> requests(static_cast<size_t>(batch_size),
                                              BlankRequest());
  NoGradGuard no_grad;
  std::optional<ArenaGuard> arena_scope;
  if (arena_ != nullptr) arena_scope.emplace(arena_);
  const data::Batch batch = AssembleBatch(requests);
  exec::GraphCapture capture;
  capture.BindInput("x", batch.x);
  capture.BindIndexInput("tod", batch.time_of_day);
  capture.BindIndexInput("dow", batch.day_of_week);
  const Tensor out = scaler_.InverseTransform(model_->Forward(batch));
  std::shared_ptr<const exec::ExecutionPlan> plan = capture.Finish(out);
  if (plan == nullptr) {
    D2_LOG(WARNING) << "infer: plan capture failed for batch size "
                    << batch_size << " (" << capture.error()
                    << "); serving eagerly";
    return false;
  }
  D2_LOG(INFO) << "infer: captured batch-" << batch_size << " "
               << plan->Summary();
  if (options_.verify_plans) {
    exec::VerifierReport report = exec::VerifyPlan(*plan);
    ++stats_.plans_verified;
    // Test seam: a scripted "infer.plan_verify" fault stands in for a
    // verifier rejection, so the verify-reject -> eager-fallback -> repair
    // accounting is testable with plans that are in fact clean.
    if (report.ok() && fault::ConsumeFault("infer.plan_verify")) {
      report.errors = 1;
    }
    if (!report.ok()) {
      stats_.plan_verifier_errors += report.errors;
      D2_LOG(ERROR) << "infer: batch-" << batch_size
                    << " plan rejected by the static verifier; serving "
                    << "eagerly\n"
                    << report.ToString();
      return false;
    }
    ShardLocked().verify_reports[batch_size] = std::move(report);
  }
  ShardLocked().plans[batch_size] =
      std::make_unique<exec::PlanExecutor>(std::move(plan));
  ++stats_.plans_built;
  return true;
}

void InferenceSession::VerifyCachedPlanLocked(int64_t batch_size) {
  BackendPlans& shard = ShardLocked();
  const auto it = shard.plans.find(batch_size);
  if (it == shard.plans.end() ||
      shard.verify_reports.find(batch_size) != shard.verify_reports.end()) {
    return;
  }
  exec::VerifierReport report = exec::VerifyPlan(it->second->plan());
  ++stats_.plans_verified;
  if (!report.ok()) {
    stats_.plan_verifier_errors += report.errors;
    ++stats_.plan_invalidations;
    D2_LOG(ERROR) << "infer: cached batch-" << batch_size
                  << " plan rejected by the static verifier; dropping it\n"
                  << report.ToString();
    shard.plans.erase(it);
    return;
  }
  shard.verify_reports[batch_size] = std::move(report);
}

std::vector<Forecast> InferenceSession::PredictRequests(
    const std::vector<ForecastRequest>& requests) {
  std::vector<Forecast> results(requests.size());
  std::vector<size_t> valid;
  valid.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    std::string error = ValidateRequest(requests[i]);
    if (error.empty()) {
      valid.push_back(i);
    } else {
      results[i].error = std::move(error);
      results[i].reason = RejectReason::kBadRequest;
    }
  }
  if (valid.empty()) return results;

  std::vector<ForecastRequest> batch_requests;
  batch_requests.reserve(valid.size());
  for (size_t i : valid) batch_requests.push_back(requests[i]);

  const int64_t tf = horizon();
  const int64_t n = options_.num_nodes;
  const int64_t num_valid = static_cast<int64_t>(valid.size());
  std::lock_guard<std::mutex> lock(mu_);
  NoGradGuard no_grad;
  std::optional<ArenaGuard> arena_scope;
  if (arena_ != nullptr) arena_scope.emplace(arena_);

  // Serve from a captured plan when one matches. A batch smaller than every
  // plan is padded with blank requests up to the nearest plan size — model
  // forwards are batch-independent (asserted by the parity tests), so the
  // padding rows only cost compute and are dropped below.
  int64_t plan_size = 0;
  if (options_.use_plans) {
    const BackendPlans& shard = ShardLocked();
    const auto it = shard.plans.lower_bound(num_valid);
    if (it != shard.plans.end() &&
        (it->first == num_valid || options_.pad_to_plan)) {
      plan_size = it->first;
    }
  }
  if (plan_size > num_valid) {
    batch_requests.resize(static_cast<size_t>(plan_size), BlankRequest());
  }
  const data::Batch batch = AssembleBatch(batch_requests);
  const float* pd = plan_size > 0 ? TryReplayLocked(batch) : nullptr;
  Tensor prediction;  // keeps the eager result alive for the copy below
  if (pd != nullptr) {
    if (plan_size > num_valid) ++stats_.padded_replays;
  } else {
    prediction =
        scaler_.InverseTransform(model_->Forward(batch));  // [B, Tf, N, 1]
    ++stats_.eager_forwards;
    D2_CHECK_EQ(prediction.numel(), batch.batch_size * tf * n);
    pd = prediction.Data().data();
  }
  for (size_t k = 0; k < valid.size(); ++k) {
    Forecast& out = results[valid[k]];
    out.ok = true;
    out.horizon = tf;
    out.num_nodes = n;
    const float* src = pd + static_cast<int64_t>(k) * tf * n;
    out.values.assign(src, src + tf * n);
  }
  return results;
}

Forecast InferenceSession::PredictOne(const ForecastRequest& request) {
  std::vector<Forecast> results = PredictRequests({request});
  return std::move(results.front());
}

void InferenceSession::Warmup(int64_t batch_size, int64_t runs) {
  D2_CHECK_GT(batch_size, 0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.use_plans) {
      if (ShardLocked().plans.find(batch_size) == ShardLocked().plans.end()) {
        CapturePlanLocked(batch_size);  // eager forward also warms the pool
      } else if (options_.verify_plans) {
        // Cache hit: a plan captured before verification was enabled (or
        // whose report was dropped) gets verified here.
        VerifyCachedPlanLocked(batch_size);
      }
    }
  }
  const std::vector<ForecastRequest> requests(
      static_cast<size_t>(batch_size), BlankRequest());
  for (int64_t r = 0; r < runs; ++r) PredictRequests(requests);
}

BufferArenaStats InferenceSession::arena_stats() const {
  if (arena_ == nullptr) return BufferArenaStats{};
  return arena_->stats();
}

SessionStats InferenceSession::session_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<int64_t> InferenceSession::planned_batch_sizes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> sizes;
  const auto it = shards_.find(kernels::ActiveBackend().name);
  if (it == shards_.end()) return sizes;
  sizes.reserve(it->second.plans.size());
  for (const auto& [size, executor] : it->second.plans) sizes.push_back(size);
  return sizes;
}

std::map<int64_t, exec::VerifierReport> InferenceSession::verifier_reports()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = shards_.find(kernels::ActiveBackend().name);
  if (it == shards_.end()) return {};
  return it->second.verify_reports;
}

void InferenceSession::InvalidatePlans() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, shard] : shards_) {
    stats_.plan_invalidations += static_cast<int64_t>(shard.plans.size());
  }
  shards_.clear();
}

}  // namespace d2stgnn::infer
