#ifndef D2STGNN_INFER_BATCHING_SERVER_H_
#define D2STGNN_INFER_BATCHING_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/session.h"

// Micro-batching request server (DESIGN.md §9).
//
// Concurrent producers Submit() single-window requests and get futures; a
// dispatcher thread coalesces queued requests into batches and runs them
// through one InferenceSession forward, amortizing the per-op dispatch cost
// of the model across the batch — the standard pattern for serving a model
// under heavy traffic. The coalescing policy is the classic two-knob one:
//
//   * flush as soon as max_batch_size requests are waiting (full flush), or
//   * flush whatever is queued once the oldest request has waited
//     max_wait_us (timeout flush), so sparse traffic is never stalled
//     waiting for a batch that will not fill.
//
// Backpressure: the queue is bounded by max_queue_depth; Submit fails fast
// with an error Forecast ("queue full") instead of buffering unboundedly —
// callers see overload immediately and can shed or retry.
//
// Shutdown is graceful: every accepted request's future is resolved — with
// its prediction when draining (the default), with ok=false / "cancelled"
// otherwise. Submit after shutdown resolves immediately with "shutting
// down".

namespace d2stgnn::infer {

/// Coalescing and backpressure knobs.
struct BatchingOptions {
  /// Largest batch one forward serves (also the warm-up size).
  int64_t max_batch_size = 8;
  /// Longest a queued request may wait for its batch to fill before a
  /// partial batch is flushed.
  int64_t max_wait_us = 2000;
  /// Submit rejects once this many requests are queued (<= 0: unbounded).
  int64_t max_queue_depth = 4096;
  /// Run session warm-up forwards at batch sizes 1 and max_batch_size on
  /// construction, so the first real requests already hit the buffer pool.
  bool warmup = true;
};

/// Counters describing server traffic (a consistent snapshot).
struct BatchingServerStats {
  int64_t submitted = 0;        ///< accepted into the queue
  int64_t rejected = 0;         ///< refused at Submit (full / shutting down)
  int64_t completed = 0;        ///< resolved with a session result
  int64_t cancelled = 0;        ///< resolved with "cancelled" at shutdown
  int64_t batches = 0;          ///< dispatched forwards
  int64_t full_flushes = 0;     ///< batches flushed at max_batch_size
  int64_t timeout_flushes = 0;  ///< batches flushed by the max-wait timer
  int64_t shutdown_flushes = 0; ///< batches flushed while draining
  int64_t max_queue_depth_seen = 0;
};

/// The dispatcher + bounded queue around one InferenceSession.
class BatchingServer {
 public:
  /// Borrows `session` (must outlive the server) and starts the dispatcher
  /// thread.
  BatchingServer(InferenceSession* session, const BatchingOptions& options);

  /// Graceful drain-and-join (Shutdown(true)).
  ~BatchingServer();

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Enqueues one request. The future always becomes ready: with a
  /// prediction, a validation error, "queue full", "shutting down", or
  /// "cancelled". Malformed requests are rejected here, before queuing.
  std::future<Forecast> Submit(ForecastRequest request);

  /// Stops accepting requests and joins the dispatcher. drain=true serves
  /// everything already queued (in max_batch_size chunks, without waiting
  /// on the flush timer); drain=false resolves queued requests as
  /// "cancelled". Idempotent; the first call's drain mode wins.
  void Shutdown(bool drain = true);

  /// Requests currently queued (waiting for a batch).
  int64_t QueueDepth() const;

  BatchingServerStats stats() const;

 private:
  struct Pending {
    ForecastRequest request;
    std::promise<Forecast> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void DispatcherLoop();

  InferenceSession* session_;
  BatchingOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool drain_ = true;
  BatchingServerStats stats_;

  std::thread dispatcher_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_BATCHING_SERVER_H_
