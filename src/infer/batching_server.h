#ifndef D2STGNN_INFER_BATCHING_SERVER_H_
#define D2STGNN_INFER_BATCHING_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/overload.h"
#include "infer/session.h"
#include "infer/session_host.h"

// Micro-batching request server (DESIGN.md §9, §13).
//
// Concurrent producers Submit() single-window requests and get futures; a
// dispatcher thread coalesces queued requests into batches and runs them
// through one InferenceSession forward, amortizing the per-op dispatch cost
// of the model across the batch — the standard pattern for serving a model
// under heavy traffic. The coalescing policy is the classic two-knob one:
//
//   * flush as soon as max_batch_size requests are waiting (full flush), or
//   * flush whatever is queued once the oldest request has waited
//     max_wait_us (timeout flush), so sparse traffic is never stalled
//     waiting for a batch that will not fill.
//
// Overload resilience (DESIGN.md §13):
//
//   * Admission — every Submit passes an AdmissionController (bounded
//     queue, optional token bucket, optional EWMA-latency shed). Rejections
//     are *typed*: the Forecast carries a RejectReason, a retry_after_us
//     backoff hint, and an error string with the rejection context (queue
//     depth, active batch size). See infer/retry.h for the client side.
//   * Deadlines — a request's deadline_us budget is stamped at Submit;
//     a request still queued past its budget is dropped before dispatch
//     (kDeadlineExceeded) and never pads a batch.
//   * Degradation — an OverloadGovernor maps queue pressure to tiers:
//     kDegraded shrinks the flush timer, kCapped also caps batches at the
//     largest planned size (every dispatch replays a plan), kShedding also
//     refuses low-priority requests. Recovery is hysteretic.
//   * Hot reload — SwapSession atomically replaces the served session;
//     the in-flight batch finishes on the old weights (it holds its own
//     reference), every later batch runs on the new ones. Driven by
//     infer/hot_reload.h.
//
// Shutdown is graceful: every accepted request's future is resolved — with
// its prediction when draining (the default), with ok=false / kCancelled
// otherwise. Submit after shutdown resolves immediately as kShuttingDown.

namespace d2stgnn::infer {

/// Coalescing, backpressure, and overload knobs.
struct BatchingOptions {
  /// Largest batch one forward serves (also the warm-up size).
  int64_t max_batch_size = 8;
  /// Longest a queued request may wait for its batch to fill before a
  /// partial batch is flushed (shrunk under degradation, see `degrade`).
  int64_t max_wait_us = 2000;
  /// Submit rejects once this many requests are queued (<= 0: unbounded;
  /// this also disables the queue-pressure degrade tiers).
  int64_t max_queue_depth = 4096;
  /// Run session warm-up forwards at batch sizes 1 and max_batch_size on
  /// construction (and on every SwapSession), so the first real requests
  /// already hit captured plans and the buffer pool.
  bool warmup = true;
  /// Admission gate in front of the queue (rate limit, latency shed).
  AdmissionOptions admission;
  /// Degradation-tier watermarks and hysteresis.
  DegradeOptions degrade;
  /// max_wait_us divisor at tier kDegraded (and a further 2x at kCapped+).
  int64_t degraded_wait_divisor = 4;
};

/// Counters describing server traffic (a consistent snapshot).
struct BatchingServerStats {
  int64_t submitted = 0;        ///< accepted into the queue
  int64_t rejected = 0;         ///< refused at Submit (sum of rejected_*)
  int64_t completed = 0;        ///< resolved with a session result
  int64_t cancelled = 0;        ///< resolved kCancelled at shutdown
  int64_t batches = 0;          ///< dispatched forwards
  int64_t full_flushes = 0;     ///< batches flushed at the batch cap
  int64_t timeout_flushes = 0;  ///< batches flushed by the max-wait timer
  int64_t shutdown_flushes = 0; ///< batches flushed while draining
  int64_t max_queue_depth_seen = 0;

  // Typed shed accounting (DESIGN.md §13). `rejected` is their sum.
  int64_t rejected_bad_request = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_rate_limited = 0;
  int64_t rejected_overloaded = 0;    ///< EWMA shed + injected admit faults
  int64_t rejected_low_priority = 0;  ///< kShedding tier refusals
  int64_t rejected_shutdown = 0;
  /// Accepted requests dropped in the queue when their deadline passed
  /// (never dispatched; not part of `rejected`).
  int64_t expired_deadlines = 0;

  OverloadTier tier = OverloadTier::kNormal;  ///< current degrade tier
  int64_t degrade_transitions = 0;            ///< tier changes so far
  int64_t session_swaps = 0;                  ///< successful SwapSession calls
  double ewma_request_us = 0.0;  ///< smoothed per-request service time
};

/// The dispatcher + admission gate + bounded queue around one (swappable)
/// InferenceSession. Implements SessionHost so a CheckpointReloader can
/// target it directly.
class BatchingServer : public SessionHost {
 public:
  /// Borrows `session` (must outlive the server) and starts the dispatcher
  /// thread.
  BatchingServer(InferenceSession* session, const BatchingOptions& options);

  /// Shares ownership of `session` — required when SwapSession will retire
  /// it mid-flight.
  BatchingServer(std::shared_ptr<InferenceSession> session,
                 const BatchingOptions& options);

  /// Graceful drain-and-join (Shutdown(true)).
  ~BatchingServer() override;

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Enqueues one request. The future always becomes ready: with a
  /// prediction, or with ok=false and a typed RejectReason (malformed
  /// request, admission rejection, expired deadline, shutdown). Malformed
  /// requests are rejected here, before queuing.
  std::future<Forecast> Submit(ForecastRequest request);

  /// Atomically replaces the served session (checkpoint hot-reload). The
  /// in-flight batch finishes on the old session — it holds a reference —
  /// and every batch dispatched after this call runs on `next`. When
  /// options().warmup is set, `next` is warmed (plans captured + verified)
  /// *before* the swap, so the first post-swap batch replays a warm plan;
  /// sizes the session already has plans for (a pre-warmed staged shadow)
  /// are not warmed twice.
  void SwapSession(std::shared_ptr<InferenceSession> next) override;

  /// The currently served session (callers may briefly outlive a swap).
  std::shared_ptr<InferenceSession> session() const;

  /// Stops accepting requests and joins the dispatcher. drain=true serves
  /// everything already queued (in max_batch_size chunks, without waiting
  /// on the flush timer; expired requests still miss their deadline);
  /// drain=false resolves queued requests as kCancelled. Idempotent; the
  /// first call's drain mode wins.
  void Shutdown(bool drain = true);

  /// Requests currently queued (waiting for a batch).
  int64_t QueueDepth() const;

  BatchingServerStats stats() const;
  const BatchingOptions& options() const { return options_; }
  int64_t max_batch_size() const override { return options_.max_batch_size; }

 private:
  struct Pending {
    ForecastRequest request;
    std::promise<Forecast> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute deadline (stamped at Submit); meaningful iff has_deadline.
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void DispatcherLoop();

  /// Warms `session` at batch sizes 1 and max (skipping sizes that already
  /// have captured plans), and returns its largest planned batch size (0
  /// when plans are off / capture failed).
  int64_t WarmAndPlanCap(InferenceSession* session) const;

  /// Moves every expired entry out of the queue. Requires mu_ held; the
  /// caller resolves the returned entries without the lock.
  std::deque<Pending> TakeExpiredLocked(
      std::chrono::steady_clock::time_point now);

  /// Builds the rejected future and counts it under mu_ (taken inside).
  std::future<Forecast> Reject(RejectReason reason, std::string error,
                               int64_t retry_after_us);

  BatchingOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<InferenceSession> session_;  ///< guarded by mu_
  int64_t plan_cap_ = 0;  ///< largest planned batch size of session_
  std::deque<Pending> queue_;
  bool shutdown_ = false;
  bool drain_ = true;
  BatchingServerStats stats_;
  AdmissionController admission_;
  OverloadGovernor governor_;

  std::thread dispatcher_;
};

}  // namespace d2stgnn::infer

#endif  // D2STGNN_INFER_BATCHING_SERVER_H_
