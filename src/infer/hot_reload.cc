#include "infer/hot_reload.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "train/checkpoint.h"

namespace d2stgnn::infer {

CheckpointReloader::CheckpointReloader(SessionHost* host, ModelFactory factory,
                                       const data::StandardScaler& scaler,
                                       const SessionOptions& session_options,
                                       const HotReloadOptions& options)
    : host_(host),
      factory_(std::move(factory)),
      scaler_(scaler),
      session_options_(session_options),
      options_(options) {
  D2_CHECK(host_ != nullptr);
  D2_CHECK(factory_ != nullptr);
  D2_CHECK_GT(options_.poll_interval_ms, 0);
}

CheckpointReloader::~CheckpointReloader() { Stop(); }

ReloadStatus CheckpointReloader::PollOnce() {
  ReloadStatus status;
  const std::string latest = train::LatestCheckpoint(options_.directory);
  std::string active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = active_;
  }
  if (latest.empty() || latest == active) return status;

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.attempts;
  }
  Clock* clock = ClockOrReal(options_.clock);
  const SteadyTime staging_start = clock->Now();
  status = StageAndSwap(latest);
  const int64_t staging_us =
      std::chrono::duration_cast<std::chrono::microseconds>(clock->Now() -
                                                            staging_start)
          .count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.last_staging_us = staging_us;
    if (status.outcome == ReloadOutcome::kSwapped) {
      ++stats_.swaps;
      stats_.active_checkpoint = latest;
      active_ = latest;
      // A later, *older-named* file cannot roll us back: LatestCheckpoint
      // sorts by name, and active_ only ever advances.
    } else {
      ++stats_.rejects;
      stats_.last_error = status.error;
      // active_ is left alone: the same checkpoint is retried next poll,
      // so a transient failure (torn copy-in-progress, injected fault)
      // heals without intervention.
    }
  }
  return status;
}

ReloadStatus CheckpointReloader::StageAndSwap(const std::string& checkpoint) {
  ReloadStatus status;
  status.checkpoint = checkpoint;
  status.outcome = ReloadOutcome::kRejected;

  // Chaos seam "infer.hot_reload": a scripted staging failure (what a
  // corrupt or half-copied checkpoint produces). The old session must keep
  // serving, and the next poll must retry.
  if (fault::ConsumeFault("infer.hot_reload")) {
    status.error = "injected hot-reload fault";
    D2_LOG(WARNING) << "infer: hot-reload of " << checkpoint
                    << " rejected: " << status.error;
    return status;
  }

  std::unique_ptr<train::ForecastingModel> model = factory_();
  if (model == nullptr) {
    status.error = "model factory returned null";
    D2_LOG(ERROR) << "infer: hot-reload of " << checkpoint
                  << " rejected: " << status.error;
    return status;
  }

  SessionOptions shadow_options = session_options_;
  if (options_.verify_plans) shadow_options.verify_plans = true;
  std::unique_ptr<InferenceSession> staged = InferenceSession::Load(
      std::move(model), checkpoint, scaler_, shadow_options);
  if (staged == nullptr) {
    status.error = "checkpoint load failed (corrupt, truncated, or mismatched)";
    D2_LOG(WARNING) << "infer: hot-reload of " << checkpoint
                    << " rejected: " << status.error;
    return status;
  }

  // Warm the shadow while the old session serves: plans are captured (and
  // statically verified, per shadow_options) before any traffic sees it.
  // Sizes are deduplicated first — repeated configured sizes must not cost
  // repeated warm-up forwards — and non-positive entries are dropped.
  std::vector<int64_t> sizes = options_.warmup_batch_sizes;
  if (sizes.empty()) {
    sizes = {1, host_->max_batch_size()};
  }
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                             [](int64_t size) { return size <= 0; }),
              sizes.end());
  for (int64_t size : sizes) staged->Warmup(size);

  if (shadow_options.use_plans && options_.verify_plans) {
    const SessionStats session_stats = staged->session_stats();
    if (session_stats.plan_verifier_errors > 0) {
      status.error = "staged plans failed static verification";
      D2_LOG(ERROR) << "infer: hot-reload of " << checkpoint
                    << " rejected: " << status.error << " ("
                    << session_stats.plan_verifier_errors << " errors)";
      return status;
    }
    if (static_cast<int64_t>(staged->planned_batch_sizes().size()) <
        static_cast<int64_t>(sizes.size())) {
      status.error = "staged session is missing captured plans";
      D2_LOG(ERROR) << "infer: hot-reload of " << checkpoint
                    << " rejected: " << status.error;
      return status;
    }
  }

  host_->SwapSession(std::shared_ptr<InferenceSession>(std::move(staged)));
  status.outcome = ReloadOutcome::kSwapped;
  D2_LOG(INFO) << "infer: hot-swapped session to " << checkpoint;
  return status;
}

void CheckpointReloader::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  watcher_ = std::thread([this] {
    for (;;) {
      PollOnce();
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_interval_ms),
                   [this] { return !running_; });
      if (!running_) return;
    }
  });
}

void CheckpointReloader::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  cv_.notify_all();
  // Join outside mu_: the watcher needs the mutex to observe !running_.
  if (watcher_.joinable()) watcher_.join();
}

ReloadStats CheckpointReloader::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace d2stgnn::infer
