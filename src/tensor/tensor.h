#ifndef D2STGNN_TENSOR_TENSOR_H_
#define D2STGNN_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace d2stgnn {

/// Dimension sizes of a tensor, outermost first. Row-major layout.
using Shape = std::vector<int64_t>;

/// Returns the number of elements implied by `shape` (1 for a scalar shape).
int64_t NumElements(const Shape& shape);

/// Renders a shape as "[2, 3, 4]".
std::string ShapeToString(const Shape& shape);

/// Returns row-major strides for `shape`.
std::vector<int64_t> RowMajorStrides(const Shape& shape);

class BufferArena;  // tensor/buffer_arena.h

namespace internal {
struct TensorImpl;
struct GradFn;
}  // namespace internal

/// A dense float32 tensor with reverse-mode automatic differentiation.
///
/// Tensor is a cheap, value-semantic handle (shared_ptr to its
/// implementation): copies alias the same storage and autograd node. Ops in
/// tensor/ops.h build a dynamic tape; calling Backward() on a scalar result
/// accumulates gradients into every reachable tensor that requires them.
///
/// Example:
///   Tensor w = Tensor::Randn({3, 3}, rng).SetRequiresGrad(true);
///   Tensor loss = Sum(MatMul(x, w));
///   loss.Backward();
///   // w.GradData() now holds dLoss/dw.
class Tensor {
 public:
  /// Creates a null tensor (no storage). defined() is false.
  Tensor();

  /// Creates a zero-filled tensor of the given shape.
  explicit Tensor(const Shape& shape);

  /// Creates a tensor of the given shape filled with `value`.
  Tensor(const Shape& shape, float value);

  /// Creates a tensor from explicit data (size must match shape).
  Tensor(const Shape& shape, std::vector<float> data);

  /// Factory: zero-filled tensor.
  static Tensor Zeros(const Shape& shape);

  /// Factory: one-filled tensor.
  static Tensor Ones(const Shape& shape);

  /// Factory: filled with `value`.
  static Tensor Full(const Shape& shape, float value);

  /// Factory: scalar (0-dimensional) tensor.
  static Tensor Scalar(float value);

  /// Factory: i.i.d. standard-normal entries drawn from `rng`.
  static Tensor Randn(const Shape& shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// Factory: i.i.d. uniform entries in [lo, hi) drawn from `rng`.
  static Tensor Rand(const Shape& shape, Rng& rng, float lo = 0.0f,
                     float hi = 1.0f);

  /// Factory: identity matrix of size n x n.
  static Tensor Eye(int64_t n);

  /// True if this handle points at storage.
  bool defined() const { return impl_ != nullptr; }

  /// The tensor's shape. Requires defined().
  const Shape& shape() const;

  /// Number of dimensions.
  int64_t dim() const;

  /// Size of dimension `d`; negative d counts from the end.
  int64_t size(int64_t d) const;

  /// Total number of elements.
  int64_t numel() const;

  /// Mutable flat storage (row-major). Mutating data of a tensor that is
  /// already part of a tape invalidates gradients; do it only on leaves.
  std::vector<float>& Data();

  /// Immutable flat storage (row-major).
  const std::vector<float>& Data() const;

  /// Element access by flat index.
  float At(int64_t flat_index) const;

  /// Element access by multi-dimensional index.
  float At(const std::vector<int64_t>& index) const;

  /// Value of a scalar (1-element) tensor.
  float Item() const;

  /// Marks (or unmarks) this tensor as a gradient leaf. Returns *this for
  /// chaining.
  Tensor& SetRequiresGrad(bool requires_grad);

  /// True if gradients should flow to this tensor (leaf flag or interior
  /// node of a tape).
  bool RequiresGrad() const;

  /// The accumulated gradient, as a tensor of the same shape. Zeros if
  /// Backward has not reached this tensor. Requires defined().
  Tensor Grad() const;

  /// Immutable view of the gradient buffer (empty if never touched).
  const std::vector<float>& GradData() const;

  /// Clears the accumulated gradient of this tensor. (Const because a
  /// Tensor is a shared handle; the underlying buffer is mutable state.)
  void ZeroGrad() const;

  /// Returns a tensor sharing this tensor's storage but detached from the
  /// autograd tape (no grad_fn, requires_grad false).
  Tensor Detach() const;

  /// Returns a deep copy of the data (detached leaf).
  Tensor Clone() const;

  /// Runs reverse-mode differentiation from this scalar tensor, accumulating
  /// into the .Grad() of every reachable tensor that requires grad.
  void Backward() const;

  /// Human-readable summary ("Tensor[2, 3] = {...}" truncated).
  std::string ToString() const;

  /// Internal: implementation pointer (stable identity for autograd).
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

  /// Internal: wraps an implementation pointer.
  static Tensor FromImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

namespace internal {

/// One node of the autograd tape: the op that produced a tensor, the inputs
/// it captured, and the function that maps the output gradient to input
/// gradients.
struct GradFn {
  GradFn();
  ~GradFn();
  GradFn(const GradFn&) = delete;
  GradFn& operator=(const GradFn&) = delete;

  /// Op name for debugging ("MatMul", "Add", ...).
  std::string name;
  /// The op's inputs (kept alive for the backward pass).
  std::vector<Tensor> inputs;
  /// Accumulates gradients into `inputs` given the produced tensor (whose
  /// grad buffer holds dLoss/dOutput when called).
  std::function<void(const Tensor& output)> backward;
};

/// Number of GradFn nodes currently alive in the process. The tape analyzer
/// uses this to spot nodes that leak past the end of a training step.
int64_t LiveGradFnCount();

/// Storage + autograd metadata behind a Tensor handle.
struct TensorImpl {
  TensorImpl() = default;
  /// Returns `data` to `arena` when the tensor was created under an
  /// ArenaGuard (see tensor/buffer_arena.h).
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;

  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // empty until first accumulation
  bool requires_grad = false;
  std::shared_ptr<GradFn> grad_fn;  // null for leaves
  /// The pool `data` is recycled into on destruction (null = plain heap
  /// buffer). Keeps the arena alive as long as any of its tensors is.
  std::shared_ptr<BufferArena> arena;
  /// Times Backward() was invoked with this tensor as the root. A second
  /// run re-accumulates every gradient (usually a bug); the tape analyzer
  /// flags it.
  int32_t backward_runs = 0;
};

}  // namespace internal

/// While alive on a thread, ops do not record autograd tape nodes (used
/// inside backward implementations and inference paths).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  /// True if tape recording is currently disabled on this thread.
  static bool Active();

 private:
  bool previous_;
};

/// Adds `delta` into the grad buffer of `target` (allocating zeros first if
/// needed). Shapes must match. Used by op backward implementations.
void AccumulateGrad(const Tensor& target, const Tensor& delta);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_TENSOR_H_
