#ifndef D2STGNN_TENSOR_OP_REGISTRY_H_
#define D2STGNN_TENSOR_OP_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

// Op-coverage gradcheck registry: every differentiable op exported by
// tensor/ops.h registers a sample-input factory here, and the test suite
// (tests/op_gradcheck_test.cc) both finite-difference-checks every entry
// and fails when an op declared in ops.h lacks one — so an op whose
// backward was never verified cannot ship.

namespace d2stgnn {

/// One ready-to-run gradient-check scenario for a single op.
struct OpGradCheckCase {
  /// The ops.h function name this case exercises ("MatMul", "Softmax", ...).
  std::string op;
  /// Leaf parameters (requires_grad set) that `loss` closes over.
  std::vector<Tensor> params;
  /// Deterministic, re-evaluable scalar loss whose graph contains `op`.
  std::function<Tensor()> loss;
};

/// Builds a case from a seeded generator. Factories that need exact kink
/// placement (Relu, Max, Clamp, ...) may ignore the generator and use fixed
/// data.
using OpGradCheckFactory = std::function<OpGradCheckCase(Rng&)>;

/// Process-wide registry mapping op name -> gradcheck case factory.
class OpGradCheckRegistry {
 public:
  /// The singleton, with every built-in op of ops.h pre-registered.
  static OpGradCheckRegistry& Instance();

  /// Registers (or replaces) the factory for `op`.
  void Register(const std::string& op, OpGradCheckFactory factory);

  /// True if `op` has a factory.
  bool Contains(const std::string& op) const;

  /// All registered op names, sorted.
  std::vector<std::string> OpNames() const;

  /// Instantiates the case for `op`. Aborts if `op` is unregistered.
  OpGradCheckCase MakeCase(const std::string& op, Rng& rng) const;

  /// Ops declared in ops.h that are exempt from gradcheck coverage (shape
  /// or bookkeeping helpers with no backward of their own). Currently
  /// empty: every Tensor-returning function in ops.h is differentiable.
  static const std::vector<std::string>& NonDifferentiableAllowlist();

 private:
  OpGradCheckRegistry();

  std::map<std::string, OpGradCheckFactory> factories_;
};

/// Extracts the op names from the text of tensor/ops.h: every free function
/// declared at column zero returning `Tensor` (operator overloads are
/// excluded; overload sets collapse to one name). The completeness test
/// compares this against the registry, making the coverage requirement
/// self-enforcing as ops.h grows.
std::vector<std::string> ParseOpsHeaderOpNames(const std::string& header_text);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_OP_REGISTRY_H_
