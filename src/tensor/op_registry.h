#ifndef D2STGNN_TENSOR_OP_REGISTRY_H_
#define D2STGNN_TENSOR_OP_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

// Op-coverage gradcheck registry: every differentiable op exported by
// tensor/ops.h registers a sample-input factory here, and the test suite
// (tests/op_gradcheck_test.cc) both finite-difference-checks every entry
// and fails when an op declared in ops.h lacks one — so an op whose
// backward was never verified cannot ship.

namespace d2stgnn {

/// One ready-to-run gradient-check scenario for a single op.
struct OpGradCheckCase {
  /// The ops.h function name this case exercises ("MatMul", "Softmax", ...).
  std::string op;
  /// Leaf parameters (requires_grad set) that `loss` closes over.
  std::vector<Tensor> params;
  /// Deterministic, re-evaluable scalar loss whose graph contains `op`.
  std::function<Tensor()> loss;
};

/// Builds a case from a seeded generator. Factories that need exact kink
/// placement (Relu, Max, Clamp, ...) may ignore the generator and use fixed
/// data.
using OpGradCheckFactory = std::function<OpGradCheckCase(Rng&)>;

/// Process-wide registry mapping op name -> gradcheck case factory.
class OpGradCheckRegistry {
 public:
  /// The singleton, with every built-in op of ops.h pre-registered.
  static OpGradCheckRegistry& Instance();

  /// Registers (or replaces) the factory for `op`.
  void Register(const std::string& op, OpGradCheckFactory factory);

  /// True if `op` has a factory.
  bool Contains(const std::string& op) const;

  /// All registered op names, sorted.
  std::vector<std::string> OpNames() const;

  /// Instantiates the case for `op`. Aborts if `op` is unregistered.
  OpGradCheckCase MakeCase(const std::string& op, Rng& rng) const;

  /// Ops declared in ops.h that are exempt from gradcheck coverage (shape
  /// or bookkeeping helpers with no backward of their own). Currently
  /// empty: every Tensor-returning function in ops.h is differentiable.
  static const std::vector<std::string>& NonDifferentiableAllowlist();

 private:
  OpGradCheckRegistry();

  std::map<std::string, OpGradCheckFactory> factories_;
};

/// Extracts the op names from the text of tensor/ops.h: every free function
/// declared at column zero returning `Tensor` (operator overloads are
/// excluded; overload sets collapse to one name). The completeness test
/// compares this against the registry, making the coverage requirement
/// self-enforcing as ops.h grows.
std::vector<std::string> ParseOpsHeaderOpNames(const std::string& header_text);

/// Replay-time classification of one plan-step op — the read/write contract
/// the static plan verifier (exec/plan_verifier.h) checks captured
/// ExecutionPlans against. Every step reads each of its inputs in full and
/// writes its whole output slot; the traits record the exceptions to the
/// plain overwrite model.
struct PlanOpTraits {
  /// The kernel accumulates (+=) into its output, so the replay executor
  /// must zero the slot first (PlanStep::zero_output must be set).
  bool accumulates = false;
  /// The op consumes an int64 index vector (PlanStep::index_input or
  /// baked_indices); non-indexed ops must carry neither.
  bool indexed = false;
  /// The output is a verbatim element-order copy of the single input —
  /// a copy-elimination / fusion candidate the verifier flags as advisory.
  bool pure_copy = false;
};

/// Traits for `op`, or nullptr when `op` is not a name GraphCapture ever
/// records ("SumDim" aliases the dim overload of Sum; composed ops such as
/// Mean or Transpose never appear in plans — they lower to these). The
/// verifier treats an unknown name as an error, so this table must grow
/// with the capture surface in ops.cc.
const PlanOpTraits* FindPlanOpTraits(const std::string& op);

/// Every op name plans may contain, sorted (the domain of FindPlanOpTraits).
std::vector<std::string> PlanOpNames();

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_OP_REGISTRY_H_
