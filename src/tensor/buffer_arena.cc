#include "tensor/buffer_arena.h"

#include <utility>

#include "common/check.h"

namespace d2stgnn {

std::vector<float> BufferArena::Acquire(int64_t n) {
  D2_CHECK_GE(n, 0);
  std::vector<float> buffer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = free_.find(n);
    if (it != free_.end() && !it->second.empty()) {
      buffer = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.pool_hits;
      --stats_.pooled_buffers;
      stats_.pooled_floats -= n;
    } else {
      ++stats_.fresh_allocations;
    }
  }
  // Zero-fill outside the lock. A pooled buffer already has size == n, so
  // assign never reallocates and the data pointer stays stable.
  buffer.assign(static_cast<size_t>(n), 0.0f);
  if (buffer.data() != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_.insert(buffer.data());
  }
  return buffer;
}

void BufferArena::Release(std::vector<float>&& buffer) {
  if (buffer.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_.erase(buffer.data());  // usually a no-op (adopt claimed it)
  const int64_t n = static_cast<int64_t>(buffer.size());
  ++stats_.released;
  ++stats_.pooled_buffers;
  stats_.pooled_floats += n;
  free_[n].push_back(std::move(buffer));
}

void BufferArena::NoteAdopt(const float* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (outstanding_.erase(ptr) == 0) ++stats_.external_adopts;
}

BufferArenaStats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferArena::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
  stats_.pooled_buffers = 0;
  stats_.pooled_floats = 0;
}

namespace {
thread_local std::shared_ptr<BufferArena> g_active_arena;
}  // namespace

ArenaGuard::ArenaGuard(std::shared_ptr<BufferArena> arena)
    : previous_(std::move(g_active_arena)) {
  g_active_arena = std::move(arena);
}

ArenaGuard::~ArenaGuard() { g_active_arena = std::move(previous_); }

const std::shared_ptr<BufferArena>& ArenaGuard::Active() {
  return g_active_arena;
}

namespace internal {

std::vector<float> AcquireBuffer(int64_t n) {
  const std::shared_ptr<BufferArena>& arena = ArenaGuard::Active();
  if (arena != nullptr) return arena->Acquire(n);
  return std::vector<float>(static_cast<size_t>(n));
}

}  // namespace internal

}  // namespace d2stgnn
