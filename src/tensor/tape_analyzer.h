#ifndef D2STGNN_TENSOR_TAPE_ANALYZER_H_
#define D2STGNN_TENSOR_TAPE_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

// Static validator of the recorded autograd graph. AnalyzeTape walks the
// GradFn DAG under a tensor and reports structural problems — cycles,
// double-backward misuse — plus size statistics; TapeWatchdog compares
// those statistics across training steps to catch per-step tape growth
// (e.g. a loss accumulated as `total = total + loss`) and GradFn nodes
// leaked past the end of a step (saved inputs kept alive after Backward).
//
// The trainer runs a watchdog automatically in debug builds at the end of
// each training step; tests call AnalyzeTape directly.

namespace d2stgnn {

/// One structural problem found in (or across) tapes.
struct TapeIssue {
  /// Stable machine-readable kind: "cycle", "double-backward",
  /// "tape-growth", or "tape-leak".
  std::string kind;
  /// Human-readable detail.
  std::string detail;
};

/// Statistics and findings of one tape walk.
struct TapeReport {
  /// GradFn nodes reachable from the root.
  int64_t nodes = 0;
  /// Edges (input references to non-leaf tensors).
  int64_t edges = 0;
  /// Longest producer chain from the root.
  int64_t max_depth = 0;
  /// Input tensors kept alive by reachable GradFn nodes.
  int64_t saved_tensors = 0;
  /// Total elements of those saved tensors (memory proxy).
  int64_t saved_elements = 0;
  /// Process-wide live GradFn count at analysis time (includes nodes that
  /// belong to other tapes).
  int64_t live_gradfn = 0;
  /// Times Backward() ran with the analyzed tensor as root.
  int64_t backward_runs = 0;
  /// True if the walk re-entered a node on the active DFS path.
  bool has_cycle = false;
  /// Problems found; empty means the tape is structurally sound.
  std::vector<TapeIssue> issues;

  bool ok() const { return issues.empty(); }

  /// Multi-line summary for logs.
  std::string ToString() const;
};

/// Walks the autograd graph under `root` and validates it. Never mutates
/// the tape; safe to call before or after Backward().
TapeReport AnalyzeTape(const Tensor& root);

/// Cross-step tape health monitor. Call EndStep once per training step
/// (after the optimizer update, with the step's loss still in scope); after
/// `window` steps of history it flags monotonic growth of the reachable
/// tape and of the process-wide live GradFn count.
class TapeWatchdog {
 public:
  explicit TapeWatchdog(int64_t window = 4);

  /// Analyzes `loss`'s tape, appends cross-step findings, and records this
  /// step's sizes for future calls.
  TapeReport EndStep(const Tensor& loss);

  /// Steps observed so far.
  int64_t steps() const { return steps_; }

 private:
  int64_t window_;
  int64_t steps_ = 0;
  /// Reachable-node counts of the last `window_` steps.
  std::vector<int64_t> node_history_;
  /// live GradFn count minus reachable nodes, per step: tape allocated by
  /// earlier steps that should have been freed.
  std::vector<int64_t> unreachable_history_;
};

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_TAPE_ANALYZER_H_
