#include "tensor/checker.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace d2stgnn {
namespace internal {

std::atomic<int> g_check_mode{-1};

CheckMode InitCheckModeFromEnv() {
  CheckMode mode = CheckMode::kOff;
  if (const char* env = std::getenv("D2STGNN_CHECK_NUMERICS")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "abort") == 0) {
      mode = CheckMode::kAbort;
    } else if (std::strcmp(env, "warn") == 0) {
      mode = CheckMode::kWarn;
    }
  }
  // Another thread may have resolved (or SetCheckMode may have raced) the
  // mode first; first store wins so the answer is stable.
  int expected = -1;
  g_check_mode.compare_exchange_strong(expected, static_cast<int>(mode),
                                       std::memory_order_relaxed);
  return static_cast<CheckMode>(
      g_check_mode.load(std::memory_order_relaxed));
}

}  // namespace internal

namespace {

std::atomic<int64_t> g_violations{0};
std::mutex g_last_diagnostic_mutex;
std::string g_last_diagnostic;  // guarded by g_last_diagnostic_mutex

// Process-wide context stack, keyed by owner so destruction order across
// threads cannot pop someone else's entry. A violation detected on a
// thread-pool worker still reports the trainer's epoch/batch context.
std::mutex g_check_context_mutex;
std::vector<std::pair<const ScopedCheckContext*, std::string>>
    g_check_contexts;  // guarded by g_check_context_mutex

std::vector<std::string> SnapshotCheckContexts() {
  std::lock_guard<std::mutex> lock(g_check_context_mutex);
  std::vector<std::string> contexts;
  contexts.reserve(g_check_contexts.size());
  for (const auto& [owner, context] : g_check_contexts) {
    contexts.push_back(context);
  }
  return contexts;
}

// Returns the flat index of the first non-finite element, or -1.
int64_t FirstNonFinite(const std::vector<float>& values) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return static_cast<int64_t>(i);
  }
  return -1;
}

const char* NonFiniteKind(float v) { return std::isnan(v) ? "nan" : "inf"; }

// Builds the diagnostic, records it, and warns or aborts per the mode.
void ReportViolation(const std::string& op, const char* phase,
                     const char* buffer_kind, const Shape& shape,
                     int64_t index, float value,
                     const std::string& provenance) {
  std::ostringstream os;
  os << "numerics sentinel: " << NonFiniteKind(value) << " in "
     << buffer_kind << " [phase=" << phase << "] [op=" << op << "] at flat index "
     << index << " of shape " << ShapeToString(shape) << "\n  tape: "
     << provenance;
  for (const std::string& context : SnapshotCheckContexts()) {
    os << "\n  context: " << context;
  }
  const std::string diagnostic = os.str();
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_last_diagnostic_mutex);
    g_last_diagnostic = diagnostic;
  }
  if (GetCheckMode() == CheckMode::kAbort) {
    std::fprintf(stderr, "%s\n", diagnostic.c_str());
    std::fflush(stderr);
    std::abort();
  }
  D2_LOG(WARNING) << diagnostic;
}

}  // namespace

void SetCheckMode(CheckMode mode) {
  internal::g_check_mode.store(static_cast<int>(mode),
                               std::memory_order_relaxed);
}

std::string TapeProvenance(const Tensor& t, int max_depth) {
  std::ostringstream os;
  Tensor current = t;
  for (int depth = 0; depth < max_depth; ++depth) {
    if (!current.defined() || current.impl()->grad_fn == nullptr) {
      os << "(leaf)";
      return os.str();
    }
    const internal::GradFn& fn = *current.impl()->grad_fn;
    if (depth > 0) os << " <- ";
    os << fn.name;
    // Follow the first input that itself has a producer; fall back to the
    // first defined input so the chain ends at "(leaf)".
    Tensor next;
    for (const Tensor& input : fn.inputs) {
      if (!input.defined()) continue;
      if (!next.defined()) next = input;
      if (input.impl()->grad_fn != nullptr) {
        next = input;
        break;
      }
    }
    if (!next.defined()) return os.str();
    if (next.impl()->grad_fn == nullptr) {
      os << " <- (leaf)";
      return os.str();
    }
    current = next;
  }
  os << " <- ...";
  return os.str();
}

void CheckForwardOutput(const std::string& name, const Tensor& out,
                        const std::vector<Tensor>& inputs) {
  const int64_t index = FirstNonFinite(out.Data());
  if (index < 0) return;
  // The tape node is attached after this check runs, so derive provenance
  // from the op's inputs: name <- producer(inputs) <- ...
  std::string provenance = name;
  for (const Tensor& input : inputs) {
    if (input.defined() && input.impl()->grad_fn != nullptr) {
      provenance += " <- " + TapeProvenance(input);
      break;
    }
  }
  if (provenance == name) provenance += " <- (leaf)";
  ReportViolation(name, "forward", "op output", out.shape(), index,
                  out.At(index), provenance);
}

void CheckBackwardInputs(const internal::GradFn& fn) {
  for (const Tensor& input : fn.inputs) {
    if (!input.defined()) continue;
    const std::vector<float>& grad = input.GradData();
    if (grad.empty()) continue;
    const int64_t index = FirstNonFinite(grad);
    if (index < 0) continue;
    ReportViolation(fn.name, "backward", "gradient buffer", input.shape(),
                    index, grad[static_cast<size_t>(index)],
                    TapeProvenance(input));
  }
}

ScopedCheckContext::ScopedCheckContext(std::string context) {
  std::lock_guard<std::mutex> lock(g_check_context_mutex);
  g_check_contexts.emplace_back(this, std::move(context));
}

ScopedCheckContext::~ScopedCheckContext() {
  std::lock_guard<std::mutex> lock(g_check_context_mutex);
  for (auto it = g_check_contexts.rbegin(); it != g_check_contexts.rend();
       ++it) {
    if (it->first == this) {
      g_check_contexts.erase(std::next(it).base());
      break;
    }
  }
}

int64_t NumericsViolationCount() {
  return g_violations.load(std::memory_order_relaxed);
}

std::string LastNumericsDiagnostic() {
  std::lock_guard<std::mutex> lock(g_last_diagnostic_mutex);
  return g_last_diagnostic;
}

void ResetNumericsViolations() {
  g_violations.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_last_diagnostic_mutex);
  g_last_diagnostic.clear();
}

}  // namespace d2stgnn
