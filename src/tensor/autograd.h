#ifndef D2STGNN_TENSOR_AUTOGRAD_H_
#define D2STGNN_TENSOR_AUTOGRAD_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn {

/// Builds the result tensor of an op and, when tape recording is enabled and
/// any input requires grad, attaches a GradFn node holding `backward`.
///
/// `backward` receives the output tensor (whose grad buffer is populated)
/// and must AccumulateGrad into each input that requires grad. It runs under
/// a NoGradGuard, so it may freely use the public ops.
Tensor MakeOpResult(const std::string& name, const Shape& shape,
                    std::vector<float> data, std::vector<Tensor> inputs,
                    std::function<void(const Tensor&)> backward);

/// True if gradients can flow to any of `inputs`.
bool AnyRequiresGrad(const std::vector<Tensor>& inputs);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_AUTOGRAD_H_
