#include "tensor/grad_check.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace d2stgnn {

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, Rng& rng,
                               float eps, float tolerance,
                               int64_t max_entries_per_param) {
  GradCheckOptions options;
  options.eps = eps;
  options.tolerance = tolerance;
  options.max_entries_per_param = max_entries_per_param;
  return CheckGradients(loss_fn, params, rng, options);
}

GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, Rng& rng,
                               const GradCheckOptions& options) {
  const float eps = options.eps;
  GradCheckResult result;

  // Analytic pass.
  for (const Tensor& p : params) {
    D2_CHECK(p.defined());
    D2_CHECK(p.RequiresGrad()) << "grad-check parameter must require grad";
    p.ZeroGrad();
  }
  Tensor loss = loss_fn();
  D2_CHECK_EQ(loss.numel(), 1);
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(params.size());
  for (const Tensor& p : params) {
    analytic.push_back(p.GradData().empty()
                           ? std::vector<float>(p.Data().size(), 0.0f)
                           : p.GradData());
  }

  // Numeric pass (no tape needed).
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor p = params[pi];
    const int64_t n = p.numel();
    std::vector<int64_t> entries;
    if (n <= options.max_entries_per_param) {
      for (int64_t i = 0; i < n; ++i) entries.push_back(i);
    } else {
      for (int64_t i = 0; i < options.max_entries_per_param; ++i) {
        entries.push_back(rng.UniformInt(n));
      }
    }
    for (int64_t idx : entries) {
      const size_t u = static_cast<size_t>(idx);
      const float saved = p.Data()[u];
      float plus, minus;
      {
        NoGradGuard no_grad;
        p.Data()[u] = saved + eps;
        plus = loss_fn().Item();
        p.Data()[u] = saved - eps;
        minus = loss_fn().Item();
        p.Data()[u] = saved;
      }
      const float numeric = (plus - minus) / (2.0f * eps);
      const float exact = analytic[pi][u];
      const float denom = std::max({std::fabs(numeric), std::fabs(exact), 1.0f});
      const float rel = std::fabs(numeric - exact) / denom;
      result.max_relative_error = std::max(result.max_relative_error, rel);
      ++result.checked;
      if (rel > options.tolerance) {
        if (result.ok) {
          result.bad_param = static_cast<int64_t>(pi);
          result.bad_entry = idx;
          result.bad_analytic = exact;
          result.bad_numeric = numeric;
        }
        result.ok = false;
        if (options.log_mismatches) {
          D2_LOG(WARNING) << "grad mismatch: param " << pi << " entry " << idx
                          << " analytic=" << exact << " numeric=" << numeric
                          << " rel=" << rel;
        }
      }
    }
  }
  return result;
}

}  // namespace d2stgnn
