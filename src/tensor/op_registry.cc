#include "tensor/op_registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn {
namespace {

// Deterministic non-parameter weights so every loss is a *weighted* sum of
// the op output. A plain Sum would give constant output gradients (and for
// Softmax a constant loss), leaving parts of the backward unexercised.
Tensor FixedWeights(const Shape& shape) {
  std::vector<float> data(static_cast<size_t>(NumElements(shape)));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = 0.4f + 0.6f * std::sin(1.3f * static_cast<float>(i) + 0.7f);
  }
  return Tensor(shape, std::move(data));
}

Tensor WeightedSum(const Tensor& t) {
  return Sum(Mul(t, FixedWeights(t.shape())));
}

// Leaf with |value| in [0.6, 1.4] and random sign: clear of the kinks and
// poles at 0 that Relu/Abs/Div/Log-style ops have, at the default eps=1e-2.
Tensor SignedLeaf(const Shape& shape, Rng& rng) {
  Tensor t = Tensor::Rand(shape, rng, 0.6f, 1.4f);
  for (float& v : t.Data()) {
    if (rng.Uniform() < 0.5f) v = -v;
  }
  return t.SetRequiresGrad(true);
}

// Leaf with values in [0.5, 1.5] (for Log, Sqrt, PowScalar, Div divisors).
Tensor PositiveLeaf(const Shape& shape, Rng& rng) {
  return Tensor::Rand(shape, rng, 0.5f, 1.5f).SetRequiresGrad(true);
}

// Leaf with handpicked data, for ops whose derivative jumps at data-driven
// thresholds (Relu, Max, Clamp, ...): entries stay several eps away from
// every kink so the finite difference never straddles one.
Tensor FixedLeaf(const Shape& shape, std::vector<float> data) {
  return Tensor(shape, std::move(data)).SetRequiresGrad(true);
}

// Shorthand: a case with one parameter and a loss of the form
// WeightedSum(op(param)).
OpGradCheckCase UnaryCase(const std::string& op, Tensor x,
                          std::function<Tensor(const Tensor&)> apply) {
  OpGradCheckCase c;
  c.op = op;
  c.params = {x};
  c.loss = [x, apply = std::move(apply)]() { return WeightedSum(apply(x)); };
  return c;
}

}  // namespace

OpGradCheckRegistry& OpGradCheckRegistry::Instance() {
  static OpGradCheckRegistry* registry = new OpGradCheckRegistry();
  return *registry;
}

void OpGradCheckRegistry::Register(const std::string& op,
                                   OpGradCheckFactory factory) {
  factories_[op] = std::move(factory);
}

bool OpGradCheckRegistry::Contains(const std::string& op) const {
  return factories_.count(op) > 0;
}

std::vector<std::string> OpGradCheckRegistry::OpNames() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

OpGradCheckCase OpGradCheckRegistry::MakeCase(const std::string& op,
                                              Rng& rng) const {
  auto it = factories_.find(op);
  D2_CHECK(it != factories_.end()) << "no gradcheck case registered for op '"
                                   << op << "'";
  OpGradCheckCase c = it->second(rng);
  D2_CHECK_EQ(c.op, op);
  D2_CHECK(!c.params.empty()) << "gradcheck case for '" << op
                              << "' has no parameters";
  return c;
}

const std::vector<std::string>&
OpGradCheckRegistry::NonDifferentiableAllowlist() {
  static const std::vector<std::string>* allowlist =
      new std::vector<std::string>();  // every ops.h Tensor op has a backward
  return *allowlist;
}

namespace {

// Parses an identifier starting at `pos` that is immediately followed by
// '(' — a declaration, not an operator overload or a stray mention.
// Returns "" if the text at `pos` is not of that form.
std::string ParseCalleeName(const std::string& line, size_t pos) {
  size_t end = pos;
  while (end < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[end])) ||
          line[end] == '_')) {
    ++end;
  }
  if (end == pos || end >= line.size() || line[end] != '(') return "";
  return line.substr(pos, end - pos);
}

}  // namespace

std::vector<std::string> ParseOpsHeaderOpNames(
    const std::string& header_text) {
  std::set<std::string> names;
  std::vector<std::string> lines;
  {
    std::istringstream in(header_text);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Top-level declarations start at column 0, optionally behind
    // [[attribute]] prefixes ([[nodiscard]] Tensor Foo(...)).
    size_t pos = 0;
    while (line.compare(pos, 2, "[[") == 0) {
      const size_t close = line.find("]]", pos);
      if (close == std::string::npos) break;
      pos = close + 2;
      while (pos < line.size() && line[pos] == ' ') ++pos;
    }
    constexpr const char kType[] = "Tensor";
    constexpr size_t kTypeLen = sizeof(kType) - 1;
    if (line.compare(pos, kTypeLen, kType) != 0) continue;
    pos += kTypeLen;
    if (line.find_first_not_of(" \t", pos) == std::string::npos) {
      // Return type alone on its line: the name starts the next line.
      if (i + 1 >= lines.size()) continue;
      const std::string& next = lines[i + 1];
      const size_t name_pos = next.find_first_not_of(" \t");
      if (name_pos == std::string::npos) continue;
      const std::string name = ParseCalleeName(next, name_pos);
      if (!name.empty()) names.insert(name);
      continue;
    }
    if (line[pos] != ' ') continue;  // e.g. "TensorImpl ..." — another type
    const std::string name = ParseCalleeName(line, pos + 1);
    if (!name.empty()) names.insert(name);
  }
  return {names.begin(), names.end()};
}

namespace {

// One row per op name GraphCapture records (the RecordStep/RecordIndexedStep
// call sites in ops.cc). Composed ops (Mean, Neg, Transpose, Unsqueeze,
// Squeeze, Stack, Select, PadFront, Dropout) lower to these and never appear
// in plans under their own names.
const std::map<std::string, PlanOpTraits>& PlanOpTable() {
  static const auto* table = new std::map<std::string, PlanOpTraits>{
      // Elementwise binary (same-shape and broadcast variants).
      {"Add", {}},
      {"Sub", {}},
      {"Mul", {}},
      {"Div", {}},
      // Elementwise unary (scalar-parameterized included).
      {"AddScalar", {}},
      {"MulScalar", {}},
      {"PowScalar", {}},
      {"Relu", {}},
      {"LeakyRelu", {}},
      {"Sigmoid", {}},
      {"Tanh", {}},
      {"Exp", {}},
      {"Log", {}},
      {"Sqrt", {}},
      {"Abs", {}},
      {"Gelu", {}},
      {"Clamp", {}},
      // Linear algebra: BatchedMatMul accumulates into its output.
      {"MatMul", {/*accumulates=*/true, /*indexed=*/false, /*pure_copy=*/false}},
      // Reductions.
      {"Sum", {}},
      {"SumDim", {}},
      {"Max", {}},
      {"Min", {}},
      {"Softmax", {}},
      // Shape ops. Reshape replays as a verbatim std::copy.
      {"Reshape", {/*accumulates=*/false, /*indexed=*/false, /*pure_copy=*/true}},
      {"Permute", {}},
      {"BroadcastTo", {}},
      {"Concat", {}},
      {"Slice", {}},
      // Indexing.
      {"EmbeddingLookup",
       {/*accumulates=*/false, /*indexed=*/true, /*pure_copy=*/false}},
  };
  return *table;
}

}  // namespace

const PlanOpTraits* FindPlanOpTraits(const std::string& op) {
  const auto& table = PlanOpTable();
  const auto it = table.find(op);
  return it == table.end() ? nullptr : &it->second;
}

std::vector<std::string> PlanOpNames() {
  std::vector<std::string> names;
  names.reserve(PlanOpTable().size());
  for (const auto& [name, traits] : PlanOpTable()) names.push_back(name);
  return names;
}

OpGradCheckRegistry::OpGradCheckRegistry() {
  // --- Elementwise binary ops (each with a broadcast on one side). ---
  Register("Add", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Add";
    Tensor a = SignedLeaf({2, 3}, rng);
    Tensor b = SignedLeaf({1, 3}, rng);
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Add(a, b)); };
    return c;
  });
  Register("Sub", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Sub";
    Tensor a = SignedLeaf({2, 3}, rng);
    Tensor b = SignedLeaf({3}, rng);
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Sub(a, b)); };
    return c;
  });
  Register("Mul", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Mul";
    Tensor a = SignedLeaf({2, 3}, rng);
    Tensor b = SignedLeaf({2, 1}, rng);
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Mul(a, b)); };
    return c;
  });
  Register("Div", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Div";
    Tensor a = SignedLeaf({2, 3}, rng);
    Tensor b = PositiveLeaf({3}, rng);  // divisor clear of 0
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Div(a, b)); };
    return c;
  });
  Register("AddScalar", [](Rng& rng) {
    return UnaryCase("AddScalar", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return AddScalar(x, 0.7f); });
  });
  Register("MulScalar", [](Rng& rng) {
    return UnaryCase("MulScalar", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return MulScalar(x, -1.3f); });
  });
  Register("PowScalar", [](Rng& rng) {
    return UnaryCase("PowScalar", PositiveLeaf({2, 3}, rng),
                     [](const Tensor& x) { return PowScalar(x, 1.7f); });
  });

  // --- Elementwise unary ops. ---
  Register("Neg", [](Rng& rng) {
    return UnaryCase("Neg", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Neg(x); });
  });
  Register("Relu", [](Rng&) {
    return UnaryCase("Relu",
                     FixedLeaf({2, 3}, {-1.2f, 0.8f, -0.4f, 1.5f, 0.6f, -0.9f}),
                     [](const Tensor& x) { return Relu(x); });
  });
  Register("LeakyRelu", [](Rng&) {
    return UnaryCase("LeakyRelu",
                     FixedLeaf({2, 3}, {-1.1f, 0.7f, -0.5f, 1.4f, 0.3f, -0.8f}),
                     [](const Tensor& x) { return LeakyRelu(x, 0.1f); });
  });
  Register("Sigmoid", [](Rng& rng) {
    return UnaryCase("Sigmoid", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Sigmoid(x); });
  });
  Register("Tanh", [](Rng& rng) {
    return UnaryCase("Tanh", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Tanh(x); });
  });
  Register("Exp", [](Rng& rng) {
    return UnaryCase("Exp", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Exp(x); });
  });
  Register("Log", [](Rng& rng) {
    return UnaryCase("Log", PositiveLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Log(x); });
  });
  Register("Sqrt", [](Rng& rng) {
    return UnaryCase("Sqrt", PositiveLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Sqrt(x); });
  });
  Register("Abs", [](Rng&) {
    return UnaryCase("Abs",
                     FixedLeaf({2, 3}, {-1.3f, 0.9f, -0.6f, 1.2f, 0.4f, -0.7f}),
                     [](const Tensor& x) { return Abs(x); });
  });
  Register("Gelu", [](Rng& rng) {
    return UnaryCase("Gelu", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Gelu(x); });
  });
  Register("Clamp", [](Rng&) {
    // Entries at least 0.1 away from the clamp boundaries ±1.
    return UnaryCase("Clamp",
                     FixedLeaf({2, 3}, {-1.6f, -0.7f, -0.3f, 0.2f, 0.6f, 1.9f}),
                     [](const Tensor& x) { return Clamp(x, -1.0f, 1.0f); });
  });

  // --- Linear algebra. ---
  Register("MatMul", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "MatMul";
    Tensor a = SignedLeaf({2, 2, 3}, rng);  // batched lhs
    Tensor b = SignedLeaf({3, 2}, rng);     // broadcast rhs
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(MatMul(a, b)); };
    return c;
  });

  // --- Reductions (the loss exercises both the full and the dim overload).
  Register("Sum", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Sum";
    Tensor x = SignedLeaf({2, 3}, rng);
    c.params = {x};
    c.loss = [x]() {
      return Add(Sum(x), WeightedSum(Sum(x, 1, /*keepdim=*/false)));
    };
    return c;
  });
  Register("Mean", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Mean";
    Tensor x = SignedLeaf({2, 3}, rng);
    c.params = {x};
    c.loss = [x]() {
      return Add(Mean(x), WeightedSum(Mean(x, 0, /*keepdim=*/true)));
    };
    return c;
  });
  Register("Max", [](Rng&) {
    // Entries separated by >= 0.4 so ±eps never flips the argmax.
    return UnaryCase("Max",
                     FixedLeaf({2, 3}, {0.9f, -1.7f, 2.3f, 0.4f, -0.8f, 1.6f}),
                     [](const Tensor& x) { return Max(x, 1, false); });
  });
  Register("Min", [](Rng&) {
    return UnaryCase("Min",
                     FixedLeaf({2, 3}, {0.8f, -1.5f, 2.1f, 0.3f, -0.9f, 1.4f}),
                     [](const Tensor& x) { return Min(x, 0, true); });
  });
  Register("Softmax", [](Rng& rng) {
    return UnaryCase("Softmax", SignedLeaf({2, 4}, rng),
                     [](const Tensor& x) { return Softmax(x, -1); });
  });

  // --- Shape manipulation. ---
  Register("Reshape", [](Rng& rng) {
    return UnaryCase("Reshape", SignedLeaf({2, 6}, rng),
                     [](const Tensor& x) { return Reshape(x, {3, -1}); });
  });
  Register("Permute", [](Rng& rng) {
    return UnaryCase("Permute", SignedLeaf({2, 3, 4}, rng),
                     [](const Tensor& x) { return Permute(x, {2, 0, 1}); });
  });
  Register("Transpose", [](Rng& rng) {
    return UnaryCase("Transpose", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Transpose(x, -1, -2); });
  });
  Register("Unsqueeze", [](Rng& rng) {
    return UnaryCase("Unsqueeze", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return Unsqueeze(x, 1); });
  });
  Register("Squeeze", [](Rng& rng) {
    return UnaryCase("Squeeze", SignedLeaf({2, 1, 3}, rng),
                     [](const Tensor& x) { return Squeeze(x, 1); });
  });
  Register("BroadcastTo", [](Rng& rng) {
    return UnaryCase("BroadcastTo", SignedLeaf({2, 1, 3}, rng),
                     [](const Tensor& x) { return BroadcastTo(x, {2, 4, 3}); });
  });
  Register("Concat", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Concat";
    Tensor a = SignedLeaf({2, 2}, rng);
    Tensor b = SignedLeaf({2, 3}, rng);
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Concat({a, b}, 1)); };
    return c;
  });
  Register("Stack", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Stack";
    Tensor a = SignedLeaf({2, 3}, rng);
    Tensor b = SignedLeaf({2, 3}, rng);
    c.params = {a, b};
    c.loss = [a, b]() { return WeightedSum(Stack({a, b}, 0)); };
    return c;
  });
  Register("Slice", [](Rng& rng) {
    return UnaryCase("Slice", SignedLeaf({3, 4}, rng),
                     [](const Tensor& x) { return Slice(x, 1, 1, 3); });
  });
  Register("Select", [](Rng& rng) {
    return UnaryCase("Select", SignedLeaf({3, 4}, rng),
                     [](const Tensor& x) { return Select(x, 0, 1); });
  });
  Register("PadFront", [](Rng& rng) {
    return UnaryCase("PadFront", SignedLeaf({2, 3}, rng),
                     [](const Tensor& x) { return PadFront(x, 0, 2); });
  });
  Register("ReduceToShape", [](Rng& rng) {
    return UnaryCase("ReduceToShape", SignedLeaf({2, 3, 4}, rng),
                     [](const Tensor& x) { return ReduceToShape(x, {3, 1}); });
  });

  // --- Indexing / regularization. ---
  Register("EmbeddingLookup", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "EmbeddingLookup";
    Tensor weight = SignedLeaf({5, 3}, rng);
    c.params = {weight};
    // The repeated index 2 exercises the scatter-add in the backward.
    c.loss = [weight]() {
      return WeightedSum(EmbeddingLookup(weight, {0, 2, 2, 4}, {4}));
    };
    return c;
  });
  Register("Dropout", [](Rng& rng) {
    OpGradCheckCase c;
    c.op = "Dropout";
    Tensor x = SignedLeaf({3, 4}, rng);
    c.params = {x};
    // A fresh fixed-seed generator per evaluation keeps the mask identical
    // across the analytic and the perturbed re-evaluations.
    c.loss = [x]() {
      Rng mask_rng(123);
      return WeightedSum(Dropout(x, 0.4f, /*training=*/true, mask_rng));
    };
    return c;
  });
}

}  // namespace d2stgnn
