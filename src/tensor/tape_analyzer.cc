#include "tensor/tape_analyzer.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace d2stgnn {
namespace {

// DFS colors: absent = white (unvisited), false = gray (on the active
// path), true = black (fully explored).
using ColorMap = std::unordered_map<internal::TensorImpl*, bool>;

}  // namespace

TapeReport AnalyzeTape(const Tensor& root) {
  D2_CHECK(root.defined());
  TapeReport report;
  report.live_gradfn = internal::LiveGradFnCount();
  report.backward_runs = root.impl()->backward_runs;
  if (report.backward_runs > 1) {
    std::ostringstream os;
    os << "Backward() ran " << report.backward_runs
       << " times on this root; every run re-accumulates all gradients";
    report.issues.push_back({"double-backward", os.str()});
  }
  if (root.impl()->grad_fn == nullptr) return report;

  // Saved tensors are counted per GradFn node (a tensor saved by two nodes
  // is alive twice over), but each distinct impl's elements count once.
  std::unordered_set<internal::TensorImpl*> counted_saved;

  struct Frame {
    internal::TensorImpl* node;
    size_t next_child = 0;
    int64_t depth = 1;
  };
  ColorMap colors;
  std::vector<Frame> stack;
  colors[root.impl().get()] = false;
  stack.push_back({root.impl().get(), 0, 1});
  report.nodes = 1;
  report.max_depth = 1;

  while (!stack.empty()) {
    Frame& frame = stack.back();
    internal::GradFn* fn = frame.node->grad_fn.get();
    const size_t num_children = fn != nullptr ? fn->inputs.size() : 0;
    if (frame.next_child == 0 && fn != nullptr) {
      for (const Tensor& input : fn->inputs) {
        if (!input.defined()) continue;
        ++report.saved_tensors;
        if (counted_saved.insert(input.impl().get()).second) {
          report.saved_elements += input.numel();
        }
      }
    }
    if (frame.next_child < num_children) {
      const Tensor& child_tensor = fn->inputs[frame.next_child++];
      internal::TensorImpl* child =
          child_tensor.defined() ? child_tensor.impl().get() : nullptr;
      if (child == nullptr || child->grad_fn == nullptr) continue;
      ++report.edges;
      auto it = colors.find(child);
      if (it == colors.end()) {
        // Copy the depth first: push_back may reallocate `stack` and
        // invalidate `frame`, which references stack.back().
        const int64_t child_depth = frame.depth + 1;
        colors[child] = false;
        stack.push_back({child, 0, child_depth});
        ++report.nodes;
        report.max_depth = std::max(report.max_depth, child_depth);
      } else if (!it->second) {
        // Gray: the child is on the active path — a cycle. The tape would
        // never terminate a backward walk through it.
        report.has_cycle = true;
      }
    } else {
      colors[frame.node] = true;
      stack.pop_back();
    }
  }

  if (report.has_cycle) {
    report.issues.push_back(
        {"cycle", "autograd graph contains a cycle; Backward() over it "
                  "would visit a node before its consumers"});
  }
  return report;
}

std::string TapeReport::ToString() const {
  std::ostringstream os;
  os << "tape: nodes=" << nodes << " edges=" << edges
     << " max_depth=" << max_depth << " saved_tensors=" << saved_tensors
     << " saved_elements=" << saved_elements << " live_gradfn=" << live_gradfn
     << " backward_runs=" << backward_runs;
  for (const TapeIssue& issue : issues) {
    os << "\n  issue[" << issue.kind << "]: " << issue.detail;
  }
  return os.str();
}

TapeWatchdog::TapeWatchdog(int64_t window) : window_(window) {
  D2_CHECK_GE(window, 2) << "growth detection needs at least two steps";
}

TapeReport TapeWatchdog::EndStep(const Tensor& loss) {
  TapeReport report = AnalyzeTape(loss);
  ++steps_;

  node_history_.push_back(report.nodes);
  unreachable_history_.push_back(report.live_gradfn - report.nodes);
  if (static_cast<int64_t>(node_history_.size()) > window_) {
    node_history_.erase(node_history_.begin());
    unreachable_history_.erase(unreachable_history_.begin());
  }

  const auto strictly_increasing = [](const std::vector<int64_t>& v) {
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i] <= v[i - 1]) return false;
    }
    return true;
  };

  if (static_cast<int64_t>(node_history_.size()) == window_) {
    if (strictly_increasing(node_history_)) {
      std::ostringstream os;
      os << "reachable tape grew every step for " << window_ << " steps ("
         << node_history_.front() << " -> " << node_history_.back()
         << " nodes); the loss likely chains onto earlier iterations";
      report.issues.push_back({"tape-growth", os.str()});
    }
    if (strictly_increasing(unreachable_history_) &&
        unreachable_history_.back() > 0) {
      std::ostringstream os;
      os << "live GradFn nodes outside the current tape grew every step for "
         << window_ << " steps (" << unreachable_history_.front() << " -> "
         << unreachable_history_.back()
         << "); earlier steps' saved inputs are being kept alive after "
            "Backward";
      report.issues.push_back({"tape-leak", os.str()});
    }
  }
  return report;
}

}  // namespace d2stgnn
