#ifndef D2STGNN_TENSOR_CHECKER_H_
#define D2STGNN_TENSOR_CHECKER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

// Numerics sentinel: opt-in instrumentation of the op-dispatch layer that
// scans every op output (forward) and every gradient buffer (backward) for
// NaN/Inf and reports the op name, phase, shape, and a short tape-provenance
// chain instead of letting poison propagate through the graph.
//
// Enable with the environment variable D2STGNN_CHECK_NUMERICS (1/abort → die
// on the first violation, warn → log and continue) or programmatically with
// SetCheckMode. The default path costs one relaxed atomic load and a branch
// per op — no per-element work.

namespace d2stgnn {

/// What the sentinel does when an op produces a non-finite value.
enum class CheckMode {
  kOff = 0,    ///< No scanning (default).
  kWarn = 1,   ///< Scan; log a diagnostic and keep going.
  kAbort = 2,  ///< Scan; print a diagnostic to stderr and abort.
};

/// Sets the sentinel mode for the whole process.
void SetCheckMode(CheckMode mode);

namespace internal {

/// -1 until the first query, then the active CheckMode.
extern std::atomic<int> g_check_mode;

/// Resolves the initial mode from D2STGNN_CHECK_NUMERICS ("1"/"abort",
/// "warn", anything else → off), stores it, and returns it.
CheckMode InitCheckModeFromEnv();

}  // namespace internal

/// The active sentinel mode (lazily initialized from the environment).
inline CheckMode GetCheckMode() {
  const int mode = internal::g_check_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return static_cast<CheckMode>(mode);
  return internal::InitCheckModeFromEnv();
}

/// True if op outputs and gradient buffers are being scanned.
inline bool CheckNumericsEnabled() {
  return GetCheckMode() != CheckMode::kOff;
}

/// Renders a short producer chain for `t` by walking the autograd tape
/// through each node's first recorded input, e.g. "Softmax <- MatMul <-
/// (leaf)". At most `max_depth` op names are printed.
std::string TapeProvenance(const Tensor& t, int max_depth = 6);

/// Scans the forward output of op `name`. Called by MakeOpResult whenever
/// the sentinel is on; `inputs` provide the provenance chain.
void CheckForwardOutput(const std::string& name, const Tensor& out,
                        const std::vector<Tensor>& inputs);

/// Scans the gradient buffers of `fn`'s inputs after its backward ran.
/// Called by Tensor::Backward whenever the sentinel is on.
void CheckBackwardInputs(const internal::GradFn& fn);

/// Pushes a context line ("epoch 3 batch 17") onto a process-wide,
/// mutex-guarded stack that is appended to every sentinel diagnostic while
/// alive — including diagnostics raised on thread-pool worker threads. The
/// trainer uses this so an abort mid-step names the step that failed.
class ScopedCheckContext {
 public:
  explicit ScopedCheckContext(std::string context);
  ~ScopedCheckContext();
  ScopedCheckContext(const ScopedCheckContext&) = delete;
  ScopedCheckContext& operator=(const ScopedCheckContext&) = delete;
};

/// Number of violations observed since the last reset (kWarn mode; kAbort
/// dies on the first one).
int64_t NumericsViolationCount();

/// The full diagnostic of the most recent violation ("" if none).
std::string LastNumericsDiagnostic();

/// Clears the violation counter and last diagnostic (test support).
void ResetNumericsViolations();

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_CHECKER_H_
