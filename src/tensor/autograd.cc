#include "tensor/autograd.h"

#include <memory>
#include <utility>

#include "tensor/checker.h"

namespace d2stgnn {

bool AnyRequiresGrad(const std::vector<Tensor>& inputs) {
  for (const Tensor& t : inputs) {
    if (t.defined() && t.RequiresGrad()) return true;
  }
  return false;
}

Tensor MakeOpResult(const std::string& name, const Shape& shape,
                    std::vector<float> data, std::vector<Tensor> inputs,
                    std::function<void(const Tensor&)> backward) {
  Tensor out(shape, std::move(data));
  if (CheckNumericsEnabled()) CheckForwardOutput(name, out, inputs);
  if (NoGradGuard::Active() || !AnyRequiresGrad(inputs)) return out;
  auto fn = std::make_shared<internal::GradFn>();
  fn->name = name;
  fn->inputs = std::move(inputs);
  fn->backward = std::move(backward);
  out.impl()->grad_fn = std::move(fn);
  return out;
}

}  // namespace d2stgnn
