#ifndef D2STGNN_TENSOR_KERNELS_H_
#define D2STGNN_TENSOR_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/kernels/backend.h"
#include "tensor/tensor.h"

// Dispatch façade of the tensor engine's compute kernels. ops.cc does shape
// checking, autograd-tape wiring, and routes every compute loop through
// here; the float loops themselves live in a KernelBackend
// (tensor/kernels/backend_*.cc) selected at startup — see
// tensor/kernels/registry.h.
//
// Every entry point partitions work with ParallelFor using chunk boundaries
// that depend only on the problem size, then hands each chunk to a SERIAL
// backend range kernel, and combines partials in index order — so for any
// one backend, results are bitwise-identical at 1 and N threads. Callers
// pass the backend explicitly: eager dispatch uses ActiveBackend(), capture
// closures bind the backend pointer they were recorded under.

namespace d2stgnn::kernels {

/// Minimum elementwise work per ParallelFor chunk; below this the dispatch
/// overhead dominates and the loop runs as a single chunk.
inline constexpr int64_t kEwiseGrain = 1 << 14;

/// Fixed accumulation block for full reductions (chunk boundaries of the
/// deterministic partial-sum tree).
inline constexpr int64_t kReduceBlock = 1 << 12;

// ---------------------------------------------------------------------------
// Broadcast iteration machinery (shared by elementwise dispatch in ops.cc).

/// Prepends 1s so that `shape` has `rank` dimensions.
Shape AlignShape(const Shape& shape, size_t rank);

/// Strides of `shape` aligned to `out` rank, with 0 stride on broadcast
/// dimensions. Aborts if the shapes are not broadcast-compatible.
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out);

/// Calls visit(out_flat, a_offset, b_offset) for flat indices
/// [flat_begin, flat_end) of `out`, where the offsets follow the (possibly
/// zero) broadcast strides `as` / `bs`. Serial within the range.
template <typename Visitor>
void ForEachBroadcastPair(const Shape& out, const std::vector<int64_t>& as,
                          const std::vector<int64_t>& bs, int64_t flat_begin,
                          int64_t flat_end, Visitor visit) {
  if (flat_begin >= flat_end) return;
  const size_t rank = out.size();
  if (rank == 0) {
    visit(0, 0, 0);
    return;
  }
  // Decompose flat_begin into a multi-index and the two strided offsets.
  std::vector<int64_t> idx(rank, 0);
  int64_t a_off = 0;
  int64_t b_off = 0;
  int64_t rem = flat_begin;
  for (int64_t d = static_cast<int64_t>(rank) - 1; d >= 0; --d) {
    const size_t ud = static_cast<size_t>(d);
    idx[ud] = rem % out[ud];
    rem /= out[ud];
    a_off += idx[ud] * as[ud];
    b_off += idx[ud] * bs[ud];
  }
  for (int64_t i = flat_begin;; ++i) {
    visit(i, a_off, b_off);
    if (i + 1 >= flat_end) break;
    int64_t d = static_cast<int64_t>(rank) - 1;
    while (d >= 0) {
      const size_t ud = static_cast<size_t>(d);
      ++idx[ud];
      a_off += as[ud];
      b_off += bs[ud];
      if (idx[ud] < out[ud]) break;
      a_off -= as[ud] * out[ud];
      b_off -= bs[ud] * out[ud];
      idx[ud] = 0;
      --d;
    }
  }
}

/// Whole-tensor variant of the above.
template <typename Visitor>
void ForEachBroadcastPair(const Shape& out, const std::vector<int64_t>& as,
                          const std::vector<int64_t>& bs, Visitor visit) {
  ForEachBroadcastPair(out, as, bs, 0, NumElements(out), visit);
}

// ---------------------------------------------------------------------------
// Elementwise kernels (backend-dispatched forward, template gradient).

/// out[i] = kind(a[i]) for i in [0, n).
void EwiseUnary(const KernelBackend& backend, UnaryKind kind,
                UnaryParams params, const float* a, float* out, int64_t n);

/// out[i] = dfn(x[i], y[i], g[i]) — the gradient loop of a unary op. Stays a
/// template (training-only; gradients are not backend-dispatched).
template <typename Dfn>
void EwiseUnaryGrad(const float* x, const float* y, const float* g,
                    float* out, int64_t n, Dfn dfn) {
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = dfn(x[i], y[i], g[i]);
  });
}

/// out[i] = kind(a[i], b[i]) for same-shape contiguous operands.
void EwiseBinary(const KernelBackend& backend, BinaryKind kind,
                 const float* a, const float* b, float* out, int64_t n);

/// Broadcasting binary kernel: out[flat] = kind(a[a_off], b[b_off]) with the
/// strided offsets of BroadcastStrides. The matrix-plus-row-vector pattern
/// (dense a, b strided [0, ..., 0, 1]) routes to the backend's bias_add;
/// other patterns run the generic strided walk (exactly-rounded scalar
/// arithmetic, identical across backends).
void EwiseBinaryBroadcast(const KernelBackend& backend, BinaryKind kind,
                          const Shape& out_shape,
                          const std::vector<int64_t>& as,
                          const std::vector<int64_t>& bs, const float* a,
                          const float* b, float* out);

/// Strided gather: out[flat] = a[src_off] (Permute / BroadcastTo bodies).
/// Pure data movement — shared across backends.
void GatherStrided(const Shape& out_shape, const std::vector<int64_t>& strides,
                   const float* a, float* out);

// ---------------------------------------------------------------------------
// MatMul.

/// Batched matmul over `batch` independent [m,k]x[k,n] products. Offsets
/// are element offsets of each batch's A / B matrix (shared matrices repeat
/// their offset — the broadcast case). `out` must be zero-filled.
/// Parallelized over batch x row blocks; each task runs the backend's
/// serial matmul_row_range.
void BatchedMatMul(const KernelBackend& backend, const float* a,
                   const float* b, float* out,
                   const std::vector<int64_t>& a_offsets,
                   const std::vector<int64_t>& b_offsets, int64_t m, int64_t k,
                   int64_t n);

// ---------------------------------------------------------------------------
// Reductions.

/// Sum of all n elements via a deterministic two-level tree: double partial
/// per kReduceBlock block, blocks combined in index order.
double ReduceSumAll(const KernelBackend& backend, const float* a, int64_t n);

/// out[o, i] = sum_s a[o, s, i] over the middle extent. Parallel over the
/// outer extent; per-slice accumulation runs in ascending s.
void ReduceSumDim(const KernelBackend& backend, const float* a, float* out,
                  int64_t outer, int64_t size, int64_t inner);

/// Extremum over the middle extent: sign = +1 for max, -1 for min. Writes
/// the winning value to `out` and the first winning middle-index to `arg`.
/// Comparison-only — shared across backends.
void ExtremumDim(const float* a, float* out, int64_t* arg, int64_t outer,
                 int64_t size, int64_t inner, float sign);

/// Scatters `g` back through ExtremumDim: grad[o, arg[o,i], i] += g[o, i].
/// `grad` must be zero-filled.
void ExtremumDimGrad(const float* g, const int64_t* arg, float* grad,
                     int64_t outer, int64_t size, int64_t inner);

// ---------------------------------------------------------------------------
// Softmax.

/// Numerically stable softmax over the middle extent of [outer, size,
/// inner]. Parallel over the outer extent.
void SoftmaxKernel(const KernelBackend& backend, const float* a, float* out,
                   int64_t outer, int64_t size, int64_t inner);

}  // namespace d2stgnn::kernels

#endif  // D2STGNN_TENSOR_KERNELS_H_
