#ifndef D2STGNN_TENSOR_GRAD_CHECK_H_
#define D2STGNN_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace d2stgnn {

/// Tuning knobs of a finite-difference gradient check.
struct GradCheckOptions {
  /// Central-difference perturbation.
  float eps = 1e-2f;
  /// Maximum allowed relative error (with an absolute floor of 1 in the
  /// denominator for near-zero gradients).
  float tolerance = 2e-2f;
  /// Entries sampled per parameter when it is larger than this.
  int64_t max_entries_per_param = 16;
  /// Log every mismatching entry at WARNING. Disable for tests that expect
  /// failures (e.g. the deliberately-wrong-backward negative test).
  bool log_mismatches = true;
};

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = true;
  /// Largest relative error observed across all checked entries.
  float max_relative_error = 0.0f;
  /// Number of entries compared.
  int64_t checked = 0;
  /// First failing comparison (valid when !ok): parameter index, flat entry
  /// index, and the disagreeing gradient values.
  int64_t bad_param = -1;
  int64_t bad_entry = -1;
  float bad_analytic = 0.0f;
  float bad_numeric = 0.0f;
};

/// Verifies analytic gradients of `loss_fn` (a scalar-valued closure over
/// `params`) against central finite differences.
///
/// For each parameter, up to `options.max_entries_per_param` entries
/// (sampled with `rng` when the parameter is larger) are perturbed by ±eps;
/// the numeric gradient must match the analytic one within
/// `options.tolerance` relative error.
///
/// `loss_fn` must be deterministic and re-evaluable.
GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, Rng& rng,
                               const GradCheckOptions& options);

/// Convenience overload with individually defaulted knobs.
GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, Rng& rng,
                               float eps = 1e-2f, float tolerance = 2e-2f,
                               int64_t max_entries_per_param = 16);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_GRAD_CHECK_H_
