#ifndef D2STGNN_TENSOR_GRAD_CHECK_H_
#define D2STGNN_TENSOR_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace d2stgnn {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = true;
  /// Largest relative error observed across all checked entries.
  float max_relative_error = 0.0f;
  /// Number of entries compared.
  int64_t checked = 0;
};

/// Verifies analytic gradients of `loss_fn` (a scalar-valued closure over
/// `params`) against central finite differences.
///
/// For each parameter, up to `max_entries_per_param` entries (sampled with
/// `rng` when the parameter is larger) are perturbed by ±eps; the numeric
/// gradient must match the analytic one within `tolerance` relative error
/// (with an absolute floor for near-zero gradients).
///
/// `loss_fn` must be deterministic and re-evaluable.
GradCheckResult CheckGradients(const std::function<Tensor()>& loss_fn,
                               const std::vector<Tensor>& params, Rng& rng,
                               float eps = 1e-2f, float tolerance = 2e-2f,
                               int64_t max_entries_per_param = 16);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_GRAD_CHECK_H_
