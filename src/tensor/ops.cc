#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "exec/graph_capture.h"
#include "tensor/autograd.h"
#include "tensor/buffer_arena.h"
#include "tensor/kernels.h"
#include "tensor/kernels/registry.h"

// ops.cc is the dispatch layer of the tensor engine: it validates shapes,
// wires autograd tape nodes, and routes every compute loop to the kernel
// layer in tensor/kernels.h (which parallelizes over the shared thread pool
// and hands serial chunks to the active KernelBackend).
//
// When a exec::GraphCapture is active on the thread, each dispatch also
// records a shape-specialized replay closure (exec::internal::RecordStep)
// holding the same static attributes the eager call just resolved, so the
// forward can later replay without this layer (DESIGN.md §10). Capture is a
// single thread-local pointer test on the off path.
//
// Each dispatch routes through the backend active at call time; capture
// closures bind that backend pointer so a plan always replays on the
// backend it was captured under (the executor separately rejects
// cross-backend replay — ReplayStatus::kBackendMismatch).

namespace d2stgnn {
namespace {

// Elementwise binary op with broadcasting. `kind` selects the backend-table
// forward; `backward` receives (output, a, b) and must accumulate into a
// and b.
Tensor BinaryOp(const std::string& name, kernels::BinaryKind kind,
                const Tensor& a, const Tensor& b,
                std::function<void(const Tensor&, const Tensor&,
                                   const Tensor&)> backward) {
  D2_CHECK(a.defined());
  D2_CHECK(b.defined());
  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  const Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  const std::vector<float>& av = a.Data();
  const std::vector<float>& bv = b.Data();
  const bool same_shape = a.shape() == b.shape();
  std::vector<int64_t> as;
  std::vector<int64_t> bs;
  if (same_shape) {
    kernels::EwiseBinary(*backend, kind, av.data(), bv.data(), out.data(),
                         static_cast<int64_t>(out.size()));
  } else {
    as = kernels::BroadcastStrides(a.shape(), out_shape);
    bs = kernels::BroadcastStrides(b.shape(), out_shape);
    kernels::EwiseBinaryBroadcast(*backend, kind, out_shape, as, bs,
                                  av.data(), bv.data(), out.data());
  }
  Tensor result = MakeOpResult(name, out_shape, std::move(out), {a, b},
                               [a, b, backward](const Tensor& output) {
                                 backward(output, a, b);
                               });
  if (exec::internal::CaptureActive()) {
    if (same_shape) {
      const int64_t n = NumElements(out_shape);
      exec::internal::RecordStep(
          name.c_str(), {a, b}, result,
          [backend, kind, n](const exec::StepIo& io) {
            kernels::EwiseBinary(*backend, kind, io.inputs[0], io.inputs[1],
                                 io.output, n);
          });
    } else {
      exec::internal::RecordStep(
          name.c_str(), {a, b}, result,
          [backend, kind, out_shape, as, bs](const exec::StepIo& io) {
            kernels::EwiseBinaryBroadcast(*backend, kind, out_shape, as, bs,
                                          io.inputs[0], io.inputs[1],
                                          io.output);
          });
    }
  }
  return result;
}

// Elementwise unary op. `kind`/`params` select the backend-table forward;
// `dfn(x, y, g)` returns dLoss/dx given input value x, output value y, and
// output gradient g.
template <typename Dfn>
Tensor UnaryOp(const std::string& name, kernels::UnaryKind kind,
               kernels::UnaryParams params, const Tensor& a, Dfn dfn) {
  D2_CHECK(a.defined());
  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  const std::vector<float>& av = a.Data();
  const int64_t n = static_cast<int64_t>(av.size());
  std::vector<float> out = internal::AcquireBuffer(n);
  kernels::EwiseUnary(*backend, kind, params, av.data(), out.data(), n);
  Tensor result = MakeOpResult(
      name, a.shape(), std::move(out), {a}, [a, dfn](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        const std::vector<float>& g = output.GradData();
        const std::vector<float>& x = a.Data();
        const std::vector<float>& y = output.Data();
        std::vector<float> ga =
            internal::AcquireBuffer(static_cast<int64_t>(g.size()));
        kernels::EwiseUnaryGrad(x.data(), y.data(), g.data(), ga.data(),
                                static_cast<int64_t>(g.size()), dfn);
        AccumulateGrad(a, Tensor(a.shape(), std::move(ga)));
      });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        name.c_str(), {a}, result,
        [backend, kind, params, n](const exec::StepIo& io) {
          kernels::EwiseUnary(*backend, kind, params, io.inputs[0],
                              io.output, n);
        });
  }
  return result;
}

int64_t NormalizeDim(int64_t dim, int64_t rank) {
  if (dim < 0) dim += rank;
  D2_CHECK_GE(dim, 0);
  D2_CHECK_LT(dim, rank);
  return dim;
}

// Splits a shape around dimension `dim` into (outer, size, inner) extents.
void SplitAtDim(const Shape& shape, int64_t dim, int64_t* outer, int64_t* size,
                int64_t* inner) {
  *outer = 1;
  *inner = 1;
  for (int64_t d = 0; d < dim; ++d) *outer *= shape[static_cast<size_t>(d)];
  *size = shape[static_cast<size_t>(dim)];
  for (size_t d = static_cast<size_t>(dim) + 1; d < shape.size(); ++d) {
    *inner *= shape[d];
  }
}

}  // namespace

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  const Shape aa = kernels::AlignShape(a, rank);
  const Shape bb = kernels::AlignShape(b, rank);
  Shape out(rank);
  for (size_t d = 0; d < rank; ++d) {
    if (aa[d] == bb[d]) {
      out[d] = aa[d];
    } else if (aa[d] == 1) {
      out[d] = bb[d];
    } else if (bb[d] == 1) {
      out[d] = aa[d];
    } else {
      D2_CHECK(false) << "incompatible shapes for broadcast: "
                      << ShapeToString(a) << " vs " << ShapeToString(b);
    }
  }
  return out;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  D2_CHECK(t.defined());
  if (t.shape() == target) return t;
  Tensor r = t;
  const int64_t extra = r.dim() - static_cast<int64_t>(target.size());
  D2_CHECK_GE(extra, 0) << "cannot reduce " << ShapeToString(t.shape())
                        << " to larger-rank " << ShapeToString(target);
  for (int64_t i = 0; i < extra; ++i) r = Sum(r, 0, /*keepdim=*/false);
  for (size_t d = 0; d < target.size(); ++d) {
    if (target[d] == 1 && r.size(static_cast<int64_t>(d)) != 1) {
      r = Sum(r, static_cast<int64_t>(d), /*keepdim=*/true);
    } else {
      D2_CHECK_EQ(target[d], r.size(static_cast<int64_t>(d)))
          << "cannot reduce " << ShapeToString(t.shape()) << " to "
          << ShapeToString(target);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Binary ops.

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Add", kernels::BinaryKind::kAdd, a, b,
      [](const Tensor& out, const Tensor& a, const Tensor& b) {
        const Tensor g = out.Grad();
        if (a.RequiresGrad()) AccumulateGrad(a, ReduceToShape(g, a.shape()));
        if (b.RequiresGrad()) AccumulateGrad(b, ReduceToShape(g, b.shape()));
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Sub", kernels::BinaryKind::kSub, a, b,
      [](const Tensor& out, const Tensor& a, const Tensor& b) {
        const Tensor g = out.Grad();
        if (a.RequiresGrad()) AccumulateGrad(a, ReduceToShape(g, a.shape()));
        if (b.RequiresGrad()) {
          AccumulateGrad(b, ReduceToShape(MulScalar(g, -1.0f), b.shape()));
        }
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Mul", kernels::BinaryKind::kMul, a, b,
      [](const Tensor& out, const Tensor& a, const Tensor& b) {
        const Tensor g = out.Grad();
        if (a.RequiresGrad()) {
          AccumulateGrad(a, ReduceToShape(Mul(g, b), a.shape()));
        }
        if (b.RequiresGrad()) {
          AccumulateGrad(b, ReduceToShape(Mul(g, a), b.shape()));
        }
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      "Div", kernels::BinaryKind::kDiv, a, b,
      [](const Tensor& out, const Tensor& a, const Tensor& b) {
        const Tensor g = out.Grad();
        if (a.RequiresGrad()) {
          AccumulateGrad(a, ReduceToShape(Div(g, b), a.shape()));
        }
        if (b.RequiresGrad()) {
          // d/db (a/b) = -a / b^2
          Tensor gb = Mul(g, Div(a, Mul(b, b)));
          AccumulateGrad(b, ReduceToShape(MulScalar(gb, -1.0f), b.shape()));
        }
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp("AddScalar", kernels::UnaryKind::kAddScalar, {s, 0.0f}, a,
                 [](float, float, float g) { return g; });
}

Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp("MulScalar", kernels::UnaryKind::kMulScalar, {s, 0.0f}, a,
                 [s](float, float, float g) { return g * s; });
}

Tensor PowScalar(const Tensor& a, float exponent) {
  return UnaryOp("PowScalar", kernels::UnaryKind::kPowScalar,
                 {exponent, 0.0f}, a, [exponent](float x, float, float g) {
                   return g * exponent * std::pow(x, exponent - 1.0f);
                 });
}

Tensor operator+(const Tensor& a, const Tensor& b) { return Add(a, b); }
Tensor operator-(const Tensor& a, const Tensor& b) { return Sub(a, b); }
Tensor operator*(const Tensor& a, const Tensor& b) { return Mul(a, b); }
Tensor operator/(const Tensor& a, const Tensor& b) { return Div(a, b); }
Tensor operator+(const Tensor& a, float s) { return AddScalar(a, s); }
Tensor operator-(const Tensor& a, float s) { return AddScalar(a, -s); }
Tensor operator*(const Tensor& a, float s) { return MulScalar(a, s); }
Tensor operator/(const Tensor& a, float s) { return MulScalar(a, 1.0f / s); }
Tensor operator+(float s, const Tensor& a) { return AddScalar(a, s); }
Tensor operator-(float s, const Tensor& a) {
  return AddScalar(MulScalar(a, -1.0f), s);
}
Tensor operator*(float s, const Tensor& a) { return MulScalar(a, s); }
Tensor operator-(const Tensor& a) { return Neg(a); }

// ---------------------------------------------------------------------------
// Unary ops.

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      "Relu", kernels::UnaryKind::kRelu, {}, a,
      [](float x, float, float g) { return x > 0.0f ? g : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp("LeakyRelu", kernels::UnaryKind::kLeakyRelu,
                 {negative_slope, 0.0f}, a,
                 [negative_slope](float x, float, float g) {
                   return x > 0.0f ? g : negative_slope * g;
                 });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      "Sigmoid", kernels::UnaryKind::kSigmoid, {}, a,
      [](float, float y, float g) { return g * y * (1.0f - y); });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      "Tanh", kernels::UnaryKind::kTanh, {}, a,
      [](float, float y, float g) { return g * (1.0f - y * y); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp("Exp", kernels::UnaryKind::kExp, {}, a,
                 [](float, float y, float g) { return g * y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp("Log", kernels::UnaryKind::kLog, {}, a,
                 [](float x, float, float g) { return g / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      "Sqrt", kernels::UnaryKind::kSqrt, {}, a,
      [](float, float y, float g) { return y > 0.0f ? 0.5f * g / y : 0.0f; });
}

Tensor Abs(const Tensor& a) {
  return UnaryOp("Abs", kernels::UnaryKind::kAbs, {}, a,
                 [](float x, float, float g) {
                   return x > 0.0f ? g : (x < 0.0f ? -g : 0.0f);
                 });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
  constexpr float kCubic = 0.044715f;
  return UnaryOp(
      "Gelu", kernels::UnaryKind::kGelu, {}, a,
      [](float x, float, float g) {
        const float inner = kC * (x + kCubic * x * x * x);
        const float t = std::tanh(inner);
        const float d_inner = kC * (1.0f + 3.0f * kCubic * x * x);
        return g * (0.5f * (1.0f + t) +
                    0.5f * x * (1.0f - t * t) * d_inner);
      });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  D2_CHECK_LE(lo, hi);
  return UnaryOp("Clamp", kernels::UnaryKind::kClamp, {lo, hi}, a,
                 [lo, hi](float x, float, float g) {
                   return (x >= lo && x <= hi) ? g : 0.0f;
                 });
}

// ---------------------------------------------------------------------------
// MatMul.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  D2_CHECK(a.defined());
  D2_CHECK(b.defined());
  D2_CHECK_GE(a.dim(), 2) << "MatMul lhs must have rank >= 2";
  D2_CHECK_GE(b.dim(), 2) << "MatMul rhs must have rank >= 2";
  const int64_t m = a.size(-2);
  const int64_t k = a.size(-1);
  const int64_t k2 = b.size(-2);
  const int64_t n = b.size(-1);
  D2_CHECK_EQ(k, k2) << "MatMul inner dimensions mismatch: "
                     << ShapeToString(a.shape()) << " x "
                     << ShapeToString(b.shape());

  const Shape a_batch(a.shape().begin(), a.shape().end() - 2);
  const Shape b_batch(b.shape().begin(), b.shape().end() - 2);
  const Shape out_batch = BroadcastShapes(a_batch, b_batch);
  Shape out_shape = out_batch;
  out_shape.push_back(m);
  out_shape.push_back(n);

  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  const std::vector<int64_t> as =
      kernels::BroadcastStrides(a_batch, out_batch);
  const std::vector<int64_t> bs =
      kernels::BroadcastStrides(b_batch, out_batch);
  // Resolve broadcast batch indexing up front so the kernel sees a flat
  // list of matrix offsets it can parallelize over batch x row blocks.
  const int64_t batches = NumElements(out_batch);
  std::vector<int64_t> a_offsets(static_cast<size_t>(batches));
  std::vector<int64_t> b_offsets(static_cast<size_t>(batches));
  const int64_t a_matrix = m * k;
  const int64_t b_matrix = k * n;
  kernels::ForEachBroadcastPair(out_batch, as, bs,
                                [&](int64_t batch, int64_t ao, int64_t bo) {
                                  a_offsets[static_cast<size_t>(batch)] =
                                      ao * a_matrix;
                                  b_offsets[static_cast<size_t>(batch)] =
                                      bo * b_matrix;
                                });
  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  kernels::BatchedMatMul(*backend, a.Data().data(), b.Data().data(),
                         out.data(), a_offsets, b_offsets, m, k, n);

  Tensor result = MakeOpResult(
      "MatMul", out_shape, std::move(out), {a, b},
      [a, b](const Tensor& output) {
        const Tensor g = output.Grad();
        if (a.RequiresGrad()) {
          Tensor ga = MatMul(g, Transpose(b, -1, -2));
          AccumulateGrad(a, ReduceToShape(ga, a.shape()));
        }
        if (b.RequiresGrad()) {
          Tensor gb = MatMul(Transpose(a, -1, -2), g);
          AccumulateGrad(b, ReduceToShape(gb, b.shape()));
        }
      });
  if (exec::internal::CaptureActive()) {
    // BatchedMatMul accumulates into its output; zero_output makes the
    // executor clear the slot first (the eager path gets zeros from
    // AcquireBuffer).
    exec::internal::RecordStep(
        "MatMul", {a, b}, result,
        [backend, a_offsets, b_offsets, m, k, n](const exec::StepIo& io) {
          kernels::BatchedMatMul(*backend, io.inputs[0], io.inputs[1],
                                 io.output, a_offsets, b_offsets, m, k, n);
        },
        /*zero_output=*/true);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Reductions.

Tensor Sum(const Tensor& a) {
  D2_CHECK(a.defined());
  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  const int64_t n = static_cast<int64_t>(a.Data().size());
  const double total = kernels::ReduceSumAll(*backend, a.Data().data(), n);
  std::vector<float> out = internal::AcquireBuffer(1);
  out[0] = static_cast<float>(total);
  Tensor result = MakeOpResult("Sum", Shape{}, std::move(out), {a},
                               [a](const Tensor& output) {
                                 if (!a.RequiresGrad()) return;
                                 const float g = output.GradData()[0];
                                 AccumulateGrad(a, Tensor::Full(a.shape(), g));
                               });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "Sum", {a}, result, [backend, n](const exec::StepIo& io) {
          io.output[0] = static_cast<float>(
              kernels::ReduceSumAll(*backend, io.inputs[0], n));
        });
  }
  return result;
}

Tensor Mean(const Tensor& a) {
  D2_CHECK(a.defined());
  D2_CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor Sum(const Tensor& a, int64_t dim, bool keepdim) {
  D2_CHECK(a.defined());
  dim = NormalizeDim(dim, a.dim());
  int64_t outer, size, inner;
  SplitAtDim(a.shape(), dim, &outer, &size, &inner);

  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(dim)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + dim);
  }

  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  std::vector<float> out = internal::AcquireBuffer(outer * inner);
  kernels::ReduceSumDim(*backend, a.Data().data(), out.data(), outer, size,
                        inner);

  const Shape in_shape = a.shape();
  Tensor result = MakeOpResult(
      "SumDim", out_shape, std::move(out), {a},
      [a, dim, keepdim, in_shape](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        Tensor g = output.Grad();
        if (!keepdim) g = Unsqueeze(g, dim);
        AccumulateGrad(a, BroadcastTo(g, in_shape));
      });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "SumDim", {a}, result,
        [backend, outer, size, inner](const exec::StepIo& io) {
          kernels::ReduceSumDim(*backend, io.inputs[0], io.output, outer,
                                size, inner);
        });
  }
  return result;
}

Tensor Mean(const Tensor& a, int64_t dim, bool keepdim) {
  const int64_t d = NormalizeDim(dim, a.dim());
  const int64_t size = a.size(d);
  D2_CHECK_GT(size, 0);
  return MulScalar(Sum(a, d, keepdim), 1.0f / static_cast<float>(size));
}

namespace {

// Shared extremum reduction: sign = +1 for Max, -1 for Min. Gradient flows
// to the first extremal element of each reduced slice.
Tensor ExtremumDim(const char* name, const Tensor& a, int64_t dim,
                   bool keepdim, float sign) {
  D2_CHECK(a.defined());
  const int64_t d = NormalizeDim(dim, a.dim());
  int64_t outer, size, inner;
  SplitAtDim(a.shape(), d, &outer, &size, &inner);
  D2_CHECK_GT(size, 0);

  Shape out_shape = a.shape();
  if (keepdim) {
    out_shape[static_cast<size_t>(d)] = 1;
  } else {
    out_shape.erase(out_shape.begin() + d);
  }

  std::vector<float> out = internal::AcquireBuffer(outer * inner);
  std::vector<int64_t> arg(static_cast<size_t>(outer * inner));
  kernels::ExtremumDim(a.Data().data(), out.data(), arg.data(), outer, size,
                       inner, sign);

  const Shape in_shape = a.shape();
  Tensor result = MakeOpResult(
      name, out_shape, std::move(out), {a},
      [a, arg, d, in_shape](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        int64_t outer, size, inner;
        SplitAtDim(in_shape, d, &outer, &size, &inner);
        // AcquireBuffer zero-fills; the scatter kernel needs that.
        std::vector<float> grad =
            internal::AcquireBuffer(NumElements(in_shape));
        kernels::ExtremumDimGrad(output.GradData().data(), arg.data(),
                                 grad.data(), outer, size, inner);
        AccumulateGrad(a, Tensor(in_shape, std::move(grad)));
      });
  if (exec::internal::CaptureActive()) {
    // The argmax scratch is owned by the closure and reused across replays
    // (one executor never runs concurrently with itself).
    auto replay_arg =
        std::make_shared<std::vector<int64_t>>(static_cast<size_t>(outer) *
                                               static_cast<size_t>(inner));
    exec::internal::RecordStep(
        name, {a}, result,
        [outer, size, inner, sign, replay_arg](const exec::StepIo& io) {
          kernels::ExtremumDim(io.inputs[0], io.output, replay_arg->data(),
                               outer, size, inner, sign);
        });
  }
  return result;
}

}  // namespace

Tensor Max(const Tensor& a, int64_t dim, bool keepdim) {
  return ExtremumDim("Max", a, dim, keepdim, 1.0f);
}

Tensor Min(const Tensor& a, int64_t dim, bool keepdim) {
  return ExtremumDim("Min", a, dim, keepdim, -1.0f);
}

Tensor Softmax(const Tensor& a, int64_t dim) {
  D2_CHECK(a.defined());
  const int64_t d = NormalizeDim(dim, a.dim());
  int64_t outer, size, inner;
  SplitAtDim(a.shape(), d, &outer, &size, &inner);
  D2_CHECK_GT(size, 0);

  const kernels::KernelBackend* backend = &kernels::ActiveBackend();
  std::vector<float> out =
      internal::AcquireBuffer(static_cast<int64_t>(a.Data().size()));
  kernels::SoftmaxKernel(*backend, a.Data().data(), out.data(), outer, size,
                         inner);

  Tensor result = MakeOpResult(
      "Softmax", a.shape(), std::move(out), {a}, [a, d](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        // dx = y * (g - sum(g * y, dim))
        const Tensor g = output.Grad();
        const Tensor y = Tensor(output.shape(), output.Data());
        const Tensor dot = Sum(Mul(g, y), d, /*keepdim=*/true);
        AccumulateGrad(a, Mul(y, Sub(g, dot)));
      });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "Softmax", {a}, result,
        [backend, outer, size, inner](const exec::StepIo& io) {
          kernels::SoftmaxKernel(*backend, io.inputs[0], io.output, outer,
                                 size, inner);
        });
  }
  return result;
}

// ---------------------------------------------------------------------------
// Shape ops.

Tensor Reshape(const Tensor& a, const Shape& shape) {
  D2_CHECK(a.defined());
  Shape resolved = shape;
  int64_t known = 1;
  int64_t infer_at = -1;
  for (size_t d = 0; d < resolved.size(); ++d) {
    if (resolved[d] == -1) {
      D2_CHECK_EQ(infer_at, -1) << "at most one -1 in Reshape";
      infer_at = static_cast<int64_t>(d);
    } else {
      known *= resolved[d];
    }
  }
  if (infer_at >= 0) {
    D2_CHECK_GT(known, 0);
    D2_CHECK_EQ(a.numel() % known, 0)
        << "cannot infer dimension for " << ShapeToString(shape);
    resolved[static_cast<size_t>(infer_at)] = a.numel() / known;
  }
  D2_CHECK_EQ(NumElements(resolved), a.numel())
      << "Reshape to " << ShapeToString(shape) << " from "
      << ShapeToString(a.shape());

  std::vector<float> out = internal::AcquireBuffer(a.numel());
  std::copy(a.Data().begin(), a.Data().end(), out.begin());
  const Shape in_shape = a.shape();
  Tensor result = MakeOpResult("Reshape", resolved, std::move(out), {a},
                               [a, in_shape](const Tensor& output) {
                                 if (!a.RequiresGrad()) return;
                                 AccumulateGrad(
                                     a, Tensor(in_shape, output.GradData()));
                               });
  if (exec::internal::CaptureActive()) {
    const int64_t n = a.numel();
    exec::internal::RecordStep(
        "Reshape", {a}, result, [n](const exec::StepIo& io) {
          std::copy(io.inputs[0], io.inputs[0] + n, io.output);
        });
  }
  return result;
}

Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm) {
  D2_CHECK(a.defined());
  const int64_t rank = a.dim();
  D2_CHECK_EQ(static_cast<int64_t>(perm.size()), rank);
  std::vector<bool> seen(static_cast<size_t>(rank), false);
  Shape out_shape(static_cast<size_t>(rank));
  for (size_t d = 0; d < perm.size(); ++d) {
    const int64_t p = NormalizeDim(perm[d], rank);
    D2_CHECK(!seen[static_cast<size_t>(p)]) << "duplicate axis in Permute";
    seen[static_cast<size_t>(p)] = true;
    out_shape[d] = a.size(p);
  }

  const std::vector<int64_t> in_strides = RowMajorStrides(a.shape());
  std::vector<int64_t> gather_strides(perm.size());
  for (size_t d = 0; d < perm.size(); ++d) {
    gather_strides[d] =
        in_strides[static_cast<size_t>(NormalizeDim(perm[d], rank))];
  }

  std::vector<float> out =
      internal::AcquireBuffer(static_cast<int64_t>(a.Data().size()));
  kernels::GatherStrided(out_shape, gather_strides, a.Data().data(),
                         out.data());

  std::vector<int64_t> normalized(perm.size());
  for (size_t d = 0; d < perm.size(); ++d) {
    normalized[d] = NormalizeDim(perm[d], rank);
  }
  Tensor result = MakeOpResult(
      "Permute", out_shape, std::move(out), {a},
      [a, normalized](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        std::vector<int64_t> inverse(normalized.size());
        for (size_t d = 0; d < normalized.size(); ++d) {
          inverse[static_cast<size_t>(normalized[d])] = static_cast<int64_t>(d);
        }
        AccumulateGrad(a, Permute(output.Grad(), inverse));
      });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "Permute", {a}, result,
        [out_shape, gather_strides](const exec::StepIo& io) {
          kernels::GatherStrided(out_shape, gather_strides, io.inputs[0],
                                 io.output);
        });
  }
  return result;
}

Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1) {
  const int64_t rank = a.dim();
  d0 = NormalizeDim(d0, rank);
  d1 = NormalizeDim(d1, rank);
  std::vector<int64_t> perm(static_cast<size_t>(rank));
  for (int64_t d = 0; d < rank; ++d) perm[static_cast<size_t>(d)] = d;
  std::swap(perm[static_cast<size_t>(d0)], perm[static_cast<size_t>(d1)]);
  return Permute(a, perm);
}

Tensor Unsqueeze(const Tensor& a, int64_t dim) {
  const int64_t rank = a.dim();
  if (dim < 0) dim += rank + 1;
  D2_CHECK_GE(dim, 0);
  D2_CHECK_LE(dim, rank);
  Shape shape = a.shape();
  shape.insert(shape.begin() + dim, 1);
  return Reshape(a, shape);
}

Tensor Squeeze(const Tensor& a, int64_t dim) {
  const int64_t d = NormalizeDim(dim, a.dim());
  D2_CHECK_EQ(a.size(d), 1) << "Squeeze of non-unit dimension";
  Shape shape = a.shape();
  shape.erase(shape.begin() + d);
  return Reshape(a, shape);
}

Tensor BroadcastTo(const Tensor& a, const Shape& shape) {
  D2_CHECK(a.defined());
  if (a.shape() == shape) return a;
  const std::vector<int64_t> as = kernels::BroadcastStrides(a.shape(), shape);
  std::vector<float> out = internal::AcquireBuffer(NumElements(shape));
  kernels::GatherStrided(shape, as, a.Data().data(), out.data());
  const Shape in_shape = a.shape();
  Tensor result = MakeOpResult("BroadcastTo", shape, std::move(out), {a},
                               [a, in_shape](const Tensor& output) {
                                 if (!a.RequiresGrad()) return;
                                 AccumulateGrad(
                                     a, ReduceToShape(output.Grad(), in_shape));
                               });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "BroadcastTo", {a}, result, [shape, as](const exec::StepIo& io) {
          kernels::GatherStrided(shape, as, io.inputs[0], io.output);
        });
  }
  return result;
}

Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim) {
  D2_CHECK(!tensors.empty());
  const int64_t rank = tensors[0].dim();
  const int64_t d = NormalizeDim(dim, rank);
  Shape out_shape = tensors[0].shape();
  int64_t total = 0;
  for (const Tensor& t : tensors) {
    D2_CHECK(t.defined());
    D2_CHECK_EQ(t.dim(), rank);
    for (int64_t dd = 0; dd < rank; ++dd) {
      if (dd != d) {
        D2_CHECK_EQ(t.size(dd), out_shape[static_cast<size_t>(dd)])
            << "Concat shape mismatch on dim " << dd;
      }
    }
    total += t.size(d);
  }
  out_shape[static_cast<size_t>(d)] = total;

  int64_t outer, unused_size, inner;
  SplitAtDim(out_shape, d, &outer, &unused_size, &inner);
  (void)unused_size;

  std::vector<float> out = internal::AcquireBuffer(NumElements(out_shape));
  int64_t offset = 0;  // running offset along dim d
  for (const Tensor& t : tensors) {
    const int64_t size = t.size(d);
    const std::vector<float>& tv = t.Data();
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = tv.data() + o * size * inner;
      float* dst = out.data() + (o * total + offset) * inner;
      std::copy(src, src + size * inner, dst);
    }
    offset += size;
  }

  std::vector<Tensor> inputs = tensors;
  Tensor result = MakeOpResult(
      "Concat", out_shape, std::move(out), inputs,
      [inputs, d](const Tensor& output) {
        int64_t offset = 0;
        for (const Tensor& t : inputs) {
          const int64_t size = t.size(d);
          if (t.RequiresGrad()) {
            AccumulateGrad(t, Slice(output.Grad(), d, offset, offset + size));
          }
          offset += size;
        }
      });
  if (exec::internal::CaptureActive()) {
    std::vector<int64_t> sizes;
    sizes.reserve(tensors.size());
    for (const Tensor& t : tensors) sizes.push_back(t.size(d));
    exec::internal::RecordStep(
        "Concat", inputs, result,
        [outer, total, inner, sizes](const exec::StepIo& io) {
          int64_t offset = 0;
          for (size_t t = 0; t < sizes.size(); ++t) {
            const int64_t size = sizes[t];
            for (int64_t o = 0; o < outer; ++o) {
              const float* src = io.inputs[t] + o * size * inner;
              float* dst = io.output + (o * total + offset) * inner;
              std::copy(src, src + size * inner, dst);
            }
            offset += size;
          }
        });
  }
  return result;
}

Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim) {
  D2_CHECK(!tensors.empty());
  std::vector<Tensor> expanded;
  expanded.reserve(tensors.size());
  for (const Tensor& t : tensors) expanded.push_back(Unsqueeze(t, dim));
  return Concat(expanded, dim);
}

Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end) {
  D2_CHECK(a.defined());
  const int64_t d = NormalizeDim(dim, a.dim());
  const int64_t size = a.size(d);
  if (start < 0) start += size;
  if (end < 0) end += size;
  D2_CHECK_GE(start, 0);
  D2_CHECK_LE(end, size);
  D2_CHECK_LT(start, end) << "empty Slice [" << start << ", " << end << ")";

  int64_t outer, in_size, inner;
  SplitAtDim(a.shape(), d, &outer, &in_size, &inner);
  const int64_t out_size = end - start;
  Shape out_shape = a.shape();
  out_shape[static_cast<size_t>(d)] = out_size;

  const std::vector<float>& av = a.Data();
  std::vector<float> out = internal::AcquireBuffer(outer * out_size * inner);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = av.data() + (o * in_size + start) * inner;
    float* dst = out.data() + o * out_size * inner;
    std::copy(src, src + out_size * inner, dst);
  }

  const Shape in_shape = a.shape();
  Tensor result = MakeOpResult(
      "Slice", out_shape, std::move(out), {a},
      [a, d, start, out_size, in_shape](const Tensor& output) {
        if (!a.RequiresGrad()) return;
        int64_t outer, in_size, inner;
        SplitAtDim(in_shape, d, &outer, &in_size, &inner);
        // AcquireBuffer zero-fills the positions outside the slice.
        std::vector<float> grad =
            internal::AcquireBuffer(NumElements(in_shape));
        const std::vector<float>& g = output.GradData();
        for (int64_t o = 0; o < outer; ++o) {
          const float* src = g.data() + o * out_size * inner;
          float* dst = grad.data() + (o * in_size + start) * inner;
          std::copy(src, src + out_size * inner, dst);
        }
        AccumulateGrad(a, Tensor(in_shape, std::move(grad)));
      });
  if (exec::internal::CaptureActive()) {
    exec::internal::RecordStep(
        "Slice", {a}, result,
        [outer, in_size, out_size, inner, start](const exec::StepIo& io) {
          for (int64_t o = 0; o < outer; ++o) {
            const float* src = io.inputs[0] + (o * in_size + start) * inner;
            float* dst = io.output + o * out_size * inner;
            std::copy(src, src + out_size * inner, dst);
          }
        });
  }
  return result;
}

Tensor Select(const Tensor& a, int64_t dim, int64_t index) {
  const int64_t d = NormalizeDim(dim, a.dim());
  if (index < 0) index += a.size(d);
  return Squeeze(Slice(a, d, index, index + 1), d);
}

Tensor PadFront(const Tensor& a, int64_t dim, int64_t count) {
  D2_CHECK(a.defined());
  D2_CHECK_GE(count, 0);
  if (count == 0) return a;
  const int64_t d = NormalizeDim(dim, a.dim());
  Shape pad_shape = a.shape();
  pad_shape[static_cast<size_t>(d)] = count;
  return Concat({Tensor::Zeros(pad_shape), a}, d);
}

// ---------------------------------------------------------------------------
// Indexing / regularization.

Tensor EmbeddingLookup(const Tensor& weight,
                       const std::vector<int64_t>& indices,
                       const Shape& index_shape) {
  D2_CHECK(weight.defined());
  D2_CHECK_EQ(weight.dim(), 2) << "embedding table must be [count, width]";
  D2_CHECK_EQ(static_cast<int64_t>(indices.size()), NumElements(index_shape));
  const int64_t vocab = weight.size(0);
  const int64_t width = weight.size(1);

  Shape out_shape = index_shape;
  out_shape.push_back(width);
  const std::vector<float>& wv = weight.Data();
  std::vector<float> out = internal::AcquireBuffer(
      static_cast<int64_t>(indices.size()) * width);
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t row = indices[i];
    D2_CHECK_GE(row, 0);
    D2_CHECK_LT(row, vocab) << "embedding index out of range";
    std::copy(wv.begin() + row * width, wv.begin() + (row + 1) * width,
              out.begin() + static_cast<int64_t>(i) * width);
  }

  Tensor result = MakeOpResult(
      "EmbeddingLookup", out_shape, std::move(out), {weight},
      [weight, indices, vocab, width](const Tensor& output) {
        if (!weight.RequiresGrad()) return;
        std::vector<float> grad = internal::AcquireBuffer(vocab * width);
        const std::vector<float>& g = output.GradData();
        for (size_t i = 0; i < indices.size(); ++i) {
          const int64_t row = indices[i];
          for (int64_t c = 0; c < width; ++c) {
            grad[static_cast<size_t>(row * width + c)] +=
                g[i * static_cast<size_t>(width) + static_cast<size_t>(c)];
          }
        }
        AccumulateGrad(weight, Tensor({vocab, width}, std::move(grad)));
      });
  if (exec::internal::CaptureActive()) {
    // Recorded with the index vector rebindable: when the caller bound
    // `indices` (time-of-day / day-of-week features), replay reads the
    // fresh per-request values; otherwise a snapshot is baked in. Bounds
    // checks stay because replayed indices are request data.
    exec::internal::RecordIndexedStep(
        "EmbeddingLookup", {weight}, indices, result,
        [vocab, width](const exec::StepIo& io) {
          const std::vector<int64_t>& idx = *io.indices;
          for (size_t i = 0; i < idx.size(); ++i) {
            const int64_t row = idx[i];
            D2_CHECK_GE(row, 0);
            D2_CHECK_LT(row, vocab) << "embedding index out of range";
            std::copy(io.inputs[0] + row * width,
                      io.inputs[0] + (row + 1) * width,
                      io.output + static_cast<int64_t>(i) * width);
          }
        });
  }
  return result;
}

Tensor Dropout(const Tensor& a, float p, bool training, Rng& rng) {
  D2_CHECK(a.defined());
  D2_CHECK_GE(p, 0.0f);
  D2_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  // A fresh mask per call cannot be baked into a plan; the identity path
  // above (inference) captures fine.
  exec::internal::MarkCaptureUnsupported("Dropout with training=true");
  const float scale = 1.0f / (1.0f - p);
  // Mask generation stays serial: it must consume `rng` in a reproducible
  // order regardless of the thread count.
  std::vector<float> mask =
      internal::AcquireBuffer(static_cast<int64_t>(a.Data().size()));
  for (auto& m : mask) m = rng.Uniform() < p ? 0.0f : scale;
  Tensor mask_tensor(a.shape(), std::move(mask));
  return Mul(a, mask_tensor);
}

}  // namespace d2stgnn
