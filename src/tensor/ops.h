#ifndef D2STGNN_TENSOR_OPS_H_
#define D2STGNN_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

// Differentiable tensor operations. All functions return new tensors and,
// unless a NoGradGuard is active, record autograd tape nodes so that
// Tensor::Backward() on a downstream scalar propagates gradients here.
//
// Binary elementwise ops follow NumPy broadcasting rules.

namespace d2stgnn {

// ---------------------------------------------------------------------------
// Broadcasting helpers.

/// Returns the broadcast of two shapes (NumPy rules). Aborts if incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

/// Sums `t` over its broadcast dimensions so that the result has exactly
/// `target` shape. Used to reduce output gradients back to input shapes.
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---------------------------------------------------------------------------
// Elementwise binary ops (with broadcasting).

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);

/// a + s, a * s, a ** e applied elementwise with a scalar.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor PowScalar(const Tensor& a, float exponent);

Tensor operator+(const Tensor& a, const Tensor& b);
Tensor operator-(const Tensor& a, const Tensor& b);
Tensor operator*(const Tensor& a, const Tensor& b);
Tensor operator/(const Tensor& a, const Tensor& b);
Tensor operator+(const Tensor& a, float s);
Tensor operator-(const Tensor& a, float s);
Tensor operator*(const Tensor& a, float s);
Tensor operator/(const Tensor& a, float s);
Tensor operator+(float s, const Tensor& a);
Tensor operator-(float s, const Tensor& a);
Tensor operator*(float s, const Tensor& a);
Tensor operator-(const Tensor& a);

// ---------------------------------------------------------------------------
// Elementwise unary ops.

Tensor Neg(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.01f);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);

/// Gaussian error linear unit (tanh approximation).
Tensor Gelu(const Tensor& a);

/// Clamps every element to [lo, hi]. Gradient is passed through inside the
/// range and zero outside (straight-through at the boundaries).
Tensor Clamp(const Tensor& a, float lo, float hi);

// ---------------------------------------------------------------------------
// Linear algebra.

/// Batched matrix multiplication. `a` is [..., m, k], `b` is [..., k, n];
/// leading (batch) dimensions broadcast. Rank-2 inputs multiply as plain
/// matrices.
Tensor MatMul(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Reductions.

/// Sum of all elements (scalar result).
Tensor Sum(const Tensor& a);

/// Mean of all elements (scalar result).
Tensor Mean(const Tensor& a);

/// Sum over dimension `dim` (negative counts from the end).
Tensor Sum(const Tensor& a, int64_t dim, bool keepdim);

/// Mean over dimension `dim`.
Tensor Mean(const Tensor& a, int64_t dim, bool keepdim);

/// Maximum over dimension `dim`. Gradient flows to the (first) argmax
/// element of each slice.
Tensor Max(const Tensor& a, int64_t dim, bool keepdim);

/// Minimum over dimension `dim` (gradient like Max).
Tensor Min(const Tensor& a, int64_t dim, bool keepdim);

/// Numerically stable softmax along `dim`.
Tensor Softmax(const Tensor& a, int64_t dim);

// ---------------------------------------------------------------------------
// Shape manipulation.

/// Reshapes to `shape`; one entry may be -1 (inferred). Element count must
/// be preserved.
Tensor Reshape(const Tensor& a, const Shape& shape);

/// Reorders dimensions: out dim i = in dim perm[i]. Materializes a copy.
Tensor Permute(const Tensor& a, const std::vector<int64_t>& perm);

/// Swaps two dimensions (negative indices allowed).
Tensor Transpose(const Tensor& a, int64_t d0, int64_t d1);

/// Inserts a size-1 dimension at `dim`.
Tensor Unsqueeze(const Tensor& a, int64_t dim);

/// Removes a size-1 dimension at `dim`.
Tensor Squeeze(const Tensor& a, int64_t dim);

/// Broadcasts to `shape` (must be broadcast-compatible).
Tensor BroadcastTo(const Tensor& a, const Shape& shape);

/// Concatenates along `dim`. All other dimensions must match.
Tensor Concat(const std::vector<Tensor>& tensors, int64_t dim);

/// Stacks along a new dimension at `dim`.
Tensor Stack(const std::vector<Tensor>& tensors, int64_t dim);

/// Returns the half-open slice [start, end) of dimension `dim`.
Tensor Slice(const Tensor& a, int64_t dim, int64_t start, int64_t end);

/// Slice + squeeze: drops dimension `dim`, keeping `index`.
Tensor Select(const Tensor& a, int64_t dim, int64_t index);

/// Prepends `count` zero frames along `dim`.
Tensor PadFront(const Tensor& a, int64_t dim, int64_t count);

// ---------------------------------------------------------------------------
// Indexing / regularization.

/// Gathers rows of `weight` ([num_embeddings, d]) by `indices` and returns a
/// tensor of shape index_shape + [d]. Gradients scatter-add into `weight`.
Tensor EmbeddingLookup(const Tensor& weight,
                       const std::vector<int64_t>& indices,
                       const Shape& index_shape);

/// Inverted dropout: during training zeroes entries with probability `p` and
/// rescales survivors by 1/(1-p); identity otherwise.
Tensor Dropout(const Tensor& a, float p, bool training, Rng& rng);

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_OPS_H_
