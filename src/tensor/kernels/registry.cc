#include "tensor/kernels/registry.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace d2stgnn::kernels {
namespace {

CpuFeatures QueryCpu() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
  features.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return features;
}

const KernelBackend* FindBackend(const std::string& name) {
  if (name == ScalarBackend().name) return &ScalarBackend();
  const KernelBackend* avx2 = Avx2BackendOrNull();
  if (avx2 != nullptr && name == avx2->name) return avx2;
  return nullptr;
}

const KernelBackend* Detect() {
  const KernelBackend* avx2 = Avx2BackendOrNull();
  return avx2 != nullptr ? avx2 : &ScalarBackend();
}

// Startup choice: D2STGNN_FORCE_BACKEND wins when it names a runnable
// backend; anything else warns and falls back to detection so a forced env
// var can never make the binary unrunnable on a weaker machine.
const KernelBackend* ResolveStartupBackend() {
  const char* forced = std::getenv("D2STGNN_FORCE_BACKEND");
  if (forced != nullptr && forced[0] != '\0') {
    const KernelBackend* backend = FindBackend(forced);
    if (backend != nullptr) return backend;
    std::fprintf(stderr,
                 "[kernels] D2STGNN_FORCE_BACKEND=%s is not available on "
                 "this CPU; using '%s'\n",
                 forced, Detect()->name);
  }
  return Detect();
}

std::atomic<const KernelBackend*>& ActiveSlot() {
  static std::atomic<const KernelBackend*> slot{ResolveStartupBackend()};
  return slot;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = QueryCpu();
  return features;
}

std::string CpuFeatureSummary() {
  const CpuFeatures& features = DetectCpuFeatures();
  std::string summary;
  auto add = [&summary](const char* name) {
    if (!summary.empty()) summary += ' ';
    summary += name;
  };
  if (features.avx2) add("avx2");
  if (features.fma) add("fma");
  if (features.avx512f) add("avx512f");
  return summary;
}

std::vector<std::string> AvailableBackendNames() {
  std::vector<std::string> names = {ScalarBackend().name};
  const KernelBackend* avx2 = Avx2BackendOrNull();
  if (avx2 != nullptr) names.emplace_back(avx2->name);
  return names;
}

const char* DetectedBackendName() { return Detect()->name; }

const KernelBackend& ActiveBackend() {
  return *ActiveSlot().load(std::memory_order_acquire);
}

bool SetActiveBackend(const std::string& name, std::string* error) {
  const KernelBackend* backend = FindBackend(name);
  if (backend == nullptr) {
    if (error != nullptr) {
      *error = "unknown or unavailable kernel backend '" + name +
               "' (available:";
      for (const std::string& available : AvailableBackendNames()) {
        *error += " " + available;
      }
      *error += ")";
    }
    return false;
  }
  ActiveSlot().store(backend, std::memory_order_release);
  return true;
}

ScopedBackendOverride::ScopedBackendOverride(const std::string& name)
    : previous_(ActiveBackend().name) {
  engaged_ = SetActiveBackend(name);
}

ScopedBackendOverride::~ScopedBackendOverride() {
  if (engaged_) SetActiveBackend(previous_);
}

}  // namespace d2stgnn::kernels
