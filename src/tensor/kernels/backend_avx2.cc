#include "tensor/kernels/backend.h"
#include "tensor/kernels/registry.h"

// AVX2+FMA backend. This translation unit is compiled with -mavx2 -mfma (see
// src/CMakeLists.txt); nothing here executes unless cpuid reported both
// features at runtime (Avx2BackendOrNull gates registration), so the vector
// instructions can never SIGILL a weaker machine.
//
// Accuracy contract (enforced by kernel_backend_test against the tolerance
// table in backend.h):
//  - add/sub/mul/div/sqrt/abs/relu/leaky-relu/clamp/add-scalar/mul-scalar,
//    bias_add and reduce_sum_dim are exactly-rounded instruction sequences in
//    scalar per-element order — bitwise identical to the scalar backend.
//  - exp/log/sigmoid/tanh/gelu use Cephes-style polynomial vector math with a
//    declared max-ulp bound. Remainder lanes use masked loads/stores of the
//    same vector formula — never a scalar-libm fallback — so per-element
//    results are independent of where a chunk boundary falls.
//  - matmul uses FMA accumulation (one rounding where scalar has two) and
//    reduce_sum uses four double lanes; both carry relative tolerances.
//  - pow-scalar delegates to the scalar backend (std::pow semantics are not
//    worth re-deriving in vector form).
// Inputs are assumed finite; NaN/Inf propagation in the polynomial paths is
// unspecified (the denormal tail of exp flushes to zero).

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/align.h"

namespace d2stgnn::kernels {
namespace {

constexpr int64_t kLanes = common::kVectorLaneFloats;
static_assert(kLanes == 8, "AVX2 backend assumes 256-bit float registers");

// Same K-tile as the scalar backend so the cache behavior (and the tile
// boundaries of the accumulation order) line up.
constexpr int64_t kMatMulKTile = 256;

/// All-ones in the first `rem` (1..7) lanes — the remainder mask.
inline __m256i TailMask(int64_t rem) {
  const __m256i idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  return _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(rem)), idx);
}

// ---------------------------------------------------------------------------
// Vector math (Cephes-derived single-precision kernels).

/// exp(x) with Cody-Waite range reduction and a degree-5 polynomial.
/// Underflow (x < -87.34) flushes to exactly 0; overflow saturates near
/// FLT_MAX via the input clamp.
inline __m256 ExpPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 hi = _mm256_set1_ps(88.3762626647950f);
  const __m256 lo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 underflow = _mm256_cmp_ps(x, lo, _CMP_LT_OQ);
  x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);

  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), x);
  y = _mm256_add_ps(y, one);

  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  y = _mm256_mul_ps(y, _mm256_castsi256_ps(n));
  return _mm256_andnot_ps(underflow, y);
}

/// log(x) via exponent extraction and a degree-9 polynomial on the mantissa.
/// log(0) = -inf and log(x < 0) = NaN, matching std::log.
inline __m256 LogPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 is_zero = _mm256_cmp_ps(x, zero, _CMP_EQ_OQ);
  const __m256 is_neg = _mm256_cmp_ps(x, zero, _CMP_LT_OQ);

  x = _mm256_max_ps(x, _mm256_set1_ps(1.17549435e-38f));
  __m256i xi = _mm256_castps_si256(x);
  __m256 e = _mm256_cvtepi32_ps(_mm256_sub_epi32(
      _mm256_srli_epi32(xi, 23), _mm256_set1_epi32(127)));
  e = _mm256_add_ps(e, one);
  // Mantissa in [0.5, 1).
  x = _mm256_and_ps(x,
                    _mm256_castsi256_ps(_mm256_set1_epi32(~0x7f800000)));
  x = _mm256_or_ps(x, _mm256_set1_ps(0.5f));

  const __m256 below = _mm256_cmp_ps(
      x, _mm256_set1_ps(0.707106781186547524f), _CMP_LT_OQ);
  const __m256 shifted = _mm256_and_ps(x, below);
  x = _mm256_sub_ps(x, one);
  e = _mm256_sub_ps(e, _mm256_and_ps(one, below));
  x = _mm256_add_ps(x, shifted);

  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(7.0376836292e-2f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.1514610310e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.1676998740e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.2420140846e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.4249322787e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-1.6668057665e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(2.0000714765e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(-2.4999993993e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(3.3333331174e-1f));
  y = _mm256_mul_ps(_mm256_mul_ps(y, x), z);
  y = _mm256_fmadd_ps(e, _mm256_set1_ps(-2.12194440e-4f), y);
  y = _mm256_fnmadd_ps(z, _mm256_set1_ps(0.5f), y);
  x = _mm256_add_ps(x, y);
  x = _mm256_fmadd_ps(e, _mm256_set1_ps(0.693359375f), x);

  x = _mm256_blendv_ps(x, _mm256_set1_ps(
                              -std::numeric_limits<float>::infinity()),
                       is_zero);
  return _mm256_blendv_ps(
      x, _mm256_set1_ps(std::numeric_limits<float>::quiet_NaN()), is_neg);
}

/// tanh(x): odd polynomial below |x| = 0.625, 1 - 2/(exp(2|x|)+1) above —
/// the small-|x| polynomial avoids the cancellation the exp identity has
/// near zero.
inline __m256 TanhPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, sign_bit);
  const __m256 ax = _mm256_andnot_ps(sign_bit, x);

  const __m256 e = ExpPs(_mm256_mul_ps(ax, _mm256_set1_ps(2.0f)));
  const __m256 large = _mm256_sub_ps(
      one, _mm256_div_ps(_mm256_set1_ps(2.0f), _mm256_add_ps(e, one)));

  const __m256 z = _mm256_mul_ps(ax, ax);
  __m256 p = _mm256_set1_ps(-5.70498872745e-3f);
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(2.06390887954e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-5.37397155531e-2f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(1.33314422036e-1f));
  p = _mm256_fmadd_ps(p, z, _mm256_set1_ps(-3.33332819422e-1f));
  const __m256 small = _mm256_fmadd_ps(_mm256_mul_ps(ax, z), p, ax);

  const __m256 use_small =
      _mm256_cmp_ps(ax, _mm256_set1_ps(0.625f), _CMP_LT_OQ);
  return _mm256_or_ps(_mm256_blendv_ps(large, small, use_small), sign);
}

/// Tail-stable sigmoid: exp(-|x|) never overflows, and the x < 0 branch
/// e/(1+e) avoids the 1 - s cancellation.
inline __m256 SigmoidPs(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  const __m256 ax = _mm256_andnot_ps(sign_bit, x);
  const __m256 e = ExpPs(_mm256_or_ps(ax, sign_bit));  // exp(-|x|)
  const __m256 denom = _mm256_add_ps(one, e);
  const __m256 pos = _mm256_div_ps(one, denom);
  const __m256 neg = _mm256_div_ps(e, denom);
  const __m256 nonneg =
      _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GE_OQ);
  return _mm256_blendv_ps(neg, pos, nonneg);
}

/// tanh-approximated GELU, same constants as the scalar reference.
inline __m256 GeluPs(__m256 x) {
  const __m256 x3 = _mm256_mul_ps(_mm256_mul_ps(x, x), x);
  const __m256 inner = _mm256_mul_ps(
      _mm256_set1_ps(0.7978845608f),
      _mm256_add_ps(x, _mm256_mul_ps(_mm256_set1_ps(0.044715f), x3)));
  const __m256 t = TanhPs(inner);
  return _mm256_mul_ps(
      _mm256_mul_ps(_mm256_set1_ps(0.5f), x),
      _mm256_add_ps(_mm256_set1_ps(1.0f), t));
}

// ---------------------------------------------------------------------------
// Range-kernel scaffolding.

/// Runs a vector functor over [begin, end) with a masked remainder.
template <typename VFn>
void RunUnaryV(const float* a, float* out, int64_t begin, int64_t end,
               VFn fn) {
  int64_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    _mm256_storeu_ps(out + i, fn(_mm256_loadu_ps(a + i)));
  }
  if (i < end) {
    const __m256i mask = TailMask(end - i);
    _mm256_maskstore_ps(out + i, mask, fn(_mm256_maskload_ps(a + i, mask)));
  }
}

template <typename VFn>
void RunBinaryV(const float* a, const float* b, float* out, int64_t begin,
                int64_t end, VFn fn) {
  int64_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    _mm256_storeu_ps(
        out + i, fn(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  if (i < end) {
    const __m256i mask = TailMask(end - i);
    _mm256_maskstore_ps(out + i, mask,
                        fn(_mm256_maskload_ps(a + i, mask),
                           _mm256_maskload_ps(b + i, mask)));
  }
}

// ---------------------------------------------------------------------------
// Backend entry points.

void Avx2EwiseUnary(UnaryKind kind, UnaryParams params, const float* a,
                    float* out, int64_t begin, int64_t end) {
  switch (kind) {
    case UnaryKind::kAddScalar: {
      const __m256 s = _mm256_set1_ps(params.p0);
      return RunUnaryV(a, out, begin, end,
                       [s](__m256 x) { return _mm256_add_ps(x, s); });
    }
    case UnaryKind::kMulScalar: {
      const __m256 s = _mm256_set1_ps(params.p0);
      return RunUnaryV(a, out, begin, end,
                       [s](__m256 x) { return _mm256_mul_ps(x, s); });
    }
    case UnaryKind::kRelu: {
      const __m256 zero = _mm256_setzero_ps();
      return RunUnaryV(a, out, begin, end, [zero](__m256 x) {
        return _mm256_max_ps(x, zero);
      });
    }
    case UnaryKind::kLeakyRelu: {
      const __m256 slope = _mm256_set1_ps(params.p0);
      const __m256 zero = _mm256_setzero_ps();
      return RunUnaryV(a, out, begin, end, [slope, zero](__m256 x) {
        const __m256 pos = _mm256_cmp_ps(x, zero, _CMP_GT_OQ);
        return _mm256_blendv_ps(_mm256_mul_ps(slope, x), x, pos);
      });
    }
    case UnaryKind::kSigmoid:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return SigmoidPs(x); });
    case UnaryKind::kTanh:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return TanhPs(x); });
    case UnaryKind::kExp:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return ExpPs(x); });
    case UnaryKind::kLog:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return LogPs(x); });
    case UnaryKind::kSqrt:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return _mm256_sqrt_ps(x); });
    case UnaryKind::kAbs: {
      const __m256 sign_bit = _mm256_set1_ps(-0.0f);
      return RunUnaryV(a, out, begin, end, [sign_bit](__m256 x) {
        return _mm256_andnot_ps(sign_bit, x);
      });
    }
    case UnaryKind::kGelu:
      return RunUnaryV(a, out, begin, end,
                       [](__m256 x) { return GeluPs(x); });
    case UnaryKind::kClamp: {
      const __m256 lo = _mm256_set1_ps(params.p0);
      const __m256 hi = _mm256_set1_ps(params.p1);
      return RunUnaryV(a, out, begin, end, [lo, hi](__m256 x) {
        return _mm256_min_ps(hi, _mm256_max_ps(x, lo));
      });
    }
    case UnaryKind::kPowScalar:
      break;  // std::pow semantics — delegate to the reference.
  }
  ScalarBackend().ewise_unary(kind, params, a, out, begin, end);
}

void Avx2EwiseBinary(BinaryKind kind, const float* a, const float* b,
                     float* out, int64_t begin, int64_t end) {
  switch (kind) {
    case BinaryKind::kAdd:
      return RunBinaryV(a, b, out, begin, end, [](__m256 x, __m256 y) {
        return _mm256_add_ps(x, y);
      });
    case BinaryKind::kSub:
      return RunBinaryV(a, b, out, begin, end, [](__m256 x, __m256 y) {
        return _mm256_sub_ps(x, y);
      });
    case BinaryKind::kMul:
      return RunBinaryV(a, b, out, begin, end, [](__m256 x, __m256 y) {
        return _mm256_mul_ps(x, y);
      });
    case BinaryKind::kDiv:
      return RunBinaryV(a, b, out, begin, end, [](__m256 x, __m256 y) {
        return _mm256_div_ps(x, y);
      });
  }
}

void Avx2BiasAdd(const float* a, const float* bias, float* out,
                 int64_t row_begin, int64_t row_end, int64_t n) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    RunBinaryV(a + r * n, bias, out + r * n, 0, n, [](__m256 x, __m256 y) {
      return _mm256_add_ps(x, y);
    });
  }
}

void Avx2MatMulRowRange(const float* a, const float* b, float* out,
                        int64_t row_begin, int64_t row_end, int64_t k,
                        int64_t n) {
  // Register-blocked i-j-k within each k-tile: per output element the
  // accumulation still walks kk ascending (tile by tile), matching the
  // scalar order except that mul+add fuses into FMA.
  for (int64_t k0 = 0; k0 < k; k0 += kMatMulKTile) {
    const int64_t k1 = std::min(k, k0 + kMatMulKTile);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * k;
      float* out_row = out + i * n;
      int64_t j = 0;
      for (; j + 2 * kLanes <= n; j += 2 * kLanes) {
        __m256 acc0 = _mm256_loadu_ps(out_row + j);
        __m256 acc1 = _mm256_loadu_ps(out_row + j + kLanes);
        for (int64_t kk = k0; kk < k1; ++kk) {
          const __m256 av = _mm256_broadcast_ss(a_row + kk);
          const float* b_row = b + kk * n + j;
          acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row), acc0);
          acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + kLanes), acc1);
        }
        _mm256_storeu_ps(out_row + j, acc0);
        _mm256_storeu_ps(out_row + j + kLanes, acc1);
      }
      for (; j + kLanes <= n; j += kLanes) {
        __m256 acc = _mm256_loadu_ps(out_row + j);
        for (int64_t kk = k0; kk < k1; ++kk) {
          acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a_row + kk),
                                _mm256_loadu_ps(b + kk * n + j), acc);
        }
        _mm256_storeu_ps(out_row + j, acc);
      }
      if (j < n) {
        const __m256i mask = TailMask(n - j);
        __m256 acc = _mm256_maskload_ps(out_row + j, mask);
        for (int64_t kk = k0; kk < k1; ++kk) {
          acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a_row + kk),
                                _mm256_maskload_ps(b + kk * n + j, mask),
                                acc);
        }
        _mm256_maskstore_ps(out_row + j, mask, acc);
      }
    }
  }
}

double Avx2ReduceSumRange(const float* a, int64_t begin, int64_t end) {
  __m256d acc = _mm256_setzero_pd();
  int64_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  // Fixed association — the horizontal order is part of the result.
  double total = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < end; ++i) total += static_cast<double>(a[i]);
  return total;
}

void Avx2ReduceSumDimSlice(const float* a, float* out, int64_t size,
                           int64_t inner) {
  // Accumulates each i-chunk in a register across s ascending — per element
  // the identical add sequence to scalar, so this path is bitwise parity.
  int64_t i = 0;
  for (; i + kLanes <= inner; i += kLanes) {
    __m256 acc = _mm256_setzero_ps();
    for (int64_t s = 0; s < size; ++s) {
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + s * inner + i));
    }
    _mm256_storeu_ps(out + i, acc);
  }
  if (i < inner) {
    const __m256i mask = TailMask(inner - i);
    __m256 acc = _mm256_setzero_ps();
    for (int64_t s = 0; s < size; ++s) {
      acc = _mm256_add_ps(acc, _mm256_maskload_ps(a + s * inner + i, mask));
    }
    _mm256_maskstore_ps(out + i, mask, acc);
  }
}

void Avx2SoftmaxSlice(const float* a, float* out, int64_t size,
                      int64_t inner) {
  if (inner == 1) {
    // Contiguous over s: vector max (exact in any order), vector exp with a
    // lane-parallel denominator (covered by the softmax tolerance).
    __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    int64_t s = 0;
    for (; s + kLanes <= size; s += kLanes) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(a + s));
    }
    alignas(32) float max_lanes[8];
    _mm256_store_ps(max_lanes, vmax);
    float max_v = max_lanes[0];
    for (int lane = 1; lane < 8; ++lane) {
      max_v = std::max(max_v, max_lanes[lane]);
    }
    for (; s < size; ++s) max_v = std::max(max_v, a[s]);

    const __m256 vm = _mm256_set1_ps(max_v);
    __m256 vsum = _mm256_setzero_ps();
    s = 0;
    for (; s + kLanes <= size; s += kLanes) {
      const __m256 e = ExpPs(_mm256_sub_ps(_mm256_loadu_ps(a + s), vm));
      _mm256_storeu_ps(out + s, e);
      vsum = _mm256_add_ps(vsum, e);
    }
    if (s < size) {
      const __m256i mask = TailMask(size - s);
      const __m256 e =
          ExpPs(_mm256_sub_ps(_mm256_maskload_ps(a + s, mask), vm));
      _mm256_maskstore_ps(out + s, mask, e);
      vsum = _mm256_add_ps(vsum,
                           _mm256_and_ps(e, _mm256_castsi256_ps(mask)));
    }
    alignas(32) float sum_lanes[8];
    _mm256_store_ps(sum_lanes, vsum);
    float denom = ((sum_lanes[0] + sum_lanes[1]) +
                   (sum_lanes[2] + sum_lanes[3])) +
                  ((sum_lanes[4] + sum_lanes[5]) +
                   (sum_lanes[6] + sum_lanes[7]));
    const __m256 vinv = _mm256_set1_ps(1.0f / denom);
    s = 0;
    for (; s + kLanes <= size; s += kLanes) {
      _mm256_storeu_ps(out + s,
                       _mm256_mul_ps(_mm256_loadu_ps(out + s), vinv));
    }
    if (s < size) {
      const __m256i mask = TailMask(size - s);
      _mm256_maskstore_ps(
          out + s, mask,
          _mm256_mul_ps(_mm256_maskload_ps(out + s, mask), vinv));
    }
    return;
  }

  // inner > 1: vectorize across i — each lane runs the scalar algorithm
  // (s-ascending denominator), so only the exp approximation differs.
  const __m256 one = _mm256_set1_ps(1.0f);
  int64_t i = 0;
  for (; i + kLanes <= inner; i += kLanes) {
    __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    for (int64_t s = 0; s < size; ++s) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(a + s * inner + i));
    }
    __m256 vdenom = _mm256_setzero_ps();
    for (int64_t s = 0; s < size; ++s) {
      const __m256 e =
          ExpPs(_mm256_sub_ps(_mm256_loadu_ps(a + s * inner + i), vmax));
      _mm256_storeu_ps(out + s * inner + i, e);
      vdenom = _mm256_add_ps(vdenom, e);
    }
    const __m256 vinv = _mm256_div_ps(one, vdenom);
    for (int64_t s = 0; s < size; ++s) {
      _mm256_storeu_ps(
          out + s * inner + i,
          _mm256_mul_ps(_mm256_loadu_ps(out + s * inner + i), vinv));
    }
  }
  if (i < inner) {
    const __m256i mask = TailMask(inner - i);
    __m256 vmax = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
    for (int64_t s = 0; s < size; ++s) {
      const __m256 v = _mm256_maskload_ps(a + s * inner + i, mask);
      vmax = _mm256_max_ps(vmax, _mm256_blendv_ps(vmax, v,
                                                  _mm256_castsi256_ps(mask)));
    }
    __m256 vdenom = _mm256_setzero_ps();
    for (int64_t s = 0; s < size; ++s) {
      const __m256 e = ExpPs(
          _mm256_sub_ps(_mm256_maskload_ps(a + s * inner + i, mask), vmax));
      _mm256_maskstore_ps(out + s * inner + i, mask, e);
      vdenom = _mm256_add_ps(vdenom, e);
    }
    const __m256 vinv = _mm256_div_ps(one, vdenom);
    for (int64_t s = 0; s < size; ++s) {
      _mm256_maskstore_ps(
          out + s * inner + i, mask,
          _mm256_mul_ps(_mm256_maskload_ps(out + s * inner + i, mask),
                        vinv));
    }
  }
}

constexpr KernelBackend kAvx2Backend = {
    /*name=*/"avx2",
    /*ewise_unary=*/&Avx2EwiseUnary,
    /*ewise_binary=*/&Avx2EwiseBinary,
    /*bias_add=*/&Avx2BiasAdd,
    /*matmul_row_range=*/&Avx2MatMulRowRange,
    /*reduce_sum_range=*/&Avx2ReduceSumRange,
    /*reduce_sum_dim_slice=*/&Avx2ReduceSumDimSlice,
    /*softmax_slice=*/&Avx2SoftmaxSlice,
};

}  // namespace

const KernelBackend* Avx2BackendOrNull() {
  // Registration is runtime-gated on cpuid: the table pointer only escapes
  // when the machine can execute every instruction in this TU.
  static const KernelBackend* const backend = [] {
    const CpuFeatures& cpu = DetectCpuFeatures();
    return cpu.avx2 && cpu.fma
               ? &kAvx2Backend
               : static_cast<const KernelBackend*>(nullptr);
  }();
  return backend;
}

}  // namespace d2stgnn::kernels

#else  // !(__AVX2__ && __FMA__): non-x86 or a toolchain without AVX2.

namespace d2stgnn::kernels {

const KernelBackend* Avx2BackendOrNull() { return nullptr; }

}  // namespace d2stgnn::kernels

#endif
