#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/kernels/backend.h"
#include "tensor/kernels/registry.h"

// The scalar reference backend: bit-for-bit the loops the tensor engine
// shipped before the backend layer existed. Every other backend is measured
// against this one (see the tolerance table in backend.h), so these bodies
// must not change float semantics — same operations, same order.

namespace d2stgnn::kernels {
namespace {

// K-tile of the blocked matmul: keeps the active B panel (~tile * n floats)
// cache-resident. Tiles advance in ascending k, so per-output accumulation
// order — and therefore the float result — matches the untiled loop.
constexpr int64_t kMatMulKTile = 256;

template <typename Fn>
void RunUnary(const float* a, float* out, int64_t begin, int64_t end, Fn fn) {
  for (int64_t i = begin; i < end; ++i) out[i] = fn(a[i]);
}

void ScalarEwiseUnary(UnaryKind kind, UnaryParams params, const float* a,
                      float* out, int64_t begin, int64_t end) {
  const float p0 = params.p0;
  const float p1 = params.p1;
  switch (kind) {
    case UnaryKind::kAddScalar:
      return RunUnary(a, out, begin, end, [p0](float x) { return x + p0; });
    case UnaryKind::kMulScalar:
      return RunUnary(a, out, begin, end, [p0](float x) { return x * p0; });
    case UnaryKind::kPowScalar:
      return RunUnary(a, out, begin, end,
                      [p0](float x) { return std::pow(x, p0); });
    case UnaryKind::kRelu:
      return RunUnary(a, out, begin, end,
                      [](float x) { return x > 0.0f ? x : 0.0f; });
    case UnaryKind::kLeakyRelu:
      return RunUnary(a, out, begin, end,
                      [p0](float x) { return x > 0.0f ? x : p0 * x; });
    case UnaryKind::kSigmoid:
      return RunUnary(a, out, begin, end, [](float x) {
        // Stable in both tails.
        if (x >= 0.0f) return 1.0f / (1.0f + std::exp(-x));
        const float e = std::exp(x);
        return e / (1.0f + e);
      });
    case UnaryKind::kTanh:
      return RunUnary(a, out, begin, end,
                      [](float x) { return std::tanh(x); });
    case UnaryKind::kExp:
      return RunUnary(a, out, begin, end,
                      [](float x) { return std::exp(x); });
    case UnaryKind::kLog:
      return RunUnary(a, out, begin, end,
                      [](float x) { return std::log(x); });
    case UnaryKind::kSqrt:
      return RunUnary(a, out, begin, end,
                      [](float x) { return std::sqrt(x); });
    case UnaryKind::kAbs:
      return RunUnary(a, out, begin, end,
                      [](float x) { return std::fabs(x); });
    case UnaryKind::kGelu:
      return RunUnary(a, out, begin, end, [](float x) {
        // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
        constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
        constexpr float kCubic = 0.044715f;
        const float inner = kC * (x + kCubic * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      });
    case UnaryKind::kClamp:
      return RunUnary(a, out, begin, end, [p0, p1](float x) {
        return std::min(p1, std::max(p0, x));
      });
  }
}

void ScalarEwiseBinary(BinaryKind kind, const float* a, const float* b,
                       float* out, int64_t begin, int64_t end) {
  switch (kind) {
    case BinaryKind::kAdd:
      for (int64_t i = begin; i < end; ++i) out[i] = a[i] + b[i];
      return;
    case BinaryKind::kSub:
      for (int64_t i = begin; i < end; ++i) out[i] = a[i] - b[i];
      return;
    case BinaryKind::kMul:
      for (int64_t i = begin; i < end; ++i) out[i] = a[i] * b[i];
      return;
    case BinaryKind::kDiv:
      for (int64_t i = begin; i < end; ++i) out[i] = a[i] / b[i];
      return;
  }
}

void ScalarBiasAdd(const float* a, const float* bias, float* out,
                   int64_t row_begin, int64_t row_end, int64_t n) {
  for (int64_t r = row_begin; r < row_end; ++r) {
    const float* src = a + r * n;
    float* dst = out + r * n;
    for (int64_t j = 0; j < n; ++j) dst[j] = src[j] + bias[j];
  }
}

void ScalarMatMulRowRange(const float* a, const float* b, float* out,
                          int64_t row_begin, int64_t row_end, int64_t k,
                          int64_t n) {
  for (int64_t k0 = 0; k0 < k; k0 += kMatMulKTile) {
    const int64_t k1 = std::min(k, k0 + kMatMulKTile);
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* out_row = out + i * n;
      const float* a_row = a + i * k;
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float av = a_row[kk];
        if (av == 0.0f) continue;
        const float* b_row = b + kk * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  }
}

double ScalarReduceSumRange(const float* a, int64_t begin, int64_t end) {
  double acc = 0.0;
  for (int64_t i = begin; i < end; ++i) acc += a[i];
  return acc;
}

void ScalarReduceSumDimSlice(const float* a, float* out, int64_t size,
                             int64_t inner) {
  std::fill(out, out + inner, 0.0f);
  for (int64_t s = 0; s < size; ++s) {
    const float* src = a + s * inner;
    for (int64_t i = 0; i < inner; ++i) out[i] += src[i];
  }
}

void ScalarSoftmaxSlice(const float* a, float* out, int64_t size,
                        int64_t inner) {
  for (int64_t i = 0; i < inner; ++i) {
    float max_v = -std::numeric_limits<float>::infinity();
    for (int64_t s = 0; s < size; ++s) {
      max_v = std::max(max_v, a[s * inner + i]);
    }
    float denom = 0.0f;
    for (int64_t s = 0; s < size; ++s) {
      const float e = std::exp(a[s * inner + i] - max_v);
      out[s * inner + i] = e;
      denom += e;
    }
    const float inv = 1.0f / denom;
    for (int64_t s = 0; s < size; ++s) out[s * inner + i] *= inv;
  }
}

constexpr KernelBackend kScalarBackend = {
    /*name=*/"scalar",
    /*ewise_unary=*/&ScalarEwiseUnary,
    /*ewise_binary=*/&ScalarEwiseBinary,
    /*bias_add=*/&ScalarBiasAdd,
    /*matmul_row_range=*/&ScalarMatMulRowRange,
    /*reduce_sum_range=*/&ScalarReduceSumRange,
    /*reduce_sum_dim_slice=*/&ScalarReduceSumDimSlice,
    /*softmax_slice=*/&ScalarSoftmaxSlice,
};

}  // namespace

const KernelBackend& ScalarBackend() { return kScalarBackend; }

}  // namespace d2stgnn::kernels
