#include "tensor/kernels.h"

#include <algorithm>

#include "common/check.h"

// The parallel half of the kernel layer: partitions every op into chunks
// whose boundaries depend only on the problem size and hands each chunk to a
// serial backend range kernel. Backend choice never changes the chunking, so
// per-backend determinism (1 vs N threads) holds for every backend.

namespace d2stgnn::kernels {
namespace {

// Row block each MatMul task owns: big enough to amortize dispatch, small
// enough to spread a single large matrix over the pool.
constexpr int64_t kMatMulRowBlock = 32;

// Outer-loop grain so each chunk carries ~kEwiseGrain elements of work.
// Depends only on the slice size, never the thread count (determinism).
int64_t OuterGrain(int64_t elems_per_slice) {
  return std::max<int64_t>(1, kEwiseGrain / std::max<int64_t>(1,
                                                              elems_per_slice));
}

// Exactly-rounded single-instruction arithmetic — identical in every
// backend, so the generic strided broadcast walk is backend-neutral.
inline float ApplyBinary(BinaryKind kind, float x, float y) {
  switch (kind) {
    case BinaryKind::kAdd:
      return x + y;
    case BinaryKind::kSub:
      return x - y;
    case BinaryKind::kMul:
      return x * y;
    case BinaryKind::kDiv:
      return x / y;
  }
  return 0.0f;  // unreachable
}

// Matrix-plus-row-vector broadcast: a dense over the full output, b strided
// [0, ..., 0, 1]. Routed to the backend bias_add entry.
bool IsBiasAddPattern(const Shape& out_shape, const std::vector<int64_t>& as,
                      const std::vector<int64_t>& bs) {
  if (out_shape.size() < 2 || out_shape.back() < 1) return false;
  if (bs.back() != 1) return false;
  for (size_t d = 0; d + 1 < bs.size(); ++d) {
    if (bs[d] != 0) return false;
  }
  return as == RowMajorStrides(out_shape);
}

}  // namespace

Shape AlignShape(const Shape& shape, size_t rank) {
  D2_CHECK_LE(shape.size(), rank);
  Shape aligned(rank, 1);
  std::copy(shape.begin(), shape.end(),
            aligned.begin() + static_cast<int64_t>(rank - shape.size()));
  return aligned;
}

std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out) {
  const Shape aligned = AlignShape(shape, out.size());
  const std::vector<int64_t> strides = RowMajorStrides(aligned);
  std::vector<int64_t> result(out.size());
  for (size_t d = 0; d < out.size(); ++d) {
    if (aligned[d] == 1 && out[d] != 1) {
      result[d] = 0;
    } else {
      D2_CHECK_EQ(aligned[d], out[d])
          << "cannot broadcast " << ShapeToString(shape) << " to "
          << ShapeToString(out);
      result[d] = strides[d];
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Elementwise.

void EwiseUnary(const KernelBackend& backend, UnaryKind kind,
                UnaryParams params, const float* a, float* out, int64_t n) {
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    backend.ewise_unary(kind, params, a, out, lo, hi);
  });
}

void EwiseBinary(const KernelBackend& backend, BinaryKind kind,
                 const float* a, const float* b, float* out, int64_t n) {
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    backend.ewise_binary(kind, a, b, out, lo, hi);
  });
}

void EwiseBinaryBroadcast(const KernelBackend& backend, BinaryKind kind,
                          const Shape& out_shape,
                          const std::vector<int64_t>& as,
                          const std::vector<int64_t>& bs, const float* a,
                          const float* b, float* out) {
  if (kind == BinaryKind::kAdd && IsBiasAddPattern(out_shape, as, bs)) {
    const int64_t n = out_shape.back();
    const int64_t rows = NumElements(out_shape) / n;
    ParallelFor(0, rows, OuterGrain(n), [&](int64_t lo, int64_t hi) {
      backend.bias_add(a, b, out, lo, hi, n);
    });
    return;
  }
  const int64_t n = NumElements(out_shape);
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    ForEachBroadcastPair(out_shape, as, bs, lo, hi,
                         [&](int64_t i, int64_t ao, int64_t bo) {
                           out[i] = ApplyBinary(kind, a[ao], b[bo]);
                         });
  });
}

void GatherStrided(const Shape& out_shape, const std::vector<int64_t>& strides,
                   const float* a, float* out) {
  const int64_t n = NumElements(out_shape);
  const std::vector<int64_t> zero(out_shape.size(), 0);
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    ForEachBroadcastPair(out_shape, strides, zero, lo, hi,
                         [&](int64_t i, int64_t src, int64_t) {
                           out[i] = a[src];
                         });
  });
}

// ---------------------------------------------------------------------------
// MatMul.

void BatchedMatMul(const KernelBackend& backend, const float* a,
                   const float* b, float* out,
                   const std::vector<int64_t>& a_offsets,
                   const std::vector<int64_t>& b_offsets, int64_t m, int64_t k,
                   int64_t n) {
  D2_CHECK_EQ(a_offsets.size(), b_offsets.size());
  const int64_t batch = static_cast<int64_t>(a_offsets.size());
  const int64_t row_blocks = (m + kMatMulRowBlock - 1) / kMatMulRowBlock;
  const int64_t out_matrix = m * n;
  // Each task owns the output rows of one (batch, row-block) pair — every
  // output element is written by exactly one task, in a fixed order.
  ParallelFor(0, batch * row_blocks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t task = lo; task < hi; ++task) {
      const int64_t bi = task / row_blocks;
      const int64_t r0 = (task % row_blocks) * kMatMulRowBlock;
      const int64_t r1 = std::min(m, r0 + kMatMulRowBlock);
      backend.matmul_row_range(a + a_offsets[static_cast<size_t>(bi)],
                               b + b_offsets[static_cast<size_t>(bi)],
                               out + bi * out_matrix, r0, r1, k, n);
    }
  });
}

// ---------------------------------------------------------------------------
// Reductions.

double ReduceSumAll(const KernelBackend& backend, const float* a, int64_t n) {
  if (n == 0) return 0.0;
  const int64_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partials(static_cast<size_t>(blocks), 0.0);
  ParallelFor(0, blocks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t blk = lo; blk < hi; ++blk) {
      const int64_t i0 = blk * kReduceBlock;
      const int64_t i1 = std::min(n, i0 + kReduceBlock);
      partials[static_cast<size_t>(blk)] = backend.reduce_sum_range(a, i0, i1);
    }
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

void ReduceSumDim(const KernelBackend& backend, const float* a, float* out,
                  int64_t outer, int64_t size, int64_t inner) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      backend.reduce_sum_dim_slice(a + o * size * inner, out + o * inner,
                                   size, inner);
    }
  });
}

void ExtremumDim(const float* a, float* out, int64_t* arg, int64_t outer,
                 int64_t size, int64_t inner, float sign) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t base = o * size * inner + i;
        float best = a[base];
        int64_t best_s = 0;
        for (int64_t s = 1; s < size; ++s) {
          const float v = a[base + s * inner];
          if (sign * v > sign * best) {
            best = v;
            best_s = s;
          }
        }
        out[o * inner + i] = best;
        arg[o * inner + i] = best_s;
      }
    }
  });
}

void ExtremumDimGrad(const float* g, const int64_t* arg, float* grad,
                     int64_t outer, int64_t size, int64_t inner) {
  // Each (o, i) scatters to a distinct slot, so outer-parallelism is safe.
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t flat = o * inner + i;
        grad[o * size * inner + arg[flat] * inner + i] += g[flat];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Softmax.

void SoftmaxKernel(const KernelBackend& backend, const float* a, float* out,
                   int64_t outer, int64_t size, int64_t inner) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      backend.softmax_slice(a + o * size * inner, out + o * size * inner,
                            size, inner);
    }
  });
}

}  // namespace d2stgnn::kernels
