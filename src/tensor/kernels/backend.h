#ifndef D2STGNN_TENSOR_KERNELS_BACKEND_H_
#define D2STGNN_TENSOR_KERNELS_BACKEND_H_

#include <cstdint>

// The pluggable kernel-backend contract (DESIGN.md §15).
//
// A KernelBackend is a table of SERIAL range kernels: each entry computes one
// chunk of one op with no internal threading. The dispatch layer
// (tensor/kernels.h) owns all ParallelFor partitioning, with chunk boundaries
// that depend only on the problem size — so for any single backend, results
// are bitwise-identical at 1 and N threads by construction.
//
// The `scalar` backend is the reference: bit-for-bit the pre-backend-layer
// loops. Vector backends (avx2) may differ from scalar per element by at most
// the declared tolerance below; ops marked 0-ulp are exactly-rounded
// instruction sequences and must match scalar bitwise.

namespace d2stgnn::kernels {

/// Elementwise unary ops routed through the backend table. Parameters (the
/// scalar of AddScalar, the slope of LeakyRelu, the clamp bounds) travel in
/// UnaryParams so the closure crossing the table stays a plain function
/// pointer.
enum class UnaryKind : int {
  kAddScalar,   // x + p0
  kMulScalar,   // x * p0
  kPowScalar,   // pow(x, p0)
  kRelu,        // x > 0 ? x : 0
  kLeakyRelu,   // x > 0 ? x : p0 * x
  kSigmoid,     // 1 / (1 + exp(-x)), tail-stable
  kTanh,        // tanh(x)
  kExp,         // exp(x)
  kLog,         // log(x)
  kSqrt,        // sqrt(x)
  kAbs,         // |x|
  kGelu,        // tanh-approximated GELU
  kClamp,       // min(p1, max(p0, x))
};

enum class BinaryKind : int {
  kAdd,  // x + y
  kSub,  // x - y
  kMul,  // x * y
  kDiv,  // x / y
};

struct UnaryParams {
  float p0 = 0.0f;
  float p1 = 0.0f;
};

/// Serial range kernels of one backend. All pointers are non-null (a backend
/// that cannot vectorize an entry delegates to the scalar implementation).
struct KernelBackend {
  /// Stable identity: "scalar" or "avx2". Captured plans record it and replay
  /// only under the same backend; the session plan cache keys on it.
  const char* name;

  /// out[i] = kind(a[i]) for i in [begin, end).
  void (*ewise_unary)(UnaryKind kind, UnaryParams params, const float* a,
                      float* out, int64_t begin, int64_t end);

  /// out[i] = kind(a[i], b[i]) for i in [begin, end).
  void (*ewise_binary)(BinaryKind kind, const float* a, const float* b,
                       float* out, int64_t begin, int64_t end);

  /// out[r, j] = a[r, j] + bias[j] for rows [row_begin, row_end) of a dense
  /// row-major [rows, n] matrix — the broadcast-add fast path.
  void (*bias_add)(const float* a, const float* bias, float* out,
                   int64_t row_begin, int64_t row_end, int64_t n);

  /// out[m, n] += A[m, k] * B[k, n] for rows [row_begin, row_end), dense
  /// row-major. The serial unit BatchedMatMul parallelizes over.
  void (*matmul_row_range)(const float* a, const float* b, float* out,
                           int64_t row_begin, int64_t row_end, int64_t k,
                           int64_t n);

  /// Sum of a[begin, end) accumulated in double. One kReduceBlock block of
  /// the deterministic partial-sum tree.
  double (*reduce_sum_range)(const float* a, int64_t begin, int64_t end);

  /// out[i] = sum_s a[s, i] over one [size, inner] slice, s ascending.
  void (*reduce_sum_dim_slice)(const float* a, float* out, int64_t size,
                               int64_t inner);

  /// Numerically stable softmax over the s extent of one [size, inner]
  /// slice.
  void (*softmax_slice)(const float* a, float* out, int64_t size,
                        int64_t inner);
};

// ---------------------------------------------------------------------------
// Declared parity tolerances of vector backends vs the scalar reference.
// The kernel_backend_test parity suite enforces these bounds; widening one
// is an interface change, not a test tweak.

/// Max units-in-last-place divergence per element for a unary op. 0 means
/// bitwise parity (the op is an exactly-rounded instruction sequence).
/// PowScalar delegates to scalar in every backend, hence 0.
inline constexpr int UnaryMaxUlp(UnaryKind kind) {
  switch (kind) {
    case UnaryKind::kSigmoid:
    case UnaryKind::kTanh:
    case UnaryKind::kExp:
    case UnaryKind::kLog:
    case UnaryKind::kGelu:
      return 8;  // polynomial vector-math approximations
    default:
      return 0;
  }
}

/// Binary elementwise ops are single exactly-rounded instructions.
inline constexpr int BinaryMaxUlp(BinaryKind) { return 0; }

/// MatMul uses FMA (one rounding where scalar has two); error compounds over
/// the k accumulations, so the bound is relative and scales with k.
inline constexpr float MatMulRelTol(int64_t k) {
  return 1e-6f * static_cast<float>(k > 16 ? k : 16);
}

/// Full-sum reduction: vector backends accumulate a block in 4 double lanes
/// (different association than scalar's single running double).
inline constexpr double ReduceSumRelTol() { return 1e-12; }

/// Per-element softmax bound: the exp approximation plus the denominator's
/// lane-parallel accumulation.
inline constexpr int SoftmaxMaxUlp() { return 16; }

/// ReduceSumDim keeps scalar's per-element accumulation order in every
/// backend — bitwise parity.
inline constexpr int ReduceSumDimMaxUlp() { return 0; }

}  // namespace d2stgnn::kernels

#endif  // D2STGNN_TENSOR_KERNELS_BACKEND_H_
