#ifndef D2STGNN_TENSOR_KERNELS_REGISTRY_H_
#define D2STGNN_TENSOR_KERNELS_REGISTRY_H_

#include <string>
#include <vector>

#include "tensor/kernels/backend.h"

// Backend registry: CPU feature detection, startup selection, and runtime
// override. Selection happens once, lazily, on the first ActiveBackend()
// call: the best backend the CPU supports, unless D2STGNN_FORCE_BACKEND
// names another one. Tools additionally expose a --backend flag that routes
// through SetActiveBackend.
//
// The active pointer is a single atomic; flipping it never invalidates
// in-flight work because every capture closure and plan binds the backend
// pointer it was created under (plans additionally refuse to replay under a
// different backend — ReplayStatus::kBackendMismatch).

namespace d2stgnn::kernels {

/// CPU capabilities relevant to backend selection (cpuid-derived).
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

/// Queries cpuid once and caches the answer.
const CpuFeatures& DetectCpuFeatures();

/// Space-separated summary of the detected features ("avx2 fma avx512f"),
/// "" when none — for bench/experiment metadata.
std::string CpuFeatureSummary();

/// The scalar reference backend. Always available.
const KernelBackend& ScalarBackend();

/// The AVX2+FMA backend, or nullptr when the build target or the running
/// CPU lacks AVX2/FMA (non-x86 builds compile this to nullptr).
const KernelBackend* Avx2BackendOrNull();

/// Every backend name this process can actually run, detection-ordered
/// ("scalar" first).
std::vector<std::string> AvailableBackendNames();

/// The name cpuid-based detection picks on this machine, ignoring
/// D2STGNN_FORCE_BACKEND and SetActiveBackend overrides.
const char* DetectedBackendName();

/// The backend all kernel dispatch currently routes through. First call
/// resolves D2STGNN_FORCE_BACKEND (unknown or unavailable values warn on
/// stderr and fall back to detection — the env override must not turn a
/// portable binary into one that aborts on older machines).
const KernelBackend& ActiveBackend();

/// Switches the active backend by name. Returns false (and sets *error when
/// non-null) if the name is unknown or unavailable on this CPU; the active
/// backend is unchanged on failure.
bool SetActiveBackend(const std::string& name, std::string* error = nullptr);

/// Test helper: pins a backend for one scope, restoring the previous one.
class ScopedBackendOverride {
 public:
  explicit ScopedBackendOverride(const std::string& name);
  ~ScopedBackendOverride();
  ScopedBackendOverride(const ScopedBackendOverride&) = delete;
  ScopedBackendOverride& operator=(const ScopedBackendOverride&) = delete;

  /// False when `name` was unavailable (the override did nothing).
  bool engaged() const { return engaged_; }

 private:
  std::string previous_;
  bool engaged_ = false;
};

}  // namespace d2stgnn::kernels

#endif  // D2STGNN_TENSOR_KERNELS_REGISTRY_H_
