#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace d2stgnn::kernels {
namespace {

// Row block each MatMul task owns: big enough to amortize dispatch, small
// enough to spread a single large matrix over the pool.
constexpr int64_t kMatMulRowBlock = 32;

// K-tile of the blocked matmul: keeps the active B panel (~tile * n floats)
// cache-resident. Tiles advance in ascending k, so per-output accumulation
// order — and therefore the float result — matches the untiled loop.
constexpr int64_t kMatMulKTile = 256;

// Outer-loop grain so each chunk carries ~kEwiseGrain elements of work.
// Depends only on the slice size, never the thread count (determinism).
int64_t OuterGrain(int64_t elems_per_slice) {
  return std::max<int64_t>(1, kEwiseGrain / std::max<int64_t>(1,
                                                              elems_per_slice));
}

}  // namespace

Shape AlignShape(const Shape& shape, size_t rank) {
  D2_CHECK_LE(shape.size(), rank);
  Shape aligned(rank, 1);
  std::copy(shape.begin(), shape.end(),
            aligned.begin() + static_cast<int64_t>(rank - shape.size()));
  return aligned;
}

std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out) {
  const Shape aligned = AlignShape(shape, out.size());
  const std::vector<int64_t> strides = RowMajorStrides(aligned);
  std::vector<int64_t> result(out.size());
  for (size_t d = 0; d < out.size(); ++d) {
    if (aligned[d] == 1 && out[d] != 1) {
      result[d] = 0;
    } else {
      D2_CHECK_EQ(aligned[d], out[d])
          << "cannot broadcast " << ShapeToString(shape) << " to "
          << ShapeToString(out);
      result[d] = strides[d];
    }
  }
  return result;
}

void GatherStrided(const Shape& out_shape, const std::vector<int64_t>& strides,
                   const float* a, float* out) {
  const int64_t n = NumElements(out_shape);
  const std::vector<int64_t> zero(out_shape.size(), 0);
  ParallelFor(0, n, kEwiseGrain, [&](int64_t lo, int64_t hi) {
    ForEachBroadcastPair(out_shape, strides, zero, lo, hi,
                         [&](int64_t i, int64_t src, int64_t) {
                           out[i] = a[src];
                         });
  });
}

// ---------------------------------------------------------------------------
// MatMul.

void MatMulRowRange(const float* a, const float* b, float* out,
                    int64_t row_begin, int64_t row_end, int64_t k, int64_t n) {
  for (int64_t k0 = 0; k0 < k; k0 += kMatMulKTile) {
    const int64_t k1 = std::min(k, k0 + kMatMulKTile);
    for (int64_t i = row_begin; i < row_end; ++i) {
      float* out_row = out + i * n;
      const float* a_row = a + i * k;
      for (int64_t kk = k0; kk < k1; ++kk) {
        const float av = a_row[kk];
        if (av == 0.0f) continue;
        const float* b_row = b + kk * n;
        for (int64_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  }
}

void BatchedMatMul(const float* a, const float* b, float* out,
                   const std::vector<int64_t>& a_offsets,
                   const std::vector<int64_t>& b_offsets, int64_t m, int64_t k,
                   int64_t n) {
  D2_CHECK_EQ(a_offsets.size(), b_offsets.size());
  const int64_t batch = static_cast<int64_t>(a_offsets.size());
  const int64_t row_blocks = (m + kMatMulRowBlock - 1) / kMatMulRowBlock;
  const int64_t out_matrix = m * n;
  // Each task owns the output rows of one (batch, row-block) pair — every
  // output element is written by exactly one task, in a fixed order.
  ParallelFor(0, batch * row_blocks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t task = lo; task < hi; ++task) {
      const int64_t bi = task / row_blocks;
      const int64_t r0 = (task % row_blocks) * kMatMulRowBlock;
      const int64_t r1 = std::min(m, r0 + kMatMulRowBlock);
      MatMulRowRange(a + a_offsets[static_cast<size_t>(bi)],
                     b + b_offsets[static_cast<size_t>(bi)],
                     out + bi * out_matrix, r0, r1, k, n);
    }
  });
}

// ---------------------------------------------------------------------------
// Reductions.

double ReduceSumAll(const float* a, int64_t n) {
  if (n == 0) return 0.0;
  const int64_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
  std::vector<double> partials(static_cast<size_t>(blocks), 0.0);
  ParallelFor(0, blocks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t blk = lo; blk < hi; ++blk) {
      const int64_t i0 = blk * kReduceBlock;
      const int64_t i1 = std::min(n, i0 + kReduceBlock);
      double acc = 0.0;
      for (int64_t i = i0; i < i1; ++i) acc += a[i];
      partials[static_cast<size_t>(blk)] = acc;
    }
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

void ReduceSumDim(const float* a, float* out, int64_t outer, int64_t size,
                  int64_t inner) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      float* dst = out + o * inner;
      std::fill(dst, dst + inner, 0.0f);
      const float* base = a + o * size * inner;
      for (int64_t s = 0; s < size; ++s) {
        const float* src = base + s * inner;
        for (int64_t i = 0; i < inner; ++i) dst[i] += src[i];
      }
    }
  });
}

void ExtremumDim(const float* a, float* out, int64_t* arg, int64_t outer,
                 int64_t size, int64_t inner, float sign) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t base = o * size * inner + i;
        float best = a[base];
        int64_t best_s = 0;
        for (int64_t s = 1; s < size; ++s) {
          const float v = a[base + s * inner];
          if (sign * v > sign * best) {
            best = v;
            best_s = s;
          }
        }
        out[o * inner + i] = best;
        arg[o * inner + i] = best_s;
      }
    }
  });
}

void ExtremumDimGrad(const float* g, const int64_t* arg, float* grad,
                     int64_t outer, int64_t size, int64_t inner) {
  // Each (o, i) scatters to a distinct slot, so outer-parallelism is safe.
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t flat = o * inner + i;
        grad[o * size * inner + arg[flat] * inner + i] += g[flat];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Softmax.

void SoftmaxKernel(const float* a, float* out, int64_t outer, int64_t size,
                   int64_t inner) {
  ParallelFor(0, outer, OuterGrain(size * inner), [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        const int64_t base = o * size * inner + i;
        float max_v = -std::numeric_limits<float>::infinity();
        for (int64_t s = 0; s < size; ++s) {
          max_v = std::max(max_v, a[base + s * inner]);
        }
        float denom = 0.0f;
        for (int64_t s = 0; s < size; ++s) {
          const float e = std::exp(a[base + s * inner] - max_v);
          out[base + s * inner] = e;
          denom += e;
        }
        const float inv = 1.0f / denom;
        for (int64_t s = 0; s < size; ++s) out[base + s * inner] *= inv;
      }
    }
  });
}

}  // namespace d2stgnn::kernels
