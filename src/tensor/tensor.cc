#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>

#include "common/check.h"
#include "common/logging.h"
#include "tensor/buffer_arena.h"
#include "tensor/checker.h"

namespace d2stgnn {

namespace internal {
namespace {
std::atomic<int64_t> g_live_gradfn{0};
}  // namespace

GradFn::GradFn() { g_live_gradfn.fetch_add(1, std::memory_order_relaxed); }

GradFn::~GradFn() { g_live_gradfn.fetch_sub(1, std::memory_order_relaxed); }

int64_t LiveGradFnCount() {
  return g_live_gradfn.load(std::memory_order_relaxed);
}

TensorImpl::~TensorImpl() {
  if (arena != nullptr) arena->Release(std::move(data));
}

}  // namespace internal

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    D2_CHECK_GE(d, 0) << "negative dimension in " << ShapeToString(shape);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size());
  int64_t stride = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = stride;
    stride *= shape[static_cast<size_t>(i)];
  }
  return strides;
}

Tensor::Tensor() = default;

Tensor::Tensor(const Shape& shape) : Tensor(shape, 0.0f) {}

Tensor::Tensor(const Shape& shape, float value) {
  impl_ = std::make_shared<internal::TensorImpl>();
  impl_->shape = shape;
  const int64_t n = NumElements(shape);
  const std::shared_ptr<BufferArena>& arena = ArenaGuard::Active();
  if (arena != nullptr) {
    impl_->data = arena->Acquire(n);  // zero-filled
    arena->NoteAdopt(impl_->data.data());
    if (value != 0.0f) {
      std::fill(impl_->data.begin(), impl_->data.end(), value);
    }
    impl_->arena = arena;
  } else {
    impl_->data.assign(static_cast<size_t>(n), value);
  }
}

Tensor::Tensor(const Shape& shape, std::vector<float> data) {
  D2_CHECK_EQ(NumElements(shape), static_cast<int64_t>(data.size()))
      << "data size does not match shape " << ShapeToString(shape);
  impl_ = std::make_shared<internal::TensorImpl>();
  impl_->shape = shape;
  const std::shared_ptr<BufferArena>& arena = ArenaGuard::Active();
  if (arena != nullptr) {
    arena->NoteAdopt(data.data());
    impl_->arena = arena;
  }
  impl_->data = std::move(data);
}

Tensor Tensor::Zeros(const Shape& shape) { return Tensor(shape, 0.0f); }

Tensor Tensor::Ones(const Shape& shape) { return Tensor(shape, 1.0f); }

Tensor Tensor::Full(const Shape& shape, float value) {
  return Tensor(shape, value);
}

Tensor Tensor::Scalar(float value) { return Tensor(Shape{}, value); }

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float mean, float stddev) {
  return Tensor(shape, rng.NormalVector(NumElements(shape), mean, stddev));
}

Tensor Tensor::Rand(const Shape& shape, Rng& rng, float lo, float hi) {
  return Tensor(shape, rng.UniformVector(NumElements(shape), lo, hi));
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n}, 0.0f);
  for (int64_t i = 0; i < n; ++i) t.Data()[static_cast<size_t>(i * n + i)] = 1.0f;
  return t;
}

const Shape& Tensor::shape() const {
  D2_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::dim() const { return static_cast<int64_t>(shape().size()); }

int64_t Tensor::size(int64_t d) const {
  const int64_t rank = dim();
  if (d < 0) d += rank;
  D2_CHECK_GE(d, 0);
  D2_CHECK_LT(d, rank);
  return shape()[static_cast<size_t>(d)];
}

int64_t Tensor::numel() const {
  D2_CHECK(defined());
  return static_cast<int64_t>(impl_->data.size());
}

std::vector<float>& Tensor::Data() {
  D2_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::Data() const {
  D2_CHECK(defined());
  return impl_->data;
}

float Tensor::At(int64_t flat_index) const {
  D2_CHECK(defined());
  D2_CHECK_GE(flat_index, 0);
  D2_CHECK_LT(flat_index, numel());
  return impl_->data[static_cast<size_t>(flat_index)];
}

float Tensor::At(const std::vector<int64_t>& index) const {
  D2_CHECK(defined());
  D2_CHECK_EQ(static_cast<int64_t>(index.size()), dim());
  const std::vector<int64_t> strides = RowMajorStrides(impl_->shape);
  int64_t flat = 0;
  for (size_t i = 0; i < index.size(); ++i) {
    D2_CHECK_GE(index[i], 0);
    D2_CHECK_LT(index[i], impl_->shape[i]);
    flat += index[i] * strides[i];
  }
  return impl_->data[static_cast<size_t>(flat)];
}

float Tensor::Item() const {
  D2_CHECK(defined());
  D2_CHECK_EQ(numel(), 1) << "Item() requires a single-element tensor, got "
                          << ShapeToString(shape());
  return impl_->data[0];
}

Tensor& Tensor::SetRequiresGrad(bool requires_grad) {
  D2_CHECK(defined());
  impl_->requires_grad = requires_grad;
  return *this;
}

bool Tensor::RequiresGrad() const {
  D2_CHECK(defined());
  return impl_->requires_grad || impl_->grad_fn != nullptr;
}

Tensor Tensor::Grad() const {
  D2_CHECK(defined());
  if (impl_->grad.empty()) return Tensor::Zeros(impl_->shape);
  return Tensor(impl_->shape, impl_->grad);
}

const std::vector<float>& Tensor::GradData() const {
  D2_CHECK(defined());
  return impl_->grad;
}

void Tensor::ZeroGrad() const {
  D2_CHECK(defined());
  impl_->grad.clear();
}

Tensor Tensor::Detach() const {
  D2_CHECK(defined());
  auto impl = std::make_shared<internal::TensorImpl>();
  impl->shape = impl_->shape;
  const std::shared_ptr<BufferArena>& arena = ArenaGuard::Active();
  if (arena != nullptr) {
    impl->data = arena->Acquire(static_cast<int64_t>(impl_->data.size()));
    arena->NoteAdopt(impl->data.data());
    std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
    impl->arena = arena;
  } else {
    impl->data = impl_->data;  // copy; safe and simple at this project's sizes
  }
  return FromImpl(std::move(impl));
}

Tensor Tensor::Clone() const { return Detach(); }

namespace {

// Depth-first post-order over the autograd graph (iterative to support deep
// tapes, e.g., long GRU roll-outs).
void TopologicalOrder(const std::shared_ptr<internal::TensorImpl>& root,
                      std::vector<std::shared_ptr<internal::TensorImpl>>* order) {
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    std::shared_ptr<internal::TensorImpl> node;
    size_t next_child = 0;
  };
  std::vector<Frame> stack;
  if (root->grad_fn == nullptr) return;
  visited.insert(root.get());
  stack.push_back({root});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    internal::GradFn* fn = frame.node->grad_fn.get();
    const size_t num_children = fn != nullptr ? fn->inputs.size() : 0;
    if (frame.next_child < num_children) {
      const auto& child = fn->inputs[frame.next_child++].impl();
      if (child != nullptr && child->grad_fn != nullptr &&
          visited.insert(child.get()).second) {
        stack.push_back({child});
      }
    } else {
      order->push_back(frame.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::Backward() const {
  D2_CHECK(defined());
  D2_CHECK_EQ(numel(), 1) << "Backward() requires a scalar loss";
  if (++impl_->backward_runs > 1 && CheckNumericsEnabled()) {
    D2_LOG(WARNING) << "Backward() called " << impl_->backward_runs
                    << " times on the same tape root; gradients accumulate "
                       "once per run";
  }
  // Seed dLoss/dLoss = 1.
  impl_->grad.assign(impl_->data.size(), 0.0f);
  impl_->grad[0] = 1.0f;

  std::vector<std::shared_ptr<internal::TensorImpl>> order;
  TopologicalOrder(impl_, &order);
  // Post-order lists children before parents; walk parents first.
  const bool check_numerics = CheckNumericsEnabled();
  NoGradGuard no_grad;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::shared_ptr<internal::TensorImpl>& node = *it;
    if (node->grad.empty()) {
      // No gradient flowed to this interior node (e.g., unused output).
      continue;
    }
    node->grad_fn->backward(Tensor::FromImpl(node));
    if (check_numerics) CheckBackwardInputs(*node->grad_fn);
  }
}

std::string Tensor::ToString() const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << ShapeToString(impl_->shape) << " = {";
  const int64_t limit = std::min<int64_t>(numel(), 8);
  for (int64_t i = 0; i < limit; ++i) {
    if (i > 0) os << ", ";
    os << impl_->data[static_cast<size_t>(i)];
  }
  if (numel() > limit) os << ", ...";
  os << "}";
  return os.str();
}

Tensor Tensor::FromImpl(std::shared_ptr<internal::TensorImpl> impl) {
  Tensor t;
  t.impl_ = std::move(impl);
  return t;
}

namespace {
thread_local bool g_no_grad_active = false;
}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_no_grad_active) {
  g_no_grad_active = true;
}

NoGradGuard::~NoGradGuard() { g_no_grad_active = previous_; }

bool NoGradGuard::Active() { return g_no_grad_active; }

void AccumulateGrad(const Tensor& target, const Tensor& delta) {
  D2_CHECK(target.defined());
  D2_CHECK(delta.defined());
  D2_CHECK(target.shape() == delta.shape())
      << "grad shape " << ShapeToString(delta.shape())
      << " does not match tensor shape " << ShapeToString(target.shape());
  auto& impl = *target.impl();
  if (impl.grad.empty()) impl.grad.assign(impl.data.size(), 0.0f);
  const std::vector<float>& src = delta.Data();
  for (size_t i = 0; i < src.size(); ++i) impl.grad[i] += src[i];
}

}  // namespace d2stgnn
