#ifndef D2STGNN_TENSOR_BUFFER_ARENA_H_
#define D2STGNN_TENSOR_BUFFER_ARENA_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tensor/tensor.h"

// Pooled tensor storage for forward-only execution.
//
// Training churns through short-lived tensors whose buffers the allocator
// hands back and forth on every op. Serving runs the *same* shapes forever,
// so a BufferArena recycles the float storage instead: while an ArenaGuard
// is active on a thread, every tensor created on it draws its buffer from
// the arena's free lists and returns it there when the tensor dies. After a
// warm-up pass per distinct shape, a steady-state no-grad forward performs
// zero new tensor-buffer allocations (asserted by the inference tests; the
// arena's stats make the claim checkable).
//
// Scope of the guarantee: "tensor buffer" means the float storage behind a
// TensorImpl. Small metadata (shape vectors, shared_ptr control blocks,
// integer scratch) is not pooled — it is orders of magnitude smaller than
// the data buffers that dominate inference allocation traffic.
//
// Thread model: the guard is thread-local (only the activating thread
// allocates from the arena), but tensors may be *destroyed* on any thread —
// a prediction handed to a client releases its buffer from the client's
// thread — so the arena itself is mutex-guarded. Tensors tagged with an
// arena keep it alive via shared_ptr; dropping the last reference frees the
// pooled memory.

namespace d2stgnn {

/// Counters describing one arena's allocation traffic. The invariant the
/// inference tests assert: after warm-up, `fresh_allocations` and
/// `external_adopts` stay flat while `pool_hits` keeps growing.
struct BufferArenaStats {
  /// Acquire calls that had no pooled buffer of the right size and had to
  /// heap-allocate a new one (warm-up traffic).
  int64_t fresh_allocations = 0;
  /// Acquire calls served from the free lists (steady-state traffic).
  int64_t pool_hits = 0;
  /// Tensors created under the guard that adopted a buffer the arena never
  /// handed out (an allocation site that bypassed AcquireBuffer — each op on
  /// such a path shows up here every call, so leaks are visible).
  int64_t external_adopts = 0;
  /// Buffers returned to the free lists by dying tensors.
  int64_t released = 0;
  /// Buffers currently parked in the free lists.
  int64_t pooled_buffers = 0;
  /// Total floats parked in the free lists (memory held for reuse).
  int64_t pooled_floats = 0;
};

/// A mutex-guarded pool of float buffers keyed by element count.
class BufferArena {
 public:
  BufferArena() = default;
  ~BufferArena() = default;
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

  /// Returns a zero-filled buffer of `n` floats — semantically identical to
  /// `std::vector<float>(n)`, but served from the free list when a buffer
  /// of that size is parked there.
  std::vector<float> Acquire(int64_t n);

  /// Parks a dead tensor's buffer in the free list for reuse.
  void Release(std::vector<float>&& buffer);

  /// Bookkeeping for the Tensor constructor: `ptr` is the storage a tensor
  /// is adopting. Buffers born from Acquire are recognized (pool-tracked);
  /// anything else counts as an external adopt in the stats.
  void NoteAdopt(const float* ptr);

  /// Snapshot of the counters.
  BufferArenaStats stats() const;

  /// Drops every pooled buffer (frees the held memory; stats counters for
  /// past traffic are preserved).
  void Trim();

 private:
  mutable std::mutex mu_;
  /// Free lists: element count -> parked buffers of exactly that size.
  std::unordered_map<int64_t, std::vector<std::vector<float>>> free_;
  /// Data pointers handed out by Acquire and not yet adopted by a tensor.
  std::unordered_set<const float*> outstanding_;
  BufferArenaStats stats_;
};

/// Activates `arena` for tensors created on this thread, for the guard's
/// lifetime. Nests: the previous arena (if any) is restored on destruction.
class ArenaGuard {
 public:
  explicit ArenaGuard(std::shared_ptr<BufferArena> arena);
  ~ArenaGuard();
  ArenaGuard(const ArenaGuard&) = delete;
  ArenaGuard& operator=(const ArenaGuard&) = delete;

  /// The arena active on this thread (null when none).
  static const std::shared_ptr<BufferArena>& Active();

 private:
  std::shared_ptr<BufferArena> previous_;
};

/// Forward-only execution mode: no autograd tape (NoGradGuard) plus pooled
/// tensor storage (ArenaGuard). This is what the evaluator, the trainer's
/// validation pass, and InferenceSession run under.
class InferenceModeGuard {
 public:
  /// Uses a private arena that dies with the guard (buffers are reused
  /// across ops and batches within the scope, freed at the end).
  InferenceModeGuard() : InferenceModeGuard(std::make_shared<BufferArena>()) {}

  /// Uses a caller-owned arena (InferenceSession passes its long-lived one
  /// so the pool persists across requests).
  explicit InferenceModeGuard(std::shared_ptr<BufferArena> arena)
      : arena_(std::move(arena)), no_grad_(), guard_(arena_) {}

  const std::shared_ptr<BufferArena>& arena() const { return arena_; }

 private:
  std::shared_ptr<BufferArena> arena_;
  NoGradGuard no_grad_;
  ArenaGuard guard_;
};

namespace internal {

/// The allocation primitive of the op layer: a zero-filled buffer of `n`
/// floats, drawn from the thread's active arena when one is installed and
/// heap-allocated otherwise. Every op output buffer in ops.cc comes from
/// here so inference steady state allocates nothing new.
std::vector<float> AcquireBuffer(int64_t n);

}  // namespace internal

}  // namespace d2stgnn

#endif  // D2STGNN_TENSOR_BUFFER_ARENA_H_
