#ifndef D2STGNN_NN_MLP_H_
#define D2STGNN_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace d2stgnn::nn {

/// Activation functions selectable for Mlp hidden layers.
enum class Activation { kRelu, kTanh, kSigmoid, kNone };

/// Multi-layer perceptron over the last input dimension.
///
/// `dims` lists the layer widths including input and output, e.g.
/// {64, 32, 1} builds Linear(64→32) → act → Linear(32→1). The activation is
/// applied between layers (not after the last one).
class Mlp : public Module {
 public:
  Mlp(const std::vector<int64_t>& dims, Rng& rng,
      Activation activation = Activation::kRelu);

  /// Applies the stack.
  Tensor Forward(const Tensor& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

/// Applies the selected activation to `x`.
Tensor ApplyActivation(const Tensor& x, Activation activation);

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_MLP_H_
