#ifndef D2STGNN_NN_EMBEDDING_H_
#define D2STGNN_NN_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Learnable lookup table of `count` rows of width `dim` (used for the
/// paper's node embeddings E^u/E^d and time-slot embeddings T^D/T^W, which
/// are "randomly initialized with learnable parameters", Sec. 4.2).
class Embedding : public Module {
 public:
  Embedding(int64_t count, int64_t dim, Rng& rng);

  /// Gathers rows by index; output shape is index_shape + [dim].
  Tensor Forward(const std::vector<int64_t>& indices,
                 const Shape& index_shape) const;

  /// The full [count, dim] table as a tensor (gradient flows to it).
  const Tensor& table() const { return table_; }

  int64_t count() const { return count_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t count_;
  int64_t dim_;
  Tensor table_;
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_EMBEDDING_H_
