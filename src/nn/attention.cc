#include "nn/attention.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"

namespace d2stgnn::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t d_model,
                                               int64_t num_heads, Rng& rng)
    : Module("mhsa"),
      d_model_(d_model),
      num_heads_(num_heads),
      head_dim_(d_model / num_heads) {
  D2_CHECK_GT(num_heads, 0);
  D2_CHECK_EQ(d_model % num_heads, 0)
      << "d_model " << d_model << " not divisible by heads " << num_heads;
  w_q_ = RegisterParameter("W_q", XavierUniform({d_model, d_model}, rng));
  w_k_ = RegisterParameter("W_k", XavierUniform({d_model, d_model}, rng));
  w_v_ = RegisterParameter("W_v", XavierUniform({d_model, d_model}, rng));
  w_o_ = RegisterParameter("W_o", XavierUniform({d_model, d_model}, rng));
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  D2_CHECK_EQ(x.dim(), 3) << "attention input must be [batch, T, d]";
  D2_CHECK_EQ(x.size(-1), d_model_);
  const int64_t batch = x.size(0);
  const int64_t seq = x.size(1);

  // Project and split heads: [B, T, d] -> [B, H, T, dh].
  auto split_heads = [&](const Tensor& projected) {
    Tensor heads = Reshape(projected, {batch, seq, num_heads_, head_dim_});
    return Permute(heads, {0, 2, 1, 3});
  };
  const Tensor q = split_heads(MatMul(x, w_q_));
  const Tensor k = split_heads(MatMul(x, w_k_));
  const Tensor v = split_heads(MatMul(x, w_v_));

  // Scaled dot-product attention per head: [B, H, T, T].
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  Tensor scores = MulScalar(MatMul(q, Transpose(k, -1, -2)), scale);
  Tensor weights = Softmax(scores, -1);
  Tensor context = MatMul(weights, v);  // [B, H, T, dh]

  // Merge heads and apply the output projection.
  context = Permute(context, {0, 2, 1, 3});  // [B, T, H, dh]
  context = Reshape(context, {batch, seq, d_model_});
  return MatMul(context, w_o_);
}

}  // namespace d2stgnn::nn
