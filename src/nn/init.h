#ifndef D2STGNN_NN_INIT_H_
#define D2STGNN_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace d2stgnn::nn {

/// Xavier/Glorot uniform initialization: U(-a, a) with
/// a = gain * sqrt(6 / (fan_in + fan_out)). For 2-D weights fan_in/out are
/// the matrix dimensions; for higher ranks the leading dims fold into
/// fan_in.
Tensor XavierUniform(const Shape& shape, Rng& rng, float gain = 1.0f);

/// Xavier/Glorot normal initialization: N(0, gain^2 * 2/(fan_in+fan_out)).
Tensor XavierNormal(const Shape& shape, Rng& rng, float gain = 1.0f);

/// Uniform in [-bound, bound].
Tensor UniformInit(const Shape& shape, Rng& rng, float bound);

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_INIT_H_
