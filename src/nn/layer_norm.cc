#include "nn/layer_norm.h"

#include "common/check.h"

namespace d2stgnn::nn {

LayerNorm::LayerNorm(int64_t normalized_dim, float epsilon)
    : Module("layer_norm"),
      normalized_dim_(normalized_dim),
      epsilon_(epsilon) {
  D2_CHECK_GT(normalized_dim, 0);
  D2_CHECK_GT(epsilon, 0.0f);
  gamma_ = RegisterParameter("gamma", Tensor::Ones({normalized_dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros({normalized_dim}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  D2_CHECK_EQ(x.size(-1), normalized_dim_)
      << "LayerNorm expects last dim " << normalized_dim_;
  const Tensor mean = Mean(x, -1, /*keepdim=*/true);
  const Tensor centered = Sub(x, mean);
  const Tensor variance = Mean(Mul(centered, centered), -1, /*keepdim=*/true);
  const Tensor normalized =
      Div(centered, Sqrt(AddScalar(variance, epsilon_)));
  return Add(Mul(normalized, gamma_), beta_);
}

}  // namespace d2stgnn::nn
