#include "nn/lstm_cell.h"

#include "common/check.h"
#include "nn/init.h"

namespace d2stgnn::nn {

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : Module("lstm_cell"), input_size_(input_size), hidden_size_(hidden_size) {
  D2_CHECK_GT(input_size, 0);
  D2_CHECK_GT(hidden_size, 0);
  auto weight = [&](const char* name, int64_t rows) {
    return RegisterParameter(name, XavierUniform({rows, hidden_size}, rng));
  };
  auto bias = [&](const char* name, float fill) {
    return RegisterParameter(name, Tensor::Full({hidden_size}, fill));
  };
  w_i_ = weight("W_i", input_size);
  u_i_ = weight("U_i", hidden_size);
  b_i_ = bias("b_i", 0.0f);
  w_f_ = weight("W_f", input_size);
  u_f_ = weight("U_f", hidden_size);
  // Forget-gate bias of 1 is the standard trick to keep early memories.
  b_f_ = bias("b_f", 1.0f);
  w_o_ = weight("W_o", input_size);
  u_o_ = weight("U_o", hidden_size);
  b_o_ = bias("b_o", 0.0f);
  w_g_ = weight("W_g", input_size);
  u_g_ = weight("U_g", hidden_size);
  b_g_ = bias("b_g", 0.0f);
}

LstmCell::State LstmCell::Forward(const Tensor& x, const State& state) const {
  D2_CHECK_EQ(x.size(-1), input_size_);
  D2_CHECK_EQ(state.h.size(-1), hidden_size_);
  D2_CHECK_EQ(state.c.size(-1), hidden_size_);
  const Tensor i =
      Sigmoid(Add(Add(MatMul(x, w_i_), MatMul(state.h, u_i_)), b_i_));
  const Tensor f =
      Sigmoid(Add(Add(MatMul(x, w_f_), MatMul(state.h, u_f_)), b_f_));
  const Tensor o =
      Sigmoid(Add(Add(MatMul(x, w_o_), MatMul(state.h, u_o_)), b_o_));
  const Tensor g =
      Tanh(Add(Add(MatMul(x, w_g_), MatMul(state.h, u_g_)), b_g_));
  State next;
  next.c = Add(Mul(f, state.c), Mul(i, g));
  next.h = Mul(o, Tanh(next.c));
  return next;
}

}  // namespace d2stgnn::nn
