#ifndef D2STGNN_NN_GRU_CELL_H_
#define D2STGNN_NN_GRU_CELL_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Gated Recurrent Unit cell (Cho et al. 2014), exactly the formulation of
/// the paper's Eq. 10:
///
///   z_t = sigmoid(x W_z + h U_z + b_z)
///   r_t = sigmoid(x W_r + h U_r + b_r)
///   h~  = tanh(x W_h + r_t ⊙ (h U_h + b_h))
///   h'  = (1 - z_t) ⊙ h + z_t ⊙ h~
///
/// The cell applies to the last dimension, so the "batch" may be any leading
/// shape (the inherent model runs it over [batch, num_nodes, d] slices).
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// One recurrence step; x is [..., input_size], h is [..., hidden_size].
  Tensor Forward(const Tensor& x, const Tensor& h) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_z_, u_z_, b_z_;
  Tensor w_r_, u_r_, b_r_;
  Tensor w_h_, u_h_, b_h_;
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_GRU_CELL_H_
