#include "nn/embedding.h"

#include "common/check.h"
#include "nn/init.h"

namespace d2stgnn::nn {

Embedding::Embedding(int64_t count, int64_t dim, Rng& rng)
    : Module("embedding"), count_(count), dim_(dim) {
  D2_CHECK_GT(count, 0);
  D2_CHECK_GT(dim, 0);
  table_ = RegisterParameter("table", XavierNormal({count, dim}, rng));
}

Tensor Embedding::Forward(const std::vector<int64_t>& indices,
                          const Shape& index_shape) const {
  return EmbeddingLookup(table_, indices, index_shape);
}

}  // namespace d2stgnn::nn
