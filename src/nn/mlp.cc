#include "nn/mlp.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

Mlp::Mlp(const std::vector<int64_t>& dims, Rng& rng, Activation activation)
    : Module("mlp"), activation_(activation) {
  D2_CHECK_GE(dims.size(), 2u) << "Mlp needs at least input and output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterChild(layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size()) h = ApplyActivation(h, activation_);
  }
  return h;
}

Tensor ApplyActivation(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kNone:
      return x;
  }
  D2_CHECK(false) << "unknown activation";
  return x;
}

}  // namespace d2stgnn::nn
