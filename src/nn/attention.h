#ifndef D2STGNN_NN_ATTENTION_H_
#define D2STGNN_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Multi-head scaled dot-product self-attention (Vaswani et al. 2017; the
/// paper's Eq. 11). Operates on sequences [batch..., T, d_model]: every
/// leading dimension is treated as an independent batch (the inherent model
/// passes [batch * num_nodes, T, d] so attention runs per node over time).
class MultiHeadSelfAttention : public Module {
 public:
  /// `d_model` must be divisible by `num_heads`.
  MultiHeadSelfAttention(int64_t d_model, int64_t num_heads, Rng& rng);

  /// Applies self-attention over the second-to-last (time) dimension.
  /// Input and output are [B, T, d_model].
  Tensor Forward(const Tensor& x) const;

  int64_t d_model() const { return d_model_; }
  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t d_model_;
  int64_t num_heads_;
  int64_t head_dim_;
  Tensor w_q_, w_k_, w_v_, w_o_;  // all [d_model, d_model]
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_ATTENTION_H_
