#ifndef D2STGNN_NN_LSTM_CELL_H_
#define D2STGNN_NN_LSTM_CELL_H_

#include <utility>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Long Short-Term Memory cell (used by the FC-LSTM baseline):
///
///   i = sigmoid(x W_i + h U_i + b_i)
///   f = sigmoid(x W_f + h U_f + b_f)
///   o = sigmoid(x W_o + h U_o + b_o)
///   g = tanh  (x W_g + h U_g + b_g)
///   c' = f ⊙ c + i ⊙ g
///   h' = o ⊙ tanh(c')
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  /// Hidden and cell state after one step.
  struct State {
    Tensor h;
    Tensor c;
  };

  /// One recurrence step; x is [..., input_size], state tensors are
  /// [..., hidden_size].
  State Forward(const Tensor& x, const State& state) const;

  int64_t input_size() const { return input_size_; }
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Tensor w_i_, u_i_, b_i_;
  Tensor w_f_, u_f_, b_f_;
  Tensor w_o_, u_o_, b_o_;
  Tensor w_g_, u_g_, b_g_;
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_LSTM_CELL_H_
