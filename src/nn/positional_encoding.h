#ifndef D2STGNN_NN_POSITIONAL_ENCODING_H_
#define D2STGNN_NN_POSITIONAL_ENCODING_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace d2stgnn::nn {

/// Non-trainable sinusoidal positional encoding (the paper's Eq. 12):
/// e_{t,i} = sin(t / 10000^{2i/d}) for even i, cos otherwise. Added to
/// sequences so that the self-attention layer sees relative positions.
class PositionalEncoding {
 public:
  /// Precomputes the [max_len, d_model] table.
  PositionalEncoding(int64_t max_len, int64_t d_model);

  /// Adds e_t to every [..., T, d_model] sequence element (T <= max_len).
  Tensor Forward(const Tensor& x) const;

  /// The precomputed [max_len, d_model] table (constant).
  const Tensor& table() const { return table_; }

 private:
  int64_t max_len_;
  int64_t d_model_;
  Tensor table_;
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_POSITIONAL_ENCODING_H_
