#ifndef D2STGNN_NN_LINEAR_H_
#define D2STGNN_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Fully connected layer: y = x W + b, applied to the last dimension of an
/// input of any rank >= 2 ([..., in_features] -> [..., out_features]).
class Linear : public Module {
 public:
  /// Builds a layer with Xavier-initialized weights. `bias` toggles the
  /// additive bias term.
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  /// Applies the layer.
  Tensor Forward(const Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  /// The [in, out] weight matrix.
  const Tensor& weight() const { return weight_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_LINEAR_H_
