#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace d2stgnn::nn {
namespace {

void FanInOut(const Shape& shape, float* fan_in, float* fan_out) {
  D2_CHECK_GE(shape.size(), 1u);
  if (shape.size() == 1) {
    *fan_in = static_cast<float>(shape[0]);
    *fan_out = static_cast<float>(shape[0]);
    return;
  }
  float leading = 1.0f;
  for (size_t d = 0; d + 1 < shape.size(); ++d) {
    leading *= static_cast<float>(shape[d]);
  }
  *fan_in = leading;
  *fan_out = static_cast<float>(shape.back());
}

}  // namespace

Tensor XavierUniform(const Shape& shape, Rng& rng, float gain) {
  float fan_in, fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  const float bound = gain * std::sqrt(6.0f / (fan_in + fan_out));
  return Tensor::Rand(shape, rng, -bound, bound);
}

Tensor XavierNormal(const Shape& shape, Rng& rng, float gain) {
  float fan_in, fan_out;
  FanInOut(shape, &fan_in, &fan_out);
  const float stddev = gain * std::sqrt(2.0f / (fan_in + fan_out));
  return Tensor::Randn(shape, rng, 0.0f, stddev);
}

Tensor UniformInit(const Shape& shape, Rng& rng, float bound) {
  return Tensor::Rand(shape, rng, -bound, bound);
}

}  // namespace d2stgnn::nn
