#include "nn/linear.h"

#include "common/check.h"
#include "nn/init.h"

namespace d2stgnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : Module("linear"),
      in_features_(in_features),
      out_features_(out_features) {
  D2_CHECK_GT(in_features, 0);
  D2_CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", XavierUniform({in_features, out_features}, rng));
  if (bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  D2_CHECK_EQ(x.size(-1), in_features_)
      << "Linear expects last dim " << in_features_ << ", got "
      << ShapeToString(x.shape());
  Tensor y = MatMul(x, weight_);
  if (bias_.defined()) y = Add(y, bias_);
  return y;
}

}  // namespace d2stgnn::nn
