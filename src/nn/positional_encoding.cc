#include "nn/positional_encoding.h"

#include <cmath>

#include "common/check.h"

namespace d2stgnn::nn {

PositionalEncoding::PositionalEncoding(int64_t max_len, int64_t d_model)
    : max_len_(max_len), d_model_(d_model) {
  D2_CHECK_GT(max_len, 0);
  D2_CHECK_GT(d_model, 0);
  std::vector<float> data(static_cast<size_t>(max_len * d_model));
  for (int64_t t = 0; t < max_len; ++t) {
    for (int64_t i = 0; i < d_model; ++i) {
      const double exponent =
          static_cast<double>(2 * (i / 2)) / static_cast<double>(d_model);
      const double angle =
          static_cast<double>(t) / std::pow(10000.0, exponent);
      data[static_cast<size_t>(t * d_model + i)] =
          (i % 2 == 0) ? static_cast<float>(std::sin(angle))
                       : static_cast<float>(std::cos(angle));
    }
  }
  table_ = Tensor({max_len, d_model}, std::move(data));
}

Tensor PositionalEncoding::Forward(const Tensor& x) const {
  D2_CHECK_GE(x.dim(), 2);
  D2_CHECK_EQ(x.size(-1), d_model_);
  const int64_t seq = x.size(-2);
  D2_CHECK_LE(seq, max_len_) << "sequence longer than positional table";
  const Tensor slice = Slice(table_, 0, 0, seq);  // [T, d]; broadcasts.
  return Add(x, slice);
}

}  // namespace d2stgnn::nn
