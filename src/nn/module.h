#ifndef D2STGNN_NN_MODULE_H_
#define D2STGNN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn::nn {

/// Base class for neural-network building blocks.
///
/// A Module owns learnable parameters (registered in the constructor via
/// RegisterParameter) and may contain child modules (registered via
/// RegisterChild; children are plain members of the subclass, the registry
/// only borrows pointers). Parameters() flattens the tree so optimizers can
/// iterate every learnable tensor.
///
/// Modules are neither copyable nor movable: registered child pointers refer
/// to member objects, so the address of a module must be stable.
class Module {
 public:
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Debug name given at construction.
  const std::string& name() const { return name_; }

  /// All parameters of this module and its descendants.
  std::vector<Tensor> Parameters() const;

  /// Parameters paired with hierarchical names ("gru/W_z").
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Total number of learnable scalars.
  int64_t ParameterCount() const;

  /// Clears the gradients of every parameter in the tree.
  void ZeroGrad();

  /// Switches training mode (affects dropout etc.) for the whole tree.
  void SetTraining(bool training);

  /// True while in training mode (the default).
  bool training() const { return training_; }

 protected:
  explicit Module(std::string name) : name_(std::move(name)) {}

  /// Registers a learnable tensor; marks it requires-grad and returns it.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  /// Registers a child module (non-owning; `child` must outlive this).
  void RegisterChild(Module* child);

 private:
  std::string name_;
  std::vector<std::pair<std::string, Tensor>> parameters_;
  std::vector<Module*> children_;
  bool training_ = true;
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_MODULE_H_
