#ifndef D2STGNN_NN_LAYER_NORM_H_
#define D2STGNN_NN_LAYER_NORM_H_

#include "nn/module.h"
#include "tensor/ops.h"

namespace d2stgnn::nn {

/// Layer normalization over the last dimension (Ba et al. 2016):
///   y = gamma * (x - mean) / sqrt(var + eps) + beta
/// A standard stabilizer in deep ST-GNN stacks (e.g. STGCN's blocks and
/// transformer-style temporal modules).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t normalized_dim, float epsilon = 1e-5f);

  /// Normalizes the last dimension of `x` ([..., normalized_dim]).
  Tensor Forward(const Tensor& x) const;

  int64_t normalized_dim() const { return normalized_dim_; }

 private:
  int64_t normalized_dim_;
  float epsilon_;
  Tensor gamma_;  // [dim], init 1
  Tensor beta_;   // [dim], init 0
};

}  // namespace d2stgnn::nn

#endif  // D2STGNN_NN_LAYER_NORM_H_
