#include "nn/module.h"

#include "common/check.h"

namespace d2stgnn::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> all;
  for (const auto& [name, tensor] : parameters_) all.push_back(tensor);
  for (const Module* child : children_) {
    std::vector<Tensor> sub = child->Parameters();
    all.insert(all.end(), sub.begin(), sub.end());
  }
  return all;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> all;
  for (const auto& entry : parameters_) all.push_back(entry);
  for (const Module* child : children_) {
    for (auto& [name, tensor] : child->NamedParameters()) {
      all.emplace_back(child->name() + "/" + name, tensor);
    }
  }
  return all;
}

int64_t Module::ParameterCount() const {
  int64_t count = 0;
  for (const Tensor& p : Parameters()) count += p.numel();
  return count;
}

void Module::ZeroGrad() {
  for (Tensor& p : Parameters()) p.ZeroGrad();
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (Module* child : children_) child->SetTraining(training);
}

Tensor Module::RegisterParameter(const std::string& name, Tensor tensor) {
  D2_CHECK(tensor.defined()) << "parameter " << name << " is undefined";
  tensor.SetRequiresGrad(true);
  parameters_.emplace_back(name, tensor);
  return tensor;
}

void Module::RegisterChild(Module* child) {
  D2_CHECK(child != nullptr);
  children_.push_back(child);
}

}  // namespace d2stgnn::nn
