#include "nn/gru_cell.h"

#include "common/check.h"
#include "nn/init.h"

namespace d2stgnn::nn {

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : Module("gru_cell"), input_size_(input_size), hidden_size_(hidden_size) {
  D2_CHECK_GT(input_size, 0);
  D2_CHECK_GT(hidden_size, 0);
  auto weight = [&](const char* name, int64_t rows) {
    return RegisterParameter(name, XavierUniform({rows, hidden_size}, rng));
  };
  auto bias = [&](const char* name) {
    return RegisterParameter(name, Tensor::Zeros({hidden_size}));
  };
  w_z_ = weight("W_z", input_size);
  u_z_ = weight("U_z", hidden_size);
  b_z_ = bias("b_z");
  w_r_ = weight("W_r", input_size);
  u_r_ = weight("U_r", hidden_size);
  b_r_ = bias("b_r");
  w_h_ = weight("W_h", input_size);
  u_h_ = weight("U_h", hidden_size);
  b_h_ = bias("b_h");
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) const {
  D2_CHECK_EQ(x.size(-1), input_size_);
  D2_CHECK_EQ(h.size(-1), hidden_size_);
  const Tensor z = Sigmoid(Add(Add(MatMul(x, w_z_), MatMul(h, u_z_)), b_z_));
  const Tensor r = Sigmoid(Add(Add(MatMul(x, w_r_), MatMul(h, u_r_)), b_r_));
  const Tensor candidate =
      Tanh(Add(MatMul(x, w_h_), Mul(r, Add(MatMul(h, u_h_), b_h_))));
  return Add(Mul(Sub(Tensor::Scalar(1.0f), z), h), Mul(z, candidate));
}

}  // namespace d2stgnn::nn
