#include "baselines/mtgnn_lite.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

MtgnnLite::MtgnnLite(int64_t num_nodes, int64_t hidden_dim,
                     int64_t output_len, int64_t embed_dim, Rng& rng)
    : ForecastingModel("mtgnn"),
      num_nodes_(num_nodes),
      hidden_dim_(hidden_dim),
      output_len_(output_len),
      input_proj_(data::kInputFeatures, hidden_dim, rng),
      out_fc1_(hidden_dim, hidden_dim, rng),
      out_fc2_(hidden_dim, output_len, rng) {
  RegisterChild(&input_proj_);
  RegisterChild(&out_fc1_);
  RegisterChild(&out_fc2_);
  m1_ = RegisterParameter("M1", nn::XavierNormal({num_nodes, embed_dim}, rng));
  m2_ = RegisterParameter("M2", nn::XavierNormal({num_nodes, embed_dim}, rng));

  for (int64_t l = 0; l < 2; ++l) {
    Layer layer;
    auto linear = [&] {
      auto li = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
      RegisterChild(li.get());
      return li;
    };
    layer.incep2_now = linear();
    layer.incep2_past = linear();
    layer.incep3_now = linear();
    layer.incep3_mid = linear();
    layer.incep3_past = linear();
    layer.gate_now = linear();
    layer.gate_past = linear();
    layer.mixhop_out = std::make_unique<nn::Linear>(
        (kMixHops + 1) * hidden_dim, hidden_dim, rng);
    RegisterChild(layer.mixhop_out.get());
    layer.skip = linear();
    layers_.push_back(std::move(layer));
  }
}

Tensor MtgnnLite::LearnedAdjacency() const {
  // A = softmax(relu(tanh(alpha (M1 M2^T - M2 M1^T)))): uni-directional.
  constexpr float kAlpha = 3.0f;
  const Tensor m12 = MatMul(m1_, Transpose(m2_, 0, 1));
  const Tensor skew = Sub(m12, Transpose(m12, 0, 1));
  return Softmax(Relu(Tanh(MulScalar(skew, kAlpha))), -1);
}

Tensor MtgnnLite::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);
  const Tensor adj = LearnedAdjacency();

  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]
  Tensor skip_sum;
  for (const Layer& layer : layers_) {
    // Dilated inception: kernel-2 and kernel-3 causal branches summed,
    // gated by a sigmoid branch (MTGNN's dilated inception + gating).
    const Tensor p1 = Slice(PadFront(x, 1, 1), 1, 0, steps);
    const Tensor p2 = Slice(PadFront(x, 1, 2), 1, 0, steps);
    const Tensor value = Tanh(Add(
        Add(layer.incep2_now->Forward(x), layer.incep2_past->Forward(p1)),
        Add(layer.incep3_now->Forward(x),
            Add(layer.incep3_mid->Forward(p1), layer.incep3_past->Forward(p2)))));
    const Tensor gate = Sigmoid(
        Add(layer.gate_now->Forward(x), layer.gate_past->Forward(p1)));
    const Tensor gated = Mul(value, gate);

    // Mix-hop propagation: h^(k+1) = beta*in + (1-beta)*A h^k; concat hops.
    std::vector<Tensor> hops;
    hops.push_back(gated);
    Tensor h = gated;
    for (int64_t k = 0; k < kMixHops; ++k) {
      h = Add(MulScalar(gated, kRetain),
              MulScalar(MatMul(adj, h), 1.0f - kRetain));
      hops.push_back(h);
    }
    const Tensor conv = layer.mixhop_out->Forward(Concat(hops, -1));

    const Tensor skip = layer.skip->Forward(
        Reshape(Slice(gated, 1, steps - 1, steps), {b, num_nodes_, -1}));
    skip_sum = skip_sum.defined() ? Add(skip_sum, skip) : skip;
    x = Add(x, conv);
  }

  Tensor out = out_fc2_.Forward(Relu(out_fc1_.Forward(Relu(skip_sum))));
  out = Permute(out, {0, 2, 1});  // [B, Tf, N]
  return Reshape(out, {b, output_len_, num_nodes_, 1});
}

}  // namespace d2stgnn::baselines
