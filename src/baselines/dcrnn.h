#ifndef D2STGNN_BASELINES_DCRNN_H_
#define D2STGNN_BASELINES_DCRNN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// Diffusion convolution over a set of transition-matrix powers:
///   y = [x ‖ P_1 x ‖ ... ‖ P_M x] W + b
/// where each P_m is [N, N] (static) or [B, N, N] (dynamic) and x is
/// [B, N, in_dim]. The identity term is always included. Used by DCRNN's
/// DCGRU cell and by DGCRN.
class DiffusionConv : public nn::Module {
 public:
  /// `num_matrices` is the number of transition matrices (excluding the
  /// implicit identity) the layer is sized for.
  DiffusionConv(int64_t in_dim, int64_t out_dim, int64_t num_matrices,
                Rng& rng);

  Tensor Forward(const Tensor& x, const std::vector<Tensor>& supports) const;

 private:
  int64_t num_matrices_;
  nn::Linear proj_;
};

/// Diffusion Convolutional GRU cell (DCRNN, Li et al. 2018): a GRU whose
/// fully connected layers are replaced with diffusion convolutions.
class DcgruCell : public nn::Module {
 public:
  DcgruCell(int64_t in_dim, int64_t hidden_dim, int64_t num_matrices,
            Rng& rng);

  /// x: [B, N, in_dim], h: [B, N, hidden]; returns the next hidden state.
  Tensor Forward(const Tensor& x, const Tensor& h,
                 const std::vector<Tensor>& supports) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  DiffusionConv gates_;      // -> 2*hidden (reset ‖ update)
  DiffusionConv candidate_;  // -> hidden
};

/// DCRNN baseline: sequence-to-sequence DCGRU encoder-decoder modelling
/// traffic as a diffusion process on the road graph (paper Sec. 6.1). The
/// decoder runs autoregressively on its own predictions (scheduled sampling
/// is omitted; see DESIGN.md).
class Dcrnn : public train::ForecastingModel {
 public:
  /// `max_diffusion_step` is K (powers of each direction's transition).
  Dcrnn(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
        const Tensor& adjacency, int64_t max_diffusion_step, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  int64_t num_nodes_;
  int64_t output_len_;
  std::vector<Tensor> supports_;  // static powers of P_f and P_b
  DcgruCell encoder_;
  DcgruCell decoder_;
  nn::Linear out_proj_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_DCRNN_H_
