#ifndef D2STGNN_BASELINES_GRAPH_WAVENET_H_
#define D2STGNN_BASELINES_GRAPH_WAVENET_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// Graph WaveNet baseline (Wu et al. 2019; paper Sec. 6.1): stacked gated
/// dilated causal convolutions interleaved with graph convolutions over the
/// double-transition supports plus a self-adaptive adjacency matrix learned
/// from node embeddings, with residual and skip connections and a direct
/// multi-step output head.
class GraphWaveNet : public train::ForecastingModel {
 public:
  struct Options {
    int64_t hidden_dim = 16;       ///< residual channels
    int64_t skip_dim = 32;         ///< skip channels
    int64_t embed_dim = 8;         ///< adaptive adjacency embedding
    int64_t num_layers = 3;        ///< dilations 1, 2, 4, ...
    int64_t diffusion_steps = 2;   ///< K
    bool adaptive = true;
  };

  GraphWaveNet(int64_t num_nodes, int64_t output_len, const Tensor& adjacency,
               const Options& options, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

  /// The learned self-adaptive adjacency softmax(relu(E1 E2^T)) (exposed
  /// for inspection and tests).
  Tensor AdaptiveAdjacency() const;

 private:
  struct Layer {
    std::unique_ptr<nn::Linear> filter_now;    // tanh branch, current frame
    std::unique_ptr<nn::Linear> filter_past;   // tanh branch, dilated frame
    std::unique_ptr<nn::Linear> gate_now;      // sigmoid branch
    std::unique_ptr<nn::Linear> gate_past;
    std::vector<Tensor> gcn_weights;           // per support power
    std::unique_ptr<nn::Linear> gcn_out;       // after support sum
    std::unique_ptr<nn::Linear> skip;
    int64_t dilation = 1;
  };


  int64_t num_nodes_;
  int64_t output_len_;
  Options options_;
  std::vector<Tensor> static_supports_;  // powers of P_f, P_b
  Tensor e1_, e2_;                       // adaptive embeddings
  nn::Linear input_proj_;
  std::vector<Layer> layers_;
  nn::Linear out_fc1_;
  nn::Linear out_fc2_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_GRAPH_WAVENET_H_
