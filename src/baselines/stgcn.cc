#include "baselines/stgcn.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {
namespace {

// D^{-1/2} (A + I) D^{-1/2}, the GCN-normalized adjacency.
Tensor SymmetricNormalize(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  std::vector<float> a = adjacency.Data();
  for (int64_t i = 0; i < n; ++i) a[static_cast<size_t>(i * n + i)] += 1.0f;
  std::vector<float> inv_sqrt_deg(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    float deg = 0.0f;
    for (int64_t j = 0; j < n; ++j) deg += a[static_cast<size_t>(i * n + j)];
    inv_sqrt_deg[static_cast<size_t>(i)] =
        deg > 0.0f ? 1.0f / std::sqrt(deg) : 0.0f;
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      a[static_cast<size_t>(i * n + j)] *= inv_sqrt_deg[static_cast<size_t>(i)] *
                                           inv_sqrt_deg[static_cast<size_t>(j)];
    }
  }
  return Tensor({n, n}, std::move(a));
}

}  // namespace

Stgcn::Stgcn(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
             const Tensor& adjacency, int64_t num_blocks, Rng& rng)
    : ForecastingModel("stgcn"),
      num_nodes_(num_nodes),
      output_len_(output_len),
      input_proj_(data::kInputFeatures, hidden_dim, rng),
      out_fc1_(hidden_dim, hidden_dim, rng),
      out_fc2_(hidden_dim, output_len, rng) {
  RegisterChild(&input_proj_);
  RegisterChild(&out_fc1_);
  RegisterChild(&out_fc2_);
  normalized_adj_ = SymmetricNormalize(adjacency);
  for (int64_t bl = 0; bl < num_blocks; ++bl) {
    Block block;
    auto linear = [&] {
      auto l = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
      RegisterChild(l.get());
      return l;
    };
    block.t1_value_now = linear();
    block.t1_value_past = linear();
    block.t1_gate_now = linear();
    block.t1_gate_past = linear();
    block.spatial = linear();
    block.t2_value_now = linear();
    block.t2_value_past = linear();
    block.t2_gate_now = linear();
    block.t2_gate_past = linear();
    blocks_.push_back(std::move(block));
  }
}

Tensor Stgcn::GatedTemporal(const Tensor& x, const nn::Linear& value_now,
                            const nn::Linear& value_past,
                            const nn::Linear& gate_now,
                            const nn::Linear& gate_past) const {
  const int64_t steps = x.size(1);
  const Tensor past = Slice(PadFront(x, 1, 1), 1, 0, steps);
  // GLU: value branch gated by a sigmoid branch.
  const Tensor value =
      Add(value_now.Forward(x), value_past.Forward(past));
  const Tensor gate =
      Sigmoid(Add(gate_now.Forward(x), gate_past.Forward(past)));
  return Mul(value, gate);
}

Tensor Stgcn::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);

  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]
  for (const Block& block : blocks_) {
    Tensor h = GatedTemporal(x, *block.t1_value_now, *block.t1_value_past,
                             *block.t1_gate_now, *block.t1_gate_past);
    // Spatial graph convolution: relu(\hat{A} h W).
    h = Relu(block.spatial->Forward(MatMul(normalized_adj_, h)));
    h = GatedTemporal(h, *block.t2_value_now, *block.t2_value_past,
                      *block.t2_gate_now, *block.t2_gate_past);
    x = Add(x, h);  // residual keeps optimization stable at this scale
  }

  // Output head from the last frame.
  const Tensor last =
      Reshape(Slice(x, 1, steps - 1, steps), {b, num_nodes_, -1});
  Tensor out = out_fc2_.Forward(Relu(out_fc1_.Forward(last)));  // [B, N, Tf]
  out = Permute(out, {0, 2, 1});
  return Reshape(out, {b, output_len_, num_nodes_, 1});
}

}  // namespace d2stgnn::baselines
