#include "baselines/fc_lstm.h"

#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

FcLstm::FcLstm(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
               Rng& rng)
    : ForecastingModel("fc_lstm"),
      num_nodes_(num_nodes),
      output_len_(output_len),
      encoder_(num_nodes * data::kInputFeatures, hidden_dim, rng),
      decoder_(num_nodes, hidden_dim, rng),
      out_proj_(hidden_dim, num_nodes, rng) {
  RegisterChild(&encoder_);
  RegisterChild(&decoder_);
  RegisterChild(&out_proj_);
}

Tensor FcLstm::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);
  const Tensor x = Reshape(
      batch.x, {b, steps, num_nodes_ * data::kInputFeatures});

  nn::LstmCell::State state{Tensor::Zeros({b, encoder_.hidden_size()}),
                            Tensor::Zeros({b, encoder_.hidden_size()})};
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor frame = Reshape(
        Slice(x, 1, t, t + 1), {b, num_nodes_ * data::kInputFeatures});
    state = encoder_.Forward(frame, state);
  }

  // Autoregressive decoding from the last observed readings (channel 0).
  Tensor prev = Reshape(
      Select(Slice(batch.x, 1, steps - 1, steps), -1, 0), {b, num_nodes_});
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(output_len_));
  for (int64_t h = 0; h < output_len_; ++h) {
    state = decoder_.Forward(prev, state);
    prev = out_proj_.Forward(state.h);  // [B, N]
    outputs.push_back(prev);
  }
  return Reshape(Stack(outputs, 1), {b, output_len_, num_nodes_, 1});
}

}  // namespace d2stgnn::baselines
