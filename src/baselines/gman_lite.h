#ifndef D2STGNN_BASELINES_GMAN_LITE_H_
#define D2STGNN_BASELINES_GMAN_LITE_H_

#include <memory>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// GMAN baseline (Zheng et al. 2020), lite variant: one ST-attention block
/// (spatial attention over nodes + temporal attention over steps, fused by a
/// gate) conditioned on spatial-temporal embeddings, followed by GMAN's
/// transform attention that maps the T_h history to the T_f future and an
/// output head. The attention machinery gives it the strong long-horizon
/// behaviour the paper reports (Sec. 6.2.2); "lite" = one block instead of
/// L=3 (see DESIGN.md).
class GmanLite : public train::ForecastingModel {
 public:
  GmanLite(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
           int64_t steps_per_day, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  /// Spatial-temporal embedding for a span of steps: fuses the node
  /// embedding with the time embedding. `tod`/`dow` index per (b, t).
  Tensor SpatioTemporalEmbedding(int64_t batch, int64_t steps,
                                 const std::vector<int64_t>& tod,
                                 const std::vector<int64_t>& dow) const;

  int64_t num_nodes_;
  int64_t hidden_dim_;
  int64_t output_len_;
  int64_t steps_per_day_;
  nn::Embedding node_embedding_;
  nn::Embedding tod_embedding_;
  nn::Embedding dow_embedding_;
  nn::Linear ste_fc_;
  nn::Linear input_proj_;
  // Spatial attention.
  nn::Linear sp_q_, sp_k_, sp_v_;
  // Temporal attention.
  nn::Linear tp_q_, tp_k_, tp_v_;
  // Gated fusion.
  nn::Linear fuse_s_, fuse_t_;
  // Transform attention (history -> future).
  nn::Linear tr_q_, tr_k_, tr_v_;
  nn::Linear out_fc1_, out_fc2_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_GMAN_LITE_H_
