#include "baselines/var.h"

#include <cmath>

#include "common/check.h"

namespace d2stgnn::baselines {

std::vector<float> SolveRidgeNormalEquations(std::vector<float> xtx,
                                             std::vector<float> xty,
                                             int64_t d, int64_t m,
                                             float ridge) {
  D2_CHECK_EQ(static_cast<int64_t>(xtx.size()), d * d);
  D2_CHECK_EQ(static_cast<int64_t>(xty.size()), d * m);
  for (int64_t i = 0; i < d; ++i) xtx[static_cast<size_t>(i * d + i)] += ridge;

  // Cholesky: xtx = L L^T (in place, lower triangle).
  for (int64_t i = 0; i < d; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double sum = xtx[static_cast<size_t>(i * d + j)];
      for (int64_t k = 0; k < j; ++k) {
        sum -= static_cast<double>(xtx[static_cast<size_t>(i * d + k)]) *
               xtx[static_cast<size_t>(j * d + k)];
      }
      if (i == j) {
        D2_CHECK_GT(sum, 0.0) << "matrix not positive definite";
        xtx[static_cast<size_t>(i * d + j)] =
            static_cast<float>(std::sqrt(sum));
      } else {
        xtx[static_cast<size_t>(i * d + j)] = static_cast<float>(
            sum / xtx[static_cast<size_t>(j * d + j)]);
      }
    }
  }

  // Solve L Z = xty, then L^T W = Z, column by column.
  std::vector<float> w(static_cast<size_t>(d * m));
  for (int64_t c = 0; c < m; ++c) {
    // Forward substitution.
    std::vector<double> z(static_cast<size_t>(d));
    for (int64_t i = 0; i < d; ++i) {
      double sum = xty[static_cast<size_t>(i * m + c)];
      for (int64_t k = 0; k < i; ++k) {
        sum -= static_cast<double>(xtx[static_cast<size_t>(i * d + k)]) *
               z[static_cast<size_t>(k)];
      }
      z[static_cast<size_t>(i)] = sum / xtx[static_cast<size_t>(i * d + i)];
    }
    // Backward substitution.
    for (int64_t i = d - 1; i >= 0; --i) {
      double sum = z[static_cast<size_t>(i)];
      for (int64_t k = i + 1; k < d; ++k) {
        sum -= static_cast<double>(xtx[static_cast<size_t>(k * d + i)]) *
               w[static_cast<size_t>(k * m + c)];
      }
      w[static_cast<size_t>(i * m + c)] = static_cast<float>(
          sum / xtx[static_cast<size_t>(i * d + i)]);
    }
  }
  return w;
}

Var::Var(int64_t order, float ridge) : order_(order), ridge_(ridge) {
  D2_CHECK_GE(order, 1);
}

void Var::Fit(const data::TimeSeriesDataset& dataset, int64_t train_steps) {
  D2_CHECK_GT(train_steps, order_);
  num_nodes_ = dataset.num_nodes();
  const int64_t n = num_nodes_;
  const int64_t d = order_ * n + 1;

  // Z-score statistics over the training range (zeros are kept: VAR has no
  // masking concept, matching common practice).
  const std::vector<float>& values = dataset.values.Data();
  double sum = 0.0, sum_sq = 0.0;
  const int64_t limit = train_steps * n;
  for (int64_t i = 0; i < limit; ++i) {
    sum += values[static_cast<size_t>(i)];
    sum_sq += static_cast<double>(values[static_cast<size_t>(i)]) *
              values[static_cast<size_t>(i)];
  }
  const double mean = sum / static_cast<double>(limit);
  mean_ = static_cast<float>(mean);
  std_ = static_cast<float>(std::sqrt(
      std::max(1e-12, sum_sq / static_cast<double>(limit) - mean * mean)));

  auto z = [&](int64_t t, int64_t i) {
    return (values[static_cast<size_t>(t * n + i)] - mean_) / std_;
  };

  // Accumulate X^T X and X^T Y over rows t = p..train_steps-1, where
  // x_t = [x_{t-1}, ..., x_{t-p}, 1].
  std::vector<double> xtx(static_cast<size_t>(d * d), 0.0);
  std::vector<double> xty(static_cast<size_t>(d * n), 0.0);
  std::vector<float> row(static_cast<size_t>(d));
  for (int64_t t = order_; t < train_steps; ++t) {
    for (int64_t l = 0; l < order_; ++l) {
      for (int64_t i = 0; i < n; ++i) {
        row[static_cast<size_t>(l * n + i)] = z(t - 1 - l, i);
      }
    }
    row[static_cast<size_t>(d - 1)] = 1.0f;
    for (int64_t a = 0; a < d; ++a) {
      const double ra = row[static_cast<size_t>(a)];
      if (ra == 0.0) continue;
      for (int64_t b = 0; b < d; ++b) {
        xtx[static_cast<size_t>(a * d + b)] += ra * row[static_cast<size_t>(b)];
      }
      for (int64_t i = 0; i < n; ++i) {
        xty[static_cast<size_t>(a * n + i)] += ra * z(t, i);
      }
    }
  }

  std::vector<float> xtx_f(xtx.begin(), xtx.end());
  std::vector<float> xty_f(xty.begin(), xty.end());
  coeffs_ = SolveRidgeNormalEquations(std::move(xtx_f), std::move(xty_f), d,
                                      n, ridge_ * static_cast<float>(train_steps));
}

Tensor Var::Predict(const data::TimeSeriesDataset& dataset,
                    const std::vector<int64_t>& window_starts,
                    int64_t input_len, int64_t output_len) const {
  D2_CHECK(!coeffs_.empty()) << "Fit must run before Predict";
  D2_CHECK_GE(input_len, order_);
  const int64_t n = num_nodes_;
  const int64_t d = order_ * n + 1;
  const int64_t s = static_cast<int64_t>(window_starts.size());
  const std::vector<float>& values = dataset.values.Data();

  std::vector<float> out(static_cast<size_t>(s * output_len * n));
  // lags[l*n + i] = z-scored value at lag l+1.
  std::vector<float> lags(static_cast<size_t>(order_ * n));
  for (int64_t w = 0; w < s; ++w) {
    const int64_t t0 = window_starts[static_cast<size_t>(w)] + input_len;
    for (int64_t l = 0; l < order_; ++l) {
      for (int64_t i = 0; i < n; ++i) {
        lags[static_cast<size_t>(l * n + i)] =
            (values[static_cast<size_t>((t0 - 1 - l) * n + i)] - mean_) /
            std_;
      }
    }
    for (int64_t h = 0; h < output_len; ++h) {
      std::vector<float> next(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        double acc = coeffs_[static_cast<size_t>((d - 1) * n + i)];  // bias
        for (int64_t f = 0; f < order_ * n; ++f) {
          acc += static_cast<double>(lags[static_cast<size_t>(f)]) *
                 coeffs_[static_cast<size_t>(f * n + i)];
        }
        next[static_cast<size_t>(i)] = static_cast<float>(acc);
        out[static_cast<size_t>((w * output_len + h) * n + i)] =
            static_cast<float>(acc) * std_ + mean_;
      }
      // Shift lags: newest prediction becomes lag 1.
      for (int64_t l = order_ - 1; l > 0; --l) {
        for (int64_t i = 0; i < n; ++i) {
          lags[static_cast<size_t>(l * n + i)] =
              lags[static_cast<size_t>((l - 1) * n + i)];
        }
      }
      for (int64_t i = 0; i < n; ++i) lags[static_cast<size_t>(i)] = next[static_cast<size_t>(i)];
    }
  }
  return Tensor({s, output_len, n, 1}, std::move(out));
}

}  // namespace d2stgnn::baselines
