#include "baselines/dcrnn.h"

#include "common/check.h"
#include "graph/transition.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

DiffusionConv::DiffusionConv(int64_t in_dim, int64_t out_dim,
                             int64_t num_matrices, Rng& rng)
    : Module("diffusion_conv"),
      num_matrices_(num_matrices),
      proj_((num_matrices + 1) * in_dim, out_dim, rng) {
  RegisterChild(&proj_);
}

Tensor DiffusionConv::Forward(const Tensor& x,
                              const std::vector<Tensor>& supports) const {
  D2_CHECK_EQ(static_cast<int64_t>(supports.size()), num_matrices_);
  std::vector<Tensor> terms;
  terms.reserve(supports.size() + 1);
  terms.push_back(x);  // identity term
  for (const Tensor& p : supports) {
    terms.push_back(MatMul(p, x));  // [N,N] or [B,N,N] both broadcast
  }
  return proj_.Forward(Concat(terms, -1));
}

DcgruCell::DcgruCell(int64_t in_dim, int64_t hidden_dim, int64_t num_matrices,
                     Rng& rng)
    : Module("dcgru_cell"),
      hidden_dim_(hidden_dim),
      gates_(in_dim + hidden_dim, 2 * hidden_dim, num_matrices, rng),
      candidate_(in_dim + hidden_dim, hidden_dim, num_matrices, rng) {
  RegisterChild(&gates_);
  RegisterChild(&candidate_);
}

Tensor DcgruCell::Forward(const Tensor& x, const Tensor& h,
                          const std::vector<Tensor>& supports) const {
  const Tensor xh = Concat({x, h}, -1);
  const Tensor ru = Sigmoid(gates_.Forward(xh, supports));
  const Tensor r = Slice(ru, -1, 0, hidden_dim_);
  const Tensor u = Slice(ru, -1, hidden_dim_, 2 * hidden_dim_);
  const Tensor c =
      Tanh(candidate_.Forward(Concat({x, Mul(r, h)}, -1), supports));
  return Add(Mul(u, h), Mul(Sub(Tensor::Scalar(1.0f), u), c));
}

Dcrnn::Dcrnn(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
             const Tensor& adjacency, int64_t max_diffusion_step, Rng& rng)
    : ForecastingModel("dcrnn"),
      num_nodes_(num_nodes),
      output_len_(output_len),
      encoder_(data::kInputFeatures, hidden_dim, 2 * max_diffusion_step, rng),
      decoder_(1, hidden_dim, 2 * max_diffusion_step, rng),
      out_proj_(hidden_dim, 1, rng) {
  RegisterChild(&encoder_);
  RegisterChild(&decoder_);
  RegisterChild(&out_proj_);
  NoGradGuard no_grad;
  for (const Tensor& p : {graph::ForwardTransition(adjacency),
                          graph::BackwardTransition(adjacency)}) {
    for (const Tensor& power : graph::TransitionPowers(p, max_diffusion_step)) {
      supports_.push_back(power);
    }
  }
}

Tensor Dcrnn::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);

  Tensor h = Tensor::Zeros({b, num_nodes_, encoder_.hidden_dim()});
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor frame =
        Reshape(Slice(batch.x, 1, t, t + 1), {b, num_nodes_, data::kInputFeatures});
    h = encoder_.Forward(frame, h, supports_);
  }

  // Autoregressive decoding (GO symbol = zeros, as in the official code's
  // inference mode).
  Tensor prev = Tensor::Zeros({b, num_nodes_, 1});
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(output_len_));
  for (int64_t f = 0; f < output_len_; ++f) {
    h = decoder_.Forward(prev, h, supports_);
    prev = out_proj_.Forward(h);  // [B, N, 1]
    outputs.push_back(prev);
  }
  return Stack(outputs, 1);  // [B, Tf, N, 1]
}

}  // namespace d2stgnn::baselines
