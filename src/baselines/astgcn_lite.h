#ifndef D2STGNN_BASELINES_ASTGCN_LITE_H_
#define D2STGNN_BASELINES_ASTGCN_LITE_H_

#include <memory>

#include "common/rng.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// ASTGCN baseline (Guo et al. 2019), lite variant: a spatial attention that
/// reweights the road adjacency and a temporal attention that reweights the
/// input steps, followed by a graph convolution and a causal temporal
/// convolution with a residual connection, then a direct multi-step head.
/// "Lite" = one ST block and only the recent-history component (no
/// daily/weekly periodic branches; see DESIGN.md).
class AstgcnLite : public train::ForecastingModel {
 public:
  AstgcnLite(int64_t num_nodes, int64_t hidden_dim, int64_t input_len,
             int64_t output_len, const Tensor& adjacency, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  int64_t num_nodes_;
  int64_t hidden_dim_;
  int64_t output_len_;
  Tensor adjacency_;  // row-normalized
  nn::Linear input_proj_;
  nn::Linear sp_feat_;   // [T*h] -> h, per node
  nn::Linear sp_q_, sp_k_;
  nn::Linear tp_feat_;   // [N*h] -> h, per step
  nn::Linear tp_q_, tp_k_;
  nn::Linear gcn_;
  nn::Linear temporal_now_, temporal_past_;
  nn::Linear out_fc1_, out_fc2_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_ASTGCN_LITE_H_
