#include "baselines/stsgcn_lite.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {
namespace {

// Builds STSGCN's localized spatial-temporal graph for 3 consecutive steps:
// diagonal blocks are A + I (spatial edges within a step), off-diagonal
// blocks between adjacent steps are I (a node connected to itself one step
// away). Row-normalized.
Tensor BuildBlockAdjacency(const Tensor& adjacency) {
  const int64_t n = adjacency.size(0);
  const int64_t m = 3 * n;
  std::vector<float> block(static_cast<size_t>(m * m), 0.0f);
  const std::vector<float>& a = adjacency.Data();
  for (int64_t s = 0; s < 3; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      // Spatial edges + self loop inside step s.
      for (int64_t j = 0; j < n; ++j) {
        float w = a[static_cast<size_t>(i * n + j)];
        if (i == j) w += 1.0f;
        block[static_cast<size_t>((s * n + i) * m + s * n + j)] = w;
      }
      // Temporal self-edges to adjacent steps.
      if (s > 0) {
        block[static_cast<size_t>((s * n + i) * m + (s - 1) * n + i)] = 1.0f;
      }
      if (s < 2) {
        block[static_cast<size_t>((s * n + i) * m + (s + 1) * n + i)] = 1.0f;
      }
    }
  }
  // Row-normalize.
  for (int64_t r = 0; r < m; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < m; ++c) sum += block[static_cast<size_t>(r * m + c)];
    if (sum > 0.0f) {
      for (int64_t c = 0; c < m; ++c) {
        block[static_cast<size_t>(r * m + c)] /= sum;
      }
    }
  }
  return Tensor({m, m}, std::move(block));
}

}  // namespace

StsgcnLite::StsgcnLite(int64_t num_nodes, int64_t hidden_dim,
                       int64_t input_len, int64_t output_len,
                       const Tensor& adjacency, Rng& rng)
    : ForecastingModel("stsgcn"),
      num_nodes_(num_nodes),
      hidden_dim_(hidden_dim),
      input_len_(input_len),
      output_len_(output_len),
      input_proj_(data::kInputFeatures, hidden_dim, rng) {
  D2_CHECK_GT(input_len - 2 * kModules, 0)
      << "input too short for " << kModules << " STSGCN modules";
  RegisterChild(&input_proj_);
  block_adjacency_ = BuildBlockAdjacency(adjacency);
  for (int64_t mod = 0; mod < kModules; ++mod) {
    gcn1_.push_back(std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng));
    gcn2_.push_back(std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng));
    RegisterChild(gcn1_.back().get());
    RegisterChild(gcn2_.back().get());
  }
  const int64_t remaining = input_len - 2 * kModules;
  for (int64_t h = 0; h < output_len; ++h) {
    heads_.push_back(std::make_unique<nn::Linear>(remaining * hidden_dim, 1, rng));
    RegisterChild(heads_.back().get());
  }
}

Tensor StsgcnLite::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  D2_CHECK_EQ(batch.input_len, input_len_);
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);

  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]
  int64_t steps = input_len_;
  for (int64_t mod = 0; mod < kModules; ++mod) {
    std::vector<Tensor> outputs;
    outputs.reserve(static_cast<size_t>(steps - 2));
    for (int64_t t = 1; t + 1 < steps; ++t) {
      // Crop 3 consecutive steps and flatten to the block graph.
      const Tensor crop = Reshape(Slice(x, 1, t - 1, t + 2),
                                  {b, 3 * num_nodes_, hidden_dim_});
      Tensor h = Relu(gcn1_[static_cast<size_t>(mod)]->Forward(
          MatMul(block_adjacency_, crop)));
      h = Relu(gcn2_[static_cast<size_t>(mod)]->Forward(
          MatMul(block_adjacency_, h)));
      // Aggregate by cropping the middle step's block.
      outputs.push_back(
          Slice(h, 1, num_nodes_, 2 * num_nodes_));  // [B, N, h]
    }
    x = Stack(outputs, 1);  // [B, steps-2, N, h]
    steps -= 2;
  }

  // Per-horizon heads over the flattened remaining sequence.
  const Tensor flat = Reshape(Permute(x, {0, 2, 1, 3}),
                              {b, num_nodes_, steps * hidden_dim_});
  std::vector<Tensor> horizon_out;
  horizon_out.reserve(static_cast<size_t>(output_len_));
  for (int64_t h = 0; h < output_len_; ++h) {
    horizon_out.push_back(
        heads_[static_cast<size_t>(h)]->Forward(flat));  // [B, N, 1]
  }
  return Stack(horizon_out, 1);  // [B, Tf, N, 1]
}

}  // namespace d2stgnn::baselines
