#include "baselines/registry.h"

#include "baselines/astgcn_lite.h"
#include "baselines/dcrnn.h"
#include "baselines/dgcrn.h"
#include "baselines/fc_lstm.h"
#include "baselines/gman_lite.h"
#include "baselines/graph_wavenet.h"
#include "baselines/mtgnn_lite.h"
#include "baselines/stgcn.h"
#include "baselines/stsgcn_lite.h"
#include "common/check.h"
#include "core/d2stgnn.h"

namespace d2stgnn::baselines {

core::D2StgnnConfig ToD2Config(const ModelConfig& c) {
  core::D2StgnnConfig config;
  config.num_nodes = c.num_nodes;
  config.input_len = c.input_len;
  config.output_len = c.output_len;
  config.hidden_dim = c.hidden_dim;
  config.embed_dim = c.embed_dim;
  config.num_layers = c.num_layers;
  config.steps_per_day = c.steps_per_day;
  config.num_heads = c.hidden_dim >= 4 ? 4 : 1;
  return config;
}

std::vector<std::string> DeepModelNames() {
  return {"FC-LSTM", "DCRNN", "STGCN", "GWNet",  "ASTGCN",
          "STSGCN",  "MTGNN", "GMAN",  "DGCRN",  "D2STGNN"};
}

std::vector<std::string> AllModelNames() {
  std::vector<std::string> names = DeepModelNames();
  names.push_back("DGCRN-static");
  names.push_back("D2STGNN-static");
  names.push_back("D2STGNN-coupled");
  return names;
}

std::unique_ptr<train::ForecastingModel> MakeModel(const std::string& name,
                                                   const ModelConfig& config,
                                                   const Tensor& adjacency,
                                                   Rng& rng) {
  D2_CHECK_GT(config.num_nodes, 0);
  if (name == "FC-LSTM") {
    return std::make_unique<FcLstm>(config.num_nodes, 4 * config.hidden_dim,
                                    config.output_len, rng);
  }
  if (name == "DCRNN") {
    return std::make_unique<Dcrnn>(config.num_nodes, config.hidden_dim,
                                   config.output_len, adjacency,
                                   /*max_diffusion_step=*/2, rng);
  }
  if (name == "STGCN") {
    return std::make_unique<Stgcn>(config.num_nodes, config.hidden_dim,
                                   config.output_len, adjacency,
                                   /*num_blocks=*/2, rng);
  }
  if (name == "GWNet") {
    GraphWaveNet::Options options;
    options.hidden_dim = config.hidden_dim;
    options.skip_dim = 2 * config.hidden_dim;
    options.embed_dim = config.embed_dim;
    return std::make_unique<GraphWaveNet>(config.num_nodes, config.output_len,
                                          adjacency, options, rng);
  }
  if (name == "ASTGCN") {
    return std::make_unique<AstgcnLite>(config.num_nodes, config.hidden_dim,
                                        config.input_len, config.output_len,
                                        adjacency, rng);
  }
  if (name == "STSGCN") {
    return std::make_unique<StsgcnLite>(config.num_nodes, config.hidden_dim,
                                        config.input_len, config.output_len,
                                        adjacency, rng);
  }
  if (name == "MTGNN") {
    return std::make_unique<MtgnnLite>(config.num_nodes, config.hidden_dim,
                                       config.output_len, config.embed_dim,
                                       rng);
  }
  if (name == "GMAN") {
    return std::make_unique<GmanLite>(config.num_nodes, config.hidden_dim,
                                      config.output_len, config.steps_per_day,
                                      rng);
  }
  if (name == "DGCRN") {
    return std::make_unique<Dgcrn>(config.num_nodes, config.hidden_dim,
                                   config.input_len, config.output_len,
                                   adjacency, /*max_diffusion_step=*/2,
                                   /*dynamic=*/true, rng);
  }
  if (name == "DGCRN-static") {
    return std::make_unique<Dgcrn>(config.num_nodes, config.hidden_dim,
                                   config.input_len, config.output_len,
                                   adjacency, /*max_diffusion_step=*/2,
                                   /*dynamic=*/false, rng);
  }
  if (name == "D2STGNN") {
    return std::make_unique<core::D2Stgnn>(ToD2Config(config), adjacency,
                                           rng);
  }
  if (name == "D2STGNN-static") {
    return std::make_unique<core::D2Stgnn>(
        core::MakeStaticGraphConfig(ToD2Config(config)), adjacency, rng);
  }
  if (name == "D2STGNN-coupled") {
    return std::make_unique<core::D2Stgnn>(
        core::MakeCoupledConfig(ToD2Config(config)), adjacency, rng);
  }
  D2_CHECK(false) << "unknown model name: " << name;
  return nullptr;
}

}  // namespace d2stgnn::baselines
