#include "baselines/historical_average.h"

#include "common/check.h"

namespace d2stgnn::baselines {

void HistoricalAverage::Fit(const data::TimeSeriesDataset& dataset,
                            int64_t train_steps) {
  D2_CHECK_GT(train_steps, 0);
  D2_CHECK_LE(train_steps, dataset.num_steps());
  num_nodes_ = dataset.num_nodes();
  steps_per_day_ = dataset.steps_per_day;
  slots_per_week_ = dataset.steps_per_day * 7;
  slot_mean_.assign(static_cast<size_t>(slots_per_week_ * num_nodes_), 0.0f);
  std::vector<int64_t> slot_count(
      static_cast<size_t>(slots_per_week_ * num_nodes_), 0);
  // Time-of-day fallback for weekly slots never observed in a short
  // training range.
  std::vector<float> tod_mean(
      static_cast<size_t>(steps_per_day_ * num_nodes_), 0.0f);
  std::vector<int64_t> tod_count(
      static_cast<size_t>(steps_per_day_ * num_nodes_), 0);

  const std::vector<float>& values = dataset.values.Data();
  double total = 0.0;
  int64_t total_count = 0;
  for (int64_t t = 0; t < train_steps; ++t) {
    const int64_t tod = dataset.TimeOfDay(t);
    const int64_t slot = dataset.DayOfWeek(t) * steps_per_day_ + tod;
    for (int64_t i = 0; i < num_nodes_; ++i) {
      const float v = values[static_cast<size_t>(t * num_nodes_ + i)];
      if (v == 0.0f) continue;  // sensor failure
      const size_t cell = static_cast<size_t>(slot * num_nodes_ + i);
      slot_mean_[cell] += v;
      ++slot_count[cell];
      const size_t tod_cell = static_cast<size_t>(tod * num_nodes_ + i);
      tod_mean[tod_cell] += v;
      ++tod_count[tod_cell];
      total += v;
      ++total_count;
    }
  }
  D2_CHECK_GT(total_count, 0);
  global_mean_ = static_cast<float>(total / static_cast<double>(total_count));
  for (size_t c = 0; c < tod_mean.size(); ++c) {
    tod_mean[c] = tod_count[c] > 0
                      ? tod_mean[c] / static_cast<float>(tod_count[c])
                      : global_mean_;
  }
  for (int64_t slot = 0; slot < slots_per_week_; ++slot) {
    for (int64_t i = 0; i < num_nodes_; ++i) {
      const size_t cell = static_cast<size_t>(slot * num_nodes_ + i);
      if (slot_count[cell] > 0) {
        slot_mean_[cell] /= static_cast<float>(slot_count[cell]);
      } else {
        slot_mean_[cell] = tod_mean[static_cast<size_t>(
            (slot % steps_per_day_) * num_nodes_ + i)];
      }
    }
  }
}

Tensor HistoricalAverage::Predict(const data::TimeSeriesDataset& dataset,
                                  const std::vector<int64_t>& window_starts,
                                  int64_t input_len,
                                  int64_t output_len) const {
  D2_CHECK_GT(slots_per_week_, 0) << "Fit must run before Predict";
  D2_CHECK_EQ(dataset.num_nodes(), num_nodes_);
  const int64_t s = static_cast<int64_t>(window_starts.size());
  std::vector<float> out(static_cast<size_t>(s * output_len * num_nodes_));
  for (int64_t w = 0; w < s; ++w) {
    for (int64_t h = 0; h < output_len; ++h) {
      const int64_t t = window_starts[static_cast<size_t>(w)] + input_len + h;
      const int64_t slot =
          dataset.DayOfWeek(t) * dataset.steps_per_day + dataset.TimeOfDay(t);
      for (int64_t i = 0; i < num_nodes_; ++i) {
        out[static_cast<size_t>((w * output_len + h) * num_nodes_ + i)] =
            slot_mean_[static_cast<size_t>(slot * num_nodes_ + i)];
      }
    }
  }
  return Tensor({s, output_len, num_nodes_, 1}, std::move(out));
}

}  // namespace d2stgnn::baselines
