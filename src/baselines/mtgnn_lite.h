#ifndef D2STGNN_BASELINES_MTGNN_LITE_H_
#define D2STGNN_BASELINES_MTGNN_LITE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// MTGNN baseline (Wu et al. 2020), lite variant: a uni-directional learned
/// graph A = softmax(relu(tanh(alpha(M1 M2^T - M2 M1^T)))) feeding mix-hop
/// propagation layers, interleaved with dilated inception temporal
/// convolutions (kernels 2 and 3), residual/skip connections, and a direct
/// multi-step output. "Lite" = 2 layers, no top-k sparsification (see
/// DESIGN.md).
class MtgnnLite : public train::ForecastingModel {
 public:
  MtgnnLite(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
            int64_t embed_dim, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

  /// The learned adjacency (for tests).
  Tensor LearnedAdjacency() const;

 private:
  struct Layer {
    std::unique_ptr<nn::Linear> incep2_now, incep2_past;   // kernel-2 branch
    std::unique_ptr<nn::Linear> incep3_now, incep3_mid, incep3_past;
    std::unique_ptr<nn::Linear> gate_now, gate_past;
    std::unique_ptr<nn::Linear> mixhop_out;  // (K+1)*h -> h
    std::unique_ptr<nn::Linear> skip;
  };

  int64_t num_nodes_;
  int64_t hidden_dim_;
  int64_t output_len_;
  Tensor m1_, m2_;  // graph-learning node embeddings
  nn::Linear input_proj_;
  std::vector<Layer> layers_;
  nn::Linear out_fc1_, out_fc2_;
  static constexpr int64_t kMixHops = 2;
  static constexpr float kRetain = 0.05f;  // mix-hop beta
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_MTGNN_LITE_H_
