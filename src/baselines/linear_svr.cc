#include "baselines/linear_svr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace d2stgnn::baselines {

LinearSvr::LinearSvr(const Options& options) : options_(options) {}

void LinearSvr::Fit(const data::TimeSeriesDataset& dataset,
                    int64_t train_steps, int64_t input_len,
                    int64_t output_len) {
  D2_CHECK_GT(train_steps, input_len + output_len);
  input_len_ = input_len;
  output_len_ = output_len;
  const int64_t n = dataset.num_nodes();
  const std::vector<float>& values = dataset.values.Data();

  // Z-score statistics over the training range.
  double sum = 0.0, sum_sq = 0.0;
  const int64_t limit = train_steps * n;
  for (int64_t i = 0; i < limit; ++i) {
    sum += values[static_cast<size_t>(i)];
    sum_sq += static_cast<double>(values[static_cast<size_t>(i)]) *
              values[static_cast<size_t>(i)];
  }
  const double mean = sum / static_cast<double>(limit);
  mean_ = static_cast<float>(mean);
  std_ = static_cast<float>(std::sqrt(
      std::max(1e-12, sum_sq / static_cast<double>(limit) - mean * mean)));

  const int64_t feat = input_len + 1;
  weights_.assign(static_cast<size_t>(output_len * feat), 0.0f);
  Rng rng(options_.seed);
  const int64_t num_windows = train_steps - input_len - output_len + 1;
  const int64_t samples_per_epoch =
      std::min<int64_t>(options_.max_samples, num_windows * n);

  std::vector<float> x(static_cast<size_t>(feat));
  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const float lr = options_.learning_rate /
                     (1.0f + 0.5f * static_cast<float>(epoch));
    for (int64_t s = 0; s < samples_per_epoch; ++s) {
      const int64_t w = rng.UniformInt(num_windows);
      const int64_t node = rng.UniformInt(n);
      for (int64_t t = 0; t < input_len; ++t) {
        x[static_cast<size_t>(t)] =
            (values[static_cast<size_t>((w + t) * n + node)] - mean_) / std_;
      }
      x[static_cast<size_t>(input_len)] = 1.0f;  // bias feature
      for (int64_t h = 0; h < output_len; ++h) {
        const float target =
            (values[static_cast<size_t>((w + input_len + h) * n + node)] -
             mean_) /
            std_;
        float* wt = weights_.data() + h * feat;
        double pred = 0.0;
        for (int64_t f = 0; f < feat; ++f) pred += wt[f] * x[static_cast<size_t>(f)];
        const float err = static_cast<float>(pred) - target;
        // Subgradient of the epsilon-insensitive loss + L2.
        float sign = 0.0f;
        if (err > options_.epsilon) sign = 1.0f;
        if (err < -options_.epsilon) sign = -1.0f;
        for (int64_t f = 0; f < feat; ++f) {
          wt[f] -= lr * (sign * x[static_cast<size_t>(f)] +
                         options_.l2 * wt[f]);
        }
      }
    }
  }
}

Tensor LinearSvr::Predict(const data::TimeSeriesDataset& dataset,
                          const std::vector<int64_t>& window_starts,
                          int64_t input_len, int64_t output_len) const {
  D2_CHECK_EQ(input_len, input_len_);
  D2_CHECK_EQ(output_len, output_len_);
  const int64_t n = dataset.num_nodes();
  const int64_t s = static_cast<int64_t>(window_starts.size());
  const int64_t feat = input_len + 1;
  const std::vector<float>& values = dataset.values.Data();

  std::vector<float> out(static_cast<size_t>(s * output_len * n));
  std::vector<float> x(static_cast<size_t>(feat));
  for (int64_t w = 0; w < s; ++w) {
    const int64_t start = window_starts[static_cast<size_t>(w)];
    for (int64_t node = 0; node < n; ++node) {
      for (int64_t t = 0; t < input_len; ++t) {
        x[static_cast<size_t>(t)] =
            (values[static_cast<size_t>((start + t) * n + node)] - mean_) /
            std_;
      }
      x[static_cast<size_t>(input_len)] = 1.0f;
      for (int64_t h = 0; h < output_len; ++h) {
        const float* wt = weights_.data() + h * feat;
        double pred = 0.0;
        for (int64_t f = 0; f < feat; ++f) pred += wt[f] * x[static_cast<size_t>(f)];
        out[static_cast<size_t>((w * output_len + h) * n + node)] =
            static_cast<float>(pred) * std_ + mean_;
      }
    }
  }
  return Tensor({s, output_len, n, 1}, std::move(out));
}

}  // namespace d2stgnn::baselines
