#ifndef D2STGNN_BASELINES_DGCRN_H_
#define D2STGNN_BASELINES_DGCRN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "baselines/dcrnn.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// DGCRN baseline (Li et al. 2021), lite variant: the DCRNN seq2seq
/// backbone whose transition matrices are made dynamic by a hyper-network —
/// an attention mask computed from the input window's per-node features
/// filters the static transitions (one dynamic graph per window rather than
/// per recurrence step; see DESIGN.md). Setting `dynamic = false` yields
/// DGCRN†, the static-graph variant of the paper's Table 4.
class Dgcrn : public train::ForecastingModel {
 public:
  Dgcrn(int64_t num_nodes, int64_t hidden_dim, int64_t input_len,
        int64_t output_len, const Tensor& adjacency,
        int64_t max_diffusion_step, bool dynamic, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

  bool dynamic() const { return dynamic_; }

 private:
  int64_t num_nodes_;
  int64_t output_len_;
  int64_t max_diffusion_step_;
  bool dynamic_;
  Tensor p_forward_, p_backward_;  // static [N, N]
  std::vector<Tensor> static_supports_;
  // Hyper-network generating the dynamic filter.
  std::unique_ptr<nn::Linear> hyper_fc_;  // T -> h
  std::unique_ptr<nn::Linear> hyper_q_, hyper_k_;
  DcgruCell encoder_;
  DcgruCell decoder_;
  nn::Linear out_proj_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_DGCRN_H_
