#ifndef D2STGNN_BASELINES_FC_LSTM_H_
#define D2STGNN_BASELINES_FC_LSTM_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/lstm_cell.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// FC-LSTM baseline (paper Sec. 6.1; Sutskever et al. 2014): an
/// encoder-decoder LSTM whose fully connected input is the concatenation of
/// all sensors. Captures temporal dependency only — no use of the road
/// graph — so it trails the spatial-temporal models.
class FcLstm : public train::ForecastingModel {
 public:
  FcLstm(int64_t num_nodes, int64_t hidden_dim, int64_t output_len, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  int64_t num_nodes_;
  int64_t output_len_;
  nn::LstmCell encoder_;
  nn::LstmCell decoder_;
  nn::Linear out_proj_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_FC_LSTM_H_
