#include "baselines/astgcn_lite.h"

#include <cmath>

#include "common/check.h"
#include "graph/transition.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

AstgcnLite::AstgcnLite(int64_t num_nodes, int64_t hidden_dim,
                       int64_t input_len, int64_t output_len,
                       const Tensor& adjacency, Rng& rng)
    : ForecastingModel("astgcn"),
      num_nodes_(num_nodes),
      hidden_dim_(hidden_dim),
      output_len_(output_len),
      input_proj_(data::kInputFeatures, hidden_dim, rng),
      sp_feat_(input_len * hidden_dim, hidden_dim, rng),
      sp_q_(hidden_dim, hidden_dim, rng),
      sp_k_(hidden_dim, hidden_dim, rng),
      tp_feat_(num_nodes * hidden_dim, hidden_dim, rng),
      tp_q_(hidden_dim, hidden_dim, rng),
      tp_k_(hidden_dim, hidden_dim, rng),
      gcn_(hidden_dim, hidden_dim, rng),
      temporal_now_(hidden_dim, hidden_dim, rng),
      temporal_past_(hidden_dim, hidden_dim, rng),
      out_fc1_(hidden_dim, hidden_dim, rng),
      out_fc2_(hidden_dim, output_len, rng) {
  for (nn::Module* child :
       {static_cast<nn::Module*>(&input_proj_), static_cast<nn::Module*>(&sp_feat_),
        static_cast<nn::Module*>(&sp_q_), static_cast<nn::Module*>(&sp_k_),
        static_cast<nn::Module*>(&tp_feat_), static_cast<nn::Module*>(&tp_q_),
        static_cast<nn::Module*>(&tp_k_), static_cast<nn::Module*>(&gcn_),
        static_cast<nn::Module*>(&temporal_now_),
        static_cast<nn::Module*>(&temporal_past_),
        static_cast<nn::Module*>(&out_fc1_), static_cast<nn::Module*>(&out_fc2_)}) {
    RegisterChild(child);
  }
  NoGradGuard no_grad;
  adjacency_ = graph::ForwardTransition(adjacency);
}

Tensor AstgcnLite::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim_));

  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]

  // Temporal attention E over the steps (per batch element).
  {
    const Tensor per_step =
        Reshape(x, {b, steps, num_nodes_ * hidden_dim_});  // [B, T, N*h]
    const Tensor feat = Relu(tp_feat_.Forward(per_step));  // [B, T, h]
    const Tensor scores = Softmax(
        MulScalar(MatMul(tp_q_.Forward(feat),
                         Transpose(tp_k_.Forward(feat), -1, -2)),
                  scale),
        -1);  // [B, T, T]
    // Reweight the steps: x'[t] = sum_s E[t,s] x[s].
    const Tensor flat = Reshape(x, {b, steps, num_nodes_ * hidden_dim_});
    x = Reshape(MatMul(scores, flat), {b, steps, num_nodes_, hidden_dim_});
  }

  // Spatial attention S masks the road adjacency.
  Tensor attended_adj;
  {
    const Tensor per_node = Reshape(Permute(x, {0, 2, 1, 3}),
                                    {b, num_nodes_, steps * hidden_dim_});
    const Tensor feat = Relu(sp_feat_.Forward(per_node));  // [B, N, h]
    const Tensor scores = Softmax(
        MulScalar(MatMul(sp_q_.Forward(feat),
                         Transpose(sp_k_.Forward(feat), -1, -2)),
                  scale),
        -1);  // [B, N, N]
    attended_adj = Mul(Unsqueeze(adjacency_, 0), scores);  // [B, N, N]
  }

  // Graph convolution with the attention-masked adjacency, per step.
  const Tensor conv =
      Relu(gcn_.Forward(MatMul(Unsqueeze(attended_adj, 1), x)));

  // Causal temporal convolution (kernel 2) + residual.
  const Tensor past = Slice(PadFront(conv, 1, 1), 1, 0, steps);
  Tensor h = Relu(Add(temporal_now_.Forward(conv),
                      temporal_past_.Forward(past)));
  h = Add(h, x);

  // Direct multi-step head from the last frame.
  const Tensor last =
      Reshape(Slice(h, 1, steps - 1, steps), {b, num_nodes_, hidden_dim_});
  Tensor out = out_fc2_.Forward(Relu(out_fc1_.Forward(last)));  // [B, N, Tf]
  out = Permute(out, {0, 2, 1});
  return Reshape(out, {b, output_len_, num_nodes_, 1});
}

}  // namespace d2stgnn::baselines
