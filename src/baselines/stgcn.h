#ifndef D2STGNN_BASELINES_STGCN_H_
#define D2STGNN_BASELINES_STGCN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// STGCN baseline (Yu et al. 2018; row "STGCN" of the paper's Table 3):
/// sandwich ST-Conv blocks of temporal gated convolutions (GLU) around a
/// spectral-style graph convolution on the symmetrically normalized
/// adjacency with self-loops, followed by an output head that regresses all
/// horizons at once.
class Stgcn : public train::ForecastingModel {
 public:
  Stgcn(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
        const Tensor& adjacency, int64_t num_blocks, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  struct Block {
    // Temporal gated conv #1 (kernel 2): value and gate branches.
    std::unique_ptr<nn::Linear> t1_value_now, t1_value_past;
    std::unique_ptr<nn::Linear> t1_gate_now, t1_gate_past;
    // Spatial graph convolution.
    std::unique_ptr<nn::Linear> spatial;
    // Temporal gated conv #2.
    std::unique_ptr<nn::Linear> t2_value_now, t2_value_past;
    std::unique_ptr<nn::Linear> t2_gate_now, t2_gate_past;
  };

  Tensor GatedTemporal(const Tensor& x, const nn::Linear& value_now,
                       const nn::Linear& value_past,
                       const nn::Linear& gate_now,
                       const nn::Linear& gate_past) const;

  int64_t num_nodes_;
  int64_t output_len_;
  Tensor normalized_adj_;  // \hat{A} = D^{-1/2} (A + I) D^{-1/2}
  nn::Linear input_proj_;
  std::vector<Block> blocks_;
  nn::Linear out_fc1_;
  nn::Linear out_fc2_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_STGCN_H_
