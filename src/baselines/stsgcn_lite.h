#ifndef D2STGNN_BASELINES_STSGCN_LITE_H_
#define D2STGNN_BASELINES_STSGCN_LITE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// STSGCN baseline (Song et al. 2020), lite variant: captures localized
/// spatial-temporal correlations synchronously by convolving over a
/// spatial-temporal block graph A_st of 3 consecutive steps (each node
/// connected to its spatial neighbours in the same step and to itself in
/// the adjacent steps). Each module shrinks the sequence by 2; per-horizon
/// output heads regress the future. "Lite" = 2 modules, single aggregation
/// per module (see DESIGN.md).
class StsgcnLite : public train::ForecastingModel {
 public:
  StsgcnLite(int64_t num_nodes, int64_t hidden_dim, int64_t input_len,
             int64_t output_len, const Tensor& adjacency, Rng& rng);

  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return output_len_; }

 private:
  int64_t num_nodes_;
  int64_t hidden_dim_;
  int64_t input_len_;
  int64_t output_len_;
  Tensor block_adjacency_;  // [3N, 3N], row-normalized
  nn::Linear input_proj_;
  std::vector<std::unique_ptr<nn::Linear>> gcn1_;  // per module
  std::vector<std::unique_ptr<nn::Linear>> gcn2_;
  std::vector<std::unique_ptr<nn::Linear>> heads_;  // per horizon
  static constexpr int64_t kModules = 2;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_STSGCN_LITE_H_
