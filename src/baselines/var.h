#ifndef D2STGNN_BASELINES_VAR_H_
#define D2STGNN_BASELINES_VAR_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace d2stgnn::baselines {

/// Vector Auto-Regression baseline (paper Sec. 6.1):
///   x_t = c + sum_{l=1..p} A_l x_{t-l} + noise
/// fit jointly over all sensors by ridge-regularized least squares (normal
/// equations + Cholesky). Multi-step forecasts are produced recursively.
/// Captures linear spatial-temporal correlations but no non-linearity —
/// the paper's motivation for deep models.
class Var {
 public:
  /// `order` is p; `ridge` the Tikhonov strength keeping the normal
  /// equations well conditioned.
  explicit Var(int64_t order = 3, float ridge = 1e-2f);

  /// Fits on steps [0, train_steps) of the dataset (z-scored internally).
  void Fit(const data::TimeSeriesDataset& dataset, int64_t train_steps);

  /// Recursive multi-step forecast for each window. Returns
  /// [num_starts, output_len, N, 1] in original units.
  Tensor Predict(const data::TimeSeriesDataset& dataset,
                 const std::vector<int64_t>& window_starts, int64_t input_len,
                 int64_t output_len) const;

 private:
  int64_t order_;
  float ridge_;
  int64_t num_nodes_ = 0;
  float mean_ = 0.0f;
  float std_ = 1.0f;
  /// Stacked coefficients, [(p*N + 1) x N]: rows are lag-1 node block, ...,
  /// lag-p node block, intercept.
  std::vector<float> coeffs_;
};

/// Solves (X^T X + ridge*I) W = X^T Y for W via Cholesky decomposition.
/// `xtx` is [d, d] row-major (destroyed), `xty` is [d, m] row-major.
/// Exposed for testing.
std::vector<float> SolveRidgeNormalEquations(std::vector<float> xtx,
                                             std::vector<float> xty,
                                             int64_t d, int64_t m,
                                             float ridge);

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_VAR_H_
