#include "baselines/dgcrn.h"

#include <cmath>

#include "common/check.h"
#include "graph/transition.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

Dgcrn::Dgcrn(int64_t num_nodes, int64_t hidden_dim, int64_t input_len,
             int64_t output_len, const Tensor& adjacency,
             int64_t max_diffusion_step, bool dynamic, Rng& rng)
    : ForecastingModel(dynamic ? "dgcrn" : "dgcrn_static"),
      num_nodes_(num_nodes),
      output_len_(output_len),
      max_diffusion_step_(max_diffusion_step),
      dynamic_(dynamic),
      encoder_(data::kInputFeatures, hidden_dim, 2 * max_diffusion_step, rng),
      decoder_(1, hidden_dim, 2 * max_diffusion_step, rng),
      out_proj_(hidden_dim, 1, rng) {
  RegisterChild(&encoder_);
  RegisterChild(&decoder_);
  RegisterChild(&out_proj_);
  {
    NoGradGuard no_grad;
    p_forward_ = graph::ForwardTransition(adjacency);
    p_backward_ = graph::BackwardTransition(adjacency);
    for (const Tensor& p : {p_forward_, p_backward_}) {
      for (const Tensor& power :
           graph::TransitionPowers(p, max_diffusion_step)) {
        static_supports_.push_back(power);
      }
    }
  }
  if (dynamic_) {
    hyper_fc_ = std::make_unique<nn::Linear>(
        input_len * data::kInputFeatures, hidden_dim, rng);
    hyper_q_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    hyper_k_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    RegisterChild(hyper_fc_.get());
    RegisterChild(hyper_q_.get());
    RegisterChild(hyper_k_.get());
  }
}

Tensor Dgcrn::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);

  std::vector<Tensor> supports;
  if (dynamic_) {
    // Hyper-network: per-node features of the window -> attention mask ->
    // dynamic transitions (then their powers).
    const Tensor per_node = Reshape(Permute(batch.x, {0, 2, 1, 3}),
                                    {b, num_nodes_, steps * data::kInputFeatures});
    const Tensor feat = Relu(hyper_fc_->Forward(per_node));   // [B, N, h]
    const Tensor q = hyper_q_->Forward(feat);
    const Tensor k = hyper_k_->Forward(feat);
    const float scale =
        1.0f / std::sqrt(static_cast<float>(q.size(-1)));
    const Tensor mask =
        Softmax(MulScalar(MatMul(q, Transpose(k, -1, -2)), scale), -1);
    for (const Tensor& p : {p_forward_, p_backward_}) {
      const Tensor dyn = Mul(Unsqueeze(p, 0), mask);  // [B, N, N]
      for (const Tensor& power :
           graph::TransitionPowers(dyn, max_diffusion_step_)) {
        supports.push_back(power);
      }
    }
  } else {
    supports = static_supports_;
  }

  Tensor h = Tensor::Zeros({b, num_nodes_, encoder_.hidden_dim()});
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor frame =
        Reshape(Slice(batch.x, 1, t, t + 1), {b, num_nodes_, data::kInputFeatures});
    h = encoder_.Forward(frame, h, supports);
  }

  Tensor prev = Tensor::Zeros({b, num_nodes_, 1});
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<size_t>(output_len_));
  for (int64_t f = 0; f < output_len_; ++f) {
    h = decoder_.Forward(prev, h, supports);
    prev = out_proj_.Forward(h);
    outputs.push_back(prev);
  }
  return Stack(outputs, 1);
}

}  // namespace d2stgnn::baselines
