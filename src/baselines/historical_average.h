#ifndef D2STGNN_BASELINES_HISTORICAL_AVERAGE_H_
#define D2STGNN_BASELINES_HISTORICAL_AVERAGE_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace d2stgnn::baselines {

/// Historical Average baseline (paper Sec. 6.1): models traffic as a weekly
/// periodic process and predicts the average of the same weekly slot seen in
/// the training range. Missing readings (zeros) are excluded from the
/// averages.
class HistoricalAverage {
 public:
  /// Learns per-(weekly slot, node) averages from steps [0, train_steps).
  void Fit(const data::TimeSeriesDataset& dataset, int64_t train_steps);

  /// Predicts the `output_len` steps following each window start + input
  /// length. Returns [num_starts, output_len, N, 1] in original units.
  Tensor Predict(const data::TimeSeriesDataset& dataset,
                 const std::vector<int64_t>& window_starts, int64_t input_len,
                 int64_t output_len) const;

 private:
  int64_t slots_per_week_ = 0;
  int64_t steps_per_day_ = 0;
  int64_t num_nodes_ = 0;
  std::vector<float> slot_mean_;  // [slots_per_week, N]
  float global_mean_ = 0.0f;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_HISTORICAL_AVERAGE_H_
