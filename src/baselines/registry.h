#ifndef D2STGNN_BASELINES_REGISTRY_H_
#define D2STGNN_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/d2stgnn.h"
#include "tensor/tensor.h"
#include "train/forecasting_model.h"

namespace d2stgnn::baselines {

/// Shared sizing knobs for the deep models built by MakeModel. Defaults are
/// bench-scale; the paper-scale values are noted in DESIGN.md.
struct ModelConfig {
  int64_t num_nodes = 0;  ///< required
  int64_t input_len = 12;
  int64_t output_len = 12;
  int64_t hidden_dim = 16;
  int64_t embed_dim = 8;
  int64_t num_layers = 2;
  int64_t steps_per_day = 288;
};

/// Names of all trainable deep models, in the paper's Table 3 order:
/// "FC-LSTM", "DCRNN", "STGCN", "GWNet", "ASTGCN", "STSGCN", "MTGNN",
/// "GMAN", "DGCRN", "D2STGNN" (plus variants "D2STGNN-static" = D²STGNN†,
/// "D2STGNN-coupled" = D²STGNN‡, "DGCRN-static" = DGCRN†).
std::vector<std::string> DeepModelNames();

/// Every name MakeModel accepts: DeepModelNames() plus the Table-4 variants
/// ("DGCRN-static", "D2STGNN-static", "D2STGNN-coupled"). The experiment
/// harness uses this to validate specs and to power `run_experiment --list`.
std::vector<std::string> AllModelNames();

/// The D²STGNN configuration MakeModel derives from a ModelConfig — exposed
/// so the experiment harness builds Table-5 ablation variants from the same
/// base configuration the registry uses.
core::D2StgnnConfig ToD2Config(const ModelConfig& config);

/// Builds a model by name. Aborts on an unknown name.
std::unique_ptr<train::ForecastingModel> MakeModel(const std::string& name,
                                                   const ModelConfig& config,
                                                   const Tensor& adjacency,
                                                   Rng& rng);

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_REGISTRY_H_
