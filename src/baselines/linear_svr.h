#ifndef D2STGNN_BASELINES_LINEAR_SVR_H_
#define D2STGNN_BASELINES_LINEAR_SVR_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace d2stgnn::baselines {

/// Linear Support Vector Regression baseline (paper Sec. 6.1): one linear
/// model per forecasting horizon mapping a node's last `input_len` readings
/// to its future reading, shared across nodes, trained with the
/// ε-insensitive hinge loss plus L2 regularization by stochastic subgradient
/// descent (Pegasos-style). Purely temporal and linear — no spatial
/// information — which is why it trails the graph models.
class LinearSvr {
 public:
  struct Options {
    float epsilon = 0.1f;        ///< insensitivity tube (z-scored units)
    float l2 = 1e-4f;            ///< regularization strength
    float learning_rate = 0.05f;
    int64_t epochs = 5;
    int64_t max_samples = 20000;  ///< subsample cap per epoch
    uint64_t seed = 17;
  };

  LinearSvr() : LinearSvr(Options()) {}
  explicit LinearSvr(const Options& options);

  /// Trains on sliding windows starting in [0, train_steps - Th - Tf].
  void Fit(const data::TimeSeriesDataset& dataset, int64_t train_steps,
           int64_t input_len, int64_t output_len);

  /// Predicts each window: [num_starts, output_len, N, 1], original units.
  Tensor Predict(const data::TimeSeriesDataset& dataset,
                 const std::vector<int64_t>& window_starts, int64_t input_len,
                 int64_t output_len) const;

 private:
  Options options_;
  int64_t input_len_ = 0;
  int64_t output_len_ = 0;
  float mean_ = 0.0f;
  float std_ = 1.0f;
  /// Weights [output_len x (input_len + 1)] (last column = bias).
  std::vector<float> weights_;
};

}  // namespace d2stgnn::baselines

#endif  // D2STGNN_BASELINES_LINEAR_SVR_H_
