#include "baselines/graph_wavenet.h"

#include "common/check.h"
#include "graph/transition.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

GraphWaveNet::GraphWaveNet(int64_t num_nodes, int64_t output_len,
                           const Tensor& adjacency, const Options& options,
                           Rng& rng)
    : ForecastingModel("graph_wavenet"),
      num_nodes_(num_nodes),
      output_len_(output_len),
      options_(options),
      input_proj_(data::kInputFeatures, options.hidden_dim, rng),
      out_fc1_(options.skip_dim, options.skip_dim, rng),
      out_fc2_(options.skip_dim, output_len, rng) {
  RegisterChild(&input_proj_);
  RegisterChild(&out_fc1_);
  RegisterChild(&out_fc2_);

  {
    NoGradGuard no_grad;
    for (const Tensor& p : {graph::ForwardTransition(adjacency),
                            graph::BackwardTransition(adjacency)}) {
      for (const Tensor& power :
           graph::TransitionPowers(p, options.diffusion_steps)) {
        static_supports_.push_back(power);
      }
    }
  }
  if (options.adaptive) {
    e1_ = RegisterParameter("E1",
                            nn::XavierNormal({num_nodes, options.embed_dim}, rng));
    e2_ = RegisterParameter("E2",
                            nn::XavierNormal({num_nodes, options.embed_dim}, rng));
  }

  const int64_t h = options.hidden_dim;
  int64_t dilation = 1;
  for (int64_t l = 0; l < options.num_layers; ++l) {
    Layer layer;
    layer.dilation = dilation;
    dilation *= 2;
    layer.filter_now = std::make_unique<nn::Linear>(h, h, rng);
    layer.filter_past = std::make_unique<nn::Linear>(h, h, rng);
    layer.gate_now = std::make_unique<nn::Linear>(h, h, rng);
    layer.gate_past = std::make_unique<nn::Linear>(h, h, rng);
    RegisterChild(layer.filter_now.get());
    RegisterChild(layer.filter_past.get());
    RegisterChild(layer.gate_now.get());
    RegisterChild(layer.gate_past.get());
    // One weight per support power (static + adaptive powers), plus the
    // identity, mixed by gcn_out.
    const int64_t num_supports =
        static_cast<int64_t>(static_supports_.size()) +
        (options.adaptive ? options.diffusion_steps : 0);
    for (int64_t s = 0; s < num_supports; ++s) {
      layer.gcn_weights.push_back(
          RegisterParameter("W_gcn", nn::XavierUniform({h, h}, rng)));
    }
    layer.gcn_out = std::make_unique<nn::Linear>(h, h, rng);
    layer.skip = std::make_unique<nn::Linear>(h, options.skip_dim, rng);
    RegisterChild(layer.gcn_out.get());
    RegisterChild(layer.skip.get());
    layers_.push_back(std::move(layer));
  }
}

Tensor GraphWaveNet::AdaptiveAdjacency() const {
  // softmax(relu(E1 E2^T)), Graph WaveNet Eq. for \tilde{A}_apt.
  return Softmax(Relu(MatMul(e1_, Transpose(e2_, 0, 1))), -1);
}

Tensor GraphWaveNet::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);

  // All supports for this forward pass.
  std::vector<Tensor> supports = static_supports_;
  if (options_.adaptive) {
    for (const Tensor& power :
         graph::TransitionPowers(AdaptiveAdjacency(), options_.diffusion_steps)) {
      supports.push_back(power);
    }
  }

  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, h]
  Tensor skip_sum;
  for (const Layer& layer : layers_) {
    // Gated dilated causal convolution (kernel 2): combine each frame with
    // the frame `dilation` steps earlier (zero-padded at the front).
    const Tensor past =
        Slice(PadFront(x, 1, layer.dilation), 1, 0, steps);
    const Tensor filter = Tanh(Add(layer.filter_now->Forward(x),
                                   layer.filter_past->Forward(past)));
    const Tensor gate = Sigmoid(
        Add(layer.gate_now->Forward(x), layer.gate_past->Forward(past)));
    const Tensor gated = Mul(filter, gate);  // [B, T, N, h]

    // Graph convolution: sum_k P_k gated W_k, then a 1x1 mix.
    Tensor conv;
    for (size_t s = 0; s < supports.size(); ++s) {
      const Tensor term =
          MatMul(MatMul(supports[s], gated), layer.gcn_weights[s]);
      conv = conv.defined() ? Add(conv, term) : term;
    }
    conv = layer.gcn_out->Forward(Add(conv, gated));

    // Skip from the gated activation's last frame; residual into next layer.
    const Tensor skip = layer.skip->Forward(
        Reshape(Slice(gated, 1, steps - 1, steps), {b, num_nodes_, -1}));
    skip_sum = skip_sum.defined() ? Add(skip_sum, skip) : skip;
    x = Add(x, conv);
  }

  // Output head: [B, N, skip] -> [B, N, Tf] -> [B, Tf, N, 1].
  Tensor out = out_fc2_.Forward(Relu(out_fc1_.Forward(Relu(skip_sum))));
  out = Permute(out, {0, 2, 1});  // [B, Tf, N]
  return Reshape(out, {b, output_len_, num_nodes_, 1});
}

}  // namespace d2stgnn::baselines
