#include "baselines/gman_lite.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::baselines {

GmanLite::GmanLite(int64_t num_nodes, int64_t hidden_dim, int64_t output_len,
                   int64_t steps_per_day, Rng& rng)
    : ForecastingModel("gman"),
      num_nodes_(num_nodes),
      hidden_dim_(hidden_dim),
      output_len_(output_len),
      steps_per_day_(steps_per_day),
      node_embedding_(num_nodes, hidden_dim, rng),
      tod_embedding_(steps_per_day, hidden_dim, rng),
      dow_embedding_(7, hidden_dim, rng),
      ste_fc_(3 * hidden_dim, hidden_dim, rng),
      input_proj_(data::kInputFeatures, hidden_dim, rng),
      sp_q_(2 * hidden_dim, hidden_dim, rng),
      sp_k_(2 * hidden_dim, hidden_dim, rng),
      sp_v_(2 * hidden_dim, hidden_dim, rng),
      tp_q_(2 * hidden_dim, hidden_dim, rng),
      tp_k_(2 * hidden_dim, hidden_dim, rng),
      tp_v_(2 * hidden_dim, hidden_dim, rng),
      fuse_s_(hidden_dim, hidden_dim, rng),
      fuse_t_(hidden_dim, hidden_dim, rng),
      tr_q_(hidden_dim, hidden_dim, rng),
      tr_k_(hidden_dim, hidden_dim, rng),
      tr_v_(hidden_dim, hidden_dim, rng),
      out_fc1_(hidden_dim, hidden_dim, rng),
      out_fc2_(hidden_dim, 1, rng) {
  for (nn::Module* child :
       {static_cast<nn::Module*>(&node_embedding_), static_cast<nn::Module*>(&tod_embedding_),
        static_cast<nn::Module*>(&dow_embedding_), static_cast<nn::Module*>(&ste_fc_),
        static_cast<nn::Module*>(&input_proj_), static_cast<nn::Module*>(&sp_q_),
        static_cast<nn::Module*>(&sp_k_), static_cast<nn::Module*>(&sp_v_),
        static_cast<nn::Module*>(&tp_q_), static_cast<nn::Module*>(&tp_k_),
        static_cast<nn::Module*>(&tp_v_), static_cast<nn::Module*>(&fuse_s_),
        static_cast<nn::Module*>(&fuse_t_), static_cast<nn::Module*>(&tr_q_),
        static_cast<nn::Module*>(&tr_k_), static_cast<nn::Module*>(&tr_v_),
        static_cast<nn::Module*>(&out_fc1_), static_cast<nn::Module*>(&out_fc2_)}) {
    RegisterChild(child);
  }
}

Tensor GmanLite::SpatioTemporalEmbedding(
    int64_t batch, int64_t steps, const std::vector<int64_t>& tod,
    const std::vector<int64_t>& dow) const {
  const Tensor time_day = tod_embedding_.Forward(tod, {batch, steps});
  const Tensor time_week = dow_embedding_.Forward(dow, {batch, steps});
  const Shape full = {batch, steps, num_nodes_, hidden_dim_};
  const Tensor te =
      BroadcastTo(Unsqueeze(Concat({time_day, time_week}, -1), 2),
                  {batch, steps, num_nodes_, 2 * hidden_dim_});
  const Tensor se = BroadcastTo(
      Reshape(node_embedding_.table(), {1, 1, num_nodes_, hidden_dim_}), full);
  return ste_fc_.Forward(Concat({se, te}, -1));  // [B, T, N, d]
}

Tensor GmanLite::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  D2_CHECK_EQ(batch.num_nodes(), num_nodes_);
  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim_));

  const Tensor ste_history = SpatioTemporalEmbedding(
      b, steps, batch.time_of_day, batch.day_of_week);

  Tensor h = input_proj_.Forward(batch.x);  // [B, T, N, d]
  const Tensor h_ste = Concat({h, ste_history}, -1);

  // Spatial attention: per (b, t), attend over nodes.
  Tensor hs;
  {
    const Tensor q = sp_q_.Forward(h_ste);  // [B, T, N, d]
    const Tensor k = sp_k_.Forward(h_ste);
    const Tensor v = sp_v_.Forward(h_ste);
    const Tensor scores =
        Softmax(MulScalar(MatMul(q, Transpose(k, -1, -2)), scale), -1);
    hs = MatMul(scores, v);  // [B, T, N, d]
  }

  // Temporal attention: per (b, node), attend over steps.
  Tensor ht;
  {
    auto per_node = [&](const nn::Linear& proj) {
      return Permute(proj.Forward(h_ste), {0, 2, 1, 3});  // [B, N, T, d]
    };
    const Tensor q = per_node(tp_q_);
    const Tensor k = per_node(tp_k_);
    const Tensor v = per_node(tp_v_);
    const Tensor scores =
        Softmax(MulScalar(MatMul(q, Transpose(k, -1, -2)), scale), -1);
    ht = Permute(MatMul(scores, v), {0, 2, 1, 3});  // [B, T, N, d]
  }

  // Gated fusion (GMAN Eq. 7).
  const Tensor z = Sigmoid(Add(fuse_s_.Forward(hs), fuse_t_.Forward(ht)));
  h = Add(h, Add(Mul(z, hs), Mul(Sub(Tensor::Scalar(1.0f), z), ht)));

  // Transform attention: future STE queries attend to history.
  std::vector<int64_t> future_tod(static_cast<size_t>(b * output_len_));
  std::vector<int64_t> future_dow(static_cast<size_t>(b * output_len_));
  for (int64_t i = 0; i < b; ++i) {
    const int64_t last_tod =
        batch.time_of_day[static_cast<size_t>((i + 1) * steps - 1)];
    const int64_t last_dow =
        batch.day_of_week[static_cast<size_t>((i + 1) * steps - 1)];
    for (int64_t f = 0; f < output_len_; ++f) {
      const int64_t tod = last_tod + f + 1;
      future_tod[static_cast<size_t>(i * output_len_ + f)] =
          tod % steps_per_day_;
      future_dow[static_cast<size_t>(i * output_len_ + f)] =
          (last_dow + tod / steps_per_day_) % 7;
    }
  }
  const Tensor ste_future =
      SpatioTemporalEmbedding(b, output_len_, future_tod, future_dow);

  const Tensor q = Permute(tr_q_.Forward(ste_future), {0, 2, 1, 3});   // [B,N,Tf,d]
  const Tensor k = Permute(tr_k_.Forward(ste_history), {0, 2, 1, 3});  // [B,N,T,d]
  const Tensor v = Permute(tr_v_.Forward(h), {0, 2, 1, 3});            // [B,N,T,d]
  const Tensor scores =
      Softmax(MulScalar(MatMul(q, Transpose(k, -1, -2)), scale), -1);
  Tensor future = Permute(MatMul(scores, v), {0, 2, 1, 3});  // [B,Tf,N,d]

  return out_fc2_.Forward(Relu(out_fc1_.Forward(future)));
}

}  // namespace d2stgnn::baselines
