#include "graph/sensor_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace d2stgnn::graph {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

}  // namespace

SensorNetwork BuildRandomSensorNetwork(const SensorNetworkOptions& options,
                                       Rng& rng) {
  const int64_t n = options.num_nodes;
  D2_CHECK_GT(n, 1);
  D2_CHECK_GT(options.neighbors, 0);
  D2_CHECK_LT(options.neighbors, n);

  SensorNetwork net;
  net.num_nodes = n;
  net.directed = options.directed;
  net.x.resize(static_cast<size_t>(n));
  net.y.resize(static_cast<size_t>(n));

  // Scatter sensors along a few noisy corridors so the layout resembles a
  // highway network rather than uniform dust.
  const int64_t corridors = std::max<int64_t>(2, n / 16);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = i % corridors;
    const float along = rng.Uniform();
    const float base = (static_cast<float>(c) + 0.5f) /
                       static_cast<float>(corridors);
    // Corridors alternate horizontal/vertical orientation.
    if (c % 2 == 0) {
      net.x[static_cast<size_t>(i)] = along;
      net.y[static_cast<size_t>(i)] = base + rng.Normal(0.0f, 0.04f);
    } else {
      net.x[static_cast<size_t>(i)] = base + rng.Normal(0.0f, 0.04f);
      net.y[static_cast<size_t>(i)] = along;
    }
  }

  // k-nearest-neighbour connectivity with detoured road distances.
  std::vector<float> dist(static_cast<size_t>(n * n), kInf);
  for (int64_t i = 0; i < n; ++i) dist[static_cast<size_t>(i * n + i)] = 0.0f;

  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::iota(order.begin(), order.end(), 0);
    const float xi = net.x[static_cast<size_t>(i)];
    const float yi = net.y[static_cast<size_t>(i)];
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      const float da = std::hypot(net.x[static_cast<size_t>(a)] - xi,
                                  net.y[static_cast<size_t>(a)] - yi);
      const float db = std::hypot(net.x[static_cast<size_t>(b)] - xi,
                                  net.y[static_cast<size_t>(b)] - yi);
      return da < db;
    });
    // order[0] == i itself.
    for (int64_t k = 1; k <= options.neighbors; ++k) {
      const int64_t j = order[static_cast<size_t>(k)];
      const float euclid = std::hypot(net.x[static_cast<size_t>(j)] - xi,
                                      net.y[static_cast<size_t>(j)] - yi);
      const float road_ij = euclid * (1.0f + rng.Uniform(0.0f, options.detour));
      float road_ji = road_ij;
      if (options.directed) {
        road_ji = euclid * (1.0f + rng.Uniform(0.0f, options.detour));
      }
      auto& dij = dist[static_cast<size_t>(i * n + j)];
      auto& dji = dist[static_cast<size_t>(j * n + i)];
      dij = std::min(dij, road_ij);
      dji = std::min(dji, road_ji);
    }
  }

  net.road_distance = Tensor({n, n}, std::move(dist));
  net.adjacency =
      ThresholdedGaussianAdjacency(net.road_distance, options.kernel_threshold);

  // The kernel threshold can isolate sensors on long corridor segments;
  // keep each node's nearest outgoing road so every sensor participates in
  // the diffusion (real deployments prune such detectors instead, Table 2's
  // "remove redundant detectors" note).
  {
    std::vector<float>& adj = net.adjacency.Data();
    const std::vector<float>& d = net.road_distance.Data();
    for (int64_t i = 0; i < n; ++i) {
      bool has_edge = false;
      for (int64_t j = 0; j < n && !has_edge; ++j) {
        if (i != j && adj[static_cast<size_t>(i * n + j)] > 0.0f) {
          has_edge = true;
        }
      }
      if (has_edge) continue;
      int64_t nearest = -1;
      for (int64_t j = 0; j < n; ++j) {
        if (i == j || !std::isfinite(d[static_cast<size_t>(i * n + j)])) {
          continue;
        }
        if (nearest < 0 || d[static_cast<size_t>(i * n + j)] <
                               d[static_cast<size_t>(i * n + nearest)]) {
          nearest = j;
        }
      }
      if (nearest >= 0) {
        adj[static_cast<size_t>(i * n + nearest)] = options.kernel_threshold;
        adj[static_cast<size_t>(nearest * n + i)] =
            std::max(adj[static_cast<size_t>(nearest * n + i)],
                     options.kernel_threshold);
      }
    }
  }
  return net;
}

Tensor ThresholdedGaussianAdjacency(const Tensor& road_distance,
                                    float threshold) {
  D2_CHECK_EQ(road_distance.dim(), 2);
  const int64_t n = road_distance.size(0);
  D2_CHECK_EQ(road_distance.size(1), n);

  // Standard deviation of finite distances (the DCRNN recipe).
  const std::vector<float>& d = road_distance.Data();
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t count = 0;
  for (float v : d) {
    if (std::isfinite(v)) {
      sum += v;
      sum_sq += static_cast<double>(v) * v;
      ++count;
    }
  }
  D2_CHECK_GT(count, 0);
  const double mean = sum / static_cast<double>(count);
  const double variance =
      std::max(1e-12, sum_sq / static_cast<double>(count) - mean * mean);
  const float sigma_sq = static_cast<float>(variance);

  std::vector<float> adj(d.size(), 0.0f);
  for (size_t i = 0; i < d.size(); ++i) {
    if (!std::isfinite(d[i])) continue;
    const float w = std::exp(-(d[i] * d[i]) / sigma_sq);
    if (w >= threshold) adj[i] = w;
  }
  return Tensor({n, n}, std::move(adj));
}

int64_t CountEdges(const Tensor& adjacency) {
  D2_CHECK_EQ(adjacency.dim(), 2);
  const int64_t n = adjacency.size(0);
  int64_t edges = 0;
  const std::vector<float>& a = adjacency.Data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (i != j && a[static_cast<size_t>(i * n + j)] != 0.0f) ++edges;
    }
  }
  return edges;
}

}  // namespace d2stgnn::graph
