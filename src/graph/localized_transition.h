#ifndef D2STGNN_GRAPH_LOCALIZED_TRANSITION_H_
#define D2STGNN_GRAPH_LOCALIZED_TRANSITION_H_

#include "tensor/tensor.h"

namespace d2stgnn::graph {

/// Builds the spatial-temporal localized transition matrix of the paper's
/// Eq. 4:
///
///   (P^local)^k = [P^k ⊙ (1 - I_N)] ‖ ... ‖ [P^k ⊙ (1 - I_N)]   (k_t blocks)
///
/// The diagonal is masked because a node's own history belongs to the
/// inherent model, not the diffusion model. `p_k` may be a static [N, N]
/// matrix or a batched [B, N, N] dynamic matrix (Eq. 14); the result is
/// [..., N, k_t * N]. Differentiable.
Tensor LocalizedTransition(const Tensor& p_k, int64_t k_t);

/// Masks the diagonal of the trailing [N, N] block: p ⊙ (1 - I_N).
/// Differentiable; accepts [N, N] or [B, N, N].
Tensor MaskSelfLoops(const Tensor& p);

}  // namespace d2stgnn::graph

#endif  // D2STGNN_GRAPH_LOCALIZED_TRANSITION_H_
