#ifndef D2STGNN_GRAPH_TRANSITION_H_
#define D2STGNN_GRAPH_TRANSITION_H_

#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn::graph {

/// Forward transition matrix P_f = A / rowsum(A) (paper Sec. 5.1). Rows with
/// zero sum stay zero.
Tensor ForwardTransition(const Tensor& adjacency);

/// Backward transition matrix P_b = A^T / rowsum(A^T).
Tensor BackwardTransition(const Tensor& adjacency);

/// P^k by repeated (differentiable) matrix multiplication; k >= 1.
Tensor MatrixPower(const Tensor& p, int64_t k);

/// Returns {P^1, ..., P^k_max}. Differentiable (used for the self-adaptive
/// transition matrix P_apt whose entries carry gradients).
std::vector<Tensor> TransitionPowers(const Tensor& p, int64_t k_max);

}  // namespace d2stgnn::graph

#endif  // D2STGNN_GRAPH_TRANSITION_H_
