#include "graph/localized_transition.h"

#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::graph {

Tensor MaskSelfLoops(const Tensor& p) {
  D2_CHECK_GE(p.dim(), 2);
  const int64_t n = p.size(-1);
  D2_CHECK_EQ(p.size(-2), n) << "trailing block must be square";
  // (1 - I_N), broadcast over any batch dimensions.
  Tensor mask = Sub(Tensor::Ones({n, n}), Tensor::Eye(n));
  return Mul(p, mask);
}

Tensor LocalizedTransition(const Tensor& p_k, int64_t k_t) {
  D2_CHECK_GE(k_t, 1);
  const Tensor masked = MaskSelfLoops(p_k);
  if (k_t == 1) return masked;
  std::vector<Tensor> blocks(static_cast<size_t>(k_t), masked);
  return Concat(blocks, -1);
}

}  // namespace d2stgnn::graph
