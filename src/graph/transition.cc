#include "graph/transition.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::graph {
namespace {

// Row-normalizes a non-negative square matrix, leaving all-zero rows zero.
// Plain data path (adjacency matrices are constants).
Tensor RowNormalize(const Tensor& m) {
  D2_CHECK_EQ(m.dim(), 2);
  const int64_t n = m.size(0);
  D2_CHECK_EQ(m.size(1), n);
  const std::vector<float>& a = m.Data();
  std::vector<float> out(a.size());
  for (int64_t i = 0; i < n; ++i) {
    float row_sum = 0.0f;
    for (int64_t j = 0; j < n; ++j) row_sum += a[static_cast<size_t>(i * n + j)];
    const float inv = row_sum > 0.0f ? 1.0f / row_sum : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      out[static_cast<size_t>(i * n + j)] =
          a[static_cast<size_t>(i * n + j)] * inv;
    }
  }
  return Tensor({n, n}, std::move(out));
}

}  // namespace

Tensor ForwardTransition(const Tensor& adjacency) {
  return RowNormalize(adjacency);
}

Tensor BackwardTransition(const Tensor& adjacency) {
  NoGradGuard no_grad;  // adjacency is a constant
  return RowNormalize(Transpose(adjacency, 0, 1));
}

Tensor MatrixPower(const Tensor& p, int64_t k) {
  D2_CHECK_GE(k, 1);
  Tensor result = p;
  for (int64_t i = 1; i < k; ++i) result = MatMul(result, p);
  return result;
}

std::vector<Tensor> TransitionPowers(const Tensor& p, int64_t k_max) {
  D2_CHECK_GE(k_max, 1);
  std::vector<Tensor> powers;
  powers.reserve(static_cast<size_t>(k_max));
  powers.push_back(p);
  for (int64_t k = 2; k <= k_max; ++k) {
    powers.push_back(MatMul(powers.back(), p));
  }
  return powers;
}

}  // namespace d2stgnn::graph
