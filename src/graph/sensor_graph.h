#ifndef D2STGNN_GRAPH_SENSOR_GRAPH_H_
#define D2STGNN_GRAPH_SENSOR_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace d2stgnn::graph {

/// A road network of traffic sensors (paper Definition 2): node positions,
/// pairwise road distances, and the weighted adjacency matrix A built with
/// the thresholded Gaussian kernel of DCRNN (paper Sec. 6.1).
struct SensorNetwork {
  int64_t num_nodes = 0;
  bool directed = false;
  std::vector<float> x;  ///< sensor coordinates (arbitrary units)
  std::vector<float> y;
  Tensor road_distance;  ///< [N, N]; +inf where unreachable
  Tensor adjacency;      ///< [N, N] weighted adjacency in [0, 1]
};

/// Parameters for BuildRandomSensorNetwork.
struct SensorNetworkOptions {
  int64_t num_nodes = 32;
  /// Each sensor connects to its `neighbors` nearest sensors.
  int64_t neighbors = 4;
  /// Road distance = Euclidean distance * detour drawn from
  /// U(1, 1 + detour); mimics roads that are longer than straight lines.
  float detour = 0.4f;
  /// If true, forward/backward road distances differ (one-way detours),
  /// yielding a directed graph like METR-LA's.
  bool directed = true;
  /// Threshold for the Gaussian kernel: entries with weight < threshold are
  /// dropped (DCRNN uses 0.1).
  float kernel_threshold = 0.1f;
};

/// Builds a random geometric sensor network: sensors scattered in the unit
/// square along a few synthetic highway corridors, k-nearest-neighbour road
/// connectivity, and a thresholded-Gaussian adjacency. Deterministic in
/// `rng`.
SensorNetwork BuildRandomSensorNetwork(const SensorNetworkOptions& options,
                                       Rng& rng);

/// DCRNN's adjacency construction: A_ij = exp(-d_ij^2 / sigma^2) where sigma
/// is the standard deviation of finite distances; entries below `threshold`
/// (and unreachable pairs) become 0. Diagonal is 1.
Tensor ThresholdedGaussianAdjacency(const Tensor& road_distance,
                                    float threshold);

/// Number of nonzero off-diagonal entries of `adjacency`.
int64_t CountEdges(const Tensor& adjacency);

}  // namespace d2stgnn::graph

#endif  // D2STGNN_GRAPH_SENSOR_GRAPH_H_
