#ifndef D2STGNN_OPTIM_OPTIMIZER_H_
#define D2STGNN_OPTIM_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn::optim {

/// Base class for gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor> params, float learning_rate);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Clears every parameter's gradient.
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

  /// The optimized parameters.
  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
  float learning_rate_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace d2stgnn::optim

#endif  // D2STGNN_OPTIM_OPTIMIZER_H_
