#ifndef D2STGNN_OPTIM_OPTIMIZER_H_
#define D2STGNN_OPTIM_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn::optim {

/// Serializable optimizer state, generic across optimizers so checkpoint
/// code does not depend on concrete types. `slots` holds the per-parameter
/// state vectors (e.g. Adam's first/second moments), one inner vector per
/// parameter, each sized like the parameter it tracks.
struct OptimizerState {
  std::string type;  ///< "adam", "sgd", ...
  int64_t step_count = 0;
  float learning_rate = 0.0f;
  std::vector<std::pair<std::string, std::vector<std::vector<float>>>> slots;
};

/// Base class for gradient-descent optimizers over a fixed parameter list.
class Optimizer {
 public:
  Optimizer(std::vector<Tensor> params, float learning_rate);
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the parameters' accumulated gradients.
  virtual void Step() = 0;

  /// Full serializable state (for checkpointing). The base implementation
  /// captures the type and learning rate; subclasses append their slots.
  virtual OptimizerState ExportState() const = 0;

  /// Restores state captured by ExportState on an optimizer over the same
  /// parameter list. Returns false (after logging) on a type mismatch or a
  /// slot whose shape does not match the parameters; on failure the
  /// optimizer is unchanged.
  virtual bool ImportState(const OptimizerState& state) = 0;

  /// Clears every parameter's gradient.
  void ZeroGrad();

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

  /// The optimized parameters.
  const std::vector<Tensor>& params() const { return params_; }

 protected:
  /// True when `slot` has one vector per parameter with matching sizes;
  /// logs and returns false otherwise (ImportState validation helper).
  bool SlotMatchesParams(const std::string& name,
                         const std::vector<std::vector<float>>& slot) const;

  std::vector<Tensor> params_;
  float learning_rate_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the norm before clipping.
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

}  // namespace d2stgnn::optim

#endif  // D2STGNN_OPTIM_OPTIMIZER_H_
