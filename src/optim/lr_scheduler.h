#ifndef D2STGNN_OPTIM_LR_SCHEDULER_H_
#define D2STGNN_OPTIM_LR_SCHEDULER_H_

#include <vector>

#include "optim/optimizer.h"

namespace d2stgnn::optim {

/// Multiplies the learning rate by `gamma` at each listed epoch (the
/// MultiStepLR schedule the official D²STGNN training recipe uses).
class StepDecayScheduler {
 public:
  /// `milestones` are epoch indices (ascending); `gamma` in (0, 1].
  StepDecayScheduler(float initial_lr, std::vector<int64_t> milestones,
                     float gamma);

  /// Learning rate in effect at `epoch` (0-based).
  float LearningRateAt(int64_t epoch) const;

  /// Sets `optimizer`'s learning rate for `epoch`.
  void Apply(Optimizer& optimizer, int64_t epoch) const;

 private:
  float initial_lr_;
  std::vector<int64_t> milestones_;
  float gamma_;
};

}  // namespace d2stgnn::optim

#endif  // D2STGNN_OPTIM_LR_SCHEDULER_H_
