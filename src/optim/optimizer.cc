#include "optim/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace d2stgnn::optim {

Optimizer::Optimizer(std::vector<Tensor> params, float learning_rate)
    : params_(std::move(params)), learning_rate_(learning_rate) {
  D2_CHECK_GT(learning_rate, 0.0f);
  for (const Tensor& p : params_) {
    D2_CHECK(p.defined());
    D2_CHECK(p.RequiresGrad()) << "optimizer parameter must require grad";
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

bool Optimizer::SlotMatchesParams(
    const std::string& name,
    const std::vector<std::vector<float>>& slot) const {
  if (slot.size() != params_.size()) {
    D2_LOG(ERROR) << "optimizer state slot '" << name << "' has "
                  << slot.size() << " entries, optimizer has "
                  << params_.size() << " parameters";
    return false;
  }
  for (size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].size() != params_[i].Data().size()) {
      D2_LOG(ERROR) << "optimizer state slot '" << name << "' entry " << i
                    << " has " << slot[i].size() << " elements, parameter has "
                    << params_[i].Data().size();
      return false;
    }
  }
  return true;
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  D2_CHECK_GT(max_norm, 0.0f);
  double sum_sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.GradData()) sum_sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(sum_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params) {
      auto& grad = p.impl()->grad;
      for (float& g : grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace d2stgnn::optim
