#include "optim/adam.h"

#include <cmath>

#include "common/check.h"
#include "common/logging.h"

namespace d2stgnn::optim {

Adam::Adam(std::vector<Tensor> params, float learning_rate, float beta1,
           float beta2, float epsilon, float weight_decay)
    : Optimizer(std::move(params), learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  D2_CHECK_GT(beta1, 0.0f);
  D2_CHECK_LT(beta1, 1.0f);
  D2_CHECK_GT(beta2, 0.0f);
  D2_CHECK_LT(beta2, 1.0f);
  D2_CHECK_GT(epsilon, 0.0f);
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].Data().size(), 0.0f);
    v_[i].assign(params_[i].Data().size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const std::vector<float>& grad = p.GradData();
    if (grad.empty()) continue;
    std::vector<float>& data = p.Data();
    std::vector<float>& m = m_[i];
    std::vector<float>& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j];
      if (weight_decay_ != 0.0f) g += weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      data[j] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

OptimizerState Adam::ExportState() const {
  OptimizerState state;
  state.type = "adam";
  state.step_count = step_count_;
  state.learning_rate = learning_rate_;
  state.slots.emplace_back("m", m_);
  state.slots.emplace_back("v", v_);
  return state;
}

bool Adam::ImportState(const OptimizerState& state) {
  if (state.type != "adam") {
    D2_LOG(ERROR) << "cannot import optimizer state of type '" << state.type
                  << "' into Adam";
    return false;
  }
  if (state.slots.size() != 2 || state.slots[0].first != "m" ||
      state.slots[1].first != "v") {
    D2_LOG(ERROR) << "Adam state must have slots m, v";
    return false;
  }
  if (!SlotMatchesParams("m", state.slots[0].second) ||
      !SlotMatchesParams("v", state.slots[1].second)) {
    return false;
  }
  step_count_ = state.step_count;
  learning_rate_ = state.learning_rate;
  m_ = state.slots[0].second;
  v_ = state.slots[1].second;
  return true;
}

}  // namespace d2stgnn::optim
