#ifndef D2STGNN_OPTIM_ADAM_H_
#define D2STGNN_OPTIM_ADAM_H_

#include <vector>

#include "optim/optimizer.h"

namespace d2stgnn::optim {

/// Adam optimizer (Kingma & Ba 2015) with bias correction and optional
/// decoupled weight decay. The paper trains D²STGNN with Adam at lr 1e-3
/// (Sec. 6.1).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float learning_rate = 1e-3f,
       float beta1 = 0.9f, float beta2 = 0.999f, float epsilon = 1e-8f,
       float weight_decay = 0.0f);

  void Step() override;

  /// Captures learning rate, step count, and both moment buffers.
  OptimizerState ExportState() const override;

  /// Restores a state exported from an Adam over the same parameters.
  bool ImportState(const OptimizerState& state) override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  float weight_decay_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace d2stgnn::optim

#endif  // D2STGNN_OPTIM_ADAM_H_
