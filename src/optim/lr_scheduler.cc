#include "optim/lr_scheduler.h"

#include "common/check.h"

namespace d2stgnn::optim {

StepDecayScheduler::StepDecayScheduler(float initial_lr,
                                       std::vector<int64_t> milestones,
                                       float gamma)
    : initial_lr_(initial_lr),
      milestones_(std::move(milestones)),
      gamma_(gamma) {
  D2_CHECK_GT(initial_lr, 0.0f);
  D2_CHECK_GT(gamma, 0.0f);
  D2_CHECK_LE(gamma, 1.0f);
  for (size_t i = 1; i < milestones_.size(); ++i) {
    D2_CHECK_LT(milestones_[i - 1], milestones_[i])
        << "milestones must be ascending";
  }
}

float StepDecayScheduler::LearningRateAt(int64_t epoch) const {
  float lr = initial_lr_;
  for (int64_t milestone : milestones_) {
    if (epoch >= milestone) lr *= gamma_;
  }
  return lr;
}

void StepDecayScheduler::Apply(Optimizer& optimizer, int64_t epoch) const {
  optimizer.set_learning_rate(LearningRateAt(epoch));
}

}  // namespace d2stgnn::optim
