#ifndef D2STGNN_OPTIM_SGD_H_
#define D2STGNN_OPTIM_SGD_H_

#include <vector>

#include "optim/optimizer.h"

namespace d2stgnn::optim {

/// Stochastic gradient descent with optional classical momentum:
///   v <- momentum * v + g;  p <- p - lr * v
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float learning_rate,
      float momentum = 0.0f);

  void Step() override;

  /// Captures learning rate and the momentum buffer.
  OptimizerState ExportState() const override;

  /// Restores a state exported from an Sgd over the same parameters.
  bool ImportState(const OptimizerState& state) override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace d2stgnn::optim

#endif  // D2STGNN_OPTIM_SGD_H_
