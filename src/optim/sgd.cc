#include "optim/sgd.h"

#include "common/check.h"

namespace d2stgnn::optim {

Sgd::Sgd(std::vector<Tensor> params, float learning_rate, float momentum)
    : Optimizer(std::move(params), learning_rate), momentum_(momentum) {
  D2_CHECK_GE(momentum, 0.0f);
  D2_CHECK_LT(momentum, 1.0f);
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].Data().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const std::vector<float>& grad = p.GradData();
    if (grad.empty()) continue;
    std::vector<float>& data = p.Data();
    std::vector<float>& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + grad[j];
      data[j] -= learning_rate_ * vel[j];
    }
  }
}

}  // namespace d2stgnn::optim
