#include "optim/sgd.h"

#include "common/check.h"
#include "common/logging.h"

namespace d2stgnn::optim {

Sgd::Sgd(std::vector<Tensor> params, float learning_rate, float momentum)
    : Optimizer(std::move(params), learning_rate), momentum_(momentum) {
  D2_CHECK_GE(momentum, 0.0f);
  D2_CHECK_LT(momentum, 1.0f);
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].Data().size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const std::vector<float>& grad = p.GradData();
    if (grad.empty()) continue;
    std::vector<float>& data = p.Data();
    std::vector<float>& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] + grad[j];
      data[j] -= learning_rate_ * vel[j];
    }
  }
}

OptimizerState Sgd::ExportState() const {
  OptimizerState state;
  state.type = "sgd";
  state.learning_rate = learning_rate_;
  state.slots.emplace_back("velocity", velocity_);
  return state;
}

bool Sgd::ImportState(const OptimizerState& state) {
  if (state.type != "sgd") {
    D2_LOG(ERROR) << "cannot import optimizer state of type '" << state.type
                  << "' into Sgd";
    return false;
  }
  if (state.slots.size() != 1 || state.slots[0].first != "velocity") {
    D2_LOG(ERROR) << "Sgd state must have slot velocity";
    return false;
  }
  if (!SlotMatchesParams("velocity", state.slots[0].second)) return false;
  learning_rate_ = state.learning_rate;
  velocity_ = state.slots[0].second;
  return true;
}

}  // namespace d2stgnn::optim
