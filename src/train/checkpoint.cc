#include "train/checkpoint.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/io/atomic_file.h"
#include "common/io/crc32.h"
#include "common/logging.h"

namespace d2stgnn::train {
namespace {

constexpr char kMagicV1[8] = {'D', '2', 'C', 'K', 'P', 'T', '0', '1'};
constexpr char kMagicV2[8] = {'D', '2', 'C', 'K', 'P', 'T', '0', '2'};
constexpr char kEpochPrefix[] = "ckpt-";
constexpr char kEpochSuffix[] = ".d2ck";

// ---------------------------------------------------------------------------
// Payload builders (little-endian host, like the rest of the project).

void AppendBytes(std::vector<uint8_t>* buf, const void* data, size_t n) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buf->insert(buf->end(), bytes, bytes + n);
}

void AppendU64(std::vector<uint8_t>* buf, uint64_t v) {
  AppendBytes(buf, &v, sizeof(v));
}

void AppendI64(std::vector<uint8_t>* buf, int64_t v) {
  AppendBytes(buf, &v, sizeof(v));
}

void AppendF32(std::vector<uint8_t>* buf, float v) {
  AppendBytes(buf, &v, sizeof(v));
}

void AppendF64(std::vector<uint8_t>* buf, double v) {
  AppendBytes(buf, &v, sizeof(v));
}

void AppendString(std::vector<uint8_t>* buf, const std::string& s) {
  AppendU64(buf, s.size());
  AppendBytes(buf, s.data(), s.size());
}

void AppendFloatVector(std::vector<uint8_t>* buf,
                       const std::vector<float>& v) {
  AppendU64(buf, v.size());
  AppendBytes(buf, v.data(), v.size() * sizeof(float));
}

// ---------------------------------------------------------------------------
// Bounds-checked cursor over an in-memory payload. Every accessor keeps an
// `ok` flag; once a read runs past the end, all further reads fail, so
// callers can batch reads and check ok() once.

class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

  bool ReadRaw(void* out, size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  uint64_t ReadU64() {
    uint64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  int64_t ReadI64() {
    int64_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  uint32_t ReadU32() {
    uint32_t v = 0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  float ReadF32() {
    float v = 0.0f;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  double ReadF64() {
    double v = 0.0;
    ReadRaw(&v, sizeof(v));
    return v;
  }

  std::string ReadString() {
    const uint64_t len = ReadU64();
    if (!ok_ || len > remaining()) {
      ok_ = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return s;
  }

  std::vector<float> ReadFloatVector() {
    const uint64_t numel = ReadU64();
    std::vector<float> v;
    if (!ok_ || numel > remaining() / sizeof(float)) {
      ok_ = false;
      return v;
    }
    v.resize(static_cast<size_t>(numel));
    ReadRaw(v.data(), static_cast<size_t>(numel) * sizeof(float));
    return v;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Section payloads.

using Section = std::pair<std::string, std::vector<uint8_t>>;

std::vector<uint8_t> BuildParamsPayload(const nn::Module& module) {
  std::vector<uint8_t> payload;
  const auto params = module.NamedParameters();
  AppendU64(&payload, params.size());
  for (const auto& [name, tensor] : params) {
    AppendString(&payload, name);
    AppendFloatVector(&payload, tensor.Data());
  }
  return payload;
}

std::vector<uint8_t> BuildOptimizerPayload(
    const optim::OptimizerState& state) {
  std::vector<uint8_t> payload;
  AppendString(&payload, state.type);
  AppendI64(&payload, state.step_count);
  AppendF32(&payload, state.learning_rate);
  AppendU64(&payload, state.slots.size());
  for (const auto& [slot_name, entries] : state.slots) {
    AppendString(&payload, slot_name);
    AppendU64(&payload, entries.size());
    for (const std::vector<float>& entry : entries) {
      AppendFloatVector(&payload, entry);
    }
  }
  return payload;
}

std::vector<uint8_t> BuildTrainerPayload(const TrainerProgress& progress) {
  std::vector<uint8_t> payload;
  AppendI64(&payload, progress.next_epoch);
  AppendI64(&payload, progress.next_batch);
  AppendI64(&payload, progress.updates);
  AppendI64(&payload, progress.curriculum_step);
  AppendF64(&payload, progress.partial_loss_sum);
  AppendI64(&payload, progress.best_epoch);
  AppendF64(&payload, progress.best_val_mae);
  AppendI64(&payload, progress.epochs_without_improvement);
  AppendU64(&payload, progress.history.size());
  for (const EpochStats& stats : progress.history) {
    AppendF64(&payload, stats.train_loss);
    AppendF64(&payload, stats.seconds);
    AppendF64(&payload, stats.validation.mae);
    AppendF64(&payload, stats.validation.rmse);
    AppendF64(&payload, stats.validation.mape);
    AppendI64(&payload, stats.validation.count);
  }
  return payload;
}

std::vector<uint8_t> BuildRngPayload(const RngState& state) {
  std::vector<uint8_t> payload;
  for (uint64_t word : state.words) AppendU64(&payload, word);
  AppendU64(&payload, state.has_cached_normal ? 1 : 0);
  AppendF32(&payload, state.cached_normal);
  return payload;
}

std::vector<uint8_t> BuildBestParamsPayload(
    const std::vector<std::vector<float>>& best_params) {
  std::vector<uint8_t> payload;
  AppendU64(&payload, best_params.size());
  for (const std::vector<float>& p : best_params) {
    AppendFloatVector(&payload, p);
  }
  return payload;
}

bool ParseOptimizerPayload(Cursor cursor, optim::OptimizerState* out) {
  optim::OptimizerState state;
  state.type = cursor.ReadString();
  state.step_count = cursor.ReadI64();
  state.learning_rate = cursor.ReadF32();
  const uint64_t num_slots = cursor.ReadU64();
  for (uint64_t s = 0; cursor.ok() && s < num_slots; ++s) {
    std::string slot_name = cursor.ReadString();
    const uint64_t num_entries = cursor.ReadU64();
    std::vector<std::vector<float>> entries;
    for (uint64_t e = 0; cursor.ok() && e < num_entries; ++e) {
      entries.push_back(cursor.ReadFloatVector());
    }
    state.slots.emplace_back(std::move(slot_name), std::move(entries));
  }
  if (!cursor.ok()) return false;
  *out = std::move(state);
  return true;
}

bool ParseTrainerPayload(Cursor cursor, TrainerProgress* out) {
  TrainerProgress progress;
  progress.next_epoch = cursor.ReadI64();
  progress.next_batch = cursor.ReadI64();
  progress.updates = cursor.ReadI64();
  progress.curriculum_step = cursor.ReadI64();
  progress.partial_loss_sum = cursor.ReadF64();
  progress.best_epoch = cursor.ReadI64();
  progress.best_val_mae = cursor.ReadF64();
  progress.epochs_without_improvement = cursor.ReadI64();
  const uint64_t history_count = cursor.ReadU64();
  for (uint64_t i = 0; cursor.ok() && i < history_count; ++i) {
    EpochStats stats;
    stats.train_loss = cursor.ReadF64();
    stats.seconds = cursor.ReadF64();
    stats.validation.mae = cursor.ReadF64();
    stats.validation.rmse = cursor.ReadF64();
    stats.validation.mape = cursor.ReadF64();
    stats.validation.count = cursor.ReadI64();
    progress.history.push_back(stats);
  }
  if (!cursor.ok()) return false;
  *out = std::move(progress);
  return true;
}

bool ParseRngPayload(Cursor cursor, RngState* out) {
  RngState state;
  for (uint64_t& word : state.words) word = cursor.ReadU64();
  state.has_cached_normal = cursor.ReadU64() != 0;
  state.cached_normal = cursor.ReadF32();
  if (!cursor.ok()) return false;
  *out = state;
  return true;
}

bool ParseBestParamsPayload(Cursor cursor,
                            std::vector<std::vector<float>>* out) {
  const uint64_t count = cursor.ReadU64();
  std::vector<std::vector<float>> best;
  for (uint64_t i = 0; cursor.ok() && i < count; ++i) {
    best.push_back(cursor.ReadFloatVector());
  }
  if (!cursor.ok()) return false;
  *out = std::move(best);
  return true;
}

// Parses a params payload (shared by v1 bodies and v2 "params" sections)
// into a staging list, then validates names/sizes against the module.
// Nothing is written to the module here.
bool ParseAndValidateParams(Cursor cursor, const nn::Module& module,
                            const std::string& path,
                            std::vector<std::vector<float>>* staging) {
  const auto params = module.NamedParameters();
  const uint64_t count = cursor.ReadU64();
  if (!cursor.ok() || count != params.size()) {
    D2_LOG(ERROR) << path << " has " << count << " parameters, module has "
                  << params.size();
    return false;
  }
  staging->clear();
  staging->reserve(params.size());
  for (const auto& [name, tensor] : params) {
    const std::string saved_name = cursor.ReadString();
    if (!cursor.ok() || saved_name != name) {
      D2_LOG(ERROR) << path << ": parameter name mismatch: checkpoint '"
                    << saved_name << "' vs module '" << name << "'";
      return false;
    }
    std::vector<float> data = cursor.ReadFloatVector();
    if (!cursor.ok() || data.size() != tensor.Data().size()) {
      D2_LOG(ERROR) << path << ": parameter '" << name
                    << "' size mismatch: " << data.size() << " vs "
                    << tensor.Data().size();
      return false;
    }
    staging->push_back(std::move(data));
  }
  return true;
}

// Commits validated staging data into the module. Cannot fail: every
// entry was already checked against the module's layout.
void CommitParams(nn::Module* module,
                  const std::vector<std::vector<float>>& staging) {
  auto params = module->NamedParameters();
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].second.Data() = staging[i];
  }
}

// One CRC-verified section of a parsed v2 file (borrows the file buffer).
struct SectionView {
  std::string name;
  const uint8_t* data = nullptr;
  size_t size = 0;
};

// Splits a v2 file into sections and verifies every CRC. Returns false on
// any structural or integrity violation.
bool ParseV2Sections(const std::vector<uint8_t>& bytes,
                     const std::string& path,
                     std::vector<SectionView>* sections) {
  Cursor cursor(bytes.data(), bytes.size());
  char magic[sizeof(kMagicV2)];
  cursor.ReadRaw(magic, sizeof(magic));
  if (!cursor.ok() || std::memcmp(magic, kMagicV2, sizeof(magic)) != 0) {
    D2_LOG(ERROR) << path << " is not a v2 checkpoint";
    return false;
  }
  const uint64_t section_count = cursor.ReadU64();
  const size_t base = sizeof(kMagicV2) + sizeof(uint64_t);
  size_t pos = base;
  for (uint64_t s = 0; s < section_count; ++s) {
    Cursor header(bytes.data() + pos, bytes.size() - pos);
    const std::string name = header.ReadString();
    const uint64_t payload_len = header.ReadU64();
    const uint32_t expected_crc = header.ReadU32();
    if (!header.ok() || payload_len > header.remaining()) {
      D2_LOG(ERROR) << path << ": truncated section header (section " << s
                    << ")";
      return false;
    }
    const size_t header_size =
        sizeof(uint64_t) + name.size() + sizeof(uint64_t) + sizeof(uint32_t);
    const uint8_t* payload = bytes.data() + pos + header_size;
    const uint32_t actual_crc =
        io::Crc32(payload, static_cast<size_t>(payload_len));
    if (actual_crc != expected_crc) {
      D2_LOG(ERROR) << path << ": CRC mismatch in section '" << name
                    << "' (stored " << expected_crc << ", computed "
                    << actual_crc << ") — checkpoint is corrupt";
      return false;
    }
    sections->push_back(
        SectionView{name, payload, static_cast<size_t>(payload_len)});
    pos += header_size + static_cast<size_t>(payload_len);
  }
  if (pos != bytes.size()) {
    D2_LOG(ERROR) << path << ": " << bytes.size() - pos
                  << " trailing bytes after last section";
    return false;
  }
  return true;
}

const SectionView* FindSection(const std::vector<SectionView>& sections,
                               const std::string& name) {
  for (const SectionView& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool WriteCheckpointFile(const std::string& path,
                         const std::vector<Section>& sections) {
  io::AtomicFileWriter writer(path, "checkpoint");
  writer.Write(kMagicV2, sizeof(kMagicV2));
  const uint64_t count = sections.size();
  writer.Write(&count, sizeof(count));
  for (const auto& [name, payload] : sections) {
    std::vector<uint8_t> header;
    AppendString(&header, name);
    AppendU64(&header, payload.size());
    const uint32_t crc = io::Crc32(payload.data(), payload.size());
    AppendBytes(&header, &crc, sizeof(crc));
    writer.Write(header.data(), static_cast<int64_t>(header.size()));
    writer.Write(payload.data(), static_cast<int64_t>(payload.size()));
  }
  if (!writer.Commit()) {
    D2_LOG(ERROR) << "failed to save checkpoint " << path << " ("
                  << writer.error() << "); previous checkpoint, if any, is "
                  << "intact";
    return false;
  }
  return true;
}

// Shared loader. `state` may be null (model-only load); `require_state`
// demands the training sections be present.
bool LoadImpl(nn::Module* module, TrainingCheckpoint* state,
              const std::string& path, bool require_state) {
  if (module == nullptr) return false;
  if (state != nullptr) *state = TrainingCheckpoint();
  std::vector<uint8_t> bytes;
  if (!io::ReadFileBytes(path, &bytes)) return false;
  if (bytes.size() < sizeof(kMagicV2)) {
    D2_LOG(ERROR) << path << " is not a d2stgnn checkpoint (too short)";
    return false;
  }

  // v1: model-only body, no CRC. Still loaded via staging so a mid-file
  // mismatch can no longer leave the module partially updated.
  if (std::memcmp(bytes.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    if (require_state) {
      D2_LOG(ERROR) << path << " is a v1 (model-only) checkpoint; it has no "
                    << "training state to resume from";
      return false;
    }
    Cursor cursor(bytes.data() + sizeof(kMagicV1),
                  bytes.size() - sizeof(kMagicV1));
    std::vector<std::vector<float>> staging;
    if (!ParseAndValidateParams(cursor, *module, path, &staging)) return false;
    CommitParams(module, staging);
    return true;
  }

  if (std::memcmp(bytes.data(), kMagicV2, sizeof(kMagicV2)) != 0) {
    D2_LOG(ERROR) << path << " is not a d2stgnn checkpoint";
    return false;
  }

  std::vector<SectionView> sections;
  if (!ParseV2Sections(bytes, path, &sections)) return false;

  const SectionView* params_section = FindSection(sections, "params");
  if (params_section == nullptr) {
    D2_LOG(ERROR) << path << " has no params section";
    return false;
  }
  std::vector<std::vector<float>> staging;
  if (!ParseAndValidateParams(
          Cursor(params_section->data, params_section->size), *module, path,
          &staging)) {
    return false;
  }

  // Stage the training sections before committing anything.
  TrainingCheckpoint staged_state;
  bool has_state = false;
  if (state != nullptr || require_state) {
    const SectionView* optimizer = FindSection(sections, "optimizer");
    const SectionView* trainer = FindSection(sections, "trainer");
    const SectionView* rng = FindSection(sections, "rng");
    has_state = optimizer != nullptr && trainer != nullptr && rng != nullptr;
    if (require_state && !has_state) {
      D2_LOG(ERROR) << path << " is a model-only checkpoint; it has no "
                    << "training state to resume from";
      return false;
    }
    if (has_state) {
      if (!ParseOptimizerPayload(Cursor(optimizer->data, optimizer->size),
                                 &staged_state.optimizer) ||
          !ParseTrainerPayload(Cursor(trainer->data, trainer->size),
                               &staged_state.progress) ||
          !ParseRngPayload(Cursor(rng->data, rng->size),
                           &staged_state.shuffle_rng)) {
        D2_LOG(ERROR) << path << ": malformed training-state section";
        return false;
      }
      const SectionView* best = FindSection(sections, "best_params");
      if (best != nullptr &&
          !ParseBestParamsPayload(Cursor(best->data, best->size),
                                  &staged_state.best_params)) {
        D2_LOG(ERROR) << path << ": malformed best_params section";
        return false;
      }
    }
  }

  // Everything validated — commit.
  CommitParams(module, staging);
  if (state != nullptr && has_state) *state = std::move(staged_state);
  return !require_state || has_state;
}

}  // namespace

bool SaveCheckpoint(const nn::Module& module, const std::string& path) {
  std::vector<Section> sections;
  sections.emplace_back("params", BuildParamsPayload(module));
  return WriteCheckpointFile(path, sections);
}

bool LoadCheckpoint(nn::Module* module, const std::string& path) {
  return LoadImpl(module, nullptr, path, /*require_state=*/false);
}

bool SaveTrainingCheckpoint(const nn::Module& module,
                            const TrainingCheckpoint& state,
                            const std::string& path) {
  std::vector<Section> sections;
  sections.emplace_back("params", BuildParamsPayload(module));
  sections.emplace_back("optimizer", BuildOptimizerPayload(state.optimizer));
  sections.emplace_back("trainer", BuildTrainerPayload(state.progress));
  sections.emplace_back("rng", BuildRngPayload(state.shuffle_rng));
  if (!state.best_params.empty()) {
    sections.emplace_back("best_params",
                          BuildBestParamsPayload(state.best_params));
  }
  return WriteCheckpointFile(path, sections);
}

bool LoadTrainingCheckpoint(nn::Module* module, TrainingCheckpoint* state,
                            const std::string& path) {
  if (state == nullptr) return false;
  return LoadImpl(module, state, path, /*require_state=*/true);
}

std::string CheckpointPathForStep(const std::string& dir, int64_t step) {
  char name[40];
  std::snprintf(name, sizeof(name), "%s%09lld%s", kEpochPrefix,
                static_cast<long long>(step), kEpochSuffix);
  return dir + "/" + name;
}

std::string BestCheckpointPath(const std::string& dir) {
  return dir + "/best" + kEpochSuffix;
}

namespace {

// Epoch checkpoint filenames in `dir`, sorted ascending (zero-padded names
// make lexicographic order epoch order).
std::vector<std::string> ListEpochCheckpoints(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  const std::string prefix = kEpochPrefix;
  const std::string suffix = kEpochSuffix;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;  // skips in-flight ".tmp.<pid>" files
    }
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace

std::string LatestCheckpoint(const std::string& dir) {
  const std::vector<std::string> names = ListEpochCheckpoints(dir);
  if (names.empty()) return std::string();
  return dir + "/" + names.back();
}

void PruneCheckpoints(const std::string& dir, int64_t keep_last) {
  if (keep_last <= 0) return;
  const std::vector<std::string> names = ListEpochCheckpoints(dir);
  if (static_cast<int64_t>(names.size()) <= keep_last) return;
  const size_t remove_count = names.size() - static_cast<size_t>(keep_last);
  for (size_t i = 0; i < remove_count; ++i) {
    const std::string path = dir + "/" + names[i];
    if (::unlink(path.c_str()) != 0) {
      D2_LOG(WARNING) << "could not remove old checkpoint " << path;
    }
  }
}

}  // namespace d2stgnn::train
