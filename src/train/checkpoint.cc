#include "train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace d2stgnn::train {
namespace {

constexpr char kMagic[8] = {'D', '2', 'C', 'K', 'P', 'T', '0', '1'};

void WriteU64(std::ofstream& out, uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadU64(std::ifstream& in, uint64_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

}  // namespace

bool SaveCheckpoint(const nn::Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    D2_LOG(ERROR) << "cannot open checkpoint " << path << " for writing";
    return false;
  }
  const auto params = module.NamedParameters();
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, static_cast<uint64_t>(params.size()));
  for (const auto& [name, tensor] : params) {
    WriteU64(out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const std::vector<float>& data = tensor.Data();
    WriteU64(out, static_cast<uint64_t>(data.size()));
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) {
    D2_LOG(ERROR) << "short write to checkpoint " << path;
    return false;
  }
  return true;
}

bool LoadCheckpoint(nn::Module* module, const std::string& path) {
  if (module == nullptr) return false;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    D2_LOG(ERROR) << "cannot open checkpoint " << path;
    return false;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    D2_LOG(ERROR) << path << " is not a d2stgnn checkpoint";
    return false;
  }
  uint64_t count;
  if (!ReadU64(in, &count)) return false;

  auto params = module->NamedParameters();
  if (count != params.size()) {
    D2_LOG(ERROR) << "checkpoint has " << count << " parameters, module has "
                  << params.size();
    return false;
  }
  for (auto& [name, tensor] : params) {
    uint64_t name_len;
    if (!ReadU64(in, &name_len)) return false;
    std::string saved_name(name_len, '\0');
    in.read(saved_name.data(), static_cast<std::streamsize>(name_len));
    if (!in || saved_name != name) {
      D2_LOG(ERROR) << "parameter name mismatch: checkpoint '" << saved_name
                    << "' vs module '" << name << "'";
      return false;
    }
    uint64_t numel;
    if (!ReadU64(in, &numel)) return false;
    if (numel != tensor.Data().size()) {
      D2_LOG(ERROR) << "parameter '" << name << "' size mismatch: "
                    << numel << " vs " << tensor.Data().size();
      return false;
    }
    in.read(reinterpret_cast<char*>(tensor.Data().data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in) {
      D2_LOG(ERROR) << "truncated checkpoint " << path;
      return false;
    }
  }
  return true;
}

}  // namespace d2stgnn::train
