#include "train/evaluator.h"

#include <chrono>
#include <cmath>

#include "common/check.h"
#include "tensor/buffer_arena.h"
#include "tensor/ops.h"

namespace d2stgnn::train {
namespace {

// Accumulates sufficient statistics for masked metrics.
struct Accumulator {
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  int64_t ape_count = 0;

  void Add(const float* pred, const float* truth, int64_t n,
           float null_value) {
    for (int64_t i = 0; i < n; ++i) {
      if (truth[i] == null_value) continue;
      const double err = static_cast<double>(pred[i]) - truth[i];
      abs_sum += std::fabs(err);
      sq_sum += err * err;
      ++count;
      if (std::fabs(truth[i]) > 1e-2f) {
        ape_sum += std::fabs(err) / std::fabs(truth[i]);
        ++ape_count;
      }
    }
  }

  metrics::MetricSet Finish() const {
    metrics::MetricSet m;
    m.count = count;
    if (count > 0) {
      m.mae = abs_sum / static_cast<double>(count);
      m.rmse = std::sqrt(sq_sum / static_cast<double>(count));
    }
    if (ape_count > 0) m.mape = ape_sum / static_cast<double>(ape_count);
    return m;
  }
};

// Adds one [B, Tf, N, ...] prediction/truth pair into per-horizon
// accumulators.
void AccumulateHorizons(const Tensor& prediction, const Tensor& truth,
                        const std::vector<int64_t>& horizons,
                        float null_value, std::vector<Accumulator>* accs) {
  D2_CHECK(prediction.shape() == truth.shape());
  D2_CHECK_GE(prediction.dim(), 3);
  const int64_t batch = prediction.size(0);
  const int64_t steps = prediction.size(1);
  const int64_t inner = prediction.numel() / (batch * steps);
  const float* p = prediction.Data().data();
  const float* t = truth.Data().data();
  for (size_t h = 0; h < horizons.size(); ++h) {
    const int64_t step = horizons[h] - 1;  // 1-based horizon
    D2_CHECK_GE(step, 0);
    D2_CHECK_LT(step, steps);
    for (int64_t b = 0; b < batch; ++b) {
      const int64_t offset = (b * steps + step) * inner;
      (*accs)[h].Add(p + offset, t + offset, inner, null_value);
    }
  }
}

}  // namespace

std::vector<HorizonMetrics> EvaluateHorizons(
    ForecastingModel* model, const data::StandardScaler* scaler,
    data::WindowDataLoader* loader, const std::vector<int64_t>& horizons,
    float null_value, EvaluationTiming* timing) {
  D2_CHECK(model != nullptr);
  D2_CHECK(loader != nullptr);
  using clock = std::chrono::steady_clock;
  const auto pass_start = clock::now();
  model->SetTraining(false);
  // Inference mode: no tape, and after the first batch every forward reuses
  // the first batch's buffers instead of allocating.
  InferenceModeGuard inference_mode;
  std::vector<Accumulator> accs(horizons.size());
  std::vector<double> forward_ms;
  // Batch assembly runs on the pool; Forward stays sequential (models are
  // not required to be reentrant) but its kernels parallelize internally.
  const std::vector<data::Batch> batches = loader->AssembleAllBatches();
  forward_ms.reserve(batches.size());
  for (const data::Batch& batch : batches) {
    const auto start = clock::now();
    const Tensor prediction = scaler->InverseTransform(model->Forward(batch));
    forward_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count());
    AccumulateHorizons(prediction, batch.y, horizons, null_value, &accs);
  }
  model->SetTraining(true);
  if (timing != nullptr) {
    timing->forward_ms = metrics::SummarizeLatencies(forward_ms);
    timing->total_seconds =
        std::chrono::duration<double>(clock::now() - pass_start).count();
    timing->batches = static_cast<int64_t>(batches.size());
  }
  std::vector<HorizonMetrics> out(horizons.size());
  for (size_t h = 0; h < horizons.size(); ++h) {
    out[h].horizon = horizons[h];
    out[h].metrics = accs[h].Finish();
  }
  return out;
}

std::vector<HorizonMetrics> EvaluatePredictionHorizons(
    const Tensor& prediction, const Tensor& truth,
    const std::vector<int64_t>& horizons, float null_value) {
  std::vector<Accumulator> accs(horizons.size());
  AccumulateHorizons(prediction, truth, horizons, null_value, &accs);
  std::vector<HorizonMetrics> out(horizons.size());
  for (size_t h = 0; h < horizons.size(); ++h) {
    out[h].horizon = horizons[h];
    out[h].metrics = accs[h].Finish();
  }
  return out;
}

Tensor CollectPredictions(ForecastingModel* model,
                          const data::StandardScaler* scaler,
                          data::WindowDataLoader* loader) {
  D2_CHECK(model != nullptr);
  D2_CHECK(loader != nullptr);
  model->SetTraining(false);
  NoGradGuard no_grad;
  // No arena here: the chunks all survive until the final Concat, so pooling
  // would only grow the pool without ever reusing a buffer.
  std::vector<Tensor> chunks;
  const std::vector<data::Batch> batches = loader->AssembleAllBatches();
  for (const data::Batch& batch : batches) {
    chunks.push_back(scaler->InverseTransform(model->Forward(batch)));
  }
  model->SetTraining(true);
  return Concat(chunks, 0);
}

}  // namespace d2stgnn::train
