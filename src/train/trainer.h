#ifndef D2STGNN_TRAIN_TRAINER_H_
#define D2STGNN_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "data/scaler.h"
#include "data/sliding_window.h"
#include "metrics/metrics.h"
#include "train/forecasting_model.h"

namespace d2stgnn::train {

/// Knobs of the shared training loop (paper Sec. 5.4/6.1 defaults).
struct TrainerOptions {
  int64_t epochs = 20;
  float learning_rate = 1e-3f;  ///< Adam, as in the paper
  float weight_decay = 0.0f;
  float clip_norm = 5.0f;
  /// Curriculum learning (Sec. 5.4): supervise only the first `horizon`
  /// steps, adding one step every `curriculum_step` optimizer updates.
  /// 0 = auto: the full horizon is reached after ~40% of all updates.
  bool curriculum_learning = true;
  int64_t curriculum_step = 0;
  /// Early stopping patience in epochs (0 disables); the best-validation
  /// parameters are restored at the end.
  int64_t patience = 6;
  /// Ground-truth value marking missing data (masked from the loss).
  float null_value = 0.0f;
  /// Seed for epoch shuffling.
  uint64_t seed = 7;
  /// Log a line per epoch.
  bool verbose = false;
};

/// Per-epoch training record.
struct EpochStats {
  double train_loss = 0.0;         ///< mean masked MAE over batches
  metrics::MetricSet validation;   ///< on the validation split
  double seconds = 0.0;            ///< wall-clock time of the epoch
};

/// Result of Trainer::Fit.
struct FitResult {
  std::vector<EpochStats> history;
  int64_t best_epoch = -1;
  double best_val_mae = 0.0;
  double mean_epoch_seconds = 0.0;  ///< training time only (Figure 6)
};

/// Trains a ForecastingModel with Adam + masked MAE + curriculum learning +
/// early stopping — the paper's recipe, shared across D²STGNN and all deep
/// baselines for fairness.
class Trainer {
 public:
  /// Borrows all pointers; they must outlive the call to Fit.
  Trainer(ForecastingModel* model, const data::StandardScaler* scaler,
          const TrainerOptions& options);

  /// Runs the training loop. `val` may be null (no validation / early
  /// stopping).
  FitResult Fit(data::WindowDataLoader* train_loader,
                data::WindowDataLoader* val_loader);

  /// Evaluates masked metrics of `model` on a loader (whole horizon).
  metrics::MetricSet Evaluate(data::WindowDataLoader* loader) const;

 private:
  ForecastingModel* model_;
  const data::StandardScaler* scaler_;
  TrainerOptions options_;
};

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_TRAINER_H_
