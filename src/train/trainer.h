#ifndef D2STGNN_TRAIN_TRAINER_H_
#define D2STGNN_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/scaler.h"
#include "data/sliding_window.h"
#include "metrics/metrics.h"
#include "train/forecasting_model.h"

namespace d2stgnn::train {

/// Knobs of the shared training loop (paper Sec. 5.4/6.1 defaults).
struct TrainerOptions {
  int64_t epochs = 20;
  float learning_rate = 1e-3f;  ///< Adam, as in the paper
  float weight_decay = 0.0f;
  float clip_norm = 5.0f;
  /// Curriculum learning (Sec. 5.4): supervise only the first `horizon`
  /// steps, adding one step every `curriculum_step` optimizer updates.
  /// 0 = auto: the full horizon is reached after ~40% of all updates.
  bool curriculum_learning = true;
  int64_t curriculum_step = 0;
  /// Early stopping patience in epochs (0 disables); the best-validation
  /// parameters are restored at the end.
  int64_t patience = 6;
  /// Ground-truth value marking missing data (masked from the loss).
  float null_value = 0.0f;
  /// Seed for epoch shuffling.
  uint64_t seed = 7;
  /// Log a line per epoch.
  bool verbose = false;

  // --- fault tolerance (see DESIGN.md §8) ---
  /// Directory for periodic full-state checkpoints ("" disables
  /// checkpointing). Created by the caller; files inside are managed by
  /// the trainer (write + retention pruning).
  std::string checkpoint_dir;
  /// Epochs between periodic checkpoints when `checkpoint_dir` is set.
  int64_t checkpoint_every = 1;
  /// Retention: keep the newest N periodic checkpoints plus the best-
  /// validation checkpoint. <= 0 keeps everything.
  int64_t keep_checkpoints = 3;
  /// Path of a full-state checkpoint to resume from ("" = fresh run).
  /// The resumed run reproduces the uninterrupted run bitwise (same
  /// options, data, and thread count — see the determinism contract in
  /// common/thread_pool.h).
  std::string resume_from;
  /// Install cooperative SIGINT/SIGTERM handlers for the duration of Fit:
  /// on the first signal the current batch finishes, a mid-epoch
  /// checkpoint is written (when `checkpoint_dir` is set), and Fit
  /// returns a clean FitResult with StopReason::kInterrupted.
  bool handle_signals = false;
  /// Divergence recovery: when a non-finite loss or gradient norm shows
  /// up, roll back to the state at the start of the epoch, scale the
  /// learning rate by `lr_decay_on_divergence`, and retry the epoch — at
  /// most `max_divergence_retries` times across the whole run before Fit
  /// gives up with StopReason::kDiverged.
  int64_t max_divergence_retries = 3;
  float lr_decay_on_divergence = 0.5f;
};

/// Per-epoch training record.
struct EpochStats {
  double train_loss = 0.0;         ///< mean masked MAE over batches
  metrics::MetricSet validation;   ///< on the validation split
  double seconds = 0.0;            ///< wall-clock time of the epoch
};

/// Why Trainer::Fit returned.
enum class StopReason {
  kCompleted = 0,  ///< ran every epoch
  kEarlyStopped,   ///< validation patience exhausted
  kInterrupted,    ///< cooperative SIGINT/SIGTERM (or RequestStop)
  kDiverged,       ///< non-finite loss survived every recovery retry
  kResumeFailed,   ///< `resume_from` could not be loaded; nothing ran
};

/// Human-readable name of a StopReason ("completed", "interrupted", ...).
const char* StopReasonName(StopReason reason);

/// Result of Trainer::Fit. After a resume, `history` covers the whole run
/// (restored epochs plus the ones executed now) and `start_epoch` marks
/// where this invocation picked up.
struct FitResult {
  std::vector<EpochStats> history;
  int64_t best_epoch = -1;
  double best_val_mae = 0.0;
  double mean_epoch_seconds = 0.0;  ///< training time only (Figure 6)
  StopReason stop_reason = StopReason::kCompleted;
  int64_t start_epoch = 0;
  /// Divergence-recovery rollbacks performed during this invocation.
  int64_t divergence_rollbacks = 0;
  /// Checkpoint written on interruption ("" unless kInterrupted with a
  /// checkpoint_dir) — pass it back as `resume_from` to continue.
  std::string interrupt_checkpoint;
};

/// Requests a cooperative stop of any in-flight Fit (async-signal-safe;
/// this is what the SIGINT/SIGTERM handlers call). The trainer finishes
/// the current batch, checkpoints, and returns kInterrupted.
void RequestStop();

/// True once a stop has been requested and not yet consumed by Fit.
bool StopRequested();

/// Clears the stop flag (Fit does this on entry and after honoring one).
void ClearStopRequest();

/// Trains a ForecastingModel with Adam + masked MAE + curriculum learning +
/// early stopping — the paper's recipe, shared across D²STGNN and all deep
/// baselines for fairness.
class Trainer {
 public:
  /// Borrows all pointers; they must outlive the call to Fit.
  Trainer(ForecastingModel* model, const data::StandardScaler* scaler,
          const TrainerOptions& options);

  /// Runs the training loop. `val` may be null (no validation / early
  /// stopping).
  FitResult Fit(data::WindowDataLoader* train_loader,
                data::WindowDataLoader* val_loader);

  /// Evaluates masked metrics of `model` on a loader (whole horizon).
  metrics::MetricSet Evaluate(data::WindowDataLoader* loader) const;

 private:
  ForecastingModel* model_;
  const data::StandardScaler* scaler_;
  TrainerOptions options_;
};

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_TRAINER_H_
