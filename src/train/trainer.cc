#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "optim/adam.h"
#include "tensor/checker.h"
#include "tensor/ops.h"
#include "tensor/tape_analyzer.h"

namespace d2stgnn::train {
namespace {

// Snapshot / restore of parameter data for early stopping.
std::vector<std::vector<float>> SnapshotParams(const nn::Module& model) {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : model.Parameters()) snapshot.push_back(p.Data());
  return snapshot;
}

void RestoreParams(nn::Module& model,
                   const std::vector<std::vector<float>>& snapshot) {
  std::vector<Tensor> params = model.Parameters();
  D2_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    D2_CHECK_EQ(params[i].Data().size(), snapshot[i].size());
    params[i].Data() = snapshot[i];
  }
}

}  // namespace

Trainer::Trainer(ForecastingModel* model, const data::StandardScaler* scaler,
                 const TrainerOptions& options)
    : model_(model), scaler_(scaler), options_(options) {
  D2_CHECK(model != nullptr);
  D2_CHECK(scaler != nullptr);
  D2_CHECK_GT(options.epochs, 0);
}

FitResult Trainer::Fit(data::WindowDataLoader* train_loader,
                       data::WindowDataLoader* val_loader) {
  D2_CHECK(train_loader != nullptr);
  optim::Adam optimizer(model_->Parameters(), options_.learning_rate, 0.9f,
                        0.999f, 1e-8f, options_.weight_decay);
  Rng shuffle_rng(options_.seed);

  FitResult result;
  std::vector<std::vector<float>> best_params;
  int64_t epochs_without_improvement = 0;
  int64_t updates = 0;
  double total_train_seconds = 0.0;
  const int64_t horizon = model_->horizon();
  int64_t curriculum_step = options_.curriculum_step;
  if (curriculum_step <= 0) {
    // Auto: reach the full horizon after ~40% of all updates so the late
    // horizons still receive most of the training signal.
    const int64_t total_updates =
        options_.epochs * train_loader->NumBatches();
    curriculum_step = std::max<int64_t>(1, total_updates * 2 / (5 * horizon));
  }

  // Correctness instrumentation: with the numerics sentinel on, every op
  // output and gradient buffer is scanned (see tensor/checker.h) and the
  // diagnostic of a failing step names the epoch/batch via the context
  // stack. Debug builds additionally validate the autograd tape after each
  // step.
  const bool check_numerics = CheckNumericsEnabled();
  if (check_numerics && options_.verbose) {
    D2_LOG(INFO) << "numerics sentinel active (D2STGNN_CHECK_NUMERICS)";
  }
#ifndef NDEBUG
  TapeWatchdog tape_watchdog;
#endif

  for (int64_t epoch = 0; epoch < options_.epochs; ++epoch) {
    model_->SetTraining(true);
    train_loader->Shuffle(shuffle_rng);
    Stopwatch epoch_timer;
    double loss_sum = 0.0;
    // Batch assembly is embarrassingly parallel; the optimizer steps below
    // stay sequential (each update depends on the previous parameters).
    const std::vector<data::Batch> batches =
        train_loader->AssembleAllBatches();
    const int64_t num_batches = static_cast<int64_t>(batches.size());
    for (int64_t b = 0; b < num_batches; ++b) {
      const data::Batch& batch = batches[static_cast<size_t>(b)];
      std::optional<ScopedCheckContext> check_context;
      if (check_numerics) {
        check_context.emplace("training step: epoch " + std::to_string(epoch) +
                              " batch " + std::to_string(b) + " of " +
                              model_->name());
      }
      Tensor prediction = scaler_->InverseTransform(model_->Forward(batch));

      // Curriculum learning: supervise a prefix of the horizon that grows
      // with the number of updates (Sec. 5.4).
      int64_t supervised = horizon;
      if (options_.curriculum_learning) {
        supervised = std::min<int64_t>(horizon, 1 + updates / curriculum_step);
      }
      Tensor target = batch.y;
      if (supervised < horizon) {
        prediction = Slice(prediction, 1, 0, supervised);
        target = Slice(target, 1, 0, supervised);
      }

      Tensor loss =
          metrics::MaskedMaeLoss(prediction, target, options_.null_value);
      optimizer.ZeroGrad();
      loss.Backward();
      if (options_.clip_norm > 0.0f) {
        optim::ClipGradNorm(optimizer.params(), options_.clip_norm);
      }
      optimizer.Step();
      ++updates;
      const float loss_value = loss.Item();
      if (check_numerics && !std::isfinite(loss_value)) {
        // Ops that bypass the dispatch layer could still poison the loss;
        // fail the step here rather than training on garbage.
        D2_CHECK(false) << "non-finite training loss " << loss_value
                        << " at epoch " << epoch << " batch " << b;
      }
#ifndef NDEBUG
      const TapeReport tape_report = tape_watchdog.EndStep(loss);
      for (const TapeIssue& issue : tape_report.issues) {
        D2_LOG(WARNING) << "tape analyzer [" << issue.kind
                        << "] at epoch " << epoch << " batch " << b << ": "
                        << issue.detail;
      }
#endif
      loss_sum += loss_value;
    }

    EpochStats stats;
    stats.seconds = epoch_timer.ElapsedSeconds();
    total_train_seconds += stats.seconds;
    stats.train_loss = loss_sum / static_cast<double>(num_batches);
    if (val_loader != nullptr) stats.validation = Evaluate(val_loader);
    result.history.push_back(stats);

    if (options_.verbose) {
      D2_LOG(INFO) << model_->name() << " epoch " << epoch << ": train_mae="
                   << stats.train_loss
                   << " val_mae=" << stats.validation.mae << " ("
                   << stats.seconds << "s)";
    }

    if (val_loader != nullptr) {
      const bool improved = result.best_epoch < 0 ||
                            stats.validation.mae < result.best_val_mae;
      if (improved) {
        result.best_epoch = epoch;
        result.best_val_mae = stats.validation.mae;
        best_params = SnapshotParams(*model_);
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
        if (options_.patience > 0 &&
            epochs_without_improvement >= options_.patience) {
          if (options_.verbose) {
            D2_LOG(INFO) << "early stopping at epoch " << epoch;
          }
          break;
        }
      }
    }
  }

  if (!best_params.empty()) RestoreParams(*model_, best_params);
  result.mean_epoch_seconds =
      total_train_seconds / static_cast<double>(result.history.size());
  return result;
}

metrics::MetricSet Trainer::Evaluate(data::WindowDataLoader* loader) const {
  D2_CHECK(loader != nullptr);
  model_->SetTraining(false);
  NoGradGuard no_grad;
  // Accumulate sufficient statistics across batches.
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  const std::vector<data::Batch> batches = loader->AssembleAllBatches();
  for (const data::Batch& batch : batches) {
    const Tensor prediction =
        scaler_->InverseTransform(model_->Forward(batch));
    const metrics::MetricSet m = metrics::ComputeMetrics(
        prediction, batch.y, options_.null_value);
    abs_sum += m.mae * static_cast<double>(m.count);
    sq_sum += m.rmse * m.rmse * static_cast<double>(m.count);
    ape_sum += m.mape * static_cast<double>(m.count);
    count += m.count;
  }
  model_->SetTraining(true);
  metrics::MetricSet total;
  total.count = count;
  if (count > 0) {
    total.mae = abs_sum / static_cast<double>(count);
    total.rmse = std::sqrt(sq_sum / static_cast<double>(count));
    total.mape = ape_sum / static_cast<double>(count);
  }
  return total;
}

}  // namespace d2stgnn::train
