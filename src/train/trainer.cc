#include "train/trainer.h"

#include <csignal>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "optim/adam.h"
#include "tensor/buffer_arena.h"
#include "tensor/checker.h"
#include "tensor/ops.h"
#include "tensor/tape_analyzer.h"
#include "train/checkpoint.h"

namespace d2stgnn::train {
namespace {

// Snapshot / restore of parameter data for early stopping and divergence
// rollback.
std::vector<std::vector<float>> SnapshotParams(const nn::Module& model) {
  std::vector<std::vector<float>> snapshot;
  for (const Tensor& p : model.Parameters()) snapshot.push_back(p.Data());
  return snapshot;
}

void RestoreParams(nn::Module& model,
                   const std::vector<std::vector<float>>& snapshot) {
  std::vector<Tensor> params = model.Parameters();
  D2_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    D2_CHECK_EQ(params[i].Data().size(), snapshot[i].size());
    params[i].Data() = snapshot[i];
  }
}

// True when every gradient is finite (divergence detection when gradient
// clipping — whose norm doubles as the check — is disabled).
bool GradsFinite(const std::vector<Tensor>& params) {
  double sum_sq = 0.0;
  for (const Tensor& p : params) {
    for (float g : p.GradData()) sum_sq += static_cast<double>(g) * g;
  }
  return std::isfinite(sum_sq);
}

// Fault-injection support: overwrite one gradient value with NaN, as a
// numerical blow-up would (tests arm the "trainer.nan_grad" point).
void PoisonFirstGradient(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) {
    auto& grad = p.impl()->grad;
    if (!grad.empty()) {
      grad[0] = std::numeric_limits<float>::quiet_NaN();
      return;
    }
  }
}

// Cooperative-stop flag. Signal handlers may only touch lock-free atomics,
// which std::atomic<int> is on every target platform.
std::atomic<int> g_stop_requested{0};

void OnStopSignal(int /*signum*/) {
  g_stop_requested.store(1, std::memory_order_relaxed);
}

// Installs SIGINT/SIGTERM handlers for the lifetime of one Fit call and
// restores whatever was there before.
class ScopedStopSignalHandlers {
 public:
  ScopedStopSignalHandlers() {
    struct sigaction action {};
    action.sa_handler = OnStopSignal;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGINT, &action, &old_int_);
    ::sigaction(SIGTERM, &action, &old_term_);
  }
  ~ScopedStopSignalHandlers() {
    ::sigaction(SIGINT, &old_int_, nullptr);
    ::sigaction(SIGTERM, &old_term_, nullptr);
  }
  ScopedStopSignalHandlers(const ScopedStopSignalHandlers&) = delete;
  ScopedStopSignalHandlers& operator=(const ScopedStopSignalHandlers&) =
      delete;

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// Outcome of one attempt at an epoch.
enum class EpochOutcome { kOk, kRetry, kDiverged, kInterrupted };

}  // namespace

void RequestStop() { g_stop_requested.store(1, std::memory_order_relaxed); }

bool StopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed) != 0;
}

void ClearStopRequest() {
  g_stop_requested.store(0, std::memory_order_relaxed);
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kCompleted:
      return "completed";
    case StopReason::kEarlyStopped:
      return "early-stopped";
    case StopReason::kInterrupted:
      return "interrupted";
    case StopReason::kDiverged:
      return "diverged";
    case StopReason::kResumeFailed:
      return "resume-failed";
  }
  return "unknown";
}

Trainer::Trainer(ForecastingModel* model, const data::StandardScaler* scaler,
                 const TrainerOptions& options)
    : model_(model), scaler_(scaler), options_(options) {
  D2_CHECK(model != nullptr);
  D2_CHECK(scaler != nullptr);
  D2_CHECK_GT(options.epochs, 0);
}

FitResult Trainer::Fit(data::WindowDataLoader* train_loader,
                       data::WindowDataLoader* val_loader) {
  D2_CHECK(train_loader != nullptr);
  ClearStopRequest();
  std::optional<ScopedStopSignalHandlers> signal_guard;
  if (options_.handle_signals) signal_guard.emplace();

  optim::Adam optimizer(model_->Parameters(), options_.learning_rate, 0.9f,
                        0.999f, 1e-8f, options_.weight_decay);
  Rng shuffle_rng(options_.seed);

  FitResult result;
  std::vector<std::vector<float>> best_params;
  int64_t epochs_without_improvement = 0;
  int64_t updates = 0;
  int64_t start_epoch = 0;
  int64_t resume_batch = 0;
  double resume_loss_sum = 0.0;
  const int64_t horizon = model_->horizon();
  int64_t curriculum_step = options_.curriculum_step;
  if (curriculum_step <= 0) {
    // Auto: reach the full horizon after ~40% of all updates so the late
    // horizons still receive most of the training signal.
    const int64_t total_updates =
        options_.epochs * train_loader->NumBatches();
    curriculum_step = std::max<int64_t>(1, total_updates * 2 / (5 * horizon));
  }

  // Resume: restore the full training state saved by a previous run. With
  // the same options, data, and thread count the continued run is bitwise
  // identical to one that was never interrupted.
  if (!options_.resume_from.empty()) {
    TrainingCheckpoint ckpt;
    if (!LoadTrainingCheckpoint(model_, &ckpt, options_.resume_from) ||
        !optimizer.ImportState(ckpt.optimizer)) {
      D2_LOG(ERROR) << "cannot resume training from " << options_.resume_from;
      result.stop_reason = StopReason::kResumeFailed;
      return result;
    }
    shuffle_rng.SetState(ckpt.shuffle_rng);
    updates = ckpt.progress.updates;
    if (ckpt.progress.curriculum_step > 0) {
      curriculum_step = ckpt.progress.curriculum_step;
    }
    start_epoch = ckpt.progress.next_epoch;
    resume_batch = ckpt.progress.next_batch;
    resume_loss_sum = ckpt.progress.partial_loss_sum;
    result.history = ckpt.progress.history;
    result.best_epoch = ckpt.progress.best_epoch;
    result.best_val_mae = ckpt.progress.best_val_mae;
    epochs_without_improvement = ckpt.progress.epochs_without_improvement;
    best_params = std::move(ckpt.best_params);
    if (options_.verbose) {
      D2_LOG(INFO) << model_->name() << ": resumed from "
                   << options_.resume_from << " at epoch " << start_epoch
                   << " batch " << resume_batch << " (" << updates
                   << " updates)";
    }
  }
  result.start_epoch = start_epoch;

  // Correctness instrumentation: with the numerics sentinel on, every op
  // output and gradient buffer is scanned (see tensor/checker.h) and the
  // diagnostic of a failing step names the epoch/batch via the context
  // stack. Debug builds additionally validate the autograd tape after each
  // step.
  const bool check_numerics = CheckNumericsEnabled();
  if (check_numerics && options_.verbose) {
    D2_LOG(INFO) << "numerics sentinel active (D2STGNN_CHECK_NUMERICS)";
  }
#ifndef NDEBUG
  TapeWatchdog tape_watchdog;
#endif

  // Assembles the progress record for a checkpoint at (next_epoch,
  // next_batch).
  const auto make_progress = [&](int64_t next_epoch, int64_t next_batch,
                                 double partial_loss_sum) {
    TrainerProgress progress;
    progress.next_epoch = next_epoch;
    progress.next_batch = next_batch;
    progress.updates = updates;
    progress.curriculum_step = curriculum_step;
    progress.partial_loss_sum = partial_loss_sum;
    progress.best_epoch = result.best_epoch;
    progress.best_val_mae = result.best_val_mae;
    progress.epochs_without_improvement = epochs_without_improvement;
    progress.history = result.history;
    return progress;
  };
  const auto save_checkpoint = [&](const std::string& path,
                                   const RngState& rng_state,
                                   TrainerProgress progress) {
    TrainingCheckpoint ckpt;
    ckpt.optimizer = optimizer.ExportState();
    ckpt.progress = std::move(progress);
    ckpt.shuffle_rng = rng_state;
    ckpt.best_params = best_params;
    return SaveTrainingCheckpoint(*model_, ckpt, path);
  };

  int64_t divergence_retries_left = options_.max_divergence_retries;

  for (int64_t epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    const int64_t first_batch = epoch == start_epoch ? resume_batch : 0;
    const double initial_loss_sum =
        epoch == start_epoch ? resume_loss_sum : 0.0;

    double loss_sum = 0.0;
    int64_t num_batches = 0;
    double epoch_seconds = 0.0;
    EpochOutcome outcome;
    do {
      outcome = EpochOutcome::kOk;
      // Rollback point for divergence recovery: the complete state at the
      // start of this epoch attempt. Restoring it and re-running (with a
      // smaller LR) reproduces the same shuffle and batch order.
      const RngState pre_shuffle = shuffle_rng.GetState();
      const std::vector<std::vector<float>> rollback_params =
          SnapshotParams(*model_);
      const optim::OptimizerState rollback_optimizer =
          optimizer.ExportState();
      const int64_t rollback_updates = updates;

      model_->SetTraining(true);
      train_loader->Shuffle(shuffle_rng);
      Stopwatch epoch_timer;
      loss_sum = initial_loss_sum;
      // Batch assembly is embarrassingly parallel; the optimizer steps
      // below stay sequential (each update depends on the previous
      // parameters).
      const std::vector<data::Batch> batches =
          train_loader->AssembleAllBatches();
      num_batches = static_cast<int64_t>(batches.size());
      for (int64_t b = first_batch; b < num_batches; ++b) {
        // Scripted crash point for crash-safety tests (no-op when the
        // fault registry is empty).
        fault::ConsumeFault("trainer.batch");
        const data::Batch& batch = batches[static_cast<size_t>(b)];
        std::optional<ScopedCheckContext> check_context;
        if (check_numerics) {
          check_context.emplace("training step: epoch " +
                                std::to_string(epoch) + " batch " +
                                std::to_string(b) + " of " + model_->name());
        }
        Tensor prediction =
            scaler_->InverseTransform(model_->Forward(batch));

        // Curriculum learning: supervise a prefix of the horizon that
        // grows with the number of updates (Sec. 5.4).
        int64_t supervised = horizon;
        if (options_.curriculum_learning) {
          supervised =
              std::min<int64_t>(horizon, 1 + updates / curriculum_step);
        }
        Tensor target = batch.y;
        if (supervised < horizon) {
          prediction = Slice(prediction, 1, 0, supervised);
          target = Slice(target, 1, 0, supervised);
        }

        Tensor loss =
            metrics::MaskedMaeLoss(prediction, target, options_.null_value);
        optimizer.ZeroGrad();
        loss.Backward();
        if (fault::AnyFaultArmed() &&
            fault::ConsumeFault("trainer.nan_grad")) {
          PoisonFirstGradient(optimizer.params());
        }

        // Divergence detection before the parameters are touched: a
        // non-finite loss or gradient norm never reaches Step().
        bool grads_finite = true;
        if (options_.clip_norm > 0.0f) {
          grads_finite = std::isfinite(
              optim::ClipGradNorm(optimizer.params(), options_.clip_norm));
        } else {
          grads_finite = GradsFinite(optimizer.params());
        }
        const float loss_value = loss.Item();
        if (!std::isfinite(loss_value) || !grads_finite) {
          if (divergence_retries_left > 0) {
            --divergence_retries_left;
            ++result.divergence_rollbacks;
            RestoreParams(*model_, rollback_params);
            optimizer.ImportState(rollback_optimizer);
            optimizer.set_learning_rate(optimizer.learning_rate() *
                                        options_.lr_decay_on_divergence);
            shuffle_rng.SetState(pre_shuffle);
            updates = rollback_updates;
            D2_LOG(WARNING)
                << model_->name() << ": non-finite "
                << (std::isfinite(loss_value) ? "gradient" : "loss")
                << " at epoch " << epoch << " batch " << b
                << " — rolled back to the start of the epoch, lr now "
                << optimizer.learning_rate() << " ("
                << divergence_retries_left << " retries left)";
            outcome = EpochOutcome::kRetry;
          } else {
            D2_LOG(ERROR) << model_->name() << ": non-finite loss at epoch "
                          << epoch << " batch " << b
                          << " and no divergence retries left — giving up";
            outcome = EpochOutcome::kDiverged;
          }
          break;
        }

        optimizer.Step();
        ++updates;
        loss_sum += loss_value;
#ifndef NDEBUG
        const TapeReport tape_report = tape_watchdog.EndStep(loss);
        for (const TapeIssue& issue : tape_report.issues) {
          D2_LOG(WARNING) << "tape analyzer [" << issue.kind << "] at epoch "
                          << epoch << " batch " << b << ": " << issue.detail;
        }
#endif

        // Cooperative shutdown: the batch above completed normally; save a
        // mid-epoch checkpoint and return a clean result.
        if (StopRequested()) {
          ClearStopRequest();
          if (!options_.checkpoint_dir.empty()) {
            const std::string path =
                CheckpointPathForStep(options_.checkpoint_dir, updates);
            if (save_checkpoint(path, pre_shuffle,
                                make_progress(epoch, b + 1, loss_sum))) {
              result.interrupt_checkpoint = path;
              PruneCheckpoints(options_.checkpoint_dir,
                               options_.keep_checkpoints);
            }
          }
          if (options_.verbose || options_.handle_signals) {
            D2_LOG(INFO) << model_->name()
                         << ": stop requested — interrupted at epoch "
                         << epoch << " after batch " << b
                         << (result.interrupt_checkpoint.empty()
                                 ? " (no checkpoint dir configured)"
                                 : ", checkpoint written to " +
                                       result.interrupt_checkpoint);
          }
          outcome = EpochOutcome::kInterrupted;
          break;
        }
      }
      epoch_seconds = epoch_timer.ElapsedSeconds();
    } while (outcome == EpochOutcome::kRetry);

    if (outcome == EpochOutcome::kDiverged) {
      result.stop_reason = StopReason::kDiverged;
      break;
    }
    if (outcome == EpochOutcome::kInterrupted) {
      result.stop_reason = StopReason::kInterrupted;
      break;
    }

    EpochStats stats;
    stats.seconds = epoch_seconds;
    stats.train_loss =
        num_batches > 0 ? loss_sum / static_cast<double>(num_batches) : 0.0;
    if (val_loader != nullptr) stats.validation = Evaluate(val_loader);
    result.history.push_back(stats);

    if (options_.verbose) {
      D2_LOG(INFO) << model_->name() << " epoch " << epoch << ": train_mae="
                   << stats.train_loss
                   << " val_mae=" << stats.validation.mae << " ("
                   << stats.seconds << "s)";
    }

    bool improved = false;
    bool early_stop = false;
    if (val_loader != nullptr) {
      improved = result.best_epoch < 0 ||
                 stats.validation.mae < result.best_val_mae;
      if (improved) {
        result.best_epoch = epoch;
        result.best_val_mae = stats.validation.mae;
        best_params = SnapshotParams(*model_);
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
        if (options_.patience > 0 &&
            epochs_without_improvement >= options_.patience) {
          if (options_.verbose) {
            D2_LOG(INFO) << "early stopping at epoch " << epoch;
          }
          early_stop = true;
        }
      }
    }

    // Periodic full-state checkpoint (plus on the final epoch and at an
    // early stop, so the newest file always holds the terminal state).
    if (!options_.checkpoint_dir.empty()) {
      const bool cadence_due =
          options_.checkpoint_every <= 1 ||
          (epoch + 1) % options_.checkpoint_every == 0;
      const bool last_epoch = epoch + 1 >= options_.epochs;
      if (cadence_due || last_epoch || early_stop) {
        const std::string path =
            CheckpointPathForStep(options_.checkpoint_dir, updates);
        if (save_checkpoint(path, shuffle_rng.GetState(),
                            make_progress(epoch + 1, 0, 0.0))) {
          PruneCheckpoints(options_.checkpoint_dir,
                           options_.keep_checkpoints);
        }
      }
      if (improved) {
        save_checkpoint(BestCheckpointPath(options_.checkpoint_dir),
                        shuffle_rng.GetState(),
                        make_progress(epoch + 1, 0, 0.0));
      }
    }

    if (early_stop) {
      result.stop_reason = StopReason::kEarlyStopped;
      break;
    }
  }

  // Restore the best-validation parameters, except on interruption — there
  // the current parameters match the interrupt checkpoint, which is what a
  // subsequent resume continues from.
  if (result.stop_reason != StopReason::kInterrupted && !best_params.empty()) {
    RestoreParams(*model_, best_params);
  }
  double total_seconds = 0.0;
  for (const EpochStats& stats : result.history) {
    total_seconds += stats.seconds;
  }
  result.mean_epoch_seconds =
      result.history.empty()
          ? 0.0
          : total_seconds / static_cast<double>(result.history.size());
  return result;
}

metrics::MetricSet Trainer::Evaluate(data::WindowDataLoader* loader) const {
  D2_CHECK(loader != nullptr);
  model_->SetTraining(false);
  // Validation runs in inference mode: no tape, buffers pooled across
  // batches within this pass.
  InferenceModeGuard inference_mode;
  // Accumulate sufficient statistics across batches.
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  const std::vector<data::Batch> batches = loader->AssembleAllBatches();
  for (const data::Batch& batch : batches) {
    const Tensor prediction =
        scaler_->InverseTransform(model_->Forward(batch));
    const metrics::MetricSet m = metrics::ComputeMetrics(
        prediction, batch.y, options_.null_value);
    abs_sum += m.mae * static_cast<double>(m.count);
    sq_sum += m.rmse * m.rmse * static_cast<double>(m.count);
    ape_sum += m.mape * static_cast<double>(m.count);
    count += m.count;
  }
  model_->SetTraining(true);
  metrics::MetricSet total;
  total.count = count;
  if (count > 0) {
    total.mae = abs_sum / static_cast<double>(count);
    total.rmse = std::sqrt(sq_sum / static_cast<double>(count));
    total.mape = ape_sum / static_cast<double>(count);
  }
  return total;
}

}  // namespace d2stgnn::train
