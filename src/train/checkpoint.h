#ifndef D2STGNN_TRAIN_CHECKPOINT_H_
#define D2STGNN_TRAIN_CHECKPOINT_H_

#include <string>

#include "nn/module.h"

namespace d2stgnn::train {

/// Writes every named parameter of `module` to a binary checkpoint at
/// `path`. The format is self-describing (magic + per-parameter name,
/// element count, float32 payload) and endianness-naive (little-endian
/// hosts, which is everything this project targets). Returns false (after
/// logging) on I/O failure.
bool SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Restores parameters saved by SaveCheckpoint into `module`. Parameter
/// names, order, and sizes must match the saved module exactly (the usual
/// "same architecture" contract). Returns false (after logging) on I/O
/// failure or mismatch; on failure the module's parameters are left
/// partially updated only if the mismatch is detected mid-file, so callers
/// should treat a false return as "rebuild the model".
bool LoadCheckpoint(nn::Module* module, const std::string& path);

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_CHECKPOINT_H_
