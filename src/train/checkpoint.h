#ifndef D2STGNN_TRAIN_CHECKPOINT_H_
#define D2STGNN_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "train/trainer.h"

// Checkpoint v2: crash-safe, integrity-checked persistence of *full*
// training state, so a run killed at any point resumes bitwise-identically
// from its last checkpoint.
//
// Format (little-endian, the project's only target):
//
//   magic "D2CKPT02"
//   u64 section_count
//   per section: u64 name_len, name bytes, u64 payload_len,
//                u32 crc32(payload), payload bytes
//
// Sections: "params" (always), and for full training checkpoints
// "optimizer", "trainer", "rng", "best_params". Unknown sections are
// skipped (their CRC is still verified), so the format is forward-
// extensible. Files are written atomically (temp + fsync + rename; see
// common/io/atomic_file.h): a crash mid-save leaves the previous
// checkpoint intact, never a torn file.
//
// Loading is transactional: every section is parsed and validated into
// staging buffers first, and the module / out-structs are only touched
// after the whole file (CRCs, names, sizes) checks out. A false return
// therefore guarantees the model is exactly as it was before the call —
// this also holds for v1 ("D2CKPT01") files, whose model-only payload is
// still readable.

namespace d2stgnn::train {

/// Trainer-loop position and early-stopping bookkeeping. `next_epoch` /
/// `next_batch` name the first step the resumed run executes; a non-zero
/// `next_batch` marks a mid-epoch checkpoint (cooperative interrupt), whose
/// `rng` state is the one captured *before* the interrupted epoch's shuffle
/// so the resumed run reproduces the same batch order.
struct TrainerProgress {
  int64_t next_epoch = 0;
  int64_t next_batch = 0;
  int64_t updates = 0;         ///< optimizer updates so far (curriculum)
  int64_t curriculum_step = 0; ///< resolved curriculum step length
  double partial_loss_sum = 0.0;  ///< loss accumulated before a mid-epoch save
  int64_t best_epoch = -1;
  double best_val_mae = 0.0;
  int64_t epochs_without_improvement = 0;
  std::vector<EpochStats> history;  ///< per-epoch records so far
};

/// Everything beyond the model parameters that a bitwise resume needs.
struct TrainingCheckpoint {
  optim::OptimizerState optimizer;
  TrainerProgress progress;
  RngState shuffle_rng;
  /// Best-validation parameter snapshot (early stopping); empty = none yet.
  std::vector<std::vector<float>> best_params;
};

/// Writes a model-only v2 checkpoint (the "export weights" use case).
/// Returns false (after logging) on I/O failure; the previous file at
/// `path`, if any, is left intact.
bool SaveCheckpoint(const nn::Module& module, const std::string& path);

/// Restores parameters from a v1 or v2 checkpoint into `module`.
/// Transactional: on any failure (I/O, corruption, architecture mismatch)
/// the module is untouched and false is returned after logging.
bool LoadCheckpoint(nn::Module* module, const std::string& path);

/// Writes a full training checkpoint: model parameters plus `state`.
bool SaveTrainingCheckpoint(const nn::Module& module,
                            const TrainingCheckpoint& state,
                            const std::string& path);

/// Loads a checkpoint written by SaveTrainingCheckpoint. `state` receives
/// the training sections; if the file is model-only (or v1), `state` is
/// reset to defaults and false is returned. Transactional like
/// LoadCheckpoint.
bool LoadTrainingCheckpoint(nn::Module* module, TrainingCheckpoint* state,
                            const std::string& path);

/// Path of the checkpoint for optimizer-update count `step` inside `dir`
/// ("<dir>/ckpt-000000042.d2ck" — zero-padded so lexicographic order is
/// step order; steps are monotonic across epoch-boundary and mid-epoch
/// saves, so LatestCheckpoint always names the newest state).
std::string CheckpointPathForStep(const std::string& dir, int64_t step);

/// Path of the best-validation checkpoint inside `dir`.
std::string BestCheckpointPath(const std::string& dir);

/// Newest epoch checkpoint in `dir` ("" when none). In-flight temp files
/// and the best-checkpoint copy are ignored.
std::string LatestCheckpoint(const std::string& dir);

/// Retention policy: deletes epoch checkpoints in `dir`, keeping the
/// newest `keep_last` (plus the best-checkpoint file, which is never
/// removed). keep_last <= 0 keeps everything.
void PruneCheckpoints(const std::string& dir, int64_t keep_last);

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_CHECKPOINT_H_
