#ifndef D2STGNN_TRAIN_FORECASTING_MODEL_H_
#define D2STGNN_TRAIN_FORECASTING_MODEL_H_

#include "data/sliding_window.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace d2stgnn::train {

/// Interface of every trainable traffic-forecasting model in this
/// repository (D²STGNN, its ablation variants, and the deep baselines).
///
/// Forward consumes a minibatch (normalized inputs [B, Th, N, 1] plus the
/// time-of-day / day-of-week indices some models embed) and returns
/// normalized predictions [B, Tf, N, 1]. The trainer inverse-transforms
/// before computing the masked-MAE loss (Eq. 16).
class ForecastingModel : public nn::Module {
 public:
  /// Runs the model on one batch.
  virtual Tensor Forward(const data::Batch& batch) = 0;

  /// Number of future steps the model predicts (T_f; 12 in the paper).
  virtual int64_t horizon() const = 0;

 protected:
  explicit ForecastingModel(std::string name) : Module(std::move(name)) {}
};

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_FORECASTING_MODEL_H_
