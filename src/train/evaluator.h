#ifndef D2STGNN_TRAIN_EVALUATOR_H_
#define D2STGNN_TRAIN_EVALUATOR_H_

#include <vector>

#include "data/scaler.h"
#include "data/sliding_window.h"
#include "metrics/metrics.h"
#include "train/forecasting_model.h"

namespace d2stgnn::train {

/// Metrics of one forecasting horizon (1-based step count, e.g. 3 = 15 min).
struct HorizonMetrics {
  int64_t horizon = 0;
  metrics::MetricSet metrics;
};

/// Wall-clock profile of one evaluation pass: per-batch forward latencies
/// (inverse transform included, assembly excluded), in milliseconds.
struct EvaluationTiming {
  metrics::LatencyStats forward_ms;  ///< p50/p95/p99 over per-batch forwards
  double total_seconds = 0.0;        ///< whole pass, assembly included
  int64_t batches = 0;
};

/// Evaluates a trained model per horizon on a loader, the layout of the
/// paper's Table 3 (horizons 3, 6 and 12 by default). Runs in inference
/// mode: eval flags set, no autograd tape, tensor buffers pooled across
/// batches. `timing`, when non-null, receives the pass's latency profile.
std::vector<HorizonMetrics> EvaluateHorizons(
    ForecastingModel* model, const data::StandardScaler* scaler,
    data::WindowDataLoader* loader,
    const std::vector<int64_t>& horizons = {3, 6, 12},
    float null_value = 0.0f, EvaluationTiming* timing = nullptr);

/// Same per-horizon evaluation for precomputed predictions (used by the
/// non-neural baselines HA/VAR/SVR). `prediction` and `truth` are
/// [S, Tf, N, 1] (or [S, Tf, N]) in original units.
std::vector<HorizonMetrics> EvaluatePredictionHorizons(
    const Tensor& prediction, const Tensor& truth,
    const std::vector<int64_t>& horizons = {3, 6, 12},
    float null_value = 0.0f);

/// Collects a model's predictions over a whole loader into one
/// [S, Tf, N, 1] tensor in original units (used by the Figure 8
/// visualization bench).
Tensor CollectPredictions(ForecastingModel* model,
                          const data::StandardScaler* scaler,
                          data::WindowDataLoader* loader);

}  // namespace d2stgnn::train

#endif  // D2STGNN_TRAIN_EVALUATOR_H_
