#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::metrics {

MetricSet ComputeMetrics(const Tensor& prediction, const Tensor& truth,
                         float null_value) {
  D2_CHECK(prediction.defined());
  D2_CHECK(truth.defined());
  D2_CHECK(prediction.shape() == truth.shape())
      << "metric shapes differ: " << ShapeToString(prediction.shape())
      << " vs " << ShapeToString(truth.shape());

  const std::vector<float>& p = prediction.Data();
  const std::vector<float>& t = truth.Data();
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  double ape_sum = 0.0;
  int64_t count = 0;
  int64_t ape_count = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == null_value) continue;
    const double err = static_cast<double>(p[i]) - t[i];
    abs_sum += std::fabs(err);
    sq_sum += err * err;
    ++count;
    if (std::fabs(t[i]) > 1e-2f) {
      ape_sum += std::fabs(err) / std::fabs(t[i]);
      ++ape_count;
    }
  }

  MetricSet m;
  m.count = count;
  if (count > 0) {
    m.mae = abs_sum / static_cast<double>(count);
    m.rmse = std::sqrt(sq_sum / static_cast<double>(count));
  }
  if (ape_count > 0) m.mape = ape_sum / static_cast<double>(ape_count);
  return m;
}

double Percentile(const std::vector<double>& samples, double pct) {
  if (samples.empty()) return 0.0;
  D2_CHECK_GE(pct, 0.0);
  D2_CHECK_LE(pct, 100.0);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LatencyStats SummarizeLatencies(const std::vector<double>& samples) {
  LatencyStats stats;
  if (samples.empty()) return stats;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  // Interpolate on the already-sorted copy rather than calling Percentile
  // three times (each would re-sort).
  const auto at = [&sorted](double pct) {
    const double rank =
        pct / 100.0 * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  stats.p50 = at(50.0);
  stats.p95 = at(95.0);
  stats.p99 = at(99.0);
  stats.max = sorted.back();
  double sum = 0.0;
  for (double s : sorted) sum += s;
  stats.mean = sum / static_cast<double>(sorted.size());
  stats.count = static_cast<int64_t>(sorted.size());
  return stats;
}

Tensor MaskedMaeLoss(const Tensor& prediction, const Tensor& truth,
                     float null_value) {
  D2_CHECK(prediction.shape() == truth.shape());
  // Constant 0/1 mask over valid entries.
  std::vector<float> mask_data(truth.Data().size());
  double valid = 0.0;
  const std::vector<float>& t = truth.Data();
  for (size_t i = 0; i < t.size(); ++i) {
    mask_data[i] = (t[i] == null_value) ? 0.0f : 1.0f;
    valid += mask_data[i];
  }
  if (valid == 0.0) return Sum(MulScalar(prediction, 0.0f));
  Tensor mask(truth.shape(), std::move(mask_data));
  Tensor abs_err = Abs(Sub(prediction, truth));
  return MulScalar(Sum(Mul(abs_err, mask)), 1.0f / static_cast<float>(valid));
}

Tensor MseLoss(const Tensor& prediction, const Tensor& truth) {
  D2_CHECK(prediction.shape() == truth.shape());
  Tensor diff = Sub(prediction, truth);
  return Mean(Mul(diff, diff));
}

Tensor MaskedHuberLoss(const Tensor& prediction, const Tensor& truth,
                       float delta, float null_value) {
  D2_CHECK(prediction.shape() == truth.shape());
  D2_CHECK_GT(delta, 0.0f);
  std::vector<float> mask_data(truth.Data().size());
  double valid = 0.0;
  const std::vector<float>& t = truth.Data();
  for (size_t i = 0; i < t.size(); ++i) {
    mask_data[i] = (t[i] == null_value) ? 0.0f : 1.0f;
    valid += mask_data[i];
  }
  if (valid == 0.0) return Sum(MulScalar(prediction, 0.0f));
  Tensor mask(truth.shape(), std::move(mask_data));

  // huber(e) = 0.5 e^2                for |e| <= delta
  //          = delta (|e| - delta/2)  otherwise
  // expressed with Clamp: 0.5 c^2 + delta (|e| - |c|) with c = clamp(e).
  const Tensor err = Sub(prediction, truth);
  const Tensor clamped = Clamp(err, -delta, delta);
  const Tensor quadratic = MulScalar(Mul(clamped, clamped), 0.5f);
  const Tensor linear = MulScalar(Sub(Abs(err), Abs(clamped)), delta);
  const Tensor loss = Add(quadratic, linear);
  return MulScalar(Sum(Mul(loss, mask)), 1.0f / static_cast<float>(valid));
}

}  // namespace d2stgnn::metrics
