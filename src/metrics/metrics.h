#ifndef D2STGNN_METRICS_METRICS_H_
#define D2STGNN_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace d2stgnn::metrics {

/// MAE / RMSE / MAPE for one prediction-vs-truth comparison (paper Eq. 17).
struct MetricSet {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  ///< fraction, not percent
  int64_t count = 0;  ///< number of unmasked entries
};

/// Computes masked MAE/RMSE/MAPE between same-shape tensors. Entries whose
/// ground truth equals `null_value` (sensor failures, standard METR-LA
/// convention) are excluded from every metric; MAPE additionally skips
/// near-zero truths to avoid division blow-ups. Pure data computation (no
/// autograd).
MetricSet ComputeMetrics(const Tensor& prediction, const Tensor& truth,
                         float null_value = 0.0f);

/// Differentiable masked mean-absolute-error loss (paper Eq. 16). The mask
/// (truth != null_value) is treated as a constant.
Tensor MaskedMaeLoss(const Tensor& prediction, const Tensor& truth,
                     float null_value = 0.0f);

/// Differentiable (unmasked) mean-squared-error loss, for baselines that
/// train on MSE.
Tensor MseLoss(const Tensor& prediction, const Tensor& truth);

/// The `pct`-th percentile (0..100) of `samples` with linear interpolation
/// between order statistics (the "linear"/type-7 estimator NumPy defaults
/// to). 0 for an empty sample vector. Does not require sorted input.
double Percentile(const std::vector<double>& samples, double pct);

/// Latency summary of a sample vector — the serving-side numbers (p50 the
/// typical request, p95/p99 the tail SLO figures).
struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
  double max = 0.0;
  int64_t count = 0;
};

/// Computes LatencyStats over `samples` (any unit; callers pass ms). All
/// zeros for an empty vector.
LatencyStats SummarizeLatencies(const std::vector<double>& samples);

/// Differentiable masked Huber (smooth-L1) loss with threshold `delta`:
/// quadratic within |err| <= delta, linear outside. Some traffic baselines
/// (e.g. DGCRN's benchmark code) train flow datasets with it because flow
/// outliers otherwise dominate.
Tensor MaskedHuberLoss(const Tensor& prediction, const Tensor& truth,
                       float delta = 1.0f, float null_value = 0.0f);

}  // namespace d2stgnn::metrics

#endif  // D2STGNN_METRICS_METRICS_H_
