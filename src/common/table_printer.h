#ifndef D2STGNN_COMMON_TABLE_PRINTER_H_
#define D2STGNN_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace d2stgnn {

/// Accumulates rows of string cells and renders them as an aligned,
/// pipe-separated text table. Used by the bench binaries to print results in
/// the layout of the paper's tables.
///
/// Example:
///   TablePrinter table({"Method", "MAE", "RMSE", "MAPE"});
///   table.AddRow({"D2STGNN", "2.56", "4.88", "6.48%"});
///   std::cout << table.ToString();
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row. Must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Formats a float with the given number of decimals ("3.142").
  static std::string Num(double value, int decimals = 2);

  /// Formats a float as a percentage with two decimals ("6.48%").
  static std::string Percent(double fraction, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_TABLE_PRINTER_H_
