#include "common/clock.h"

#include <thread>

namespace d2stgnn {

namespace {

class SteadyClockImpl : public Clock {
 public:
  SteadyTime Now() override { return std::chrono::steady_clock::now(); }

  void SleepFor(std::chrono::microseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }
};

}  // namespace

Clock* RealClock() {
  static SteadyClockImpl* const clock = new SteadyClockImpl();  // leaked: no
  return clock;  // destruction-order hazards at process exit
}

}  // namespace d2stgnn
