#ifndef D2STGNN_COMMON_RNG_H_
#define D2STGNN_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace d2stgnn {

/// Complete serializable state of an Rng. Capturing and restoring it
/// reproduces the stream exactly — required for bitwise-identical resume of
/// a checkpointed training run.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  float cached_normal = 0.0f;
};

/// Deterministic random number generator used everywhere in the project so
/// that experiments are reproducible from a single seed. Wraps a
/// SplitMix64-seeded xoshiro256** core.
class Rng {
 public:
  /// Creates a generator from `seed`. The same seed always yields the same
  /// stream on every platform.
  explicit Rng(uint64_t seed = 42);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a float uniformly distributed in [0, 1).
  float Uniform();

  /// Returns a float uniformly distributed in [lo, hi).
  float Uniform(float lo, float hi);

  /// Returns a standard-normal float (Box–Muller; values are cached in
  /// pairs).
  float Normal();

  /// Returns a normal float with the given mean and standard deviation.
  float Normal(float mean, float stddev);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Returns `count` uniform floats in [lo, hi).
  std::vector<float> UniformVector(int64_t count, float lo, float hi);

  /// Returns `count` normal floats with the given mean and stddev.
  std::vector<float> NormalVector(int64_t count, float mean, float stddev);

  /// Returns a random permutation of {0, ..., n-1} (Fisher–Yates).
  std::vector<int64_t> Permutation(int64_t n);

  /// Snapshot of the full generator state (checkpointing).
  RngState GetState() const;

  /// Restores a state captured with GetState; the stream continues exactly
  /// where the snapshot was taken.
  void SetState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Returns the process-wide default generator (seed 42). Prefer passing an
/// explicit Rng; this exists for convenience in examples.
Rng& GlobalRng();

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_RNG_H_
