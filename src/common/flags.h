#ifndef D2STGNN_COMMON_FLAGS_H_
#define D2STGNN_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace d2stgnn {

/// Declarative argv parser shared by the examples and the experiment CLI.
///
/// Flags are `--name value` or `--name=value`; bool flags may omit the value
/// (`--verbose`). Remaining tokens fill the declared positionals in order,
/// then the trailing collector (if any). Parsing is strict: an unknown flag,
/// a flag missing its value, a malformed number, a value outside a choice
/// list, or an unexpected extra positional all fail with a message naming
/// the offending token — nothing is silently ignored.
///
///   FlagParser flags("serve_forecasts", "open-loop serving demo");
///   flags.AddPositionalDouble("rate_rps", &rate, "request rate");
///   flags.AddChoice("mode", &mode, {"eager", "plan", "both"}, "exec mode");
///   if (!flags.Parse(argc, argv)) {
///     if (flags.help_requested()) { std::fputs(flags.Usage().c_str(), stdout); return 0; }
///     std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
///                  flags.Usage().c_str());
///     return 2;
///   }
class FlagParser {
 public:
  /// `program` and `summary` head the Usage() text.
  FlagParser(std::string program, std::string summary);

  // Named flags. The pointed-to value doubles as the default and is only
  // written when the flag appears. `name` is given without the leading "--".
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t* value, const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  /// Presence sets true; `--name=false` / `--name false` also accepted.
  void AddBool(const std::string& name, bool* value, const std::string& help);
  /// A string flag whose value must be one of `choices`.
  void AddChoice(const std::string& name, std::string* value,
                 std::vector<std::string> choices, const std::string& help);
  /// A repeatable string flag: each occurrence appends to `values`
  /// (e.g. `--set a.b=1 --set c.d=2`).
  void AddStringList(const std::string& name,
                     std::vector<std::string>* values,
                     const std::string& help);

  // Optional positionals, consumed in declaration order.
  void AddPositionalString(const std::string& name, std::string* value,
                           const std::string& help);
  void AddPositionalInt(const std::string& name, int64_t* value,
                        const std::string& help);
  void AddPositionalDouble(const std::string& name, double* value,
                           const std::string& help);
  /// Collects every positional beyond the declared ones (e.g. a list of
  /// spec files). Without it, extra positionals are an error.
  void AddTrailing(const std::string& name, std::vector<std::string>* values,
                   const std::string& help);

  /// Parses argv. Returns false on any error (see error()) and on
  /// `--help`/`-h` (see help_requested()); values may be partially written
  /// on failure.
  bool Parse(int argc, const char* const* argv);

  const std::string& error() const { return error_; }
  bool help_requested() const { return help_requested_; }
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool, kChoice, kStringList };
  struct Flag {
    std::string name;
    Type type = Type::kString;
    std::string help;
    std::vector<std::string> choices;  // kChoice only
    std::string* string_value = nullptr;
    int64_t* int_value = nullptr;
    double* double_value = nullptr;
    bool* bool_value = nullptr;
    std::vector<std::string>* list_value = nullptr;  // kStringList only
  };
  struct Positional {
    std::string name;
    Type type = Type::kString;
    std::string help;
    std::string* string_value = nullptr;
    int64_t* int_value = nullptr;
    double* double_value = nullptr;
  };

  Flag* FindFlag(const std::string& name);
  bool Assign(const Flag& flag, const std::string& value);
  bool Fail(const std::string& message);

  std::string program_;
  std::string summary_;
  std::vector<Flag> flags_;
  std::vector<Positional> positionals_;
  std::string trailing_name_;
  std::string trailing_help_;
  std::vector<std::string>* trailing_ = nullptr;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_FLAGS_H_
