#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace d2stgnn {
namespace {

thread_local bool g_in_parallel_region = false;

// One ParallelFor invocation: workers race on next_chunk, the caller waits
// on chunks_done. Held by shared_ptr so a slow-to-wake worker can still
// touch it after the caller returned.
struct Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  // Claims chunks until exhausted. Chunk boundaries depend only on
  // (begin, end, grain), so execution is deterministic per chunk.
  void RunChunks() {
    for (;;) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        g_in_parallel_region = true;
        (*fn)(lo, hi);
        g_in_parallel_region = false;
      } catch (...) {
        g_in_parallel_region = false;
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        // Skip remaining chunks: claim them all so the loop drains fast.
        int64_t remaining = next_chunk.exchange(num_chunks);
        while (remaining < num_chunks) {
          chunks_done.fetch_add(1, std::memory_order_acq_rel);
          ++remaining;
        }
      }
      chunks_done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  bool done() const {
    return chunks_done.load(std::memory_order_acquire) >= num_chunks;
  }
};

// Lazily started shared pool. Worker count is (threads - 1): the caller of
// ParallelFor is the remaining lane, so SetNumThreads(1) runs everything
// inline on the calling thread.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives main
    return *pool;
  }

  int num_threads() {
    std::lock_guard<std::mutex> lock(mutex_);
    return target_threads_;
  }

  void set_num_threads(int n) {
    D2_CHECK_GE(n, 1) << "thread count must be >= 1";
    std::vector<std::thread> to_join;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (n == target_threads_) return;
      target_threads_ = n;
      // Retire the current workers; the next ParallelFor respawns.
      stop_epoch_ = true;
      cv_.notify_all();
      to_join.swap(workers_);
    }
    for (std::thread& t : to_join) t.join();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_epoch_ = false;
    }
  }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    const int64_t range = end - begin;
    if (range <= 0) return;
    if (grain <= 0) grain = std::max<int64_t>(1, (range + 63) / 64);
    auto job = std::make_shared<Job>();
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->num_chunks = (range + grain - 1) / grain;
    job->fn = &fn;

    // Serial paths: one thread configured, a single chunk, nested call, or
    // another top-level ParallelFor already owns the pool. Same chunking,
    // same order — bitwise-identical to the parallel path.
    bool serial = g_in_parallel_region || job->num_chunks == 1;
    if (!serial) {
      std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
      if (!lock.owns_lock()) {
        serial = true;
      } else if (target_threads_ <= 1 || stop_epoch_) {
        serial = true;
      } else {
        EnsureWorkersLocked();
        current_job_ = job;
        ++job_sequence_;
        cv_.notify_all();
      }
    }
    if (serial) {
      job->RunChunks();
      RethrowIfError(job.get());
      return;
    }

    // The caller works alongside the pool, then spin-waits briefly for
    // stragglers (each remaining chunk is already claimed and in flight).
    job->RunChunks();
    while (!job->done()) std::this_thread::yield();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      current_job_.reset();
    }
    RethrowIfError(job.get());
  }

 private:
  ThreadPool() {
    int n = 0;
    if (const char* env = std::getenv("D2STGNN_NUM_THREADS")) {
      n = std::atoi(env);
    }
    if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
    target_threads_ = std::max(1, n);
  }

  static void RethrowIfError(Job* job) {
    std::lock_guard<std::mutex> lock(job->error_mutex);
    if (job->error) std::rethrow_exception(job->error);
  }

  void EnsureWorkersLocked() {
    const int wanted = target_threads_ - 1;
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    uint64_t seen_sequence = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] {
        return stop_epoch_ || (current_job_ && job_sequence_ != seen_sequence);
      });
      if (stop_epoch_) return;
      seen_sequence = job_sequence_;
      std::shared_ptr<Job> job = current_job_;
      lock.unlock();
      if (job) job->RunChunks();
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> current_job_;
  uint64_t job_sequence_ = 0;
  int target_threads_ = 1;
  bool stop_epoch_ = false;
};

}  // namespace

int GetNumThreads() { return ThreadPool::Global().num_threads(); }

void SetNumThreads(int num_threads) {
  ThreadPool::Global().set_num_threads(num_threads);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().Run(begin, end, grain, fn);
}

bool InParallelRegion() { return g_in_parallel_region; }

}  // namespace d2stgnn
