#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace d2stgnn::json {
namespace {

const Value& NullValue() {
  static const Value kNull;
  return kNull;
}

const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

/// Recursive-descent parser over a string view with offset tracking.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(Value* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      std::ostringstream out;
      out << "JSON parse error at offset " << pos_ << ": " << message;
      *error_ = out.str();
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) return false;
      *out = Value::Str(std::move(s));
      return true;
    }
    if (ConsumeLiteral("true")) {
      *out = Value::Bool(true);
      return true;
    }
    if (ConsumeLiteral("false")) {
      *out = Value::Bool(false);
      return true;
    }
    if (ConsumeLiteral("null")) {
      *out = Value::Null();
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseObject(Value* out) {
    ++pos_;  // '{'
    *out = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return true;
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      SkipWhitespace();
      Value value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(Value* out) {
    ++pos_;  // '['
    *out = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return true;
    for (;;) {
      SkipWhitespace();
      Value value;
      if (!ParseValue(&value)) return false;
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          char* end = nullptr;
          const long code = std::strtol(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4) return Fail("bad \\u escape");
          out->push_back(code < 128 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_int = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return Fail("malformed number '" + token + "'");
    }
    if (is_int && std::abs(value) < 9.0e15) {
      *out = Value::Int(static_cast<int64_t>(value));
    } else {
      *out = Value::Number(value);
    }
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

Value Value::Bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = static_cast<double>(i);
  v.int_ = i;
  v.is_exact_int_ = true;
  return v;
}

Value Value::Str(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.type_ = Type::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.type_ = Type::kObject;
  return v;
}

bool Value::Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text, error);
  return parser.Run(out);
}

bool Value::ParseFile(const std::string& path, Value* out,
                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!Parse(buffer.str(), out, error)) {
    if (error != nullptr) *error = path + ": " + *error;
    return false;
  }
  return true;
}

bool Value::AsBool(bool fallback) const {
  if (type_ == Type::kBool) return bool_;
  if (type_ == Type::kNumber) return number_ != 0.0;
  return fallback;
}

double Value::AsDouble(double fallback) const {
  if (type_ == Type::kNumber) return number_;
  if (type_ == Type::kBool) return bool_ ? 1.0 : 0.0;
  return fallback;
}

int64_t Value::AsInt(int64_t fallback) const {
  if (type_ == Type::kNumber) {
    return is_exact_int_ ? int_ : static_cast<int64_t>(number_);
  }
  if (type_ == Type::kBool) return bool_ ? 1 : 0;
  return fallback;
}

const std::string& Value::AsString() const {
  return type_ == Type::kString ? string_ : EmptyString();
}

size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

const Value& Value::at(size_t index) const {
  if (type_ == Type::kArray && index < array_.size()) return array_[index];
  return NullValue();
}

void Value::Append(Value v) {
  type_ = Type::kArray;
  array_.push_back(std::move(v));
}

bool Value::Has(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::Get(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  return NullValue();
}

void Value::Set(const std::string& key, Value v) {
  type_ = Type::kObject;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

void Value::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(2 * (depth + 1)), ' ') : "";
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(2 * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      char buf[64];
      if (is_exact_int_) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
      } else if (std::isfinite(number_)) {
        std::snprintf(buf, sizeof(buf), "%.9g", number_);
      } else {
        // JSON has no Inf/NaN; emit null so consumers fail loudly.
        std::snprintf(buf, sizeof(buf), "null");
      }
      *out += buf;
      break;
    }
    case Type::kString:
      *out += Quote(string_);
      break;
    case Type::kArray:
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[";
      *out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "]";
      break;
    case Type::kObject:
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{";
      *out += nl;
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += pad;
        *out += Quote(object_[i].first);
        *out += pretty ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
        if (i + 1 < object_.size()) *out += ",";
        *out += nl;
      }
      *out += close_pad;
      *out += "}";
      break;
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent >= 0) out += "\n";
  return out;
}

}  // namespace d2stgnn::json
