#ifndef D2STGNN_COMMON_STOPWATCH_H_
#define D2STGNN_COMMON_STOPWATCH_H_

#include <chrono>

namespace d2stgnn {

/// Simple wall-clock stopwatch used to time training epochs (Figure 6) and
/// bench phases. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_STOPWATCH_H_
