#include "common/fault_injection.h"

#include <csignal>
#include <map>
#include <mutex>
#include <atomic>

#include "common/logging.h"

namespace d2stgnn::fault {
namespace {

// Per-point state: the script plus how far the point has progressed
// (payload bytes seen for write points, calls seen for event points).
struct ArmedPoint {
  FaultScript script;
  int64_t progress = 0;
};

std::mutex g_mutex;
std::map<std::string, ArmedPoint>& Registry() {
  static auto* registry = new std::map<std::string, ArmedPoint>();
  return *registry;
}
// Fast path: instrumented code checks this before taking the mutex.
std::atomic<int> g_armed_count{0};
std::atomic<int64_t> g_fire_count{0};

}  // namespace

void CrashProcess(const std::string& point) {
  // A real crash: no stream flush, no atexit, no unwinding. SIGKILL cannot
  // be caught, so this models `kill -9` / OOM-kill exactly.
  D2_LOG(WARNING) << "fault injection: crashing at point '" << point << "'";
  ::raise(SIGKILL);
  // SIGKILL is not deliverable in some sandboxes; keep the no-return
  // contract unconditional.
  ::abort();
}

void ArmFaultPoint(const std::string& point, const FaultScript& script) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& registry = Registry();
  if (registry.find(point) == registry.end()) {
    g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  registry[point] = ArmedPoint{script, 0};
}

void DisarmFaultPoint(const std::string& point) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (Registry().erase(point) > 0) {
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAllFaultPoints() {
  std::lock_guard<std::mutex> lock(g_mutex);
  Registry().clear();
  g_armed_count.store(0, std::memory_order_relaxed);
  g_fire_count.store(0, std::memory_order_relaxed);
}

bool AnyFaultArmed() {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

int64_t FaultFireCount() {
  return g_fire_count.load(std::memory_order_relaxed);
}

bool ConsumeFault(const std::string& point) {
  if (!AnyFaultArmed()) return false;
  std::unique_lock<std::mutex> lock(g_mutex);
  auto& registry = Registry();
  const auto it = registry.find(point);
  if (it == registry.end()) return false;
  ArmedPoint& armed = it->second;
  if (armed.progress < armed.script.trigger_offset) {
    ++armed.progress;
    return false;
  }
  const FaultKind kind = armed.script.kind;
  if (!armed.script.repeat) {
    registry.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  g_fire_count.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  if (kind == FaultKind::kCrash) CrashProcess(point);
  return kind != FaultKind::kNone;
}

WriteFaultResult ConsumeWriteFault(const std::string& point, int64_t offset,
                                   int64_t size) {
  WriteFaultResult result;
  result.allowed = size;
  if (!AnyFaultArmed()) return result;
  std::unique_lock<std::mutex> lock(g_mutex);
  auto& registry = Registry();
  const auto it = registry.find(point);
  if (it == registry.end()) return result;
  ArmedPoint& armed = it->second;
  const int64_t trigger = armed.script.trigger_offset;
  if (offset + size <= trigger) return result;  // fault is further ahead
  const FaultKind kind = armed.script.kind;
  const int error_code = armed.script.error_code;
  if (!armed.script.repeat) {
    registry.erase(it);
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  g_fire_count.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  switch (kind) {
    case FaultKind::kCrash:
      // The caller persists the prefix up to the trigger, then calls
      // CrashProcess — byte-exact crash-at-offset.
      result.allowed = trigger > offset ? trigger - offset : 0;
      result.crash = true;
      break;
    case FaultKind::kShortWrite:
      result.allowed = trigger > offset ? trigger - offset : 0;
      result.fail = true;
      result.error_code = 5;  // EIO: torn write then error
      break;
    case FaultKind::kErrno:
      result.allowed = trigger > offset ? trigger - offset : 0;
      result.fail = true;
      result.error_code = error_code;
      break;
    case FaultKind::kNone:
    default:
      break;
  }
  return result;
}

}  // namespace d2stgnn::fault
