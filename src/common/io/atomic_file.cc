#include "common/io/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace d2stgnn::io {
namespace {

IoHooks& Hooks() {
  static auto* hooks = new IoHooks();
  return *hooks;
}

// Resolves the decision for one chunk: function hooks win, then the
// fault-injection registry, then "write it all".
WriteDecision DecideWrite(const std::string& path, const std::string& label,
                          int64_t offset, int64_t size) {
  if (Hooks().on_write) return Hooks().on_write(path, offset, size);
  WriteDecision decision;
  decision.allowed = size;
  if (fault::AnyFaultArmed()) {
    const fault::WriteFaultResult f =
        fault::ConsumeWriteFault(label + ".write", offset, size);
    decision.allowed = f.allowed;
    decision.fail = f.fail;
    decision.error_code = f.error_code;
    decision.crash = f.crash;
  }
  return decision;
}

bool WriteAll(int fd, const unsigned char* data, int64_t size) {
  int64_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, static_cast<size_t>(size - done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += n;
  }
  return true;
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SetIoHooks(IoHooks hooks) { Hooks() = std::move(hooks); }

void ClearIoHooks() { Hooks() = IoHooks(); }

AtomicFileWriter::AtomicFileWriter(std::string path, std::string fault_label)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp." + std::to_string(::getpid())),
      fault_label_(std::move(fault_label)) {
  fd_ = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) Fail("open " + temp_path_, errno);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abandon();
}

void AtomicFileWriter::Fail(const std::string& what, int err) {
  if (!ok_) return;  // keep the first failure
  ok_ = false;
  error_ = what;
  if (err != 0) {
    error_ += ": ";
    error_ += std::strerror(err);
  }
  D2_LOG(ERROR) << "atomic write to " << path_ << " failed (" << error_
                << ")";
}

bool AtomicFileWriter::Write(const void* data, int64_t size) {
  if (!ok_) return false;
  if (size <= 0) return true;
  const auto* bytes = static_cast<const unsigned char*>(data);
  const WriteDecision decision =
      DecideWrite(path_, fault_label_, offset_, size);
  const int64_t allowed = decision.allowed < size ? decision.allowed : size;
  if (allowed > 0) {
    if (!WriteAll(fd_, bytes, allowed)) {
      Fail("write " + temp_path_, errno);
      return false;
    }
    offset_ += allowed;
  }
  if (decision.crash) {
    // Crash-at-offset: persist the prefix, then die without unwinding.
    ::fsync(fd_);
    fault::CrashProcess(fault_label_ + ".write");
  }
  if (decision.fail || allowed < size) {
    Fail("write " + temp_path_,
         decision.error_code != 0 ? decision.error_code : EIO);
    return false;
  }
  return true;
}

bool AtomicFileWriter::Commit() {
  if (!ok_) return false;
  bool sync_ok = true;
  if (Hooks().on_sync) {
    sync_ok = Hooks().on_sync(path_);
  } else if (fault::AnyFaultArmed() &&
             fault::ConsumeFault(fault_label_ + ".fsync")) {
    sync_ok = false;
  }
  if (sync_ok) sync_ok = ::fsync(fd_) == 0;
  if (!sync_ok) {
    Fail("fsync " + temp_path_, errno);
    Abandon();
    return false;
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    Fail("close " + temp_path_, errno);
    Abandon();
    return false;
  }
  fd_ = -1;

  bool rename_ok = true;
  if (Hooks().on_rename) {
    rename_ok = Hooks().on_rename(temp_path_, path_);
  } else if (fault::AnyFaultArmed() &&
             fault::ConsumeFault(fault_label_ + ".rename")) {
    rename_ok = false;
  }
  if (rename_ok) rename_ok = ::rename(temp_path_.c_str(), path_.c_str()) == 0;
  if (!rename_ok) {
    Fail("rename " + temp_path_ + " -> " + path_, errno);
    Abandon();
    return false;
  }
  committed_ = true;

  // Make the rename durable: fsync the containing directory. Failure here
  // is logged but not fatal — the data is already safely in place for every
  // non-power-loss fault model.
  const std::string dir = DirName(path_);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    if (::fsync(dir_fd) != 0) {
      D2_LOG(WARNING) << "fsync of directory " << dir << " failed: "
                      << std::strerror(errno);
    }
    ::close(dir_fd);
  }
  return true;
}

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_) ::unlink(temp_path_.c_str());
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    D2_LOG(ERROR) << "cannot open " << path << ": " << std::strerror(errno);
    return false;
  }
  unsigned char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      D2_LOG(ERROR) << "read " << path << " failed: " << std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

}  // namespace d2stgnn::io
