#ifndef D2STGNN_COMMON_IO_CRC32_H_
#define D2STGNN_COMMON_IO_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace d2stgnn::io {

/// CRC-32 (IEEE 802.3, the zlib/gzip polynomial 0xEDB88320), used to
/// checksum checkpoint sections. `seed` allows incremental computation:
/// Crc32(b, n2, Crc32(a, n1)) == Crc32(concat(a, b), n1 + n2).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Incremental CRC-32 accumulator for streamed writes.
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t size) {
    crc_ = Crc32(data, size, crc_);
  }
  uint32_t value() const { return crc_; }
  void Reset() { crc_ = 0; }

 private:
  uint32_t crc_ = 0;
};

}  // namespace d2stgnn::io

#endif  // D2STGNN_COMMON_IO_CRC32_H_
