#ifndef D2STGNN_COMMON_IO_ATOMIC_FILE_H_
#define D2STGNN_COMMON_IO_ATOMIC_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

// Durable file I/O: crash-safe atomic writes for checkpoints.
//
// AtomicFileWriter stages every byte in `<path>.tmp.<pid>`, then Commit()
// flushes to the device (fsync), renames the temp file over `path` (atomic
// on POSIX), and fsyncs the parent directory so the rename itself is
// durable. A crash at any point leaves either the complete old file or the
// complete new file — never a torn mix — which is the invariant the whole
// checkpoint subsystem is built on.
//
// Two injection seams exist for tests:
//  * SetIoHooks installs function hooks that see every write/sync/rename
//    and can truncate or fail them (unit tests of the I/O layer);
//  * without hooks, each writer consults the fault-injection points
//    "<label>.write", "<label>.fsync" and "<label>.rename" (see
//    common/fault_injection.h), so scenario tests can script ENOSPC, short
//    writes, and crash-at-offset against production call sites.

namespace d2stgnn::io {

/// Decision a write hook returns for one chunk.
struct WriteDecision {
  int64_t allowed = 0;   ///< bytes of the chunk to actually write
  bool fail = false;     ///< report failure after writing `allowed`
  int error_code = 0;    ///< errno to report when failing
  bool crash = false;    ///< SIGKILL the process after writing `allowed`
};

/// Injectable hooks observing every durable-write operation. Unset members
/// mean "proceed normally".
struct IoHooks {
  /// Called before each chunk write with (path, offset, chunk size).
  std::function<WriteDecision(const std::string&, int64_t, int64_t)> on_write;
  /// Called before fsync; return false to fail the sync.
  std::function<bool(const std::string&)> on_sync;
  /// Called before rename(temp, final); return false to fail it.
  std::function<bool(const std::string&, const std::string&)> on_rename;
};

/// Installs process-wide hooks (tests only; not thread-safe against
/// concurrent writers). ClearIoHooks restores the default behavior.
void SetIoHooks(IoHooks hooks);
void ClearIoHooks();

/// Crash-safe file writer. Usage:
///   AtomicFileWriter w(path, "checkpoint");
///   w.Write(buf, n); ...
///   if (!w.Commit()) { /* old file intact; w.error() says why */ }
class AtomicFileWriter {
 public:
  /// `fault_label` names the fault-injection points this writer consults
  /// ("<label>.write" etc.); pass a stable identifier per call site.
  AtomicFileWriter(std::string path, std::string fault_label);
  /// Abandons (closes + unlinks the temp file) unless Commit succeeded.
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `size` bytes. Errors are sticky; returns false once failed.
  bool Write(const void* data, int64_t size);

  /// Flushes, fsyncs, renames over the final path, fsyncs the directory.
  /// On failure the final path is untouched and the temp file is removed.
  bool Commit();

  /// Drops the temp file without touching the final path.
  void Abandon();

  /// False after any failed operation.
  bool ok() const { return ok_; }
  /// Human-readable description of the first failure ("" while ok).
  const std::string& error() const { return error_; }
  /// Bytes successfully staged so far.
  int64_t bytes_written() const { return offset_; }

 private:
  void Fail(const std::string& what, int err);

  std::string path_;
  std::string temp_path_;
  std::string fault_label_;
  int fd_ = -1;
  int64_t offset_ = 0;
  bool committed_ = false;
  bool ok_ = true;
  std::string error_;
};

/// Reads a whole file into `out`. Returns false (after logging) when the
/// file cannot be opened or read.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out);

}  // namespace d2stgnn::io

#endif  // D2STGNN_COMMON_IO_ATOMIC_FILE_H_
