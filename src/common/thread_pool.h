#ifndef D2STGNN_COMMON_THREAD_POOL_H_
#define D2STGNN_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <functional>

// Shared execution layer: a lazily-initialized process-wide thread pool and
// a ParallelFor primitive the tensor kernels, data pipeline, and benches
// dispatch through.
//
// Determinism contract: ParallelFor splits [begin, end) into fixed chunks
// [begin + i*grain, begin + (i+1)*grain) that depend only on (begin, end,
// grain) — never on the thread count — and every chunk body observes one
// contiguous index range. Kernels that accumulate per chunk and combine
// partials in chunk order therefore produce bitwise-identical results at 1
// and N threads.

namespace d2stgnn {

/// Number of threads ParallelFor may use (including the calling thread).
/// Defaults to the D2STGNN_NUM_THREADS environment variable if set,
/// otherwise std::thread::hardware_concurrency().
int GetNumThreads();

/// Overrides the thread count (>= 1). Takes effect on the next ParallelFor;
/// existing workers are joined and the pool is rebuilt lazily.
void SetNumThreads(int num_threads);

/// Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end) split at
/// multiples of `grain` (grain <= 0 picks a default of ~64 chunks). Chunks
/// are distributed over the shared pool; the calling thread participates.
/// Blocks until every chunk finished. The first exception thrown by a chunk
/// is rethrown on the calling thread after all chunks complete. Nested
/// calls (from inside a chunk body) run serially on the calling worker.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// True while the current thread is executing a chunk body of a
/// ParallelFor (used to serialize nested parallelism).
bool InParallelRegion();

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_THREAD_POOL_H_
