#ifndef D2STGNN_COMMON_FAULT_INJECTION_H_
#define D2STGNN_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

// Scriptable fault-injection harness for crash-safety and recovery tests.
//
// Production code declares *fault points* — named places where an injected
// failure is observable (a file write, a training step) — by calling
// ConsumeFault / ConsumeWriteFault. Tests arm a point with a FaultScript
// describing what should go wrong and when:
//
//   fault::ArmFaultPoint("checkpoint.write",
//                        {fault::FaultKind::kCrash, /*trigger_offset=*/512});
//   ...  // the process SIGKILLs itself 512 payload bytes into the next save
//
// Unarmed points cost one relaxed atomic load, so the harness is always
// compiled in. All functions are thread-safe. Scripts fire once and then
// disarm themselves unless `repeat` is set.

namespace d2stgnn::fault {

/// What an armed fault point does when it triggers.
enum class FaultKind {
  kNone = 0,
  /// Write calls truncate the payload at `trigger_offset` bytes and then
  /// report failure (a torn write followed by an error, as when a process
  /// dies between write() calls or a disk drops a cached page).
  kShortWrite,
  /// The operation fails with `error_code` (default ENOSPC) without writing
  /// anything past `trigger_offset`.
  kErrno,
  /// The process raises SIGKILL at the trigger — a real crash, no unwind,
  /// no flush. Only useful under death tests / forked children.
  kCrash,
};

/// A scripted failure for one fault point.
struct FaultScript {
  FaultKind kind = FaultKind::kNone;
  /// For write-shaped points: the byte offset at which the fault fires
  /// (faults fire when the cumulative payload offset reaches this value).
  /// For event-shaped points: the 0-based count of ConsumeFault calls that
  /// complete normally before the fault fires. 0 fires immediately.
  int64_t trigger_offset = 0;
  /// errno reported by kErrno faults.
  int error_code = 28;  // ENOSPC
  /// Fire on every matching call instead of disarming after the first.
  bool repeat = false;
};

/// Arms `point` with `script`. Re-arming overwrites the previous script.
void ArmFaultPoint(const std::string& point, const FaultScript& script);

/// Disarms one point.
void DisarmFaultPoint(const std::string& point);

/// Disarms every point (test teardown).
void DisarmAllFaultPoints();

/// True if any point is armed (the fast path used by instrumented code).
bool AnyFaultArmed();

/// Number of times any fault actually fired since the last DisarmAll.
int64_t FaultFireCount();

/// Event-shaped fault point. Returns true if an armed fault fired at this
/// call (kErrno / kShortWrite scripts just report true; kCrash never
/// returns). Unarmed or not-yet-triggered points return false.
bool ConsumeFault(const std::string& point);

/// Write-shaped fault point: `offset` is the cumulative payload offset
/// before this chunk, `size` the chunk length. Outcome of one write call.
struct WriteFaultResult {
  /// Bytes of this chunk the caller should actually write (== size when no
  /// fault fired; < size for a torn write).
  int64_t allowed = 0;
  /// True if the write must then report failure.
  bool fail = false;
  /// errno to report when `fail` (0 otherwise).
  int error_code = 0;
  /// True if the caller must crash the process (via CrashProcess) after
  /// persisting the `allowed` prefix — crash-at-offset semantics where the
  /// bytes before the trigger make it to disk and nothing after does.
  bool crash = false;
};
WriteFaultResult ConsumeWriteFault(const std::string& point, int64_t offset,
                                   int64_t size);

/// Raises SIGKILL — a real crash with no unwinding, flushing, or atexit.
/// Called by instrumented writers when ConsumeWriteFault sets `crash`.
[[noreturn]] void CrashProcess(const std::string& point);

}  // namespace d2stgnn::fault

#endif  // D2STGNN_COMMON_FAULT_INJECTION_H_
