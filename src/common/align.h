#ifndef D2STGNN_COMMON_ALIGN_H_
#define D2STGNN_COMMON_ALIGN_H_

#include <cstdint>

// Single source of truth for the buffer alignment contract shared by the
// plan memory planner (slab slot offsets), the buffer arena, and the SIMD
// kernel backends (vector load/store width).
//
// The slab alignment is deliberately a multiple of the widest vector lane
// count so every slot a plan hands to a kernel starts on a vector-load
// boundary as well as a cache line.

namespace d2stgnn::common {

/// Slab slot alignment in floats: 16 floats = 64 bytes = one cache line.
/// memory_planner rounds every slot offset (and the slab itself) up to this.
inline constexpr int64_t kSlabAlignFloats = 16;

/// Widest vector register lane count the kernel backends use: 8 floats =
/// one 256-bit AVX2 register.
inline constexpr int64_t kVectorLaneFloats = 8;

static_assert(kSlabAlignFloats % kVectorLaneFloats == 0,
              "slab slots must start on vector-load boundaries");

}  // namespace d2stgnn::common

#endif  // D2STGNN_COMMON_ALIGN_H_
