#include "common/text_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/logging.h"

namespace d2stgnn {
namespace {

// Downsamples `values` to exactly `width` points by averaging buckets.
std::vector<float> Resample(const std::vector<float>& values, int width) {
  const int64_t n = static_cast<int64_t>(values.size());
  std::vector<float> out(static_cast<size_t>(width), 0.0f);
  if (n == 0) return out;
  for (int i = 0; i < width; ++i) {
    const int64_t lo = n * i / width;
    int64_t hi = n * (i + 1) / width;
    if (hi <= lo) hi = lo + 1;
    float sum = 0.0f;
    for (int64_t j = lo; j < hi && j < n; ++j) sum += values[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = sum / static_cast<float>(hi - lo);
  }
  return out;
}

}  // namespace

std::string TextPlot(const std::vector<PlotSeries>& series, int width,
                     int height) {
  D2_CHECK_GT(width, 0);
  D2_CHECK_GT(height, 1);
  if (series.empty()) return "(empty plot)\n";

  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (const auto& s : series) {
    for (float v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo) || !std::isfinite(hi)) return "(no data)\n";
  if (hi - lo < 1e-9f) hi = lo + 1.0f;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (const auto& s : series) {
    const std::vector<float> resampled = Resample(s.values, width);
    for (int x = 0; x < width; ++x) {
      const float v = resampled[static_cast<size_t>(x)];
      int y = static_cast<int>(
          std::lround((v - lo) / (hi - lo) * static_cast<float>(height - 1)));
      y = std::clamp(y, 0, height - 1);
      grid[static_cast<size_t>(height - 1 - y)][static_cast<size_t>(x)] =
          s.glyph;
    }
  }

  std::ostringstream os;
  char label[32];
  std::snprintf(label, sizeof(label), "%8.2f", hi);
  os << label << " +" << std::string(static_cast<size_t>(width), '-') << "+\n";
  for (const auto& row : grid) {
    os << "         |" << row << "|\n";
  }
  std::snprintf(label, sizeof(label), "%8.2f", lo);
  os << label << " +" << std::string(static_cast<size_t>(width), '-') << "+\n";
  os << "          legend:";
  for (const auto& s : series) os << "  '" << s.glyph << "' = " << s.name;
  os << "\n";
  return os.str();
}

bool WriteSeriesCsv(const std::string& path,
                    const std::vector<PlotSeries>& series) {
  D2_CHECK(!series.empty());
  const size_t length = series[0].values.size();
  for (const auto& s : series) D2_CHECK_EQ(s.values.size(), length);

  std::ofstream out(path);
  if (!out.is_open()) {
    D2_LOG(WARNING) << "cannot open " << path << " for writing";
    return false;
  }
  out << "index";
  for (const auto& s : series) out << "," << s.name;
  out << "\n";
  for (size_t i = 0; i < length; ++i) {
    out << i;
    for (const auto& s : series) out << "," << s.values[i];
    out << "\n";
  }
  return true;
}

}  // namespace d2stgnn
