#include "common/flags.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace d2stgnn {
namespace {

bool ParseInt(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    *out = false;
    return true;
  }
  return false;
}

std::string JoinChoices(const std::vector<std::string>& choices) {
  std::string out;
  for (size_t i = 0; i < choices.size(); ++i) {
    if (i > 0) out += "|";
    out += choices[i];
  }
  return out;
}

}  // namespace

FlagParser::FlagParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = value;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddInt(const std::string& name, int64_t* value,
                        const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kInt;
  flag.help = help;
  flag.int_value = value;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = value;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = value;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddChoice(const std::string& name, std::string* value,
                           std::vector<std::string> choices,
                           const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kChoice;
  flag.help = help;
  flag.choices = std::move(choices);
  flag.string_value = value;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddStringList(const std::string& name,
                               std::vector<std::string>* values,
                               const std::string& help) {
  Flag flag;
  flag.name = name;
  flag.type = Type::kStringList;
  flag.help = help;
  flag.list_value = values;
  flags_.push_back(std::move(flag));
}

void FlagParser::AddPositionalString(const std::string& name,
                                     std::string* value,
                                     const std::string& help) {
  Positional p;
  p.name = name;
  p.type = Type::kString;
  p.help = help;
  p.string_value = value;
  positionals_.push_back(std::move(p));
}

void FlagParser::AddPositionalInt(const std::string& name, int64_t* value,
                                  const std::string& help) {
  Positional p;
  p.name = name;
  p.type = Type::kInt;
  p.help = help;
  p.int_value = value;
  positionals_.push_back(std::move(p));
}

void FlagParser::AddPositionalDouble(const std::string& name, double* value,
                                     const std::string& help) {
  Positional p;
  p.name = name;
  p.type = Type::kDouble;
  p.help = help;
  p.double_value = value;
  positionals_.push_back(std::move(p));
}

void FlagParser::AddTrailing(const std::string& name,
                             std::vector<std::string>* values,
                             const std::string& help) {
  trailing_name_ = name;
  trailing_help_ = help;
  trailing_ = values;
}

FlagParser::Flag* FlagParser::FindFlag(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagParser::Fail(const std::string& message) {
  error_ = message;
  return false;
}

bool FlagParser::Assign(const Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kString:
      *flag.string_value = value;
      return true;
    case Type::kStringList:
      flag.list_value->push_back(value);
      return true;
    case Type::kChoice:
      for (const std::string& choice : flag.choices) {
        if (value == choice) {
          *flag.string_value = value;
          return true;
        }
      }
      return Fail("invalid value '" + value + "' for --" + flag.name +
                  " (expected " + JoinChoices(flag.choices) + ")");
    case Type::kInt:
      if (!ParseInt(value, flag.int_value)) {
        return Fail("invalid integer '" + value + "' for --" + flag.name);
      }
      return true;
    case Type::kDouble:
      if (!ParseDouble(value, flag.double_value)) {
        return Fail("invalid number '" + value + "' for --" + flag.name);
      }
      return true;
    case Type::kBool:
      if (!ParseBool(value, flag.bool_value)) {
        return Fail("invalid boolean '" + value + "' for --" + flag.name);
      }
      return true;
  }
  return false;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  error_.clear();
  help_requested_ = false;
  size_t next_positional = 0;
  bool flags_done = false;  // after "--"

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!flags_done && arg == "--") {
      flags_done = true;
      continue;
    }
    if (!flags_done && (arg == "--help" || arg == "-h")) {
      help_requested_ = true;
      return false;
    }
    if (!flags_done && arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
      std::string name = arg.substr(2);
      std::string value;
      bool has_value = false;
      const size_t eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
        has_value = true;
      }
      Flag* flag = FindFlag(name);
      if (flag == nullptr) return Fail("unknown flag --" + name);
      if (!has_value) {
        if (flag->type == Type::kBool) {
          // A bool flag consumes a following token only when it parses as a
          // boolean, so `--verbose positional` keeps the positional.
          bool parsed = false;
          if (i + 1 < argc && ParseBool(argv[i + 1], &parsed)) {
            ++i;
            *flag->bool_value = parsed;
          } else {
            *flag->bool_value = true;
          }
          continue;
        }
        if (i + 1 >= argc) return Fail("flag --" + name + " requires a value");
        value = argv[++i];
      }
      if (!Assign(*flag, value)) return false;
      continue;
    }

    // Positional.
    if (next_positional < positionals_.size()) {
      const Positional& p = positionals_[next_positional++];
      switch (p.type) {
        case Type::kString:
        case Type::kChoice:
        case Type::kBool:
        case Type::kStringList:
          *p.string_value = arg;
          break;
        case Type::kInt:
          if (!ParseInt(arg, p.int_value)) {
            return Fail("invalid integer '" + arg + "' for <" + p.name + ">");
          }
          break;
        case Type::kDouble:
          if (!ParseDouble(arg, p.double_value)) {
            return Fail("invalid number '" + arg + "' for <" + p.name + ">");
          }
          break;
      }
      continue;
    }
    if (trailing_ != nullptr) {
      trailing_->push_back(arg);
      continue;
    }
    return Fail("unexpected argument '" + arg + "'");
  }
  return true;
}

std::string FlagParser::Usage() const {
  std::ostringstream out;
  out << "usage: " << program_;
  for (const Positional& p : positionals_) out << " [" << p.name << "]";
  if (trailing_ != nullptr) out << " [" << trailing_name_ << "...]";
  if (!flags_.empty()) out << " [flags]";
  out << "\n";
  if (!summary_.empty()) out << "  " << summary_ << "\n";
  for (const Positional& p : positionals_) {
    out << "  " << p.name << ": " << p.help << "\n";
  }
  if (trailing_ != nullptr) {
    out << "  " << trailing_name_ << ": " << trailing_help_ << "\n";
  }
  for (const Flag& flag : flags_) {
    out << "  --" << flag.name;
    if (flag.type == Type::kChoice) {
      out << "=" << JoinChoices(flag.choices);
    } else if (flag.type != Type::kBool) {
      out << " VALUE";
    }
    out << ": " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace d2stgnn
