#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace d2stgnn::internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const std::string& condition) {
  stream_ << file << ":" << line << ": " << condition << " ";
}

CheckFailure::~CheckFailure() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::fflush(stderr);
  std::abort();
}

std::string FormatBinaryFailure(const char* op, const std::string& lhs,
                                const std::string& rhs, const char* lhs_expr,
                                const char* rhs_expr) {
  std::string message = "Check failed: ";
  message += lhs_expr;
  message += " ";
  message += op;
  message += " ";
  message += rhs_expr;
  message += " (";
  message += lhs;
  message += " vs. ";
  message += rhs;
  message += ")";
  return message;
}

}  // namespace d2stgnn::internal
