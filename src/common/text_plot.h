#ifndef D2STGNN_COMMON_TEXT_PLOT_H_
#define D2STGNN_COMMON_TEXT_PLOT_H_

#include <string>
#include <vector>

namespace d2stgnn {

/// One named series for TextPlot.
struct PlotSeries {
  std::string name;
  std::vector<float> values;
  char glyph = '*';
};

/// Renders one or more series as an ASCII line chart (used by the Figure 8
/// bench to show prediction vs. ground truth in the terminal). Series are
/// drawn over a shared y-axis; when two series occupy the same cell the
/// later series' glyph wins.
///
/// `width`/`height` are the plot area in characters; series longer than
/// `width` are downsampled by averaging.
std::string TextPlot(const std::vector<PlotSeries>& series, int width = 100,
                     int height = 20);

/// Writes series as CSV ("index,name1,name2,...") to `path`. Returns false
/// (and logs) if the file cannot be opened. Series must share a length.
bool WriteSeriesCsv(const std::string& path,
                    const std::vector<PlotSeries>& series);

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_TEXT_PLOT_H_
