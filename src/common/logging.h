#ifndef D2STGNN_COMMON_LOGGING_H_
#define D2STGNN_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

// Minimal leveled logging. Usage:
//
//   D2_LOG(INFO) << "epoch " << epoch << " done";
//
// Messages at or above the global threshold (default INFO) are written to
// stderr with a level prefix. Set via SetLogThreshold or the D2_LOG_LEVEL
// environment variable (0=INFO, 1=WARNING, 2=ERROR, 3=silent).

namespace d2stgnn {

enum class LogLevel : int { kInfo = 0, kWarning = 1, kError = 2, kSilent = 3 };

/// Sets the minimum level that is actually emitted.
void SetLogThreshold(LogLevel level);

/// Returns the current emission threshold.
LogLevel GetLogThreshold();

namespace internal {

// Buffers one log statement and flushes it (with prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace d2stgnn

#define D2_LOG_INFO \
  ::d2stgnn::internal::LogMessage(::d2stgnn::LogLevel::kInfo, __FILE__, __LINE__)
#define D2_LOG_WARNING                                                      \
  ::d2stgnn::internal::LogMessage(::d2stgnn::LogLevel::kWarning, __FILE__, \
                                  __LINE__)
#define D2_LOG_ERROR                                                      \
  ::d2stgnn::internal::LogMessage(::d2stgnn::LogLevel::kError, __FILE__, \
                                  __LINE__)

#define D2_LOG(severity) D2_LOG_##severity.stream()

#endif  // D2STGNN_COMMON_LOGGING_H_
