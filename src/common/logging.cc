#include "common/logging.h"

#include <cstdlib>

namespace d2stgnn {
namespace {

LogLevel ThresholdFromEnv() {
  const char* env = std::getenv("D2_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  int value = std::atoi(env);
  if (value < 0) value = 0;
  if (value > 3) value = 3;
  return static_cast<LogLevel>(value);
}

LogLevel& MutableThreshold() {
  static LogLevel threshold = ThresholdFromEnv();
  return threshold;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "UNKNOWN";
  }
}

}  // namespace

void SetLogThreshold(LogLevel level) { MutableThreshold() = level; }

LogLevel GetLogThreshold() { return MutableThreshold(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* basename = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') basename = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << basename << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < static_cast<int>(GetLogThreshold())) return;
  std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace d2stgnn
