#ifndef D2STGNN_COMMON_CHECK_H_
#define D2STGNN_COMMON_CHECK_H_

#include <ostream>
#include <sstream>
#include <string>

// Google-style CHECK macros. The project does not use exceptions; invariant
// violations print a message with the failing location and abort.
//
//   D2_CHECK(cond) << "extra context " << value;
//   D2_CHECK_EQ(a, b) << "extra context";
//
// The streamed context is only evaluated when the check fails.

namespace d2stgnn::internal {

// Collects the failure message and aborts the process in its destructor.
// Created as a temporary by the D2_CHECK macros; callers stream additional
// context into stream() before the abort fires.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const std::string& condition);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  [[noreturn]] ~CheckFailure();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// glog-style voidifier: `&` binds looser than `<<`, so the whole streamed
// chain is evaluated before being discarded, and the ternary in D2_CHECK can
// produce void on both arms.
struct Voidify {
  void operator&(std::ostream&) {}
};

std::string FormatBinaryFailure(const char* op, const std::string& lhs,
                                const std::string& rhs, const char* lhs_expr,
                                const char* rhs_expr);

template <typename T>
std::string CheckValueToString(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

}  // namespace d2stgnn::internal

#define D2_CHECK(condition)                               \
  (condition) ? (void)0                                   \
              : ::d2stgnn::internal::Voidify() &          \
                    ::d2stgnn::internal::CheckFailure(    \
                        __FILE__, __LINE__,               \
                        "Check failed: " #condition)      \
                        .stream()

#define D2_CHECK_OP(op, lhs, rhs)                                          \
  ((lhs)op(rhs))                                                           \
      ? (void)0                                                           \
      : ::d2stgnn::internal::Voidify() &                                   \
            ::d2stgnn::internal::CheckFailure(                             \
                __FILE__, __LINE__,                                        \
                ::d2stgnn::internal::FormatBinaryFailure(                  \
                    #op, ::d2stgnn::internal::CheckValueToString(lhs),     \
                    ::d2stgnn::internal::CheckValueToString(rhs), #lhs,    \
                    #rhs))                                                 \
                .stream()

#define D2_CHECK_EQ(lhs, rhs) D2_CHECK_OP(==, lhs, rhs)
#define D2_CHECK_NE(lhs, rhs) D2_CHECK_OP(!=, lhs, rhs)
#define D2_CHECK_LT(lhs, rhs) D2_CHECK_OP(<, lhs, rhs)
#define D2_CHECK_LE(lhs, rhs) D2_CHECK_OP(<=, lhs, rhs)
#define D2_CHECK_GT(lhs, rhs) D2_CHECK_OP(>, lhs, rhs)
#define D2_CHECK_GE(lhs, rhs) D2_CHECK_OP(>=, lhs, rhs)

#endif  // D2STGNN_COMMON_CHECK_H_
