#ifndef D2STGNN_COMMON_JSON_H_
#define D2STGNN_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace d2stgnn::json {

/// A minimal JSON document model: parse, inspect, build, serialize. No
/// external dependencies — this backs the experiment harness (MetricsSink
/// emission, RegressionGate baselines, CI schema validation helpers).
///
/// Restrictions vs. full JSON: \uXXXX escapes outside the ASCII range are
/// replaced with '?', numbers are held as double (plus an exact int64 flag
/// for round-tripping counters).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  /// Parses `text`. On failure returns false and sets `error` (with a
  /// character offset) when non-null.
  static bool Parse(const std::string& text, Value* out, std::string* error);

  /// Reads and parses a whole file; false on I/O or parse failure.
  static bool ParseFile(const std::string& path, Value* out,
                        std::string* error);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed access; defaults are returned on type mismatch.
  bool AsBool(bool fallback = false) const;
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt(int64_t fallback = 0) const;
  const std::string& AsString() const;  // empty string on mismatch

  // Array access.
  size_t size() const;
  const Value& at(size_t index) const;  // null Value when out of range
  void Append(Value v);

  // Object access (insertion order preserved on serialization).
  bool Has(const std::string& key) const;
  const Value& Get(const std::string& key) const;  // null Value when absent
  void Set(const std::string& key, Value v);
  const std::vector<std::pair<std::string, Value>>& items() const {
    return object_;
  }

  /// Serializes with 2-space indentation per `indent` level; `indent` < 0
  /// emits the compact single-line form.
  std::string Dump(int indent = 0) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  int64_t int_ = 0;
  bool is_exact_int_ = false;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Escapes a string for embedding in JSON (quotes included).
std::string Quote(const std::string& s);

}  // namespace d2stgnn::json

#endif  // D2STGNN_COMMON_JSON_H_
