#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace d2stgnn {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**.
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

float Rng::Uniform() {
  // Use the top 24 bits for a uniform float in [0, 1).
  return static_cast<float>(NextUint64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::Uniform(float lo, float hi) { return lo + (hi - lo) * Uniform(); }

float Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  float u1 = Uniform();
  while (u1 <= 1e-12f) u1 = Uniform();
  const float u2 = Uniform();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float angle = 2.0f * static_cast<float>(M_PI) * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

float Rng::Normal(float mean, float stddev) { return mean + stddev * Normal(); }

int64_t Rng::UniformInt(int64_t n) {
  D2_CHECK_GT(n, 0);
  return static_cast<int64_t>(NextUint64() % static_cast<uint64_t>(n));
}

std::vector<float> Rng::UniformVector(int64_t count, float lo, float hi) {
  D2_CHECK_GE(count, 0);
  std::vector<float> values(static_cast<size_t>(count));
  for (auto& v : values) v = Uniform(lo, hi);
  return values;
}

std::vector<float> Rng::NormalVector(int64_t count, float mean, float stddev) {
  D2_CHECK_GE(count, 0);
  std::vector<float> values(static_cast<size_t>(count));
  for (auto& v : values) v = Normal(mean, stddev);
  return values;
}

std::vector<int64_t> Rng::Permutation(int64_t n) {
  D2_CHECK_GE(n, 0);
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = UniformInt(i + 1);
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  return perm;
}

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng& GlobalRng() {
  static Rng rng(42);
  return rng;
}

}  // namespace d2stgnn
