#ifndef D2STGNN_COMMON_CLOCK_H_
#define D2STGNN_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <mutex>

// Injectable time source for the serving stack.
//
// Before this seam existed, overload.cc, retry.cc, and hot_reload.cc each
// grew their own steady-clock idiom (a `using Clock = steady_clock` alias
// plus `now` parameters threaded through for tests). The fleet layer sits
// on top of all three, so it would have needed all three idioms at once.
// Instead there is one seam: components hold a `Clock*` (null means the
// process-wide RealClock()), observe time via Now(), and sleep via
// SleepFor(). Tests inject a FakeClock whose time only moves when the test
// says so — token buckets refill deterministically and retry backoff tests
// finish instantly.
//
// The seam deliberately covers *observation and sleeping* only. Condition-
// variable waits (dispatcher flush timers, watcher poll loops) stay on the
// real steady clock: a cv_.wait_until against fake time points cannot be
// woken by advancing a fake clock, so faking them would deadlock, not
// speed up, a test.

namespace d2stgnn {

/// The time_point type every serving component timestamps with.
using SteadyTime = std::chrono::steady_clock::time_point;

/// Abstract monotonic time source. Implementations must be thread-safe:
/// concurrent submitters read the clock without external locking.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time.
  virtual SteadyTime Now() = 0;

  /// Blocks the calling thread for `duration` (a FakeClock instead advances
  /// its own time and returns immediately).
  virtual void SleepFor(std::chrono::microseconds duration) = 0;
};

/// The process-wide wall clock (std::chrono::steady_clock +
/// std::this_thread::sleep_for). Never null; shared by every component
/// constructed with clock == nullptr.
Clock* RealClock();

/// Resolves an injected clock: `clock` when given, RealClock() otherwise.
inline Clock* ClockOrReal(Clock* clock) {
  return clock != nullptr ? clock : RealClock();
}

/// A manually-driven clock for tests. Time starts at an arbitrary fixed
/// epoch and moves only via Advance() / SleepFor(). Thread-safe, so it can
/// back components exercised by racing submitter threads.
class FakeClock : public Clock {
 public:
  FakeClock() = default;
  explicit FakeClock(SteadyTime start) : start_(start), now_(start) {}

  SteadyTime Now() override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  /// SleepFor does not block: it advances the fake time by `duration`, so
  /// code that "waits out" a backoff completes instantly under test.
  void SleepFor(std::chrono::microseconds duration) override {
    Advance(duration);
  }

  /// Moves time forward (negative durations are ignored: monotonic).
  void Advance(std::chrono::microseconds duration) {
    if (duration.count() < 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    now_ += duration;
  }

  /// Total fake time elapsed since construction.
  std::chrono::microseconds Elapsed() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::chrono::duration_cast<std::chrono::microseconds>(now_ -
                                                                 start_);
  }

 private:
  std::mutex mu_;
  SteadyTime start_{};
  SteadyTime now_{};
};

}  // namespace d2stgnn

#endif  // D2STGNN_COMMON_CLOCK_H_
