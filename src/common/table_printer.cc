#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace d2stgnn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  D2_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  D2_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << " ";
      os << " |";
    }
    os << "\n";
  };
  auto render_separator = [&](std::ostringstream& os) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t pad = 0; pad < widths[c] + 2; ++pad) os << "-";
      os << "|";
    }
    os << "\n";
  };

  std::ostringstream os;
  render_row(headers_, os);
  render_separator(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_separator(os);
    } else {
      render_row(row, os);
    }
  }
  return os.str();
}

std::string TablePrinter::Num(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string TablePrinter::Percent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

}  // namespace d2stgnn
