#include "experiment/regression_gate.h"

#include <cstdio>
#include <sstream>

#include "experiment/metrics_sink.h"

namespace d2stgnn::experiment {
namespace {

std::string Num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

/// True when record field `field` equals the baseline's match value
/// (numeric comparison for numbers, string/bool equality otherwise).
bool FieldMatches(const json::Value& field, const json::Value& want) {
  if (want.is_number()) return field.is_number() && field.AsDouble() == want.AsDouble();
  if (want.is_string()) return field.is_string() && field.AsString() == want.AsString();
  if (want.is_bool()) return field.is_bool() && field.AsBool() == want.AsBool();
  return false;
}

std::string DescribeMatch(const json::Value& match) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [key, value] : match.items()) {
    if (!first) out << ", ";
    first = false;
    out << key << "=" << (value.is_string() ? value.AsString()
                                            : value.Dump(-1));
  }
  out << "}";
  return out.str();
}

/// Checks `value` against the bound's optional min/max. Appends a diff line
/// per violation; `subject` names what is being checked.
void CheckValue(const json::Value& bound, const std::string& subject,
                double value, GateReport* report) {
  const std::string metric = bound.Get("metric").AsString();
  if (bound.Has("min")) {
    const double min = bound.Get("min").AsDouble();
    if (value < min) {
      report->violations.push_back(
          subject + ": " + metric + " = " + Num(value) +
          " is below the baseline floor " + Num(min) + " (short by " +
          Num(min - value) + ")");
    }
  }
  if (bound.Has("max")) {
    const double max = bound.Get("max").AsDouble();
    if (value > max) {
      report->violations.push_back(
          subject + ": " + metric + " = " + Num(value) +
          " exceeds the baseline bound " + Num(max) + " (by +" +
          Num(value - max) + ")");
    }
  }
}

}  // namespace

std::string GateReport::ToString() const {
  std::ostringstream out;
  if (ok) {
    out << "regression gate: " << bounds_checked << " bound"
        << (bounds_checked == 1 ? "" : "s") << " OK\n";
    return out.str();
  }
  out << "regression gate FAILED (" << violations.size() << " violation"
      << (violations.size() == 1 ? "" : "s") << ", " << bounds_checked
      << " bounds checked):\n";
  for (const std::string& violation : violations) {
    out << "  " << violation << "\n";
  }
  return out.str();
}

bool CheckAgainstBaseline(const json::Value& results,
                          const json::Value& baseline, GateReport* report,
                          std::string* error) {
  *report = GateReport();
  if (!baseline.is_object()) {
    *error = "baseline is not a JSON object";
    return false;
  }
  const int64_t version = baseline.Get("schema_version").AsInt(-1);
  if (version != kMetricsSchemaVersion) {
    *error = "baseline schema_version " + std::to_string(version) +
             " != supported " + std::to_string(kMetricsSchemaVersion);
    return false;
  }
  const json::Value& bounds = baseline.Get("bounds");
  const json::Value& summary_bounds = baseline.Get("summary_bounds");
  if (!bounds.is_array() && !summary_bounds.is_array()) {
    *error = "baseline declares neither 'bounds' nor 'summary_bounds'";
    return false;
  }

  const json::Value& records = results.Get("records");
  for (size_t i = 0; i < bounds.size(); ++i) {
    const json::Value& bound = bounds.at(i);
    if (!bound.Has("metric") || (!bound.Has("min") && !bound.Has("max"))) {
      *error = "bounds[" + std::to_string(i) +
               "] needs a 'metric' and a 'min' and/or 'max'";
      return false;
    }
    ++report->bounds_checked;
    const json::Value& match = bound.Get("match");
    const std::string metric = bound.Get("metric").AsString();
    int64_t matched = 0;
    for (size_t r = 0; r < records.size(); ++r) {
      const json::Value& record = records.at(r);
      bool matches = true;
      for (const auto& [key, want] : match.items()) {
        if (!record.Has(key) || !FieldMatches(record.Get(key), want)) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      ++matched;
      const std::string subject = "record " + DescribeMatch(match);
      if (!record.Has(metric)) {
        report->violations.push_back(subject + ": metric '" + metric +
                                     "' is missing from the record");
        continue;
      }
      CheckValue(bound, subject, record.Get(metric).AsDouble(), report);
    }
    if (matched == 0) {
      report->violations.push_back(
          "bound on '" + metric + "' matched no records (match " +
          DescribeMatch(match) +
          ") — a renamed label must not silently disable its gate");
    }
  }

  const json::Value& summary = results.Get("summary");
  for (size_t i = 0; i < summary_bounds.size(); ++i) {
    const json::Value& bound = summary_bounds.at(i);
    if (!bound.Has("metric") || (!bound.Has("min") && !bound.Has("max"))) {
      *error = "summary_bounds[" + std::to_string(i) +
               "] needs a 'metric' and a 'min' and/or 'max'";
      return false;
    }
    ++report->bounds_checked;
    const std::string metric = bound.Get("metric").AsString();
    if (!summary.Has(metric)) {
      report->violations.push_back("summary: metric '" + metric +
                                   "' is missing");
      continue;
    }
    CheckValue(bound, "summary", summary.Get(metric).AsDouble(), report);
  }

  report->ok = report->violations.empty();
  return true;
}

}  // namespace d2stgnn::experiment
