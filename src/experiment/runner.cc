#include "experiment/runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "baselines/historical_average.h"
#include "baselines/linear_svr.h"
#include "baselines/var.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "experiment/metrics_sink.h"
#include "experiment/protocol.h"
#include "experiment/registry.h"
#include "experiment/regression_gate.h"
#include "graph/sensor_graph.h"
#include "common/fault_injection.h"
#include "infer/batching_server.h"
#include "infer/fleet/fleet.h"
#include "infer/fleet/fleet_server.h"
#include "infer/hot_reload.h"
#include "infer/retry.h"
#include "infer/session.h"
#include "tensor/kernels/registry.h"
#include "train/checkpoint.h"
#include "metrics/metrics.h"
#include "train/evaluator.h"

namespace d2stgnn::experiment {
namespace {

// ---------------------------------------------------------------------------
// Spec -> typed configurations. Every key a kind understands is consumed
// here (or in the Resolve* calls), so Spec::Validate() afterwards reports
// exactly the keys nobody understands.

struct TrainingConfig {
  std::vector<std::string> datasets;
  std::vector<std::string> models;
  float scale = 0.06f;
  std::string scenario = "standard";
  BenchEnv env;
};

TrainingConfig ParseTrainingConfig(const Spec& spec) {
  TrainingConfig config;
  config.datasets = spec.GetList("data", "datasets");
  config.scale = static_cast<float>(spec.GetDouble("data", "scale", 0.06));
  config.models = spec.GetList("models", "names");
  config.scenario = spec.GetString("trainer", "scenario", "standard");
  BenchEnv& env = config.env;
  env.scale = config.scale;
  env.epochs = spec.GetInt("trainer", "epochs", env.epochs);
  env.batch_size = spec.GetInt("trainer", "batch_size", env.batch_size);
  env.hidden_dim = spec.GetInt("trainer", "hidden_dim", env.hidden_dim);
  env.embed_dim = spec.GetInt("trainer", "embed_dim", env.embed_dim);
  env.train_samples =
      spec.GetInt("trainer", "train_samples", env.train_samples);
  env.eval_samples = spec.GetInt("trainer", "eval_samples", env.eval_samples);
  env.seed = static_cast<uint64_t>(
      spec.GetInt("trainer", "seed", static_cast<int64_t>(env.seed)));
  env.threads = GetNumThreads();
  return config;
}

struct ServingConfig {
  // [model] — the served D2STGNN.
  int64_t num_nodes = 4;
  int64_t input_len = 12;
  int64_t output_len = 12;
  int64_t hidden_dim = 8;
  int64_t embed_dim = 4;
  int64_t num_layers = 1;
  int64_t num_heads = 2;
  uint64_t model_seed = 3;
  // [workload] — the request stream.
  int64_t num_steps = 600;
  uint64_t workload_seed = 17;
  int64_t ring_size = 64;
  // [serving] — what to sweep.
  std::vector<std::string> scenarios;
  std::vector<int64_t> threads;
  std::vector<int64_t> batch_sizes;
  /// Kernel backends to sweep ("auto" = whatever startup selection picked).
  /// Sessions are rebuilt per backend so plans are captured and replayed
  /// under the backend being measured.
  std::vector<std::string> backends;
  int64_t iters = 40;
  int64_t server_requests = 80;
  int64_t producers = 4;
  int64_t parity_iters = 200;
  int64_t max_batch_size = 8;
  int64_t max_wait_us = 500;
  int64_t max_queue_depth = 64;
  // [overload] — the open-loop past-saturation scenario.
  double overload_factor = 2.0;   ///< offered load as a multiple of saturation
  int64_t overload_windows = 4;   ///< trajectory resolution
  int64_t window_ms = 250;
  int64_t deadline_ms = 0;        ///< 0: auto (5x the measured batch latency)
  int64_t low_priority_every = 4; ///< every Nth request is shed class kLow
  double overload_rate_rps = 0.0; ///< token-bucket limit (0: off)
  int64_t shed_latency_ms = 0;    ///< EWMA shed budget (0: off)
  bool hot_swap = true;           ///< stage + swap a checkpoint mid-run
  // [fleet] — the multi-model mixed-tenant scenario (DESIGN.md §14).
  std::vector<std::string> fleet_models;  ///< "id:slo" tenants, in order
  std::string fleet_hot_model;      ///< past-saturation tenant ("" : last)
  double fleet_hot_factor = 2.0;    ///< hot tenant's offered load, x saturation
  double fleet_healthy_factor = 0.25;  ///< every other tenant's offered load
  int64_t fleet_windows = 4;        ///< trajectory resolution
  int64_t fleet_window_ms = 250;
  int64_t fleet_deadline_ms = 0;    ///< 0: auto (5x the measured batch latency)
  std::string fleet_reload_model;   ///< mid-run hot-reload tenant ("" : first)
  int64_t fleet_reload_poll_ms = 25;  ///< CheckpointReloader poll period
  bool fleet_hot_swap = true;       ///< hot-reload one tenant mid-run
  // [chaos] — "point@offset" scripts armed for the run (kErrno, one-shot).
  std::vector<std::string> chaos_faults;
};

ServingConfig ParseServingConfig(const Spec& spec) {
  ServingConfig c;
  c.num_nodes = spec.GetInt("model", "num_nodes", c.num_nodes);
  c.input_len = spec.GetInt("model", "input_len", c.input_len);
  c.output_len = spec.GetInt("model", "output_len", c.output_len);
  c.hidden_dim = spec.GetInt("model", "hidden_dim", c.hidden_dim);
  c.embed_dim = spec.GetInt("model", "embed_dim", c.embed_dim);
  c.num_layers = spec.GetInt("model", "num_layers", c.num_layers);
  c.num_heads = spec.GetInt("model", "num_heads", c.num_heads);
  c.model_seed = static_cast<uint64_t>(
      spec.GetInt("model", "seed", static_cast<int64_t>(c.model_seed)));
  c.num_steps = spec.GetInt("workload", "num_steps", c.num_steps);
  c.workload_seed = static_cast<uint64_t>(spec.GetInt(
      "workload", "seed", static_cast<int64_t>(c.workload_seed)));
  c.ring_size = spec.GetInt("workload", "requests", c.ring_size);
  c.scenarios = spec.GetList("serving", "scenarios");
  c.threads = spec.GetIntList("serving", "threads");
  c.batch_sizes = spec.GetIntList("serving", "batch_sizes");
  c.backends = spec.GetList("serving", "backends");
  if (c.threads.empty()) c.threads = {1, 2, 4};
  if (c.batch_sizes.empty()) c.batch_sizes = {1, 4, 8};
  if (c.backends.empty()) c.backends = {"auto"};
  c.iters = spec.GetInt("serving", "iters", c.iters);
  c.server_requests =
      spec.GetInt("serving", "server_requests", c.server_requests);
  c.producers = spec.GetInt("serving", "producers", c.producers);
  c.parity_iters = spec.GetInt("serving", "parity_iters", c.parity_iters);
  c.max_batch_size =
      spec.GetInt("serving", "max_batch_size", c.max_batch_size);
  c.max_wait_us = spec.GetInt("serving", "max_wait_us", c.max_wait_us);
  c.max_queue_depth =
      spec.GetInt("serving", "max_queue_depth", c.max_queue_depth);
  c.overload_factor = spec.GetDouble("overload", "factor", c.overload_factor);
  c.overload_windows =
      spec.GetInt("overload", "windows", c.overload_windows);
  c.window_ms = spec.GetInt("overload", "window_ms", c.window_ms);
  c.deadline_ms = spec.GetInt("overload", "deadline_ms", c.deadline_ms);
  c.low_priority_every =
      spec.GetInt("overload", "low_priority_every", c.low_priority_every);
  c.overload_rate_rps =
      spec.GetDouble("overload", "rate_rps", c.overload_rate_rps);
  c.shed_latency_ms =
      spec.GetInt("overload", "shed_latency_ms", c.shed_latency_ms);
  c.hot_swap = spec.GetInt("overload", "hot_swap", c.hot_swap ? 1 : 0) != 0;
  c.fleet_models = spec.GetList("fleet", "models");
  if (c.fleet_models.empty()) {
    c.fleet_models = {"metr-la:gold", "pems-bay:silver", "city-syn:bronze"};
  }
  c.fleet_hot_model = spec.GetString("fleet", "hot_model", c.fleet_hot_model);
  c.fleet_hot_factor =
      spec.GetDouble("fleet", "hot_factor", c.fleet_hot_factor);
  c.fleet_healthy_factor =
      spec.GetDouble("fleet", "healthy_factor", c.fleet_healthy_factor);
  c.fleet_windows = spec.GetInt("fleet", "windows", c.fleet_windows);
  c.fleet_window_ms = spec.GetInt("fleet", "window_ms", c.fleet_window_ms);
  c.fleet_deadline_ms =
      spec.GetInt("fleet", "deadline_ms", c.fleet_deadline_ms);
  c.fleet_reload_model =
      spec.GetString("fleet", "reload_model", c.fleet_reload_model);
  c.fleet_reload_poll_ms =
      spec.GetInt("fleet", "reload_poll_ms", c.fleet_reload_poll_ms);
  c.fleet_hot_swap =
      spec.GetInt("fleet", "hot_swap", c.fleet_hot_swap ? 1 : 0) != 0;
  c.chaos_faults = spec.GetList("chaos", "faults");
  return c;
}

// One tenant of the fleet scenario: a model id, its resolved SLO class,
// the seed its weights are drawn from (the hot-reload twin is seed + 1),
// and its offered load as a multiple of the measured saturation rate.
struct FleetTenant {
  std::string id;
  infer::SloClass slo;
  uint64_t seed = 0;
  double factor = 0.0;
};

/// Parses the [fleet] models list ("id" or "id:slo" entries; SLO names are
/// the built-in gold/silver/bronze tiers) and marks the hot tenant. Runs at
/// expansion time too, so --dry-run refuses a bad tenant list.
bool ParseFleetTenants(const ServingConfig& c, std::vector<FleetTenant>* out,
                       std::string* error) {
  out->clear();
  for (size_t i = 0; i < c.fleet_models.size(); ++i) {
    const std::string& entry = c.fleet_models[i];
    FleetTenant tenant;
    const size_t colon = entry.find(':');
    tenant.id = colon == std::string::npos ? entry : entry.substr(0, colon);
    if (tenant.id.empty()) {
      *error = "[fleet] models entry '" + entry + "' has an empty model id";
      return false;
    }
    if (colon != std::string::npos) {
      const std::string slo_name = entry.substr(colon + 1);
      if (!infer::ResolveSloClass(slo_name, &tenant.slo)) {
        *error = "[fleet] models entry '" + entry +
                 "' names an unknown SLO class '" + slo_name +
                 "' (known: gold, silver, bronze)";
        return false;
      }
    }
    for (const FleetTenant& other : *out) {
      if (other.id == tenant.id) {
        *error = "[fleet] models lists '" + tenant.id + "' twice";
        return false;
      }
    }
    // Distinct weights per tenant, spaced so one tenant's hot-reload twin
    // (seed + 1) can never collide with another tenant's seed.
    tenant.seed = c.model_seed + 16 * (static_cast<uint64_t>(i) + 1);
    tenant.factor = c.fleet_healthy_factor;
    out->push_back(tenant);
  }
  if (out->empty()) {
    *error = "[fleet] models lists no models";
    return false;
  }
  const std::string hot =
      c.fleet_hot_model.empty() ? out->back().id : c.fleet_hot_model;
  bool hot_found = false;
  for (FleetTenant& tenant : *out) {
    if (tenant.id == hot) {
      tenant.factor = c.fleet_hot_factor;
      hot_found = true;
    }
  }
  if (!hot_found) {
    *error = "[fleet] hot_model '" + hot + "' is not in the models list";
    return false;
  }
  if (c.fleet_hot_swap) {
    const std::string reload = c.fleet_reload_model.empty()
                                   ? out->front().id
                                   : c.fleet_reload_model;
    bool reload_found = false;
    for (const FleetTenant& tenant : *out) {
      reload_found = reload_found || tenant.id == reload;
    }
    if (!reload_found) {
      *error = "[fleet] reload_model '" + reload +
               "' is not in the models list";
      return false;
    }
  }
  return true;
}

struct DatasetConfig {
  std::vector<std::string> datasets;
  float scale = 0.06f;
};

DatasetConfig ParseDatasetConfig(const Spec& spec) {
  DatasetConfig config;
  config.datasets = spec.GetList("data", "datasets");
  config.scale = static_cast<float>(spec.GetDouble("data", "scale", 0.06));
  return config;
}

// ---------------------------------------------------------------------------
// Matrix expansion (shared by --dry-run, tests, and the run itself).

bool ExpandTraining(const Spec& spec, const TrainingConfig& config,
                    std::vector<std::string>* cells, std::string* error) {
  if (config.datasets.empty()) {
    *error = "[data] datasets lists no datasets";
    return false;
  }
  if (config.models.empty()) {
    *error = "[models] names lists no models";
    return false;
  }
  train::TrainerOptions probe;
  if (!ApplyTrainerScenario(config.scenario, &probe, error)) return false;
  for (const std::string& dataset : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset, config.scale, spec, &preset, error)) {
      return false;
    }
    for (const std::string& model : config.models) {
      ModelEntry entry;
      if (!ResolveModel(model, &entry, error)) return false;
      cells->push_back("dataset=" + dataset + " model=" + model);
    }
  }
  return true;
}

// Resolves [serving] backends into concrete, deduplicated registry names
// ("auto avx2" on an avx2 host collapses to one entry, so records are never
// duplicated by spelling the same backend two ways).
bool ResolveServingBackends(const ServingConfig& config,
                            std::vector<std::string>* resolved,
                            std::string* error) {
  for (const std::string& name : config.backends) {
    std::string backend;
    if (!ResolveBackend(name, &backend, error)) return false;
    if (std::find(resolved->begin(), resolved->end(), backend) ==
        resolved->end()) {
      resolved->push_back(backend);
    }
  }
  return true;
}

bool ExpandServing(const ServingConfig& config,
                   std::vector<std::string>* cells, std::string* error) {
  if (config.scenarios.empty()) {
    *error = "[serving] scenarios lists no scenarios";
    return false;
  }
  std::vector<std::string> backends;
  if (!ResolveServingBackends(config, &backends, error)) return false;
  // A single backend keeps the historical cell text; only a real sweep
  // prefixes cells with the backend axis.
  for (const std::string& backend : backends) {
    const std::string prefix =
        backends.size() > 1 ? "backend=" + backend + " " : "";
    for (const std::string& scenario : config.scenarios) {
      if (!ResolveServingScenario(scenario, error)) return false;
      for (const int64_t threads : config.threads) {
        if (scenario == "session-eager" || scenario == "session-plan") {
          for (const int64_t batch : config.batch_sizes) {
            cells->push_back(prefix + "scenario=" + scenario +
                             " threads=" + std::to_string(threads) +
                             " batch_size=" + std::to_string(batch));
          }
        } else if (scenario == "fleet") {
          std::vector<FleetTenant> tenants;
          if (!ParseFleetTenants(config, &tenants, error)) return false;
          cells->push_back(prefix + "scenario=fleet threads=" +
                           std::to_string(threads) +
                           " models=" + std::to_string(tenants.size()));
        } else {
          cells->push_back(prefix + "scenario=" + scenario +
                           " threads=" + std::to_string(threads));
        }
      }
    }
  }
  return true;
}

bool ExpandDataset(const Spec& spec, const DatasetConfig& config,
                   std::vector<std::string>* cells, std::string* error) {
  if (config.datasets.empty()) {
    *error = "[data] datasets lists no datasets";
    return false;
  }
  for (const std::string& dataset : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset, config.scale, spec, &preset, error)) {
      return false;
    }
    cells->push_back("dataset=" + dataset);
  }
  return true;
}

// ---------------------------------------------------------------------------
// kind = training

json::Value HorizonRecord(const std::string& dataset,
                          const std::string& model,
                          const std::vector<train::HorizonMetrics>& horizons) {
  json::Value record = json::Value::Object();
  record.Set("dataset", json::Value::Str(dataset));
  record.Set("model", json::Value::Str(model));
  for (const train::HorizonMetrics& h : horizons) {
    // Built with += (not operator+ chaining): GCC 12's -Wrestrict trips a
    // false positive on `"h" + std::to_string(...)` under -Werror.
    std::string prefix = "h";
    prefix += std::to_string(h.horizon);
    prefix += '_';
    record.Set(prefix + "mae", json::Value::Number(h.metrics.mae));
    record.Set(prefix + "rmse", json::Value::Number(h.metrics.rmse));
    record.Set(prefix + "mape", json::Value::Number(h.metrics.mape));
  }
  return record;
}

bool RunTraining(const Spec& spec, const TrainingConfig& config,
                 MetricsSink* sink, std::string* error) {
  int64_t cell = 0;
  const int64_t total = static_cast<int64_t>(config.datasets.size()) *
                        static_cast<int64_t>(config.models.size());
  std::string best_model;
  double best_h12_mae = 0.0;
  for (const std::string& dataset_name : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset_name, config.scale, spec, &preset, error)) {
      return false;
    }
    const PreparedDataset prepared = PrepareDataset(preset, config.env);
    const Tensor test_truth =
        GatherTargets(prepared.dataset(), prepared.splits.test, 12, 12);

    for (const std::string& model_name : config.models) {
      ModelEntry entry;
      if (!ResolveModel(model_name, &entry, error)) return false;
      std::printf("[%lld/%lld] dataset=%s model=%s\n",
                  static_cast<long long>(++cell),
                  static_cast<long long>(total), dataset_name.c_str(),
                  model_name.c_str());
      std::fflush(stdout);

      json::Value record;
      if (entry.family == "statistical") {
        Tensor prediction;
        if (entry.name == "HA") {
          baselines::HistoricalAverage ha;
          ha.Fit(prepared.dataset(), prepared.train_steps);
          prediction =
              ha.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        } else if (entry.name == "VAR") {
          baselines::Var var(3);
          var.Fit(prepared.dataset(), prepared.train_steps);
          prediction =
              var.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        } else {  // SVR
          baselines::LinearSvr svr;
          svr.Fit(prepared.dataset(), prepared.train_steps, 12, 12);
          prediction =
              svr.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        }
        const auto horizons =
            train::EvaluatePredictionHorizons(prediction, test_truth);
        record = HorizonRecord(dataset_name, model_name, horizons);
        record.Set("params", json::Value::Int(0));
        record.Set("epoch_seconds", json::Value::Number(0.0));
        if (best_model.empty()) {
          best_model = model_name;
          best_h12_mae = horizons.back().metrics.mae;
        }
      } else {
        baselines::ModelConfig model_config;
        model_config.num_nodes = prepared.dataset().num_nodes();
        model_config.hidden_dim = config.env.hidden_dim;
        model_config.embed_dim = config.env.embed_dim;
        model_config.steps_per_day = prepared.dataset().steps_per_day;
        Rng rng(config.env.seed);
        auto model =
            BuildModel(entry, model_config,
                       prepared.dataset().network.adjacency, rng, error);
        if (model == nullptr) return false;
        const std::string scenario = config.scenario;
        const TrainedModelResult result = TrainAndEvaluateModel(
            model.get(), prepared, config.env,
            [&](train::TrainerOptions* options) {
              std::string scenario_error;
              ApplyTrainerScenario(scenario, options, &scenario_error);
              if (entry.disable_curriculum) {
                options->curriculum_learning = false;
              }
            });
        record = HorizonRecord(dataset_name, model_name, result.horizons);
        record.Set("params", json::Value::Int(result.parameter_count));
        record.Set("epoch_seconds",
                   json::Value::Number(result.mean_epoch_seconds));
        const double h12 = result.horizons.back().metrics.mae;
        if (best_model.empty() || h12 < best_h12_mae) {
          best_model = model_name;
          best_h12_mae = h12;
        }
      }
      sink->AddRecord(std::move(record));
    }
  }
  sink->SetSummary("datasets",
                   json::Value::Int(static_cast<int64_t>(
                       config.datasets.size())));
  sink->SetSummary("models", json::Value::Int(static_cast<int64_t>(
                                 config.models.size())));
  sink->SetSummary("best_model", json::Value::Str(best_model));
  sink->SetSummary("best_h12_mae", json::Value::Number(best_h12_mae));
  return true;
}

// ---------------------------------------------------------------------------
// kind = serving (the bench_inference protocol behind scenario names)

struct ServingWorkload {
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  std::vector<infer::ForecastRequest> ring;
};

ServingWorkload BuildServingWorkload(const ServingConfig& config) {
  ServingWorkload w;
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = config.num_nodes;
  options.network.neighbors = 2;
  options.num_steps = config.num_steps;
  options.seed = config.workload_seed;
  w.traffic = data::GenerateSyntheticTraffic(options);
  w.scaler.Fit(w.traffic.dataset.values, config.num_steps * 2 / 3, true);
  const std::vector<float>& values = w.traffic.dataset.values.Data();
  for (int64_t start = 0; start < config.ring_size; ++start) {
    infer::ForecastRequest request;
    request.window.assign(
        values.data() + start * config.num_nodes,
        values.data() + (start + config.input_len) * config.num_nodes);
    request.time_of_day = w.traffic.dataset.TimeOfDay(start);
    request.day_of_week = w.traffic.dataset.DayOfWeek(start);
    w.ring.push_back(std::move(request));
  }
  return w;
}

/// A fresh served model with weights drawn from `seed` (the hot-reload
/// factory rebuilds this architecture for every staged checkpoint).
std::unique_ptr<train::ForecastingModel> BuildServingModel(
    const ServingWorkload& w, const ServingConfig& config, uint64_t seed) {
  core::D2StgnnConfig model_config;
  model_config.num_nodes = config.num_nodes;
  model_config.input_len = config.input_len;
  model_config.output_len = config.output_len;
  model_config.hidden_dim = config.hidden_dim;
  model_config.embed_dim = config.embed_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.steps_per_day = w.traffic.dataset.steps_per_day;
  Rng rng(seed);
  return std::make_unique<core::D2Stgnn>(
      model_config, w.traffic.dataset.network.adjacency, rng);
}

infer::SessionOptions ServingSessionOptions(const ServingWorkload& w,
                                            const ServingConfig& config,
                                            bool use_plans) {
  infer::SessionOptions session_options;
  session_options.num_nodes = config.num_nodes;
  session_options.input_len = config.input_len;
  session_options.steps_per_day = w.traffic.dataset.steps_per_day;
  session_options.use_plans = use_plans;
  return session_options;
}

std::unique_ptr<infer::InferenceSession> BuildServingSession(
    const ServingWorkload& w, const ServingConfig& config, bool use_plans) {
  return infer::InferenceSession::Wrap(
      BuildServingModel(w, config, config.model_seed), w.scaler,
      ServingSessionOptions(w, config, use_plans));
}

json::Value ServingRecord(const std::string& scenario,
                          const std::string& mode, int64_t threads,
                          int64_t batch_size, int64_t requests,
                          const metrics::LatencyStats& latency_ms,
                          double throughput_rps) {
  json::Value record = json::Value::Object();
  record.Set("scenario", json::Value::Str(scenario));
  record.Set("mode", json::Value::Str(mode));
  // The backend the sweep currently runs under (RunServing activates each
  // swept backend before building sessions), so rows of a multi-backend
  // sweep stay attributable.
  record.Set("backend", json::Value::Str(kernels::ActiveBackend().name));
  record.Set("threads", json::Value::Int(threads));
  record.Set("batch_size", json::Value::Int(batch_size));
  record.Set("requests", json::Value::Int(requests));
  record.Set("p50_ms", json::Value::Number(latency_ms.p50));
  record.Set("p95_ms", json::Value::Number(latency_ms.p95));
  record.Set("p99_ms", json::Value::Number(latency_ms.p99));
  record.Set("mean_ms", json::Value::Number(latency_ms.mean));
  record.Set("max_ms", json::Value::Number(latency_ms.max));
  record.Set("throughput_rps", json::Value::Number(throughput_rps));
  return record;
}

/// Direct PredictRequests calls at a fixed batch size.
bool SweepSession(infer::InferenceSession* session, const ServingConfig& c,
                  const ServingWorkload& w, const std::string& scenario,
                  int64_t threads, int64_t batch_size, MetricsSink* sink,
                  std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  std::vector<infer::ForecastRequest> batch;
  for (int64_t i = 0; i < batch_size; ++i) {
    batch.push_back(w.ring[static_cast<size_t>(i) % w.ring.size()]);
  }
  session->Warmup(batch_size, /*runs=*/2);

  using clock = std::chrono::steady_clock;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(c.iters));
  const auto sweep_start = clock::now();
  for (int64_t i = 0; i < c.iters; ++i) {
    const auto start = clock::now();
    for (const infer::Forecast& f : session->PredictRequests(batch)) {
      if (!f.ok) {
        *error = "serving forward failed: " + f.error;
        return false;
      }
    }
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count());
  }
  const double elapsed =
      std::chrono::duration<double>(clock::now() - sweep_start).count();
  const int64_t requests = c.iters * batch_size;
  sink->AddRecord(ServingRecord(
      scenario, scenario, threads, batch_size, requests,
      metrics::SummarizeLatencies(latencies_ms),
      elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0));
  return true;
}

/// Closed-loop producers against the BatchingServer.
bool SweepServer(infer::InferenceSession* session, const ServingConfig& c,
                 const ServingWorkload& w, int64_t threads, MetricsSink* sink,
                 std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  infer::BatchingOptions options;
  options.max_batch_size = c.max_batch_size;
  options.max_wait_us = c.max_wait_us;
  infer::BatchingServer server(session, options);

  using clock = std::chrono::steady_clock;
  const int producers = static_cast<int>(c.producers);
  std::vector<std::vector<double>> latencies(static_cast<size_t>(producers));
  std::vector<std::string> failures(static_cast<size_t>(producers));
  const auto start = clock::now();
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&, p] {
      std::vector<double>& mine = latencies[static_cast<size_t>(p)];
      mine.reserve(static_cast<size_t>(c.server_requests));
      for (int64_t i = 0; i < c.server_requests; ++i) {
        const infer::ForecastRequest& request =
            w.ring[static_cast<size_t>(p * c.server_requests + i) %
                   w.ring.size()];
        const auto submit = clock::now();
        infer::Forecast f = server.Submit(request).get();
        if (!f.ok) {
          failures[static_cast<size_t>(p)] = f.error;
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - submit)
                .count());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  server.Shutdown();
  for (const std::string& failure : failures) {
    if (!failure.empty()) {
      *error = "server request failed: " + failure;
      return false;
    }
  }

  std::vector<double> all;
  for (const std::vector<double>& chunk : latencies) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  sink->AddRecord(ServingRecord(
      "server", "server", threads, c.max_batch_size,
      static_cast<int64_t>(all.size()), metrics::SummarizeLatencies(all),
      elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed : 0.0));
  return true;
}

/// Plan replay vs eager dispatch on single requests, with the bitwise
/// parity check of DESIGN.md §10.
bool SweepParity(infer::InferenceSession* plan_session,
                 infer::InferenceSession* eager_session,
                 const ServingConfig& c, const ServingWorkload& w,
                 int64_t threads, MetricsSink* sink, double* eager_p50,
                 double* plan_p50, std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  plan_session->Warmup(/*batch_size=*/1, /*runs=*/2);

  for (const infer::ForecastRequest& request : w.ring) {
    const infer::Forecast plan = plan_session->PredictOne(request);
    const infer::Forecast eager = eager_session->PredictOne(request);
    if (!plan.ok || !eager.ok || plan.values != eager.values) {
      *error = "plan and eager forecasts diverge at " +
               std::to_string(threads) + " threads";
      return false;
    }
  }
  if (plan_session->session_stats().plan_replays == 0) {
    *error = "plan session never replayed a plan";
    return false;
  }

  const auto time_one = [&](infer::InferenceSession* session,
                            const std::string& mode,
                            double* p50) -> bool {
    using clock = std::chrono::steady_clock;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(c.parity_iters));
    const auto sweep_start = clock::now();
    for (int64_t i = 0; i < c.parity_iters; ++i) {
      const auto start = clock::now();
      const infer::Forecast f = session->PredictOne(
          w.ring[static_cast<size_t>(i) % w.ring.size()]);
      if (!f.ok) {
        *error = mode + " forward failed: " + f.error;
        return false;
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count());
    }
    const double elapsed =
        std::chrono::duration<double>(clock::now() - sweep_start).count();
    const metrics::LatencyStats stats =
        metrics::SummarizeLatencies(latencies_ms);
    *p50 = stats.p50;
    sink->AddRecord(ServingRecord(
        "parity", mode, threads, 1, c.parity_iters, stats,
        elapsed > 0.0 ? static_cast<double>(c.parity_iters) / elapsed : 0.0));
    return true;
  };
  return time_one(eager_session, "eager", eager_p50) &&
         time_one(plan_session, "plan", plan_p50);
}

/// Arms the [chaos] "point@offset" scripts (kErrno, one-shot) for a
/// serving run; returns how many were armed.
int64_t ArmChaosFaults(const std::vector<std::string>& entries) {
  int64_t armed = 0;
  for (const std::string& entry : entries) {
    fault::FaultScript script;
    script.kind = fault::FaultKind::kErrno;
    std::string point = entry;
    const size_t at = entry.find('@');
    if (at != std::string::npos) {
      point = entry.substr(0, at);
      script.trigger_offset = std::strtoll(entry.c_str() + at + 1, nullptr, 10);
    }
    fault::ArmFaultPoint(point, script);
    ++armed;
  }
  return armed;
}

/// Open-loop producers past saturation: the closed-loop overload scenario
/// of DESIGN.md §13. Offered load is a multiple of the *measured* serving
/// rate (self-calibrating, so the same spec saturates under a sanitizer
/// too), every request carries a deadline, every Nth is low priority, the
/// scripted chaos faults fire mid-run, and a checkpoint hot-swap lands
/// while the server is shedding. Emits one record per time window — the
/// shed-rate / deadline-miss / p99 trajectory — plus run-level summaries.
bool SweepOverload(const ServingConfig& c, const ServingWorkload& w,
                   int64_t threads, MetricsSink* sink, std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  using clock = std::chrono::steady_clock;

  // The server takes shared ownership: a mid-run SwapSession retires this
  // session once the last in-flight batch lets go of it.
  std::shared_ptr<infer::InferenceSession> session(
      BuildServingSession(w, c, /*use_plans=*/true).release());
  if (session == nullptr) {
    *error = "failed to build the overload inference session";
    return false;
  }

  // Calibrate: measure the saturated serving rate at the max batch size.
  session->Warmup(c.max_batch_size, /*runs=*/2);
  std::vector<infer::ForecastRequest> calibration_batch;
  for (int64_t i = 0; i < c.max_batch_size; ++i) {
    calibration_batch.push_back(w.ring[static_cast<size_t>(i) % w.ring.size()]);
  }
  constexpr int64_t kCalibrationIters = 5;
  const auto calibration_start = clock::now();
  for (int64_t i = 0; i < kCalibrationIters; ++i) {
    for (const infer::Forecast& f : session->PredictRequests(calibration_batch)) {
      if (!f.ok) {
        *error = "overload calibration forward failed: " + f.error;
        return false;
      }
    }
  }
  const double calibration_s =
      std::chrono::duration<double>(clock::now() - calibration_start).count();
  const double saturation_rps =
      static_cast<double>(kCalibrationIters * c.max_batch_size) /
      std::max(calibration_s, 1e-9);
  const double offered_rps =
      std::max(1.0, saturation_rps * c.overload_factor);
  const double batch_us = calibration_s * 1e6 / kCalibrationIters;
  const int64_t deadline_us =
      c.deadline_ms > 0 ? c.deadline_ms * 1000
                        : std::max<int64_t>(5000,
                                            static_cast<int64_t>(5 * batch_us));

  const int64_t faults_armed = ArmChaosFaults(c.chaos_faults);

  infer::BatchingOptions options;
  options.max_batch_size = c.max_batch_size;
  options.max_wait_us = c.max_wait_us;
  options.max_queue_depth = c.max_queue_depth;
  options.admission.rate_rps = c.overload_rate_rps;
  options.admission.shed_latency_us = c.shed_latency_ms * 1000;
  infer::BatchingServer server(session, options);

  // Hot-reload plumbing: twin weights (model_seed + 1) are checkpointed
  // into a private watch directory one window into the run. The bitwise
  // reference comes from an identically-seeded twin session.
  std::unique_ptr<infer::CheckpointReloader> reloader;
  std::unique_ptr<train::ForecastingModel> swap_model;
  std::vector<float> swap_reference;
  std::filesystem::path watch_dir;
  if (c.hot_swap) {
    const uint64_t swap_seed = c.model_seed + 1;
    auto reference_session = infer::InferenceSession::Wrap(
        BuildServingModel(w, c, swap_seed), w.scaler,
        ServingSessionOptions(w, c, /*use_plans=*/true));
    if (reference_session == nullptr) {
      *error = "failed to build the hot-swap reference session";
      return false;
    }
    const infer::Forecast reference = reference_session->PredictOne(w.ring[0]);
    if (!reference.ok) {
      *error = "hot-swap reference forward failed: " + reference.error;
      return false;
    }
    swap_reference = reference.values;
    swap_model = BuildServingModel(w, c, swap_seed);  // saved mid-run

    watch_dir = std::filesystem::temp_directory_path() /
                ("d2stgnn_overload_" + std::to_string(::getpid()) + "_t" +
                 std::to_string(threads));
    std::error_code ec;
    std::filesystem::remove_all(watch_dir, ec);
    std::filesystem::create_directories(watch_dir, ec);
    infer::HotReloadOptions reload_options;
    reload_options.directory = watch_dir.string();
    reload_options.poll_interval_ms = std::max<int64_t>(10, c.window_ms / 10);
    reloader = std::make_unique<infer::CheckpointReloader>(
        &server, [&w, &c] { return BuildServingModel(w, c, c.model_seed); },
        w.scaler, ServingSessionOptions(w, c, /*use_plans=*/true),
        reload_options);
    reloader->Start();
  }

  // Open-loop producers: each submits on its own fixed cadence regardless
  // of completions (that is what makes shedding observable), a paired
  // harvester resolves the futures in FIFO order and timestamps them.
  struct Outstanding {
    std::future<infer::Forecast> future;
    clock::time_point submitted;
    int64_t window = 0;
  };
  struct Sample {
    int64_t window = 0;
    bool ok = false;
    infer::RejectReason reason = infer::RejectReason::kNone;
    double latency_ms = 0.0;
  };
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outstanding> pending;
    bool done = false;
    std::vector<Sample> samples;
  };

  const int64_t producers = std::max<int64_t>(1, c.producers);
  const double period_s = static_cast<double>(producers) / offered_rps;
  const auto run_start = clock::now();
  const auto run_end =
      run_start + std::chrono::milliseconds(c.overload_windows * c.window_ms);
  std::vector<std::unique_ptr<Channel>> channels;
  for (int64_t p = 0; p < producers; ++p) {
    channels.push_back(std::make_unique<Channel>());
  }
  std::atomic<int64_t> sequence{0};

  std::vector<std::thread> workers;
  for (int64_t p = 0; p < producers; ++p) {
    Channel* channel = channels[static_cast<size_t>(p)].get();
    workers.emplace_back([&, p, channel] {
      auto next = run_start + std::chrono::duration_cast<clock::duration>(
                                  std::chrono::duration<double>(
                                      period_s * static_cast<double>(p) /
                                      static_cast<double>(producers)));
      while (next < run_end) {
        std::this_thread::sleep_until(next);
        const auto now = clock::now();
        if (now >= run_end) break;
        const int64_t seq = sequence.fetch_add(1);
        infer::ForecastRequest request =
            w.ring[static_cast<size_t>(seq) % w.ring.size()];
        request.deadline_us = deadline_us;
        if (c.low_priority_every > 0 &&
            seq % c.low_priority_every == c.low_priority_every - 1) {
          request.priority = infer::RequestPriority::kLow;
        }
        Outstanding out;
        out.submitted = now;
        out.window = std::min<int64_t>(
            c.overload_windows - 1,
            std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                  run_start)
                    .count() /
                c.window_ms);
        out.future = server.Submit(std::move(request));
        {
          std::lock_guard<std::mutex> lock(channel->mu);
          channel->pending.push_back(std::move(out));
        }
        channel->cv.notify_one();
        next += std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(period_s));
      }
      {
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->done = true;
      }
      channel->cv.notify_one();
    });
    workers.emplace_back([channel] {
      for (;;) {
        Outstanding out;
        {
          std::unique_lock<std::mutex> lock(channel->mu);
          channel->cv.wait(lock, [channel] {
            return channel->done || !channel->pending.empty();
          });
          if (channel->pending.empty()) return;  // done and drained
          out = std::move(channel->pending.front());
          channel->pending.pop_front();
        }
        const infer::Forecast forecast = out.future.get();
        Sample sample;
        sample.window = out.window;
        sample.ok = forecast.ok;
        sample.reason = forecast.reason;
        sample.latency_ms = std::chrono::duration<double, std::milli>(
                                clock::now() - out.submitted)
                                .count();
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->samples.push_back(sample);
      }
    });
  }

  // Main thread: drop the hot-swap checkpoint one window in, and track the
  // worst degradation tier while the run progresses.
  infer::OverloadTier max_tier = infer::OverloadTier::kNormal;
  bool checkpoint_dropped = false;
  while (clock::now() < run_end) {
    if (!checkpoint_dropped && swap_model != nullptr &&
        clock::now() >= run_start + std::chrono::milliseconds(c.window_ms)) {
      train::SaveCheckpoint(
          *swap_model, train::CheckpointPathForStep(watch_dir.string(), 1));
      checkpoint_dropped = true;
    }
    max_tier = std::max(max_tier, server.stats().tier);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!checkpoint_dropped && swap_model != nullptr) {
    train::SaveCheckpoint(
        *swap_model, train::CheckpointPathForStep(watch_dir.string(), 1));
  }
  for (std::thread& t : workers) t.join();
  max_tier = std::max(max_tier, server.stats().tier);

  // The swap must land (the reloader retries through injected faults) and
  // the post-swap forecast must be bitwise the twin reference.
  int64_t hot_swaps = 0;
  int64_t post_swap_bitwise = -1;
  if (reloader != nullptr) {
    const auto swap_deadline = clock::now() + std::chrono::seconds(60);
    while (reloader->stats().swaps == 0 && clock::now() < swap_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    hot_swaps = reloader->stats().swaps;
    if (hot_swaps > 0) {
      infer::RetryPolicy policy;
      policy.max_attempts = 16;
      policy.initial_backoff_us = 5000;
      policy.jitter_seed = c.workload_seed;
      const infer::RetryResult probe =
          infer::SubmitWithRetry(&server, w.ring[0], policy);
      post_swap_bitwise =
          probe.forecast.ok && probe.forecast.values == swap_reference ? 1 : 0;
    } else {
      post_swap_bitwise = 0;
    }
    reloader->Stop();
  }
  server.Shutdown();
  const infer::BatchingServerStats server_stats = server.stats();
  const int64_t faults_fired = fault::FaultFireCount();
  fault::DisarmAllFaultPoints();
  if (reloader != nullptr) {
    std::error_code ec;
    std::filesystem::remove_all(watch_dir, ec);
  }

  // Per-window trajectory records.
  struct WindowAgg {
    int64_t offered = 0, completed = 0, shed = 0, expired = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<WindowAgg> window_aggs(static_cast<size_t>(c.overload_windows));
  int64_t total_offered = 0, total_completed = 0, total_shed = 0,
          total_expired = 0;
  for (const std::unique_ptr<Channel>& channel : channels) {
    for (const Sample& sample : channel->samples) {
      WindowAgg& agg = window_aggs[static_cast<size_t>(sample.window)];
      ++agg.offered;
      if (sample.ok) {
        ++agg.completed;
        agg.latencies_ms.push_back(sample.latency_ms);
      } else if (sample.reason == infer::RejectReason::kDeadlineExceeded) {
        ++agg.expired;
      } else {
        ++agg.shed;
      }
    }
  }
  const double window_s = static_cast<double>(c.window_ms) / 1000.0;
  double max_p99_ms = 0.0;
  for (int64_t i = 0; i < c.overload_windows; ++i) {
    const WindowAgg& agg = window_aggs[static_cast<size_t>(i)];
    total_offered += agg.offered;
    total_completed += agg.completed;
    total_shed += agg.shed;
    total_expired += agg.expired;
    const metrics::LatencyStats latency =
        metrics::SummarizeLatencies(agg.latencies_ms);
    max_p99_ms = std::max(max_p99_ms, latency.p99);
    const double denom = static_cast<double>(std::max<int64_t>(agg.offered, 1));
    json::Value record = ServingRecord(
        "overload", "overload", threads, c.max_batch_size, agg.offered,
        latency,
        static_cast<double>(agg.completed) / std::max(window_s, 1e-9));
    record.Set("window", json::Value::Int(i));
    record.Set("completed", json::Value::Int(agg.completed));
    record.Set("shed", json::Value::Int(agg.shed));
    record.Set("expired", json::Value::Int(agg.expired));
    record.Set("shed_rate",
               json::Value::Number(static_cast<double>(agg.shed) / denom));
    record.Set("deadline_miss_rate",
               json::Value::Number(static_cast<double>(agg.expired) / denom));
    sink->AddRecord(std::move(record));
  }

  const double total_denom =
      static_cast<double>(std::max<int64_t>(total_offered, 1));
  sink->SetSummary("saturation_rps", json::Value::Number(saturation_rps));
  sink->SetSummary("offered_rps", json::Value::Number(offered_rps));
  sink->SetSummary("overload_shed_rate",
                   json::Value::Number(static_cast<double>(total_shed) /
                                       total_denom));
  sink->SetSummary("overload_deadline_miss_rate",
                   json::Value::Number(static_cast<double>(total_expired) /
                                       total_denom));
  sink->SetSummary("overload_completed", json::Value::Int(total_completed));
  sink->SetSummary("overload_max_p99_ms", json::Value::Number(max_p99_ms));
  sink->SetSummary("hot_swaps", json::Value::Int(hot_swaps));
  sink->SetSummary("post_swap_bitwise", json::Value::Int(post_swap_bitwise));
  sink->SetSummary("faults_armed", json::Value::Int(faults_armed));
  sink->SetSummary("faults_fired", json::Value::Int(faults_fired));
  sink->SetSummary("max_tier",
                   json::Value::Str(infer::OverloadTierName(max_tier)));
  sink->SetSummary("degrade_transitions",
                   json::Value::Int(server_stats.degrade_transitions));
  sink->SetSummary("session_swaps",
                   json::Value::Int(server_stats.session_swaps));

  if (total_completed == 0) {
    *error = "overload run completed zero requests";
    return false;
  }
  if (c.hot_swap && hot_swaps == 0) {
    *error = "overload run never hot-swapped the staged checkpoint";
    return false;
  }
  if (c.hot_swap && post_swap_bitwise != 1) {
    *error = "post-swap forecast is not bitwise equal to the staged weights";
    return false;
  }
  return true;
}

/// The multi-city fleet scenario (DESIGN.md §14): one FleetServer hosts
/// every configured tenant, each with its own weights, plan cache, and SLO
/// class. Open-loop producers offer a skewed mix — every healthy tenant
/// well under saturation, one low-priority tenant past 2x — while a
/// CheckpointReloader hot-reloads one model mid-run. Emits one record per
/// (model, window) — the per-tenant shed-rate / p99 / throughput
/// trajectory — plus the isolation summaries the baseline gates: the
/// high-priority tenants must ride out the hot tenant's overload, every
/// model must stay bitwise identical to a standalone single-model session,
/// and the reload must not perturb any other lane.
bool SweepFleet(const ServingConfig& c, const ServingWorkload& w,
                int64_t threads, MetricsSink* sink, std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  using clock = std::chrono::steady_clock;

  std::vector<FleetTenant> tenants;
  if (!ParseFleetTenants(c, &tenants, error)) return false;
  const std::string reload_id =
      c.fleet_reload_model.empty() ? tenants.front().id : c.fleet_reload_model;

  // Register every tenant, and record the bitwise reference each lane must
  // reproduce: the same weights served by a standalone single-model
  // session. The fleet may arbitrate *when* a model runs, never *what* it
  // computes.
  infer::ModelFleet fleet;
  std::map<std::string, std::vector<float>> reference;
  for (const FleetTenant& tenant : tenants) {
    std::shared_ptr<infer::InferenceSession> session(
        infer::InferenceSession::Wrap(BuildServingModel(w, c, tenant.seed),
                                      w.scaler,
                                      ServingSessionOptions(w, c, true))
            .release());
    auto standalone = infer::InferenceSession::Wrap(
        BuildServingModel(w, c, tenant.seed), w.scaler,
        ServingSessionOptions(w, c, true));
    if (session == nullptr || standalone == nullptr) {
      *error = "failed to build fleet sessions for '" + tenant.id + "'";
      return false;
    }
    const infer::Forecast ref = standalone->PredictOne(w.ring[0]);
    if (!ref.ok) {
      *error = "standalone reference forward failed for '" + tenant.id +
               "': " + ref.error;
      return false;
    }
    reference[tenant.id] = ref.values;

    infer::FleetModelOptions model_options;
    model_options.model_id = tenant.id;
    model_options.slo = tenant.slo;
    model_options.max_batch_size = c.max_batch_size;
    model_options.max_wait_us = c.max_wait_us;
    if (!fleet.AddModel(std::move(session), model_options, error)) {
      return false;
    }
  }

  // Calibrate the saturated serving rate once — every tenant shares the
  // architecture, so one measurement sizes all the offered loads.
  std::shared_ptr<infer::InferenceSession> calibration_session =
      fleet.session(tenants.front().id);
  calibration_session->Warmup(c.max_batch_size, /*runs=*/2);
  std::vector<infer::ForecastRequest> calibration_batch;
  for (int64_t i = 0; i < c.max_batch_size; ++i) {
    calibration_batch.push_back(w.ring[static_cast<size_t>(i) % w.ring.size()]);
  }
  constexpr int64_t kCalibrationIters = 5;
  const auto calibration_start = clock::now();
  for (int64_t i = 0; i < kCalibrationIters; ++i) {
    for (const infer::Forecast& f :
         calibration_session->PredictRequests(calibration_batch)) {
      if (!f.ok) {
        *error = "fleet calibration forward failed: " + f.error;
        return false;
      }
    }
  }
  const double calibration_s =
      std::chrono::duration<double>(clock::now() - calibration_start).count();
  const double saturation_rps =
      static_cast<double>(kCalibrationIters * c.max_batch_size) /
      std::max(calibration_s, 1e-9);
  const double batch_us = calibration_s * 1e6 / kCalibrationIters;
  const int64_t deadline_us =
      c.fleet_deadline_ms > 0
          ? c.fleet_deadline_ms * 1000
          : std::max<int64_t>(5000, static_cast<int64_t>(5 * batch_us));

  const int64_t faults_armed = ArmChaosFaults(c.chaos_faults);

  infer::FleetOptions fleet_options;
  fleet_options.max_queue_depth = c.max_queue_depth;
  infer::FleetServer server(&fleet, fleet_options);

  // Hot-reload plumbing for the one reloaded tenant: twin weights
  // (seed + 1) land in a private watch directory one window into the run;
  // the bitwise reference comes from an identically-seeded twin session.
  std::unique_ptr<train::ForecastingModel> swap_model;
  std::vector<float> swap_reference;
  std::filesystem::path watch_dir;
  uint64_t reload_seed = 0;
  if (c.fleet_hot_swap) {
    for (const FleetTenant& tenant : tenants) {
      if (tenant.id == reload_id) reload_seed = tenant.seed;
    }
    auto twin_session = infer::InferenceSession::Wrap(
        BuildServingModel(w, c, reload_seed + 1), w.scaler,
        ServingSessionOptions(w, c, true));
    if (twin_session == nullptr) {
      *error = "failed to build the fleet hot-reload twin session";
      return false;
    }
    const infer::Forecast twin = twin_session->PredictOne(w.ring[0]);
    if (!twin.ok) {
      *error = "fleet hot-reload twin forward failed: " + twin.error;
      return false;
    }
    swap_reference = twin.values;
    swap_model = BuildServingModel(w, c, reload_seed + 1);  // saved mid-run

    watch_dir = std::filesystem::temp_directory_path() /
                ("d2stgnn_fleet_" + std::to_string(::getpid()) + "_t" +
                 std::to_string(threads));
    std::error_code ec;
    std::filesystem::remove_all(watch_dir, ec);
    std::filesystem::create_directories(watch_dir, ec);
    infer::HotReloadOptions reload_options;
    reload_options.directory = watch_dir.string();
    reload_options.poll_interval_ms = std::max<int64_t>(5, c.fleet_reload_poll_ms);
    if (!fleet.AttachReloader(
            reload_id, server.host(reload_id),
            [&w, &c, reload_seed] { return BuildServingModel(w, c, reload_seed); },
            w.scaler, ServingSessionOptions(w, c, true), reload_options,
            error)) {
      return false;
    }
    fleet.StartReloaders();
  }

  // One open-loop producer + harvester pair per tenant, each on its own
  // cadence: offered = saturation * tenant.factor, regardless of
  // completions (that is what makes per-tenant shedding observable).
  struct Outstanding {
    std::future<infer::Forecast> future;
    clock::time_point submitted;
    int64_t window = 0;
  };
  struct Sample {
    int64_t window = 0;
    bool ok = false;
    infer::RejectReason reason = infer::RejectReason::kNone;
    double latency_ms = 0.0;
  };
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Outstanding> pending;
    bool done = false;
    std::vector<Sample> samples;
  };

  const auto run_start = clock::now();
  const auto run_end =
      run_start +
      std::chrono::milliseconds(c.fleet_windows * c.fleet_window_ms);
  std::vector<std::unique_ptr<Channel>> channels;
  for (size_t t = 0; t < tenants.size(); ++t) {
    channels.push_back(std::make_unique<Channel>());
  }

  std::vector<std::thread> workers;
  for (size_t t = 0; t < tenants.size(); ++t) {
    const FleetTenant& tenant = tenants[t];
    Channel* channel = channels[t].get();
    const double rate_rps = std::max(1.0, saturation_rps * tenant.factor);
    const double period_s = 1.0 / rate_rps;
    workers.emplace_back([&, t, channel, period_s] {
      int64_t seq = 0;
      auto next = run_start + std::chrono::duration_cast<clock::duration>(
                                  std::chrono::duration<double>(
                                      period_s * static_cast<double>(t) /
                                      static_cast<double>(tenants.size())));
      while (next < run_end) {
        std::this_thread::sleep_until(next);
        const auto now = clock::now();
        if (now >= run_end) break;
        infer::ForecastRequest request =
            w.ring[static_cast<size_t>(seq++) % w.ring.size()];
        request.deadline_us = deadline_us;
        Outstanding out;
        out.submitted = now;
        out.window = std::min<int64_t>(
            c.fleet_windows - 1,
            std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                                  run_start)
                    .count() /
                c.fleet_window_ms);
        out.future = server.Submit(tenants[t].id, std::move(request));
        {
          std::lock_guard<std::mutex> lock(channel->mu);
          channel->pending.push_back(std::move(out));
        }
        channel->cv.notify_one();
        next += std::chrono::duration_cast<clock::duration>(
            std::chrono::duration<double>(period_s));
      }
      {
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->done = true;
      }
      channel->cv.notify_one();
    });
    workers.emplace_back([channel] {
      for (;;) {
        Outstanding out;
        {
          std::unique_lock<std::mutex> lock(channel->mu);
          channel->cv.wait(lock, [channel] {
            return channel->done || !channel->pending.empty();
          });
          if (channel->pending.empty()) return;  // done and drained
          out = std::move(channel->pending.front());
          channel->pending.pop_front();
        }
        const infer::Forecast forecast = out.future.get();
        Sample sample;
        sample.window = out.window;
        sample.ok = forecast.ok;
        sample.reason = forecast.reason;
        sample.latency_ms = std::chrono::duration<double, std::milli>(
                                clock::now() - out.submitted)
                                .count();
        std::lock_guard<std::mutex> lock(channel->mu);
        channel->samples.push_back(sample);
      }
    });
  }

  // Main thread: drop the reload tenant's twin checkpoint one window in,
  // and track the worst degradation tier while the run progresses.
  infer::OverloadTier max_tier = infer::OverloadTier::kNormal;
  bool checkpoint_dropped = false;
  while (clock::now() < run_end) {
    if (!checkpoint_dropped && swap_model != nullptr &&
        clock::now() >=
            run_start + std::chrono::milliseconds(c.fleet_window_ms)) {
      train::SaveCheckpoint(
          *swap_model, train::CheckpointPathForStep(watch_dir.string(), 1));
      checkpoint_dropped = true;
    }
    max_tier = std::max(max_tier, server.stats().tier);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!checkpoint_dropped && swap_model != nullptr) {
    train::SaveCheckpoint(
        *swap_model, train::CheckpointPathForStep(watch_dir.string(), 1));
  }
  for (std::thread& t : workers) t.join();
  max_tier = std::max(max_tier, server.stats().tier);

  // The reload must land before the probes (the reloader retries through
  // any injected staging fault).
  int64_t hot_swaps = 0;
  if (c.fleet_hot_swap) {
    infer::CheckpointReloader* reloader = fleet.reloader(reload_id);
    const auto swap_deadline = clock::now() + std::chrono::seconds(60);
    while (reloader->stats().swaps == 0 && clock::now() < swap_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    hot_swaps = reloader->stats().swaps;
  }

  // Bitwise probes, after the backlog drains: every tenant must serve
  // exactly what its standalone session serves — the reloaded tenant, what
  // the staged twin serves. Generous retries ride out tier recovery.
  int64_t bitwise_models = 0;
  int64_t post_swap_bitwise = c.fleet_hot_swap ? 0 : -1;
  for (const FleetTenant& tenant : tenants) {
    infer::RetryPolicy policy;
    policy.max_attempts = 64;
    policy.initial_backoff_us = 2000;
    policy.max_backoff_us = 50000;
    policy.jitter_seed = c.workload_seed;
    const infer::RetryResult probe =
        infer::SubmitWithRetry(&server, tenant.id, w.ring[0], policy);
    const bool reloaded = c.fleet_hot_swap && tenant.id == reload_id;
    const std::vector<float>& expected =
        reloaded && hot_swaps > 0 ? swap_reference : reference[tenant.id];
    const bool bitwise = probe.forecast.ok && probe.forecast.values == expected;
    if (bitwise) ++bitwise_models;
    if (reloaded) post_swap_bitwise = bitwise && hot_swaps > 0 ? 1 : 0;
  }

  fleet.StopReloaders();
  server.Shutdown();
  const infer::FleetStats fleet_stats = server.stats();
  const int64_t faults_fired = fault::FaultFireCount();
  fault::DisarmAllFaultPoints();
  if (c.fleet_hot_swap) {
    std::error_code ec;
    std::filesystem::remove_all(watch_dir, ec);
  }

  // Per-(model, window) trajectory records, plus per-tenant aggregates for
  // the isolation summaries.
  struct WindowAgg {
    int64_t offered = 0, completed = 0, shed = 0, expired = 0;
    std::vector<double> latencies_ms;
  };
  const double window_s = static_cast<double>(c.fleet_window_ms) / 1000.0;
  int64_t total_completed = 0;
  int64_t high_offered = 0, high_shed = 0, high_expired = 0;
  int64_t hot_offered = 0, hot_shed = 0;
  double high_p99_ms = 0.0;
  int64_t best_priority = tenants.front().slo.priority;
  for (const FleetTenant& tenant : tenants) {
    best_priority = std::min(best_priority, tenant.slo.priority);
  }
  for (size_t t = 0; t < tenants.size(); ++t) {
    const FleetTenant& tenant = tenants[t];
    const bool is_hot = tenant.factor == c.fleet_hot_factor &&
                        tenant.id == (c.fleet_hot_model.empty()
                                          ? tenants.back().id
                                          : c.fleet_hot_model);
    std::vector<WindowAgg> aggs(static_cast<size_t>(c.fleet_windows));
    std::vector<double> tenant_latencies;
    for (const Sample& sample : channels[t]->samples) {
      WindowAgg& agg = aggs[static_cast<size_t>(sample.window)];
      ++agg.offered;
      if (sample.ok) {
        ++agg.completed;
        agg.latencies_ms.push_back(sample.latency_ms);
        tenant_latencies.push_back(sample.latency_ms);
      } else if (sample.reason == infer::RejectReason::kDeadlineExceeded) {
        ++agg.expired;
      } else {
        ++agg.shed;
      }
    }
    for (int64_t i = 0; i < c.fleet_windows; ++i) {
      const WindowAgg& agg = aggs[static_cast<size_t>(i)];
      total_completed += agg.completed;
      if (tenant.slo.priority == best_priority && !is_hot) {
        high_offered += agg.offered;
        high_shed += agg.shed;
        high_expired += agg.expired;
      }
      if (is_hot) {
        hot_offered += agg.offered;
        hot_shed += agg.shed;
      }
      const double denom =
          static_cast<double>(std::max<int64_t>(agg.offered, 1));
      json::Value record = ServingRecord(
          "fleet", "fleet", threads, c.max_batch_size, agg.offered,
          metrics::SummarizeLatencies(agg.latencies_ms),
          static_cast<double>(agg.completed) / std::max(window_s, 1e-9));
      record.Set("model", json::Value::Str(tenant.id));
      record.Set("slo", json::Value::Str(tenant.slo.name));
      record.Set("priority", json::Value::Int(tenant.slo.priority));
      record.Set("window", json::Value::Int(i));
      record.Set("completed", json::Value::Int(agg.completed));
      record.Set("shed", json::Value::Int(agg.shed));
      record.Set("expired", json::Value::Int(agg.expired));
      record.Set("shed_rate",
                 json::Value::Number(static_cast<double>(agg.shed) / denom));
      record.Set("deadline_miss_rate",
                 json::Value::Number(static_cast<double>(agg.expired) /
                                     denom));
      sink->AddRecord(std::move(record));
    }
    if (tenant.slo.priority == best_priority && !is_hot) {
      high_p99_ms = std::max(
          high_p99_ms, metrics::SummarizeLatencies(tenant_latencies).p99);
    }
  }

  // Isolation summaries. "high" covers the healthy best-priority tenants;
  // "hot" is the past-saturation one. The reload must touch exactly one
  // lane: every other model's session_swaps stays zero.
  int64_t others_session_swaps = 0;
  int64_t rejected_quota = 0;
  for (const auto& [id, model_stats] : fleet_stats.models) {
    rejected_quota += model_stats.rejected_quota;
    if (!(c.fleet_hot_swap && id == reload_id)) {
      others_session_swaps += model_stats.session_swaps;
    }
  }
  const double high_denom =
      static_cast<double>(std::max<int64_t>(high_offered, 1));
  const double hot_denom =
      static_cast<double>(std::max<int64_t>(hot_offered, 1));
  sink->SetSummary("saturation_rps", json::Value::Number(saturation_rps));
  sink->SetSummary("fleet_models",
                   json::Value::Int(static_cast<int64_t>(tenants.size())));
  sink->SetSummary("fleet_completed", json::Value::Int(total_completed));
  sink->SetSummary("fleet_high_shed_rate",
                   json::Value::Number(static_cast<double>(high_shed) /
                                       high_denom));
  sink->SetSummary("fleet_high_deadline_miss_rate",
                   json::Value::Number(static_cast<double>(high_expired) /
                                       high_denom));
  sink->SetSummary("fleet_high_p99_ms", json::Value::Number(high_p99_ms));
  sink->SetSummary("fleet_hot_shed_rate",
                   json::Value::Number(static_cast<double>(hot_shed) /
                                       hot_denom));
  sink->SetSummary("rejected_quota", json::Value::Int(rejected_quota));
  sink->SetSummary("hot_swaps", json::Value::Int(hot_swaps));
  sink->SetSummary("post_swap_bitwise", json::Value::Int(post_swap_bitwise));
  sink->SetSummary("bitwise_models", json::Value::Int(bitwise_models));
  sink->SetSummary("others_session_swaps",
                   json::Value::Int(others_session_swaps));
  sink->SetSummary("faults_armed", json::Value::Int(faults_armed));
  sink->SetSummary("faults_fired", json::Value::Int(faults_fired));
  sink->SetSummary("max_tier",
                   json::Value::Str(infer::OverloadTierName(max_tier)));
  sink->SetSummary("degrade_transitions",
                   json::Value::Int(fleet_stats.degrade_transitions));

  if (total_completed == 0) {
    *error = "fleet run completed zero requests";
    return false;
  }
  if (c.fleet_hot_swap && hot_swaps == 0) {
    *error = "fleet run never hot-swapped the staged checkpoint";
    return false;
  }
  if (c.fleet_hot_swap && post_swap_bitwise != 1) {
    *error = "post-swap fleet forecast is not bitwise the staged twin";
    return false;
  }
  if (bitwise_models != static_cast<int64_t>(tenants.size())) {
    *error = "fleet forecasts diverge from the standalone sessions (" +
             std::to_string(bitwise_models) + "/" +
             std::to_string(tenants.size()) + " bitwise)";
    return false;
  }
  if (others_session_swaps != 0) {
    *error = "hot reload perturbed other models' sessions (" +
             std::to_string(others_session_swaps) + " unexpected swaps)";
    return false;
  }
  return true;
}

bool RunServing(const ServingConfig& config, MetricsSink* sink,
                std::string* error) {
  std::vector<std::string> backends;
  if (!ResolveServingBackends(config, &backends, error)) return false;
  const ServingWorkload w = BuildServingWorkload(config);

  double eager_p50 = 0.0;
  double plan_p50 = 0.0;
  bool parity_ran = false;
  bool ok = true;
  // The backend axis is the outermost loop: sessions (and hence captured
  // plans) are rebuilt per backend so every number is measured under the
  // backend it is labeled with. The prior backend is restored on exit.
  const std::string original_backend = kernels::ActiveBackend().name;
  for (const std::string& backend : backends) {
    if (!kernels::SetActiveBackend(backend, error)) {
      ok = false;
      break;
    }
    if (backends.size() > 1) {
      std::printf("serving backend: %s\n", backend.c_str());
      std::fflush(stdout);
    }
    auto plan_session = BuildServingSession(w, config, /*use_plans=*/true);
    if (plan_session == nullptr) {
      *error = "failed to build the plan-serving inference session";
      ok = false;
      break;
    }
    std::unique_ptr<infer::InferenceSession> eager_session;

    for (const std::string& scenario : config.scenarios) {
      if (!ResolveServingScenario(scenario, error)) {
        ok = false;
        break;
      }
      std::printf("serving scenario: %s\n", scenario.c_str());
      std::fflush(stdout);
      if (scenario == "session-eager" || scenario == "session-plan") {
        if (scenario == "session-eager" && eager_session == nullptr) {
          eager_session = BuildServingSession(w, config, /*use_plans=*/false);
          if (eager_session == nullptr) {
            *error = "failed to build the eager inference session";
            ok = false;
            break;
          }
        }
        infer::InferenceSession* session = scenario == "session-plan"
                                               ? plan_session.get()
                                               : eager_session.get();
        for (const int64_t threads : config.threads) {
          for (const int64_t batch : config.batch_sizes) {
            if (!SweepSession(session, config, w, scenario, threads, batch,
                              sink, error)) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
      } else if (scenario == "server") {
        for (const int64_t threads : config.threads) {
          if (!SweepServer(plan_session.get(), config, w, threads, sink,
                           error)) {
            ok = false;
            break;
          }
        }
      } else if (scenario == "overload") {
        for (const int64_t threads : config.threads) {
          if (!SweepOverload(config, w, threads, sink, error)) {
            ok = false;
            break;
          }
        }
      } else if (scenario == "fleet") {
        for (const int64_t threads : config.threads) {
          if (!SweepFleet(config, w, threads, sink, error)) {
            ok = false;
            break;
          }
        }
      } else {  // parity
        if (eager_session == nullptr) {
          eager_session = BuildServingSession(w, config, /*use_plans=*/false);
          if (eager_session == nullptr) {
            *error = "failed to build the eager inference session";
            ok = false;
            break;
          }
        }
        for (const int64_t threads : config.threads) {
          if (!SweepParity(plan_session.get(), eager_session.get(), config, w,
                           threads, sink, &eager_p50, &plan_p50, error)) {
            ok = false;
            break;
          }
          parity_ran = true;
        }
      }
      if (!ok) break;
    }
    if (!ok) break;
  }
  kernels::SetActiveBackend(original_backend);
  SetNumThreads(1);
  if (!ok) return false;

  if (parity_ran) {
    // The headline numbers come from the last (largest) thread count.
    sink->SetSummary("eager_p50_ms", json::Value::Number(eager_p50));
    sink->SetSummary("plan_p50_ms", json::Value::Number(plan_p50));
    sink->SetSummary(
        "plan_speedup",
        json::Value::Number(plan_p50 > 0.0 ? eager_p50 / plan_p50 : 0.0));
    sink->SetSummary("bitwise_identical", json::Value::Int(1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// kind = dataset (Table 2)

struct PaperDatasetRow {
  const char* type;
  const char* name;
  int64_t nodes, edges, steps;
};

constexpr PaperDatasetRow kPaperRows[] = {
    {"Speed", "METR-LA", 207, 1722, 34272},
    {"Speed", "PEMS-BAY", 325, 2694, 52116},
    {"Flow", "PEMS04", 307, 680, 16992},
    {"Flow", "PEMS08", 170, 548, 17856},
};

bool RunDataset(const Spec& spec, const DatasetConfig& config,
                MetricsSink* sink, std::string* error) {
  for (const std::string& name : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(name, config.scale, spec, &preset, error)) {
      return false;
    }
    const data::SyntheticTraffic traffic =
        data::GenerateSyntheticTraffic(preset.options);
    const auto& dataset = traffic.dataset;
    json::Value record = json::Value::Object();
    record.Set("dataset", json::Value::Str(name));
    record.Set("nodes", json::Value::Int(dataset.num_nodes()));
    record.Set("edges", json::Value::Int(
                            graph::CountEdges(dataset.network.adjacency)));
    record.Set("steps", json::Value::Int(dataset.num_steps()));
    for (const PaperDatasetRow& row : kPaperRows) {
      if (name == row.name) {
        record.Set("type", json::Value::Str(row.type));
        record.Set("paper_nodes", json::Value::Int(row.nodes));
        record.Set("paper_edges", json::Value::Int(row.edges));
        record.Set("paper_steps", json::Value::Int(row.steps));
      }
    }
    sink->AddRecord(std::move(record));
  }
  sink->SetSummary("datasets", json::Value::Int(static_cast<int64_t>(
                                   config.datasets.size())));
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------

bool ExpandMatrix(const Spec& spec, std::vector<std::string>* cells,
                  std::string* error) {
  cells->clear();
  const std::string kind = spec.GetString("experiment", "kind", "");
  if (kind == "training") {
    return ExpandTraining(spec, ParseTrainingConfig(spec), cells, error);
  }
  if (kind == "serving") {
    return ExpandServing(ParseServingConfig(spec), cells, error);
  }
  if (kind == "dataset") {
    return ExpandDataset(spec, ParseDatasetConfig(spec), cells, error);
  }
  *error = "[experiment] kind must be training, serving, or dataset, got '" +
           kind + "'";
  return false;
}

RunResult RunSpec(const Spec& spec, const RunOptions& options) {
  RunResult result;
  result.experiment = spec.GetString("experiment", "name", "");
  result.kind = spec.GetString("experiment", "kind", "");
  if (result.experiment.empty()) {
    result.error = "[experiment] name is required";
    return result;
  }

  // Consume the [output] keys up front so Validate() sees them as known.
  const std::string out_file = spec.GetString(
      "output", "file", "BENCH_" + result.experiment + ".json");
  std::string baseline_path = spec.GetString("output", "baseline", "");
  if (!options.baseline_path.empty()) baseline_path = options.baseline_path;
  if (baseline_path == "none") baseline_path.clear();

  std::vector<std::string> cells;
  if (!ExpandMatrix(spec, &cells, &result.error)) return result;
  result.cells = static_cast<int64_t>(cells.size());

  // Every key the kind understands has been consumed; anything left is a
  // typo the run must refuse (satellite: unknown keys rejected with line
  // numbers).
  const std::string validation = spec.Validate();
  if (!validation.empty()) {
    result.error = "spec validation failed:\n" + validation;
    return result;
  }

  if (options.dry_run) {
    result.ok = true;
    std::string listing;
    for (const std::string& cell : cells) listing += "  " + cell + "\n";
    result.table = "matrix (" + std::to_string(cells.size()) + " cells):\n" +
                   listing;
    return result;
  }

  MetricsSink sink(result.experiment, result.kind);
  bool ran = false;
  if (result.kind == "training") {
    ran = RunTraining(spec, ParseTrainingConfig(spec), &sink, &result.error);
  } else if (result.kind == "serving") {
    ran = RunServing(ParseServingConfig(spec), &sink, &result.error);
  } else {
    ran = RunDataset(spec, ParseDatasetConfig(spec), &sink, &result.error);
  }
  if (!ran) return result;

  result.table = sink.RenderTable();
  const std::string dir = options.out_dir.empty() ? "." : options.out_dir;
  result.json_path = dir + "/" + out_file;
  if (!sink.WriteJson(result.json_path, &result.error)) return result;

  if (!baseline_path.empty()) {
    json::Value baseline;
    if (!json::Value::ParseFile(baseline_path, &baseline, &result.error)) {
      return result;
    }
    GateReport report;
    if (!CheckAgainstBaseline(sink.ToJson(), baseline, &report,
                              &result.error)) {
      result.error = baseline_path + ": " + result.error;
      return result;
    }
    result.gate_report = report.ToString();
    if (!report.ok) {
      result.gate_violation = true;
      result.error = result.gate_report;
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace d2stgnn::experiment
