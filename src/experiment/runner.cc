#include "experiment/runner.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "baselines/historical_average.h"
#include "baselines/linear_svr.h"
#include "baselines/var.h"
#include "common/thread_pool.h"
#include "core/d2stgnn.h"
#include "data/synthetic_traffic.h"
#include "experiment/metrics_sink.h"
#include "experiment/protocol.h"
#include "experiment/registry.h"
#include "experiment/regression_gate.h"
#include "graph/sensor_graph.h"
#include "infer/batching_server.h"
#include "infer/session.h"
#include "metrics/metrics.h"
#include "train/evaluator.h"

namespace d2stgnn::experiment {
namespace {

// ---------------------------------------------------------------------------
// Spec -> typed configurations. Every key a kind understands is consumed
// here (or in the Resolve* calls), so Spec::Validate() afterwards reports
// exactly the keys nobody understands.

struct TrainingConfig {
  std::vector<std::string> datasets;
  std::vector<std::string> models;
  float scale = 0.06f;
  std::string scenario = "standard";
  BenchEnv env;
};

TrainingConfig ParseTrainingConfig(const Spec& spec) {
  TrainingConfig config;
  config.datasets = spec.GetList("data", "datasets");
  config.scale = static_cast<float>(spec.GetDouble("data", "scale", 0.06));
  config.models = spec.GetList("models", "names");
  config.scenario = spec.GetString("trainer", "scenario", "standard");
  BenchEnv& env = config.env;
  env.scale = config.scale;
  env.epochs = spec.GetInt("trainer", "epochs", env.epochs);
  env.batch_size = spec.GetInt("trainer", "batch_size", env.batch_size);
  env.hidden_dim = spec.GetInt("trainer", "hidden_dim", env.hidden_dim);
  env.embed_dim = spec.GetInt("trainer", "embed_dim", env.embed_dim);
  env.train_samples =
      spec.GetInt("trainer", "train_samples", env.train_samples);
  env.eval_samples = spec.GetInt("trainer", "eval_samples", env.eval_samples);
  env.seed = static_cast<uint64_t>(
      spec.GetInt("trainer", "seed", static_cast<int64_t>(env.seed)));
  env.threads = GetNumThreads();
  return config;
}

struct ServingConfig {
  // [model] — the served D2STGNN.
  int64_t num_nodes = 4;
  int64_t input_len = 12;
  int64_t output_len = 12;
  int64_t hidden_dim = 8;
  int64_t embed_dim = 4;
  int64_t num_layers = 1;
  int64_t num_heads = 2;
  uint64_t model_seed = 3;
  // [workload] — the request stream.
  int64_t num_steps = 600;
  uint64_t workload_seed = 17;
  int64_t ring_size = 64;
  // [serving] — what to sweep.
  std::vector<std::string> scenarios;
  std::vector<int64_t> threads;
  std::vector<int64_t> batch_sizes;
  int64_t iters = 40;
  int64_t server_requests = 80;
  int64_t producers = 4;
  int64_t parity_iters = 200;
  int64_t max_batch_size = 8;
  int64_t max_wait_us = 500;
};

ServingConfig ParseServingConfig(const Spec& spec) {
  ServingConfig c;
  c.num_nodes = spec.GetInt("model", "num_nodes", c.num_nodes);
  c.input_len = spec.GetInt("model", "input_len", c.input_len);
  c.output_len = spec.GetInt("model", "output_len", c.output_len);
  c.hidden_dim = spec.GetInt("model", "hidden_dim", c.hidden_dim);
  c.embed_dim = spec.GetInt("model", "embed_dim", c.embed_dim);
  c.num_layers = spec.GetInt("model", "num_layers", c.num_layers);
  c.num_heads = spec.GetInt("model", "num_heads", c.num_heads);
  c.model_seed = static_cast<uint64_t>(
      spec.GetInt("model", "seed", static_cast<int64_t>(c.model_seed)));
  c.num_steps = spec.GetInt("workload", "num_steps", c.num_steps);
  c.workload_seed = static_cast<uint64_t>(spec.GetInt(
      "workload", "seed", static_cast<int64_t>(c.workload_seed)));
  c.ring_size = spec.GetInt("workload", "requests", c.ring_size);
  c.scenarios = spec.GetList("serving", "scenarios");
  c.threads = spec.GetIntList("serving", "threads");
  c.batch_sizes = spec.GetIntList("serving", "batch_sizes");
  if (c.threads.empty()) c.threads = {1, 2, 4};
  if (c.batch_sizes.empty()) c.batch_sizes = {1, 4, 8};
  c.iters = spec.GetInt("serving", "iters", c.iters);
  c.server_requests =
      spec.GetInt("serving", "server_requests", c.server_requests);
  c.producers = spec.GetInt("serving", "producers", c.producers);
  c.parity_iters = spec.GetInt("serving", "parity_iters", c.parity_iters);
  c.max_batch_size =
      spec.GetInt("serving", "max_batch_size", c.max_batch_size);
  c.max_wait_us = spec.GetInt("serving", "max_wait_us", c.max_wait_us);
  return c;
}

struct DatasetConfig {
  std::vector<std::string> datasets;
  float scale = 0.06f;
};

DatasetConfig ParseDatasetConfig(const Spec& spec) {
  DatasetConfig config;
  config.datasets = spec.GetList("data", "datasets");
  config.scale = static_cast<float>(spec.GetDouble("data", "scale", 0.06));
  return config;
}

// ---------------------------------------------------------------------------
// Matrix expansion (shared by --dry-run, tests, and the run itself).

bool ExpandTraining(const Spec& spec, const TrainingConfig& config,
                    std::vector<std::string>* cells, std::string* error) {
  if (config.datasets.empty()) {
    *error = "[data] datasets lists no datasets";
    return false;
  }
  if (config.models.empty()) {
    *error = "[models] names lists no models";
    return false;
  }
  train::TrainerOptions probe;
  if (!ApplyTrainerScenario(config.scenario, &probe, error)) return false;
  for (const std::string& dataset : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset, config.scale, spec, &preset, error)) {
      return false;
    }
    for (const std::string& model : config.models) {
      ModelEntry entry;
      if (!ResolveModel(model, &entry, error)) return false;
      cells->push_back("dataset=" + dataset + " model=" + model);
    }
  }
  return true;
}

bool ExpandServing(const ServingConfig& config,
                   std::vector<std::string>* cells, std::string* error) {
  if (config.scenarios.empty()) {
    *error = "[serving] scenarios lists no scenarios";
    return false;
  }
  for (const std::string& scenario : config.scenarios) {
    if (!ResolveServingScenario(scenario, error)) return false;
    for (const int64_t threads : config.threads) {
      if (scenario == "session-eager" || scenario == "session-plan") {
        for (const int64_t batch : config.batch_sizes) {
          cells->push_back("scenario=" + scenario +
                           " threads=" + std::to_string(threads) +
                           " batch_size=" + std::to_string(batch));
        }
      } else {
        cells->push_back("scenario=" + scenario +
                         " threads=" + std::to_string(threads));
      }
    }
  }
  return true;
}

bool ExpandDataset(const Spec& spec, const DatasetConfig& config,
                   std::vector<std::string>* cells, std::string* error) {
  if (config.datasets.empty()) {
    *error = "[data] datasets lists no datasets";
    return false;
  }
  for (const std::string& dataset : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset, config.scale, spec, &preset, error)) {
      return false;
    }
    cells->push_back("dataset=" + dataset);
  }
  return true;
}

// ---------------------------------------------------------------------------
// kind = training

json::Value HorizonRecord(const std::string& dataset,
                          const std::string& model,
                          const std::vector<train::HorizonMetrics>& horizons) {
  json::Value record = json::Value::Object();
  record.Set("dataset", json::Value::Str(dataset));
  record.Set("model", json::Value::Str(model));
  for (const train::HorizonMetrics& h : horizons) {
    const std::string prefix = "h" + std::to_string(h.horizon) + "_";
    record.Set(prefix + "mae", json::Value::Number(h.metrics.mae));
    record.Set(prefix + "rmse", json::Value::Number(h.metrics.rmse));
    record.Set(prefix + "mape", json::Value::Number(h.metrics.mape));
  }
  return record;
}

bool RunTraining(const Spec& spec, const TrainingConfig& config,
                 MetricsSink* sink, std::string* error) {
  int64_t cell = 0;
  const int64_t total = static_cast<int64_t>(config.datasets.size()) *
                        static_cast<int64_t>(config.models.size());
  std::string best_model;
  double best_h12_mae = 0.0;
  for (const std::string& dataset_name : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(dataset_name, config.scale, spec, &preset, error)) {
      return false;
    }
    const PreparedDataset prepared = PrepareDataset(preset, config.env);
    const Tensor test_truth =
        GatherTargets(prepared.dataset(), prepared.splits.test, 12, 12);

    for (const std::string& model_name : config.models) {
      ModelEntry entry;
      if (!ResolveModel(model_name, &entry, error)) return false;
      std::printf("[%lld/%lld] dataset=%s model=%s\n",
                  static_cast<long long>(++cell),
                  static_cast<long long>(total), dataset_name.c_str(),
                  model_name.c_str());
      std::fflush(stdout);

      json::Value record;
      if (entry.family == "statistical") {
        Tensor prediction;
        if (entry.name == "HA") {
          baselines::HistoricalAverage ha;
          ha.Fit(prepared.dataset(), prepared.train_steps);
          prediction =
              ha.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        } else if (entry.name == "VAR") {
          baselines::Var var(3);
          var.Fit(prepared.dataset(), prepared.train_steps);
          prediction =
              var.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        } else {  // SVR
          baselines::LinearSvr svr;
          svr.Fit(prepared.dataset(), prepared.train_steps, 12, 12);
          prediction =
              svr.Predict(prepared.dataset(), prepared.splits.test, 12, 12);
        }
        const auto horizons =
            train::EvaluatePredictionHorizons(prediction, test_truth);
        record = HorizonRecord(dataset_name, model_name, horizons);
        record.Set("params", json::Value::Int(0));
        record.Set("epoch_seconds", json::Value::Number(0.0));
        if (best_model.empty()) {
          best_model = model_name;
          best_h12_mae = horizons.back().metrics.mae;
        }
      } else {
        baselines::ModelConfig model_config;
        model_config.num_nodes = prepared.dataset().num_nodes();
        model_config.hidden_dim = config.env.hidden_dim;
        model_config.embed_dim = config.env.embed_dim;
        model_config.steps_per_day = prepared.dataset().steps_per_day;
        Rng rng(config.env.seed);
        auto model =
            BuildModel(entry, model_config,
                       prepared.dataset().network.adjacency, rng, error);
        if (model == nullptr) return false;
        const std::string scenario = config.scenario;
        const TrainedModelResult result = TrainAndEvaluateModel(
            model.get(), prepared, config.env,
            [&](train::TrainerOptions* options) {
              std::string scenario_error;
              ApplyTrainerScenario(scenario, options, &scenario_error);
              if (entry.disable_curriculum) {
                options->curriculum_learning = false;
              }
            });
        record = HorizonRecord(dataset_name, model_name, result.horizons);
        record.Set("params", json::Value::Int(result.parameter_count));
        record.Set("epoch_seconds",
                   json::Value::Number(result.mean_epoch_seconds));
        const double h12 = result.horizons.back().metrics.mae;
        if (best_model.empty() || h12 < best_h12_mae) {
          best_model = model_name;
          best_h12_mae = h12;
        }
      }
      sink->AddRecord(std::move(record));
    }
  }
  sink->SetSummary("datasets",
                   json::Value::Int(static_cast<int64_t>(
                       config.datasets.size())));
  sink->SetSummary("models", json::Value::Int(static_cast<int64_t>(
                                 config.models.size())));
  sink->SetSummary("best_model", json::Value::Str(best_model));
  sink->SetSummary("best_h12_mae", json::Value::Number(best_h12_mae));
  return true;
}

// ---------------------------------------------------------------------------
// kind = serving (the bench_inference protocol behind scenario names)

struct ServingWorkload {
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  std::vector<infer::ForecastRequest> ring;
};

ServingWorkload BuildServingWorkload(const ServingConfig& config) {
  ServingWorkload w;
  data::SyntheticTrafficOptions options;
  options.network.num_nodes = config.num_nodes;
  options.network.neighbors = 2;
  options.num_steps = config.num_steps;
  options.seed = config.workload_seed;
  w.traffic = data::GenerateSyntheticTraffic(options);
  w.scaler.Fit(w.traffic.dataset.values, config.num_steps * 2 / 3, true);
  const std::vector<float>& values = w.traffic.dataset.values.Data();
  for (int64_t start = 0; start < config.ring_size; ++start) {
    infer::ForecastRequest request;
    request.window.assign(
        values.data() + start * config.num_nodes,
        values.data() + (start + config.input_len) * config.num_nodes);
    request.time_of_day = w.traffic.dataset.TimeOfDay(start);
    request.day_of_week = w.traffic.dataset.DayOfWeek(start);
    w.ring.push_back(std::move(request));
  }
  return w;
}

std::unique_ptr<infer::InferenceSession> BuildServingSession(
    const ServingWorkload& w, const ServingConfig& config, bool use_plans) {
  core::D2StgnnConfig model_config;
  model_config.num_nodes = config.num_nodes;
  model_config.input_len = config.input_len;
  model_config.output_len = config.output_len;
  model_config.hidden_dim = config.hidden_dim;
  model_config.embed_dim = config.embed_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.steps_per_day = w.traffic.dataset.steps_per_day;
  Rng rng(config.model_seed);
  auto model = std::make_unique<core::D2Stgnn>(
      model_config, w.traffic.dataset.network.adjacency, rng);

  infer::SessionOptions session_options;
  session_options.num_nodes = config.num_nodes;
  session_options.input_len = config.input_len;
  session_options.steps_per_day = w.traffic.dataset.steps_per_day;
  session_options.use_plans = use_plans;
  return infer::InferenceSession::Wrap(std::move(model), w.scaler,
                                       session_options);
}

json::Value ServingRecord(const std::string& scenario,
                          const std::string& mode, int64_t threads,
                          int64_t batch_size, int64_t requests,
                          const metrics::LatencyStats& latency_ms,
                          double throughput_rps) {
  json::Value record = json::Value::Object();
  record.Set("scenario", json::Value::Str(scenario));
  record.Set("mode", json::Value::Str(mode));
  record.Set("threads", json::Value::Int(threads));
  record.Set("batch_size", json::Value::Int(batch_size));
  record.Set("requests", json::Value::Int(requests));
  record.Set("p50_ms", json::Value::Number(latency_ms.p50));
  record.Set("p95_ms", json::Value::Number(latency_ms.p95));
  record.Set("p99_ms", json::Value::Number(latency_ms.p99));
  record.Set("mean_ms", json::Value::Number(latency_ms.mean));
  record.Set("max_ms", json::Value::Number(latency_ms.max));
  record.Set("throughput_rps", json::Value::Number(throughput_rps));
  return record;
}

/// Direct PredictRequests calls at a fixed batch size.
bool SweepSession(infer::InferenceSession* session, const ServingConfig& c,
                  const ServingWorkload& w, const std::string& scenario,
                  int64_t threads, int64_t batch_size, MetricsSink* sink,
                  std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  std::vector<infer::ForecastRequest> batch;
  for (int64_t i = 0; i < batch_size; ++i) {
    batch.push_back(w.ring[static_cast<size_t>(i) % w.ring.size()]);
  }
  session->Warmup(batch_size, /*runs=*/2);

  using clock = std::chrono::steady_clock;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<size_t>(c.iters));
  const auto sweep_start = clock::now();
  for (int64_t i = 0; i < c.iters; ++i) {
    const auto start = clock::now();
    for (const infer::Forecast& f : session->PredictRequests(batch)) {
      if (!f.ok) {
        *error = "serving forward failed: " + f.error;
        return false;
      }
    }
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count());
  }
  const double elapsed =
      std::chrono::duration<double>(clock::now() - sweep_start).count();
  const int64_t requests = c.iters * batch_size;
  sink->AddRecord(ServingRecord(
      scenario, scenario, threads, batch_size, requests,
      metrics::SummarizeLatencies(latencies_ms),
      elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0));
  return true;
}

/// Closed-loop producers against the BatchingServer.
bool SweepServer(infer::InferenceSession* session, const ServingConfig& c,
                 const ServingWorkload& w, int64_t threads, MetricsSink* sink,
                 std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  infer::BatchingOptions options;
  options.max_batch_size = c.max_batch_size;
  options.max_wait_us = c.max_wait_us;
  infer::BatchingServer server(session, options);

  using clock = std::chrono::steady_clock;
  const int producers = static_cast<int>(c.producers);
  std::vector<std::vector<double>> latencies(static_cast<size_t>(producers));
  std::vector<std::string> failures(static_cast<size_t>(producers));
  const auto start = clock::now();
  std::vector<std::thread> workers;
  for (int p = 0; p < producers; ++p) {
    workers.emplace_back([&, p] {
      std::vector<double>& mine = latencies[static_cast<size_t>(p)];
      mine.reserve(static_cast<size_t>(c.server_requests));
      for (int64_t i = 0; i < c.server_requests; ++i) {
        const infer::ForecastRequest& request =
            w.ring[static_cast<size_t>(p * c.server_requests + i) %
                   w.ring.size()];
        const auto submit = clock::now();
        infer::Forecast f = server.Submit(request).get();
        if (!f.ok) {
          failures[static_cast<size_t>(p)] = f.error;
          return;
        }
        mine.push_back(
            std::chrono::duration<double, std::milli>(clock::now() - submit)
                .count());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  server.Shutdown();
  for (const std::string& failure : failures) {
    if (!failure.empty()) {
      *error = "server request failed: " + failure;
      return false;
    }
  }

  std::vector<double> all;
  for (const std::vector<double>& chunk : latencies) {
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  sink->AddRecord(ServingRecord(
      "server", "server", threads, c.max_batch_size,
      static_cast<int64_t>(all.size()), metrics::SummarizeLatencies(all),
      elapsed > 0.0 ? static_cast<double>(all.size()) / elapsed : 0.0));
  return true;
}

/// Plan replay vs eager dispatch on single requests, with the bitwise
/// parity check of DESIGN.md §10.
bool SweepParity(infer::InferenceSession* plan_session,
                 infer::InferenceSession* eager_session,
                 const ServingConfig& c, const ServingWorkload& w,
                 int64_t threads, MetricsSink* sink, double* eager_p50,
                 double* plan_p50, std::string* error) {
  SetNumThreads(static_cast<int>(threads));
  plan_session->Warmup(/*batch_size=*/1, /*runs=*/2);

  for (const infer::ForecastRequest& request : w.ring) {
    const infer::Forecast plan = plan_session->PredictOne(request);
    const infer::Forecast eager = eager_session->PredictOne(request);
    if (!plan.ok || !eager.ok || plan.values != eager.values) {
      *error = "plan and eager forecasts diverge at " +
               std::to_string(threads) + " threads";
      return false;
    }
  }
  if (plan_session->session_stats().plan_replays == 0) {
    *error = "plan session never replayed a plan";
    return false;
  }

  const auto time_one = [&](infer::InferenceSession* session,
                            const std::string& mode,
                            double* p50) -> bool {
    using clock = std::chrono::steady_clock;
    std::vector<double> latencies_ms;
    latencies_ms.reserve(static_cast<size_t>(c.parity_iters));
    const auto sweep_start = clock::now();
    for (int64_t i = 0; i < c.parity_iters; ++i) {
      const auto start = clock::now();
      const infer::Forecast f = session->PredictOne(
          w.ring[static_cast<size_t>(i) % w.ring.size()]);
      if (!f.ok) {
        *error = mode + " forward failed: " + f.error;
        return false;
      }
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count());
    }
    const double elapsed =
        std::chrono::duration<double>(clock::now() - sweep_start).count();
    const metrics::LatencyStats stats =
        metrics::SummarizeLatencies(latencies_ms);
    *p50 = stats.p50;
    sink->AddRecord(ServingRecord(
        "parity", mode, threads, 1, c.parity_iters, stats,
        elapsed > 0.0 ? static_cast<double>(c.parity_iters) / elapsed : 0.0));
    return true;
  };
  return time_one(eager_session, "eager", eager_p50) &&
         time_one(plan_session, "plan", plan_p50);
}

bool RunServing(const ServingConfig& config, MetricsSink* sink,
                std::string* error) {
  const ServingWorkload w = BuildServingWorkload(config);
  auto plan_session = BuildServingSession(w, config, /*use_plans=*/true);
  if (plan_session == nullptr) {
    *error = "failed to build the plan-serving inference session";
    return false;
  }
  std::unique_ptr<infer::InferenceSession> eager_session;

  double eager_p50 = 0.0;
  double plan_p50 = 0.0;
  bool parity_ran = false;
  bool ok = true;
  for (const std::string& scenario : config.scenarios) {
    if (!ResolveServingScenario(scenario, error)) {
      ok = false;
      break;
    }
    std::printf("serving scenario: %s\n", scenario.c_str());
    std::fflush(stdout);
    if (scenario == "session-eager" || scenario == "session-plan") {
      if (scenario == "session-eager" && eager_session == nullptr) {
        eager_session = BuildServingSession(w, config, /*use_plans=*/false);
        if (eager_session == nullptr) {
          *error = "failed to build the eager inference session";
          ok = false;
          break;
        }
      }
      infer::InferenceSession* session = scenario == "session-plan"
                                             ? plan_session.get()
                                             : eager_session.get();
      for (const int64_t threads : config.threads) {
        for (const int64_t batch : config.batch_sizes) {
          if (!SweepSession(session, config, w, scenario, threads, batch,
                            sink, error)) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
    } else if (scenario == "server") {
      for (const int64_t threads : config.threads) {
        if (!SweepServer(plan_session.get(), config, w, threads, sink,
                         error)) {
          ok = false;
          break;
        }
      }
    } else {  // parity
      if (eager_session == nullptr) {
        eager_session = BuildServingSession(w, config, /*use_plans=*/false);
        if (eager_session == nullptr) {
          *error = "failed to build the eager inference session";
          ok = false;
          break;
        }
      }
      for (const int64_t threads : config.threads) {
        if (!SweepParity(plan_session.get(), eager_session.get(), config, w,
                         threads, sink, &eager_p50, &plan_p50, error)) {
          ok = false;
          break;
        }
        parity_ran = true;
      }
    }
    if (!ok) break;
  }
  SetNumThreads(1);
  if (!ok) return false;

  if (parity_ran) {
    // The headline numbers come from the last (largest) thread count.
    sink->SetSummary("eager_p50_ms", json::Value::Number(eager_p50));
    sink->SetSummary("plan_p50_ms", json::Value::Number(plan_p50));
    sink->SetSummary(
        "plan_speedup",
        json::Value::Number(plan_p50 > 0.0 ? eager_p50 / plan_p50 : 0.0));
    sink->SetSummary("bitwise_identical", json::Value::Int(1));
  }
  return true;
}

// ---------------------------------------------------------------------------
// kind = dataset (Table 2)

struct PaperDatasetRow {
  const char* type;
  const char* name;
  int64_t nodes, edges, steps;
};

constexpr PaperDatasetRow kPaperRows[] = {
    {"Speed", "METR-LA", 207, 1722, 34272},
    {"Speed", "PEMS-BAY", 325, 2694, 52116},
    {"Flow", "PEMS04", 307, 680, 16992},
    {"Flow", "PEMS08", 170, 548, 17856},
};

bool RunDataset(const Spec& spec, const DatasetConfig& config,
                MetricsSink* sink, std::string* error) {
  for (const std::string& name : config.datasets) {
    data::DatasetPreset preset;
    if (!ResolveDataset(name, config.scale, spec, &preset, error)) {
      return false;
    }
    const data::SyntheticTraffic traffic =
        data::GenerateSyntheticTraffic(preset.options);
    const auto& dataset = traffic.dataset;
    json::Value record = json::Value::Object();
    record.Set("dataset", json::Value::Str(name));
    record.Set("nodes", json::Value::Int(dataset.num_nodes()));
    record.Set("edges", json::Value::Int(
                            graph::CountEdges(dataset.network.adjacency)));
    record.Set("steps", json::Value::Int(dataset.num_steps()));
    for (const PaperDatasetRow& row : kPaperRows) {
      if (name == row.name) {
        record.Set("type", json::Value::Str(row.type));
        record.Set("paper_nodes", json::Value::Int(row.nodes));
        record.Set("paper_edges", json::Value::Int(row.edges));
        record.Set("paper_steps", json::Value::Int(row.steps));
      }
    }
    sink->AddRecord(std::move(record));
  }
  sink->SetSummary("datasets", json::Value::Int(static_cast<int64_t>(
                                   config.datasets.size())));
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------

bool ExpandMatrix(const Spec& spec, std::vector<std::string>* cells,
                  std::string* error) {
  cells->clear();
  const std::string kind = spec.GetString("experiment", "kind", "");
  if (kind == "training") {
    return ExpandTraining(spec, ParseTrainingConfig(spec), cells, error);
  }
  if (kind == "serving") {
    return ExpandServing(ParseServingConfig(spec), cells, error);
  }
  if (kind == "dataset") {
    return ExpandDataset(spec, ParseDatasetConfig(spec), cells, error);
  }
  *error = "[experiment] kind must be training, serving, or dataset, got '" +
           kind + "'";
  return false;
}

RunResult RunSpec(const Spec& spec, const RunOptions& options) {
  RunResult result;
  result.experiment = spec.GetString("experiment", "name", "");
  result.kind = spec.GetString("experiment", "kind", "");
  if (result.experiment.empty()) {
    result.error = "[experiment] name is required";
    return result;
  }

  // Consume the [output] keys up front so Validate() sees them as known.
  const std::string out_file = spec.GetString(
      "output", "file", "BENCH_" + result.experiment + ".json");
  std::string baseline_path = spec.GetString("output", "baseline", "");
  if (!options.baseline_path.empty()) baseline_path = options.baseline_path;
  if (baseline_path == "none") baseline_path.clear();

  std::vector<std::string> cells;
  if (!ExpandMatrix(spec, &cells, &result.error)) return result;
  result.cells = static_cast<int64_t>(cells.size());

  // Every key the kind understands has been consumed; anything left is a
  // typo the run must refuse (satellite: unknown keys rejected with line
  // numbers).
  const std::string validation = spec.Validate();
  if (!validation.empty()) {
    result.error = "spec validation failed:\n" + validation;
    return result;
  }

  if (options.dry_run) {
    result.ok = true;
    std::string listing;
    for (const std::string& cell : cells) listing += "  " + cell + "\n";
    result.table = "matrix (" + std::to_string(cells.size()) + " cells):\n" +
                   listing;
    return result;
  }

  MetricsSink sink(result.experiment, result.kind);
  bool ran = false;
  if (result.kind == "training") {
    ran = RunTraining(spec, ParseTrainingConfig(spec), &sink, &result.error);
  } else if (result.kind == "serving") {
    ran = RunServing(ParseServingConfig(spec), &sink, &result.error);
  } else {
    ran = RunDataset(spec, ParseDatasetConfig(spec), &sink, &result.error);
  }
  if (!ran) return result;

  result.table = sink.RenderTable();
  const std::string dir = options.out_dir.empty() ? "." : options.out_dir;
  result.json_path = dir + "/" + out_file;
  if (!sink.WriteJson(result.json_path, &result.error)) return result;

  if (!baseline_path.empty()) {
    json::Value baseline;
    if (!json::Value::ParseFile(baseline_path, &baseline, &result.error)) {
      return result;
    }
    GateReport report;
    if (!CheckAgainstBaseline(sink.ToJson(), baseline, &report,
                              &result.error)) {
      result.error = baseline_path + ": " + result.error;
      return result;
    }
    result.gate_report = report.ToString();
    if (!report.ok) {
      result.gate_violation = true;
      result.error = result.gate_report;
      return result;
    }
  }
  result.ok = true;
  return result;
}

}  // namespace d2stgnn::experiment
