#ifndef D2STGNN_EXPERIMENT_SPEC_H_
#define D2STGNN_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace d2stgnn::experiment {

/// Declarative experiment spec: a sectioned key/value text format with no
/// external dependencies (DESIGN.md §11). Example:
///
///   # Table-3-style comparison at smoke scale.
///   [experiment]
///   name = table3_smoke
///   kind = training
///
///   [data]
///   datasets = METR-LA, PEMS08
///   scale = 0.05
///
///   [models]
///   names = HA, FC-LSTM, D2STGNN
///
/// Rules: full-line `#` comments and trailing ` #` comments; keys live in
/// exactly one `[section]`; duplicate keys in a section are an error; lists
/// are comma-separated. Every key records its source line so consumers can
/// reject unknown or ill-typed keys with a line number: Get* marks a key as
/// consumed, and Validate() reports every key nobody read (typo detection)
/// plus every type error accumulated by the Get* calls.
class Spec {
 public:
  /// Parses `text`; on failure returns false and sets `error` to a
  /// "line N: ..." message. `source` names the input in errors ("" for
  /// in-memory text).
  static bool ParseText(const std::string& text, Spec* out,
                        std::string* error, const std::string& source = "");

  /// Reads and parses a file.
  static bool ParseFile(const std::string& path, Spec* out,
                        std::string* error);

  /// Serializes back to the text format (comments dropped, ordering kept).
  /// ParseText(ToText()) reproduces every section/key/value.
  std::string ToText() const;

  bool Has(const std::string& section, const std::string& key) const;

  // Typed accessors. The key (when present) is marked consumed; a value
  // that does not parse as the requested type records a type error for
  // Validate() and returns the fallback.
  std::string GetString(const std::string& section, const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& section, const std::string& key,
                 int64_t fallback) const;
  double GetDouble(const std::string& section, const std::string& key,
                   double fallback) const;
  bool GetBool(const std::string& section, const std::string& key,
               bool fallback) const;
  /// Comma-separated list; empty vector when the key is absent.
  std::vector<std::string> GetList(const std::string& section,
                                   const std::string& key) const;
  std::vector<int64_t> GetIntList(const std::string& section,
                                  const std::string& key) const;

  /// Overrides (or inserts) one key, as if it had appeared in the text.
  /// Used by the CLI's --set section.key=value.
  void Set(const std::string& section, const std::string& key,
           const std::string& value);

  /// Source line of a key, or 0 when absent.
  int LineOf(const std::string& section, const std::string& key) const;

  std::vector<std::string> SectionNames() const;

  /// "" when every present key was consumed by a Get* call and no type
  /// errors were recorded; otherwise a newline-separated report, each line
  /// carrying the offending key's line number.
  std::string Validate() const;

 private:
  struct Entry {
    std::string section;
    std::string key;
    std::string value;
    int line = 0;
    mutable bool consumed = false;
  };

  const Entry* Find(const std::string& section, const std::string& key) const;

  std::vector<Entry> entries_;            // in declaration order
  std::vector<std::string> section_order_;
  std::string source_;
  mutable std::vector<std::string> type_errors_;
};

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_SPEC_H_
