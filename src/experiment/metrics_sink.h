#ifndef D2STGNN_EXPERIMENT_METRICS_SINK_H_
#define D2STGNN_EXPERIMENT_METRICS_SINK_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace d2stgnn::experiment {

/// Schema version stamped into every emitted BENCH_*.json. Bump when the
/// document layout changes; scripts/ci.sh and the RegressionGate baselines
/// check it.
inline constexpr int64_t kMetricsSchemaVersion = 1;

/// The single writer of experiment results: collects flat records (one JSON
/// object per measured cell), renders them as an aligned table for the
/// console, and emits the schema-versioned BENCH_*.json document:
///
///   {
///     "schema_version": 1,
///     "experiment": "<name>", "kind": "<training|serving|dataset>",
///     "hardware_concurrency": N,
///     "records": [ {flat key/value objects...} ],
///     "summary": { headline numbers }
///   }
///
/// Benches and the experiment runner must route their outputs through this
/// class so every result file shares one layout and one canonical location
/// (the repo root).
class MetricsSink {
 public:
  MetricsSink(std::string experiment_name, std::string kind);

  /// Appends one flat record (must be a JSON object).
  void AddRecord(json::Value record);

  /// Sets one headline summary value.
  void SetSummary(const std::string& key, json::Value value);

  size_t record_count() const { return records_.size(); }
  const std::vector<json::Value>& records() const { return records_; }
  const json::Value& summary() const { return summary_; }

  /// Renders the records as an aligned table: one column per distinct field,
  /// in first-seen order; numbers formatted compactly.
  std::string RenderTable() const;

  /// The full schema-versioned document.
  json::Value ToJson() const;

  /// Writes ToJson() to `path` (pretty-printed). False with `error` set on
  /// I/O failure.
  bool WriteJson(const std::string& path, std::string* error) const;

 private:
  std::string name_;
  std::string kind_;
  std::vector<json::Value> records_;
  json::Value summary_ = json::Value::Object();
};

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_METRICS_SINK_H_
