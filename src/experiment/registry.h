#ifndef D2STGNN_EXPERIMENT_REGISTRY_H_
#define D2STGNN_EXPERIMENT_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/rng.h"
#include "data/presets.h"
#include "experiment/spec.h"
#include "train/forecasting_model.h"
#include "train/trainer.h"

// The registry of named experiment axes a spec can reference: datasets,
// models (statistical baselines, the deep registry, and the Table-5 ablation
// variants), trainer scenarios, and serving scenarios. `run_experiment
// --list` dumps all four; Resolve* is how a spec's names are validated
// before anything expensive runs.

namespace d2stgnn::experiment {

/// One model axis entry. `family` is "statistical" (HA/VAR/SVR — Fit/Predict
/// APIs, no trainer), "deep" (baselines::MakeModel names), or "ablation"
/// (the "D2STGNN/..." Table-5 variants built from D2StgnnConfig switches).
struct ModelEntry {
  std::string name;
  std::string family;
  std::string description;
  /// Train without curriculum learning ("D2STGNN/no-cl").
  bool disable_curriculum = false;
};

/// Every model a spec's [models] names list may reference.
const std::vector<ModelEntry>& AllModels();

/// Looks `name` up in AllModels(). False (with an error naming the axis and
/// the known names) when unknown.
bool ResolveModel(const std::string& name, ModelEntry* out,
                  std::string* error);

/// Constructs the model for a "deep" or "ablation" entry. Statistical
/// entries have no ForecastingModel — the runner drives their Fit/Predict
/// APIs directly; calling this for one returns null with an error.
std::unique_ptr<train::ForecastingModel> BuildModel(
    const ModelEntry& entry, const baselines::ModelConfig& config,
    const Tensor& adjacency, Rng& rng, std::string* error);

/// One dataset axis entry ("METR-LA", ..., "synthetic").
struct DatasetEntry {
  std::string name;
  std::string description;
};

const std::vector<DatasetEntry>& AllDatasets();

/// Resolves a dataset name into a generator preset at `scale`. The
/// "synthetic" dataset reads its geometry from the spec's [data] section
/// (num_nodes, num_steps, seed — all optional). False on an unknown name.
bool ResolveDataset(const std::string& name, float scale, const Spec& spec,
                    data::DatasetPreset* out, std::string* error);

/// Named trainer recipes layered on the shared protocol defaults.
struct TrainerScenario {
  std::string name;
  std::string description;
};

const std::vector<TrainerScenario>& TrainerScenarios();

/// Applies scenario `name` on top of `options`. False on an unknown name.
bool ApplyTrainerScenario(const std::string& name,
                          train::TrainerOptions* options, std::string* error);

/// Named serving shapes the serving runner knows how to drive.
struct ServingScenario {
  std::string name;
  std::string description;
};

const std::vector<ServingScenario>& ServingScenarios();

/// False (with an error listing the known scenarios) on an unknown name.
bool ResolveServingScenario(const std::string& name, std::string* error);

/// One kernel-backend axis entry: "auto" plus every backend this host can
/// actually run (tensor/kernels/registry.h).
struct BackendEntry {
  std::string name;
  std::string description;
};

const std::vector<BackendEntry>& AllBackends();

/// Resolves a spec's backend name into a concrete registry backend: "auto"
/// maps to the startup-selected backend (cpuid detection, with
/// D2STGNN_FORCE_BACKEND honored). False (with an error listing the known
/// names) when `name` is unknown or not runnable on this host.
bool ResolveBackend(const std::string& name, std::string* resolved,
                    std::string* error);

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_REGISTRY_H_
