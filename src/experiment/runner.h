#ifndef D2STGNN_EXPERIMENT_RUNNER_H_
#define D2STGNN_EXPERIMENT_RUNNER_H_

#include <string>
#include <vector>

#include "experiment/spec.h"

// The experiment runner: expands a declarative Spec into its matrix of
// measurement cells and drives the existing stacks — Trainer + Evaluator for
// `kind = training`, InferenceSession / BatchingServer for `kind = serving`,
// the synthetic generator for `kind = dataset` — routing every result
// through MetricsSink (table + BENCH_*.json) and, when a baseline is
// configured, through the RegressionGate.

namespace d2stgnn::experiment {

struct RunOptions {
  /// Directory the BENCH_*.json lands in ("." when empty).
  std::string out_dir;
  /// Baseline JSON path; overrides the spec's [output] baseline. The
  /// sentinel "none" disables gating even when the spec names a baseline.
  std::string baseline_path;
  /// Expand and validate only; nothing runs, nothing is written.
  bool dry_run = false;
};

struct RunResult {
  bool ok = false;
  /// True when the only failure is a regression-gate violation (callers map
  /// this to exit code 2; other failures are exit 1).
  bool gate_violation = false;
  std::string error;        ///< why !ok (includes the gate diff)
  std::string experiment;   ///< [experiment] name
  std::string kind;         ///< [experiment] kind
  std::string json_path;    ///< written results file ("" on dry runs)
  int64_t cells = 0;        ///< expanded matrix size
  std::string table;        ///< rendered result table ("" on dry runs)
  std::string gate_report;  ///< RegressionGate output ("" when ungated)
};

/// Expands the spec's matrix without running anything: one line per cell
/// ("dataset=METR-LA model=D2STGNN", "scenario=parity threads=4", ...).
/// Validates every axis name against the registry. False on any error.
bool ExpandMatrix(const Spec& spec, std::vector<std::string>* cells,
                  std::string* error);

/// Runs one spec end to end. Never throws; all failure modes land in the
/// returned RunResult.
RunResult RunSpec(const Spec& spec, const RunOptions& options);

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_RUNNER_H_
