#include "experiment/registry.h"

#include <algorithm>
#include <sstream>

#include "core/d2stgnn.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::experiment {
namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::ostringstream out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i];
  }
  return out.str();
}

/// Applies the D2StgnnConfig switches of a Table-5 ablation name
/// ("D2STGNN/<suffix>"). Returns false for an unknown suffix.
bool ApplyAblation(const std::string& suffix, core::D2StgnnConfig* config) {
  if (suffix == "switch") {
    config->inherent_first = true;
  } else if (suffix == "no-gate") {
    config->use_gate = false;
  } else if (suffix == "no-res") {
    config->use_residual = false;
  } else if (suffix == "no-decouple") {
    config->use_decouple = false;
    config->use_gate = false;
    config->use_residual = false;
  } else if (suffix == "no-dg") {
    config->use_dynamic_graph = false;
  } else if (suffix == "no-apt") {
    config->use_adaptive = false;
  } else if (suffix == "no-gru") {
    config->use_gru = false;
  } else if (suffix == "no-msa") {
    config->use_msa = false;
  } else if (suffix == "no-ar") {
    config->autoregressive = false;
  } else if (suffix == "no-cl") {
    // Architecture unchanged; the trainer drops curriculum learning.
  } else {
    return false;
  }
  return true;
}

std::vector<ModelEntry> MakeModelEntries() {
  std::vector<ModelEntry> entries = {
      {"HA", "statistical", "historical average (weekly periodicity)", false},
      {"VAR", "statistical", "vector auto-regression (ridge least squares)",
       false},
      {"SVR", "statistical", "linear support vector regression", false},
  };
  for (const std::string& name : baselines::AllModelNames()) {
    std::string description = "deep registry model";
    if (name == "DGCRN-static") description = "DGCRN+ (Table 4: static graph)";
    if (name == "D2STGNN-static") {
      description = "D2STGNN+ (Table 4: decoupled, static graph)";
    }
    if (name == "D2STGNN-coupled") {
      description = "D2STGNN# (Table 4: coupled framework)";
    }
    entries.push_back({name, "deep", description, false});
  }
  const struct {
    const char* suffix;
    const char* description;
  } kAblations[] = {
      {"switch", "Table 5: inherent model first"},
      {"no-gate", "Table 5: w/o estimation gates"},
      {"no-res", "Table 5: w/o residual decomposition"},
      {"no-decouple", "Table 5: w/o decoupling (gate+residual off)"},
      {"no-dg", "Table 5: w/o dynamic graph"},
      {"no-apt", "Table 5: w/o self-adaptive transition"},
      {"no-gru", "Table 5: w/o GRU in the inherent model"},
      {"no-msa", "Table 5: w/o multi-head self-attention"},
      {"no-ar", "Table 5: w/o autoregressive forecast"},
      {"no-cl", "Table 5: w/o curriculum learning"},
  };
  for (const auto& ablation : kAblations) {
    ModelEntry entry;
    entry.name = std::string("D2STGNN/") + ablation.suffix;
    entry.family = "ablation";
    entry.description = ablation.description;
    entry.disable_curriculum = std::string(ablation.suffix) == "no-cl";
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace

const std::vector<ModelEntry>& AllModels() {
  static const std::vector<ModelEntry> kEntries = MakeModelEntries();
  return kEntries;
}

bool ResolveModel(const std::string& name, ModelEntry* out,
                  std::string* error) {
  std::vector<std::string> known;
  for (const ModelEntry& entry : AllModels()) {
    if (entry.name == name) {
      *out = entry;
      return true;
    }
    known.push_back(entry.name);
  }
  *error = "unknown model '" + name + "' (known: " + JoinNames(known) + ")";
  return false;
}

std::unique_ptr<train::ForecastingModel> BuildModel(
    const ModelEntry& entry, const baselines::ModelConfig& config,
    const Tensor& adjacency, Rng& rng, std::string* error) {
  if (entry.family == "statistical") {
    *error = "statistical model '" + entry.name +
             "' has no ForecastingModel; the runner drives its Fit/Predict "
             "API directly";
    return nullptr;
  }
  if (entry.family == "deep") {
    return baselines::MakeModel(entry.name, config, adjacency, rng);
  }
  // Ablation: "D2STGNN/<suffix>".
  core::D2StgnnConfig d2 = baselines::ToD2Config(config);
  const std::string suffix = entry.name.substr(entry.name.find('/') + 1);
  if (!ApplyAblation(suffix, &d2)) {
    *error = "unknown ablation suffix '" + suffix + "' in " + entry.name;
    return nullptr;
  }
  return std::make_unique<core::D2Stgnn>(d2, adjacency, rng);
}

const std::vector<DatasetEntry>& AllDatasets() {
  static const std::vector<DatasetEntry> kEntries = {
      {"METR-LA", "speed, 207 nodes / 34272 steps at scale 1"},
      {"PEMS-BAY", "speed, 325 nodes / 52116 steps at scale 1"},
      {"PEMS04", "flow, 307 nodes / 16992 steps at scale 1"},
      {"PEMS08", "flow, 170 nodes / 17856 steps at scale 1"},
      {"synthetic", "free-form generator; [data] num_nodes/num_steps/seed"},
  };
  return kEntries;
}

bool ResolveDataset(const std::string& name, float scale, const Spec& spec,
                    data::DatasetPreset* out, std::string* error) {
  if (name == "synthetic") {
    data::SyntheticTrafficOptions options;
    options.network.num_nodes = spec.GetInt("data", "num_nodes", 8);
    options.num_steps = spec.GetInt("data", "num_steps", 600);
    options.seed =
        static_cast<uint64_t>(spec.GetInt("data", "seed", 17));
    *out = {"synthetic", options, 0.7f, 0.1f};
    return true;
  }
  for (const data::DatasetPreset& preset : data::AllPresets(scale)) {
    if (preset.name == name) {
      *out = preset;
      return true;
    }
  }
  std::vector<std::string> known;
  for (const DatasetEntry& entry : AllDatasets()) known.push_back(entry.name);
  *error = "unknown dataset '" + name + "' (known: " + JoinNames(known) + ")";
  return false;
}

const std::vector<TrainerScenario>& TrainerScenarios() {
  static const std::vector<TrainerScenario> kScenarios = {
      {"standard", "Adam + masked MAE + curriculum + early stopping"},
      {"no-curriculum", "standard with curriculum learning off"},
      {"patient", "standard with doubled early-stopping patience"},
  };
  return kScenarios;
}

bool ApplyTrainerScenario(const std::string& name,
                          train::TrainerOptions* options,
                          std::string* error) {
  if (name == "standard") return true;
  if (name == "no-curriculum") {
    options->curriculum_learning = false;
    return true;
  }
  if (name == "patient") {
    options->patience *= 2;
    return true;
  }
  std::vector<std::string> known;
  for (const TrainerScenario& s : TrainerScenarios()) known.push_back(s.name);
  *error = "unknown trainer scenario '" + name +
           "' (known: " + JoinNames(known) + ")";
  return false;
}

const std::vector<ServingScenario>& ServingScenarios() {
  static const std::vector<ServingScenario> kScenarios = {
      {"session-eager",
       "InferenceSession::PredictRequests, eager dispatch, threads x batch"},
      {"session-plan",
       "InferenceSession::PredictRequests, plan replay, threads x batch"},
      {"server", "BatchingServer under closed-loop concurrent producers"},
      {"parity",
       "plan vs eager A/B on single requests with a bitwise-equality check"},
      {"overload",
       "open-loop producers past saturation: deadlines, admission control, "
       "degrade tiers, checkpoint hot-swap, scripted chaos faults"},
      {"fleet",
       "multi-model FleetServer under skewed per-tenant load: SLO classes, "
       "weighted-fair arbitration, per-model quotas, mid-run hot reload"},
  };
  return kScenarios;
}

bool ResolveServingScenario(const std::string& name, std::string* error) {
  std::vector<std::string> known;
  for (const ServingScenario& s : ServingScenarios()) {
    if (s.name == name) return true;
    known.push_back(s.name);
  }
  *error = "unknown serving scenario '" + name +
           "' (known: " + JoinNames(known) + ")";
  return false;
}

const std::vector<BackendEntry>& AllBackends() {
  static const std::vector<BackendEntry> kBackends = [] {
    std::vector<BackendEntry> entries = {
        {"auto",
         "the backend startup selection picked (cpuid detection; "
         "D2STGNN_FORCE_BACKEND honored)"}};
    for (const std::string& name : kernels::AvailableBackendNames()) {
      std::string description = "kernel backend";
      if (name == "scalar") {
        description = "portable scalar reference kernels (bitwise baseline)";
      } else if (name == "avx2") {
        description = "AVX2+FMA vectorized kernels (runtime cpuid gated)";
      }
      entries.push_back({name, description});
    }
    return entries;
  }();
  return kBackends;
}

bool ResolveBackend(const std::string& name, std::string* resolved,
                    std::string* error) {
  if (name == "auto") {
    *resolved = kernels::ActiveBackend().name;
    return true;
  }
  const std::vector<std::string> available = kernels::AvailableBackendNames();
  if (std::find(available.begin(), available.end(), name) !=
      available.end()) {
    *resolved = name;
    return true;
  }
  std::vector<std::string> known = {"auto"};
  known.insert(known.end(), available.begin(), available.end());
  *error = "unknown or unavailable kernel backend '" + name +
           "' (known: " + JoinNames(known) + ")";
  return false;
}

}  // namespace d2stgnn::experiment
