#ifndef D2STGNN_EXPERIMENT_REGRESSION_GATE_H_
#define D2STGNN_EXPERIMENT_REGRESSION_GATE_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace d2stgnn::experiment {

/// Outcome of checking one run against a checked-in baseline.
struct GateReport {
  bool ok = true;
  int64_t bounds_checked = 0;
  /// One human-readable line per violated bound (the "diff").
  std::vector<std::string> violations;

  /// Renders "regression gate: N bounds OK" or the violation diff.
  std::string ToString() const;
};

/// Compares a MetricsSink document against a baseline JSON of bounds:
///
///   {
///     "schema_version": 1,
///     "experiment": "<name it gates>",        // informational
///     "bounds": [
///       {"match": {"model": "D2STGNN", "dataset": "METR-LA"},
///        "metric": "h12_mae", "max": 9.0},
///       {"match": {"mode": "session-plan", "threads": 4},
///        "metric": "throughput_rps", "min": 50.0}
///     ],
///     "summary_bounds": [
///       {"metric": "plan_speedup", "min": 1.1}
///     ]
///   }
///
/// Each `bounds` entry selects the records whose fields equal every `match`
/// key/value and requires the named metric of each within [min, max]
/// (either side optional). A bound matching zero records is itself a
/// violation — a renamed label must not silently disable its gate.
/// `summary_bounds` applies the same min/max check to the run's summary.
///
/// Returns false with `error` set on a structurally invalid baseline
/// (wrong schema version, missing fields); the report is only meaningful
/// when the call returns true.
bool CheckAgainstBaseline(const json::Value& results,
                          const json::Value& baseline, GateReport* report,
                          std::string* error);

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_REGRESSION_GATE_H_
