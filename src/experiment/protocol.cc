#include "experiment/protocol.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/check.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::experiment {
namespace {

float EnvFloat(const char* name, float fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? static_cast<float>(std::atof(value)) : fallback;
}

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : fallback;
}

}  // namespace

BenchEnv GetBenchEnv() {
  BenchEnv env;
  env.scale = EnvFloat("D2_BENCH_SCALE", env.scale);
  env.epochs = EnvInt("D2_BENCH_EPOCHS", env.epochs);
  env.batch_size = EnvInt("D2_BENCH_BATCH", env.batch_size);
  env.hidden_dim = EnvInt("D2_BENCH_HIDDEN", env.hidden_dim);
  env.train_samples = EnvInt("D2_BENCH_TRAIN_SAMPLES", env.train_samples);
  env.eval_samples = EnvInt("D2_BENCH_EVAL_SAMPLES", env.eval_samples);
  env.threads = GetNumThreads();
  env.backend = kernels::ActiveBackend().name;
  env.detected_backend = kernels::DetectedBackendName();
  env.cpu_features = kernels::CpuFeatureSummary();
  env.cores = static_cast<int>(std::thread::hardware_concurrency());
  std::printf(
      "bench env: threads=%d (D2STGNN_NUM_THREADS) backend=%s (detected=%s, "
      "cpu features: %s, %d cores)\n",
      env.threads, env.backend.c_str(), env.detected_backend.c_str(),
      env.cpu_features.empty() ? "none" : env.cpu_features.c_str(), env.cores);
  return env;
}

std::vector<int64_t> StrideSubsample(const std::vector<int64_t>& starts,
                                     int64_t max_count) {
  const int64_t n = static_cast<int64_t>(starts.size());
  if (n <= max_count) return starts;
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(max_count));
  for (int64_t i = 0; i < max_count; ++i) {
    out.push_back(starts[static_cast<size_t>(i * n / max_count)]);
  }
  return out;
}

PreparedDataset PrepareDataset(const data::DatasetPreset& preset,
                               const BenchEnv& env) {
  PreparedDataset prepared;
  prepared.name = preset.name;
  data::SyntheticTrafficOptions options = preset.options;
  prepared.traffic = data::GenerateSyntheticTraffic(options);
  const int64_t steps = prepared.traffic.dataset.num_steps();
  prepared.train_steps =
      static_cast<int64_t>(static_cast<float>(steps) * preset.train_frac);
  prepared.scaler.Fit(prepared.traffic.dataset.values, prepared.train_steps,
                      /*mask_zeros=*/true);
  prepared.splits = data::MakeChronologicalSplits(
      steps, 12, 12, preset.train_frac, preset.val_frac);
  prepared.splits.train =
      StrideSubsample(prepared.splits.train, env.train_samples);
  prepared.splits.val =
      StrideSubsample(prepared.splits.val, env.eval_samples / 2);
  prepared.splits.test =
      StrideSubsample(prepared.splits.test, env.eval_samples);
  return prepared;
}

TrainedModelResult TrainAndEvaluateModel(
    const std::string& model_name, const PreparedDataset& prepared,
    const BenchEnv& env,
    const std::function<void(train::TrainerOptions*)>& trainer_overrides) {
  baselines::ModelConfig config;
  config.num_nodes = prepared.dataset().num_nodes();
  config.hidden_dim = env.hidden_dim;
  config.embed_dim = env.embed_dim;
  config.steps_per_day = prepared.dataset().steps_per_day;
  Rng rng(env.seed);
  auto model = baselines::MakeModel(model_name, config,
                                    prepared.dataset().network.adjacency, rng);
  return TrainAndEvaluateModel(model.get(), prepared, env, trainer_overrides);
}

TrainedModelResult TrainAndEvaluateModel(
    train::ForecastingModel* model, const PreparedDataset& prepared,
    const BenchEnv& env,
    const std::function<void(train::TrainerOptions*)>& trainer_overrides) {
  data::WindowDataLoader train_loader(&prepared.dataset(), &prepared.scaler,
                                      prepared.splits.train, 12, 12,
                                      env.batch_size);
  data::WindowDataLoader val_loader(&prepared.dataset(), &prepared.scaler,
                                    prepared.splits.val, 12, 12,
                                    env.batch_size);
  data::WindowDataLoader test_loader(&prepared.dataset(), &prepared.scaler,
                                     prepared.splits.test, 12, 12,
                                     env.batch_size);

  train::TrainerOptions options;
  options.epochs = env.epochs;
  options.seed = env.seed;
  if (trainer_overrides) trainer_overrides(&options);

  train::Trainer trainer(model, &prepared.scaler, options);
  const train::FitResult fit = trainer.Fit(&train_loader, &val_loader);

  TrainedModelResult result;
  result.horizons =
      train::EvaluateHorizons(model, &prepared.scaler, &test_loader,
                              /*horizons=*/{3, 6, 12}, /*null_value=*/0.0f,
                              &result.eval_timing);
  result.mean_epoch_seconds = fit.mean_epoch_seconds;
  result.parameter_count = model->ParameterCount();
  std::printf(
      "  eval forward latency over %lld batches: p50 %.2f ms  p95 %.2f ms  "
      "p99 %.2f ms\n",
      static_cast<long long>(result.eval_timing.batches),
      result.eval_timing.forward_ms.p50, result.eval_timing.forward_ms.p95,
      result.eval_timing.forward_ms.p99);
  return result;
}

Tensor GatherTargets(const data::TimeSeriesDataset& dataset,
                     const std::vector<int64_t>& starts, int64_t input_len,
                     int64_t output_len) {
  const int64_t n = dataset.num_nodes();
  const int64_t s = static_cast<int64_t>(starts.size());
  std::vector<float> out(static_cast<size_t>(s * output_len * n));
  const std::vector<float>& values = dataset.values.Data();
  for (int64_t w = 0; w < s; ++w) {
    for (int64_t h = 0; h < output_len; ++h) {
      const int64_t t = starts[static_cast<size_t>(w)] + input_len + h;
      const float* src = values.data() + t * n;
      std::copy(src, src + n,
                out.data() + (w * output_len + h) * n);
    }
  }
  return Tensor({s, output_len, n, 1}, std::move(out));
}

std::vector<std::string> MetricCells(const metrics::MetricSet& m) {
  return {TablePrinter::Num(m.mae), TablePrinter::Num(m.rmse),
          TablePrinter::Percent(m.mape)};
}

}  // namespace d2stgnn::experiment
