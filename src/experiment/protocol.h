#ifndef D2STGNN_EXPERIMENT_PROTOCOL_H_
#define D2STGNN_EXPERIMENT_PROTOCOL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "data/presets.h"
#include "data/scaler.h"
#include "data/sliding_window.h"
#include "data/synthetic_traffic.h"
#include "train/evaluator.h"
#include "train/trainer.h"

// The shared measurement protocol every experiment and bench runs under:
// dataset preparation (generate, fit scaler, split, subsample), the training
// recipe (Adam + masked MAE + curriculum + early stopping), and horizon
// evaluation. Lives in the library so the experiment runner, the figure
// benches, and tests all measure the same way (formerly bench/bench_common).

namespace d2stgnn::experiment {

/// Protocol-wide knobs, overridable by environment variables so the same
/// binaries can run at laptop scale (defaults) or closer to paper scale:
///   D2_BENCH_SCALE   — dataset scale factor vs. Table 2 (default 0.06)
///   D2_BENCH_EPOCHS  — training epochs per model (default 5)
///   D2_BENCH_BATCH   — batch size (default 16; paper uses 32)
///   D2_BENCH_HIDDEN  — hidden width d (default 16; paper uses 32)
///   D2_BENCH_TRAIN_SAMPLES / D2_BENCH_EVAL_SAMPLES — window subsample caps
///   D2STGNN_NUM_THREADS — execution-layer thread count (see
///   src/common/thread_pool.h); the active value is recorded in `threads`
///   and printed by every bench so timings are comparable across machines.
struct BenchEnv {
  float scale = 0.06f;
  int64_t epochs = 10;
  int64_t batch_size = 16;
  int64_t hidden_dim = 16;
  int64_t embed_dim = 8;
  int64_t train_samples = 384;
  int64_t eval_samples = 256;
  uint64_t seed = 7;
  int threads = 1;
  /// Kernel-backend provenance (tensor/kernels/registry.h): the backend all
  /// dispatch routes through, the one cpuid detection would pick, and the
  /// detected ISA features — recorded so every measurement is attributable
  /// to the code path that produced it.
  std::string backend;
  std::string detected_backend;
  std::string cpu_features;  ///< e.g. "avx2 fma", "" when none detected
  /// std::thread::hardware_concurrency() — distinct from `threads`, which
  /// is the pool size actually used.
  int cores = 1;
};

/// Reads the environment overrides.
BenchEnv GetBenchEnv();

/// A generated dataset with fitted scaler and (subsampled) window splits.
struct PreparedDataset {
  std::string name;
  data::SyntheticTraffic traffic;
  data::StandardScaler scaler;
  data::SplitWindows splits;
  int64_t train_steps = 0;

  const data::TimeSeriesDataset& dataset() const { return traffic.dataset; }
};

/// Generates `preset`, fits the scaler on its training range, builds
/// chronological splits and caps the per-split sample counts by striding.
PreparedDataset PrepareDataset(const data::DatasetPreset& preset,
                               const BenchEnv& env);

/// Subsamples `starts` to at most `max_count` by uniform striding.
std::vector<int64_t> StrideSubsample(const std::vector<int64_t>& starts,
                                     int64_t max_count);

/// Result of training one deep model on one dataset.
struct TrainedModelResult {
  std::vector<train::HorizonMetrics> horizons;  // at 3 / 6 / 12
  train::EvaluationTiming eval_timing;          // test-pass forward latency
  double mean_epoch_seconds = 0.0;
  int64_t parameter_count = 0;
};

/// Builds `model_name` from the registry, trains it with the shared recipe
/// (Adam + masked MAE + curriculum + early stopping), and evaluates on the
/// test split at horizons 3/6/12. `trainer_overrides` tweaks the options
/// after defaults are applied (may be null).
TrainedModelResult TrainAndEvaluateModel(
    const std::string& model_name, const PreparedDataset& prepared,
    const BenchEnv& env,
    const std::function<void(train::TrainerOptions*)>& trainer_overrides =
        nullptr);

/// Same protocol for an already-constructed model (used by the ablation and
/// sensitivity experiments which build custom D²STGNN configs).
TrainedModelResult TrainAndEvaluateModel(
    train::ForecastingModel* model, const PreparedDataset& prepared,
    const BenchEnv& env,
    const std::function<void(train::TrainerOptions*)>& trainer_overrides =
        nullptr);

/// Gathers the ground-truth targets of a window list into [S, Tf, N, 1]
/// (original units) for evaluating the non-neural baselines.
Tensor GatherTargets(const data::TimeSeriesDataset& dataset,
                     const std::vector<int64_t>& starts, int64_t input_len,
                     int64_t output_len);

/// Formats "MAE RMSE MAPE" cells of one horizon for the result tables.
std::vector<std::string> MetricCells(const metrics::MetricSet& m);

}  // namespace d2stgnn::experiment

#endif  // D2STGNN_EXPERIMENT_PROTOCOL_H_
