#include "experiment/metrics_sink.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/table_printer.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::experiment {
namespace {

std::string CellText(const json::Value& v) {
  switch (v.type()) {
    case json::Value::Type::kNull:
      return "-";
    case json::Value::Type::kBool:
      return v.AsBool() ? "true" : "false";
    case json::Value::Type::kString:
      return v.AsString();
    case json::Value::Type::kNumber: {
      // Exact ints print as ints; everything else at 4 significant-ish
      // decimals, which covers ms latencies and MAE-scale metrics alike.
      const double d = v.AsDouble();
      if (static_cast<double>(v.AsInt()) == d &&
          v.Dump(-1).find('.') == std::string::npos) {
        return v.Dump(-1);
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.4f", d);
      return buf;
    }
    default:
      return v.Dump(-1);
  }
}

}  // namespace

MetricsSink::MetricsSink(std::string experiment_name, std::string kind)
    : name_(std::move(experiment_name)), kind_(std::move(kind)) {}

void MetricsSink::AddRecord(json::Value record) {
  records_.push_back(std::move(record));
}

void MetricsSink::SetSummary(const std::string& key, json::Value value) {
  summary_.Set(key, std::move(value));
}

std::string MetricsSink::RenderTable() const {
  // Columns: every field name, in order of first appearance.
  std::vector<std::string> columns;
  for (const json::Value& record : records_) {
    for (const auto& [key, value] : record.items()) {
      (void)value;
      if (std::find(columns.begin(), columns.end(), key) == columns.end()) {
        columns.push_back(key);
      }
    }
  }
  if (columns.empty()) return "(no records)\n";
  TablePrinter table(columns);
  for (const json::Value& record : records_) {
    std::vector<std::string> row;
    for (const std::string& column : columns) {
      row.push_back(record.Has(column) ? CellText(record.Get(column)) : "-");
    }
    table.AddRow(row);
  }
  return table.ToString();
}

json::Value MetricsSink::ToJson() const {
  json::Value doc = json::Value::Object();
  doc.Set("schema_version", json::Value::Int(kMetricsSchemaVersion));
  doc.Set("experiment", json::Value::Str(name_));
  doc.Set("kind", json::Value::Str(kind_));
  doc.Set("hardware_concurrency",
          json::Value::Int(std::thread::hardware_concurrency()));
  // Kernel-backend provenance: which dispatch path produced the numbers in
  // this document (ToJson time; per-record overrides may add their own
  // "backend" field when a run sweeps backends).
  doc.Set("backend", json::Value::Str(kernels::ActiveBackend().name));
  doc.Set("detected_backend",
          json::Value::Str(kernels::DetectedBackendName()));
  doc.Set("cpu_features", json::Value::Str(kernels::CpuFeatureSummary()));
  json::Value records = json::Value::Array();
  for (const json::Value& record : records_) records.Append(record);
  doc.Set("records", std::move(records));
  doc.Set("summary", summary_);
  return doc;
}

bool MetricsSink::WriteJson(const std::string& path,
                            std::string* error) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot write " + path;
    return false;
  }
  out << ToJson().Dump();
  out.close();
  if (!out) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace d2stgnn::experiment
