#include "experiment/spec.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace d2stgnn::experiment {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

/// Strips a trailing comment: " # ..." (the '#' must follow whitespace, so
/// values may contain '#' when glued to non-space characters).
std::string StripInlineComment(const std::string& s) {
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '#' &&
        (i == 0 || std::isspace(static_cast<unsigned char>(s[i - 1])))) {
      return s.substr(0, i);
    }
  }
  return s;
}

bool ParseIntStrict(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

bool ParseDoubleStrict(const std::string& text, double* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

bool Spec::ParseText(const std::string& text, Spec* out, std::string* error,
                     const std::string& source) {
  *out = Spec();
  out->source_ = source;
  const std::string prefix = source.empty() ? "" : source + ": ";
  std::istringstream in(text);
  std::string raw;
  std::string section;
  int line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string line = Trim(StripInlineComment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = prefix + "line " + std::to_string(line_number) +
                 ": unterminated section header '" + line + "'";
        return false;
      }
      section = Trim(line.substr(1, line.size() - 2));
      if (section.empty()) {
        *error = prefix + "line " + std::to_string(line_number) +
                 ": empty section name";
        return false;
      }
      if (std::find(out->section_order_.begin(), out->section_order_.end(),
                    section) == out->section_order_.end()) {
        out->section_order_.push_back(section);
      }
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = prefix + "line " + std::to_string(line_number) +
               ": expected 'key = value', got '" + line + "'";
      return false;
    }
    if (section.empty()) {
      *error = prefix + "line " + std::to_string(line_number) +
               ": key before any [section]";
      return false;
    }
    Entry entry;
    entry.section = section;
    entry.key = Trim(line.substr(0, eq));
    entry.value = Trim(line.substr(eq + 1));
    entry.line = line_number;
    if (entry.key.empty()) {
      *error = prefix + "line " + std::to_string(line_number) +
               ": empty key";
      return false;
    }
    if (const Entry* existing = out->Find(section, entry.key)) {
      *error = prefix + "line " + std::to_string(line_number) +
               ": duplicate key '" + entry.key + "' in [" + section +
               "] (first defined on line " + std::to_string(existing->line) +
               ")";
      return false;
    }
    out->entries_.push_back(std::move(entry));
  }
  return true;
}

bool Spec::ParseFile(const std::string& path, Spec* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open spec file " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseText(buffer.str(), out, error, path);
}

std::string Spec::ToText() const {
  std::ostringstream out;
  bool first = true;
  for (const std::string& section : section_order_) {
    if (!first) out << "\n";
    first = false;
    out << "[" << section << "]\n";
    for (const Entry& entry : entries_) {
      if (entry.section == section) {
        out << entry.key << " = " << entry.value << "\n";
      }
    }
  }
  return out.str();
}

const Spec::Entry* Spec::Find(const std::string& section,
                              const std::string& key) const {
  for (const Entry& entry : entries_) {
    if (entry.section == section && entry.key == key) return &entry;
  }
  return nullptr;
}

bool Spec::Has(const std::string& section, const std::string& key) const {
  return Find(section, key) != nullptr;
}

std::string Spec::GetString(const std::string& section,
                            const std::string& key,
                            const std::string& fallback) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return fallback;
  entry->consumed = true;
  return entry->value;
}

int64_t Spec::GetInt(const std::string& section, const std::string& key,
                     int64_t fallback) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return fallback;
  entry->consumed = true;
  int64_t value = 0;
  if (!ParseIntStrict(entry->value, &value)) {
    type_errors_.push_back("line " + std::to_string(entry->line) + ": [" +
                           section + "] " + key + " = '" + entry->value +
                           "' is not an integer");
    return fallback;
  }
  return value;
}

double Spec::GetDouble(const std::string& section, const std::string& key,
                       double fallback) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return fallback;
  entry->consumed = true;
  double value = 0.0;
  if (!ParseDoubleStrict(entry->value, &value)) {
    type_errors_.push_back("line " + std::to_string(entry->line) + ": [" +
                           section + "] " + key + " = '" + entry->value +
                           "' is not a number");
    return fallback;
  }
  return value;
}

bool Spec::GetBool(const std::string& section, const std::string& key,
                   bool fallback) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return fallback;
  entry->consumed = true;
  const std::string& v = entry->value;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  type_errors_.push_back("line " + std::to_string(entry->line) + ": [" +
                         section + "] " + key + " = '" + v +
                         "' is not a boolean");
  return fallback;
}

std::vector<std::string> Spec::GetList(const std::string& section,
                                       const std::string& key) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return {};
  entry->consumed = true;
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(entry->value);
  while (std::getline(in, item, ',')) {
    const std::string trimmed = Trim(item);
    if (!trimmed.empty()) out.push_back(trimmed);
  }
  return out;
}

std::vector<int64_t> Spec::GetIntList(const std::string& section,
                                      const std::string& key) const {
  const Entry* entry = Find(section, key);
  if (entry == nullptr) return {};
  std::vector<int64_t> out;
  for (const std::string& item : GetList(section, key)) {
    int64_t value = 0;
    if (!ParseIntStrict(item, &value)) {
      type_errors_.push_back("line " + std::to_string(entry->line) + ": [" +
                             section + "] " + key + " entry '" + item +
                             "' is not an integer");
      continue;
    }
    out.push_back(value);
  }
  return out;
}

void Spec::Set(const std::string& section, const std::string& key,
               const std::string& value) {
  for (Entry& entry : entries_) {
    if (entry.section == section && entry.key == key) {
      entry.value = value;
      entry.consumed = false;
      return;
    }
  }
  if (std::find(section_order_.begin(), section_order_.end(), section) ==
      section_order_.end()) {
    section_order_.push_back(section);
  }
  Entry entry;
  entry.section = section;
  entry.key = key;
  entry.value = value;
  entry.line = 0;  // synthetic (CLI override)
  entries_.push_back(std::move(entry));
}

int Spec::LineOf(const std::string& section, const std::string& key) const {
  const Entry* entry = Find(section, key);
  return entry != nullptr ? entry->line : 0;
}

std::vector<std::string> Spec::SectionNames() const { return section_order_; }

std::string Spec::Validate() const {
  std::ostringstream out;
  const std::string prefix = source_.empty() ? "" : source_ + ": ";
  for (const std::string& err : type_errors_) out << prefix << err << "\n";
  for (const Entry& entry : entries_) {
    if (!entry.consumed) {
      out << prefix << "line " << entry.line << ": unknown key '" << entry.key
          << "' in [" << entry.section << "]\n";
    }
  }
  std::string report = out.str();
  if (!report.empty() && report.back() == '\n') report.pop_back();
  return report;
}

}  // namespace d2stgnn::experiment
