#include "data/scaler.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::data {

void StandardScaler::Fit(const Tensor& values, int64_t train_steps,
                         bool mask_zeros) {
  D2_CHECK(values.defined());
  D2_CHECK_GE(values.dim(), 1);
  D2_CHECK_GT(train_steps, 0);
  D2_CHECK_LE(train_steps, values.size(0));
  const int64_t row = values.numel() / values.size(0);
  const int64_t limit = train_steps * row;

  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t count = 0;
  const std::vector<float>& v = values.Data();
  for (int64_t i = 0; i < limit; ++i) {
    const float x = v[static_cast<size_t>(i)];
    if (mask_zeros && x == 0.0f) continue;
    sum += x;
    sum_sq += static_cast<double>(x) * x;
    ++count;
  }
  D2_CHECK_GT(count, 0) << "no valid entries to fit scaler";
  const double mean = sum / static_cast<double>(count);
  const double variance =
      std::max(1e-12, sum_sq / static_cast<double>(count) - mean * mean);
  mean_ = static_cast<float>(mean);
  std_ = static_cast<float>(std::sqrt(variance));
}

Tensor StandardScaler::Transform(const Tensor& x) const {
  return MulScalar(AddScalar(x, -mean_), 1.0f / std_);
}

Tensor StandardScaler::InverseTransform(const Tensor& x) const {
  return AddScalar(MulScalar(x, std_), mean_);
}

}  // namespace d2stgnn::data
