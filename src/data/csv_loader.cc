#include "data/csv_loader.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "graph/sensor_graph.h"

namespace d2stgnn::data {
namespace {

// Splits a CSV line on commas (no quoting; traffic exports are plain).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream stream(line);
  while (std::getline(stream, cell, ',')) cells.push_back(cell);
  return cells;
}

// Parses a float; returns false on garbage (used to detect header rows).
bool ParseFloat(const std::string& text, float* value) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const float parsed = std::strtof(begin, &end);
  if (end == begin) return false;
  while (*end == ' ' || *end == '\r' || *end == '\t') ++end;
  if (*end != '\0') return false;
  *value = parsed;
  return true;
}

}  // namespace

bool LoadCsvDataset(const std::string& readings_path,
                    const std::string& distances_path,
                    const CsvDatasetOptions& options, TimeSeriesDataset* out) {
  D2_CHECK(out != nullptr);

  // --- readings ---
  std::ifstream readings(readings_path);
  if (!readings.is_open()) {
    D2_LOG(ERROR) << "cannot open readings file " << readings_path;
    return false;
  }
  std::vector<float> values;
  int64_t num_nodes = -1;
  int64_t num_steps = 0;
  int64_t line_number = 0;  // physical 1-based line, for diagnostics
  std::string line;
  while (std::getline(readings, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    std::vector<float> row;
    row.reserve(cells.size());
    bool numeric = true;
    for (size_t c = 0; c < cells.size(); ++c) {
      float v;
      if (!ParseFloat(cells[c], &v)) {
        if (num_steps == 0) {
          numeric = false;  // header row
          break;
        }
        D2_LOG(ERROR) << readings_path << ":" << line_number << ": column "
                      << c + 1 << ": non-numeric value '" << cells[c] << "'";
        return false;
      }
      if (!std::isfinite(v)) {
        D2_LOG(ERROR) << readings_path << ":" << line_number << ": column "
                      << c + 1 << ": non-finite value '" << cells[c]
                      << "' (mark missing data with the null value instead)";
        return false;
      }
      row.push_back(v);
    }
    if (!numeric) continue;  // header row
    if (num_nodes < 0) {
      num_nodes = static_cast<int64_t>(row.size());
    } else if (static_cast<int64_t>(row.size()) != num_nodes) {
      D2_LOG(ERROR) << readings_path << ":" << line_number
                    << ": ragged row: expected " << num_nodes
                    << " columns, got " << row.size();
      return false;
    }
    values.insert(values.end(), row.begin(), row.end());
    ++num_steps;
  }
  if (num_steps == 0 || num_nodes <= 0) {
    D2_LOG(ERROR) << "no data rows in " << readings_path;
    return false;
  }

  // --- distances ---
  std::ifstream distances(distances_path);
  if (!distances.is_open()) {
    D2_LOG(ERROR) << "cannot open distances file " << distances_path;
    return false;
  }
  std::vector<float> dist(
      static_cast<size_t>(num_nodes * num_nodes),
      std::numeric_limits<float>::infinity());
  for (int64_t i = 0; i < num_nodes; ++i) {
    dist[static_cast<size_t>(i * num_nodes + i)] = 0.0f;
  }
  int64_t edges = 0;
  line_number = 0;
  while (std::getline(distances, line)) {
    ++line_number;
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != 3) {
      D2_LOG(ERROR) << distances_path << ":" << line_number
                    << ": expected 3 columns (from,to,distance), got "
                    << cells.size();
      return false;
    }
    float from_f, to_f, d;
    if (!ParseFloat(cells[0], &from_f) || !ParseFloat(cells[1], &to_f) ||
        !ParseFloat(cells[2], &d)) {
      if (edges == 0) continue;  // header row
      D2_LOG(ERROR) << distances_path << ":" << line_number
                    << ": non-numeric distance row '" << line << "'";
      return false;
    }
    if (!std::isfinite(d) || d < 0.0f) {
      D2_LOG(ERROR) << distances_path << ":" << line_number << ": column 3"
                    << ": bad distance '" << cells[2]
                    << "' (must be finite and non-negative)";
      return false;
    }
    const int64_t from = static_cast<int64_t>(from_f);
    const int64_t to = static_cast<int64_t>(to_f);
    if (from < 0 || from >= num_nodes || to < 0 || to >= num_nodes) {
      D2_LOG(ERROR) << distances_path << ":" << line_number
                    << ": sensor index out of range in '" << line << "' ("
                    << num_nodes << " sensors)";
      return false;
    }
    dist[static_cast<size_t>(from * num_nodes + to)] = d;
    ++edges;
  }

  out->name = options.name;
  out->steps_per_day = options.steps_per_day;
  out->start_day_of_week = options.start_day_of_week;
  out->is_flow = options.is_flow;
  out->values = Tensor({num_steps, num_nodes}, std::move(values));
  out->network.num_nodes = num_nodes;
  out->network.directed = true;
  out->network.x.assign(static_cast<size_t>(num_nodes), 0.0f);
  out->network.y.assign(static_cast<size_t>(num_nodes), 0.0f);
  out->network.road_distance = Tensor({num_nodes, num_nodes}, std::move(dist));
  out->network.adjacency = graph::ThresholdedGaussianAdjacency(
      out->network.road_distance, options.kernel_threshold);
  D2_LOG(INFO) << "loaded " << out->name << ": " << num_steps << " steps x "
               << num_nodes << " sensors, " << edges << " road segments";
  return true;
}

bool SaveCsvDataset(const TimeSeriesDataset& dataset,
                    const std::string& readings_path,
                    const std::string& distances_path) {
  std::ofstream readings(readings_path);
  if (!readings.is_open()) {
    D2_LOG(ERROR) << "cannot open " << readings_path << " for writing";
    return false;
  }
  const int64_t n = dataset.num_nodes();
  const std::vector<float>& values = dataset.values.Data();
  for (int64_t t = 0; t < dataset.num_steps(); ++t) {
    for (int64_t i = 0; i < n; ++i) {
      if (i > 0) readings << ",";
      readings << values[static_cast<size_t>(t * n + i)];
    }
    readings << "\n";
  }

  std::ofstream distances(distances_path);
  if (!distances.is_open()) {
    D2_LOG(ERROR) << "cannot open " << distances_path << " for writing";
    return false;
  }
  distances << "from,to,distance\n";
  const std::vector<float>& dist = dataset.network.road_distance.Data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float d = dist[static_cast<size_t>(i * n + j)];
      if (i != j && std::isfinite(d)) {
        distances << i << "," << j << "," << d << "\n";
      }
    }
  }
  return true;
}

}  // namespace d2stgnn::data
