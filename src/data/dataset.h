#ifndef D2STGNN_DATA_DATASET_H_
#define D2STGNN_DATA_DATASET_H_

#include <string>

#include "graph/sensor_graph.h"
#include "tensor/tensor.h"

namespace d2stgnn::data {

/// A traffic dataset in the paper's format: one scalar channel (speed or
/// flow, C = 1) per sensor per 5-minute step, plus the sensor network whose
/// adjacency drives the graph models.
struct TimeSeriesDataset {
  std::string name;
  /// Raw readings, [num_steps, num_nodes].
  Tensor values;
  /// The road network (adjacency built with the thresholded Gaussian
  /// kernel).
  graph::SensorNetwork network;
  /// Number of time slots per day (N_D of Sec. 4.2); 288 for 5-minute data.
  int64_t steps_per_day = 288;
  /// Day of week of step 0 (0 = Monday).
  int64_t start_day_of_week = 0;
  /// True for flow (vehicle counts), false for speed (mph).
  bool is_flow = false;

  int64_t num_steps() const { return values.size(0); }
  int64_t num_nodes() const { return values.size(1); }

  /// Time-of-day slot index of step `t` (in [0, steps_per_day)).
  int64_t TimeOfDay(int64_t t) const { return t % steps_per_day; }

  /// Day-of-week index of step `t` (in [0, 7)).
  int64_t DayOfWeek(int64_t t) const {
    return (start_day_of_week + t / steps_per_day) % 7;
  }
};

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_DATASET_H_
