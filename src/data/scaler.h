#ifndef D2STGNN_DATA_SCALER_H_
#define D2STGNN_DATA_SCALER_H_

#include "tensor/tensor.h"

namespace d2stgnn::data {

/// Z-score normalizer fit on the training portion of a dataset (the
/// standard DCRNN/Graph WaveNet preprocessing the paper follows). Transform
/// and InverseTransform are differentiable affine ops, so models can emit
/// normalized values while the loss is computed in the original units.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes mean/std from the first `train_steps` rows of a [T, ...]
  /// tensor. Entries equal to 0 are excluded when `mask_zeros` is set
  /// (METR-LA-style sensor failures should not shift the statistics).
  void Fit(const Tensor& values, int64_t train_steps, bool mask_zeros);

  /// (x - mean) / std, elementwise.
  Tensor Transform(const Tensor& x) const;

  /// x * std + mean, elementwise.
  Tensor InverseTransform(const Tensor& x) const;

  float mean() const { return mean_; }
  float std_dev() const { return std_; }

 private:
  float mean_ = 0.0f;
  float std_ = 1.0f;
};

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_SCALER_H_
