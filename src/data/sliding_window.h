#ifndef D2STGNN_DATA_SLIDING_WINDOW_H_
#define D2STGNN_DATA_SLIDING_WINDOW_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/scaler.h"
#include "tensor/tensor.h"

namespace d2stgnn::data {

/// Window start offsets for the three chronological splits. A sample
/// starting at s consumes inputs [s, s+Th) and targets [s+Th, s+Th+Tf).
struct SplitWindows {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

/// Generates sliding-window samples and splits them chronologically
/// [train | val | test] with the given fractions (the paper uses 0.7/0.1/0.2
/// for the speed datasets and 0.6/0.2/0.2 for the flow datasets, Sec.
/// 6.2.1). Windows never straddle a split boundary.
SplitWindows MakeChronologicalSplits(int64_t num_steps, int64_t input_len,
                                     int64_t output_len, float train_frac,
                                     float val_frac);

/// Number of input feature channels produced by WindowDataLoader (z-scored
/// reading + time-of-day + day-of-week).
inline constexpr int64_t kInputFeatures = 3;

/// One minibatch of supervised samples.
struct Batch {
  /// Inputs, [B, Th, N, 3]: channel 0 is the z-scored reading, channel 1
  /// the time-of-day fraction, channel 2 the day-of-week fraction (the
  /// auxiliary features the official D²STGNN/Graph WaveNet pipelines feed).
  Tensor x;
  /// Raw (original-unit) targets, [B, Tf, N, 1].
  Tensor y;
  /// Time-of-day slot per (b, t) of the input window, row-major [B * Th].
  std::vector<int64_t> time_of_day;
  /// Day-of-week per (b, t) of the input window, row-major [B * Th].
  std::vector<int64_t> day_of_week;
  int64_t batch_size = 0;
  int64_t input_len = 0;

  int64_t num_nodes() const { return x.size(2); }
};

/// Materializes minibatches of sliding-window samples from a dataset.
/// Inputs are normalized with `scaler`; targets stay in original units
/// (models emit normalized predictions and the trainer inverse-transforms
/// before the masked-MAE loss, the DCRNN convention).
class WindowDataLoader {
 public:
  /// `starts` are window start offsets (from SplitWindows). The loader
  /// borrows `dataset` and `scaler`, which must outlive it.
  WindowDataLoader(const TimeSeriesDataset* dataset,
                   const StandardScaler* scaler, std::vector<int64_t> starts,
                   int64_t input_len, int64_t output_len, int64_t batch_size);

  /// Number of (possibly ragged) batches per epoch.
  int64_t NumBatches() const;

  /// Builds batch `index` (0-based). The final batch may be smaller.
  Batch GetBatch(int64_t index) const;

  /// Assembles every batch of the current sample order, in parallel over
  /// the shared thread pool. Batch contents are identical to calling
  /// GetBatch(0..NumBatches()-1) sequentially.
  std::vector<Batch> AssembleAllBatches() const;

  /// Reshuffles the sample order (call between epochs during training).
  /// Path-independent: the order after the call is the drawn permutation
  /// applied to the *construction-time* order, so it depends only on the
  /// rng state — never on earlier shuffles. A training run resumed from a
  /// checkpointed rng state therefore reproduces the same batch order on a
  /// freshly constructed loader (the bitwise-resume contract).
  void Shuffle(Rng& rng);

  int64_t num_samples() const {
    return static_cast<int64_t>(starts_.size());
  }

 private:
  const TimeSeriesDataset* dataset_;
  const StandardScaler* scaler_;
  std::vector<int64_t> starts_;
  std::vector<int64_t> canonical_starts_;  ///< construction-time order
  int64_t input_len_;
  int64_t output_len_;
  int64_t batch_size_;
};

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_SLIDING_WINDOW_H_
