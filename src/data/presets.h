#ifndef D2STGNN_DATA_PRESETS_H_
#define D2STGNN_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "data/synthetic_traffic.h"

namespace d2stgnn::data {

/// The four dataset presets of the paper's Table 2, backed by the synthetic
/// generator (see DESIGN.md: real METR-LA/PEMS archives are not available
/// offline; the generator reproduces their generative structure).
///
/// `scale` shrinks both the node count and the step count so experiments fit
/// a single CPU core; scale = 1 reproduces Table 2's sizes
/// (METR-LA: 207 nodes / 34272 steps, PEMS-BAY: 325 / 52116,
///  PEMS04: 307 / 16992, PEMS08: 170 / 17856). Node counts are floored at 12
/// and step counts at 16 days.
SyntheticTrafficOptions MetrLaOptions(float scale = 1.0f);
SyntheticTrafficOptions PemsBayOptions(float scale = 1.0f);
SyntheticTrafficOptions Pems04Options(float scale = 1.0f);
SyntheticTrafficOptions Pems08Options(float scale = 1.0f);

/// Names + option factories for all four presets, in the paper's order.
struct DatasetPreset {
  std::string name;
  SyntheticTrafficOptions options;
  /// Train/val fractions (paper Sec. 6.2.1): speed 0.7/0.1, flow 0.6/0.2.
  float train_frac;
  float val_frac;
};

/// All four presets at the given scale.
std::vector<DatasetPreset> AllPresets(float scale);

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_PRESETS_H_
