#ifndef D2STGNN_DATA_CSV_LOADER_H_
#define D2STGNN_DATA_CSV_LOADER_H_

#include <string>

#include "data/dataset.h"

namespace d2stgnn::data {

/// Options for LoadCsvDataset.
struct CsvDatasetOptions {
  std::string name = "csv";
  /// Sampling slots per day (288 for 5-minute data).
  int64_t steps_per_day = 288;
  /// Day of week of the first row (0 = Monday).
  int64_t start_day_of_week = 0;
  /// True for flow datasets (PEMS04/08-style), false for speed.
  bool is_flow = false;
  /// Threshold of the Gaussian kernel used to build the adjacency from the
  /// distance file (0.1 in DCRNN and the paper).
  float kernel_threshold = 0.1f;
};

/// Loads a traffic dataset from two CSV files, the format the public
/// METR-LA / PEMS exports are commonly distributed in:
///
///  * `readings_path`  — one row per time step, one comma-separated column
///    per sensor (an optional header row is skipped automatically);
///  * `distances_path` — directed road distances as `from,to,distance`
///    rows with 0-based sensor indices (header rows are skipped).
///
/// The adjacency is built with the thresholded Gaussian kernel (paper Sec.
/// 6.1). Returns false (after logging) on I/O or parse errors; the project
/// does not use exceptions.
bool LoadCsvDataset(const std::string& readings_path,
                    const std::string& distances_path,
                    const CsvDatasetOptions& options, TimeSeriesDataset* out);

/// Writes a dataset back to the same two-file CSV format (useful for
/// exporting synthetic datasets to other toolchains and for round-trip
/// tests). Unreachable pairs are omitted from the distance file.
bool SaveCsvDataset(const TimeSeriesDataset& dataset,
                    const std::string& readings_path,
                    const std::string& distances_path);

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_CSV_LOADER_H_
