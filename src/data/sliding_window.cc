#include "data/sliding_window.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace d2stgnn::data {

SplitWindows MakeChronologicalSplits(int64_t num_steps, int64_t input_len,
                                     int64_t output_len, float train_frac,
                                     float val_frac) {
  D2_CHECK_GT(input_len, 0);
  D2_CHECK_GT(output_len, 0);
  D2_CHECK_GT(train_frac, 0.0f);
  D2_CHECK_GE(val_frac, 0.0f);
  D2_CHECK_LT(train_frac + val_frac, 1.0f);
  const int64_t window = input_len + output_len;
  D2_CHECK_GE(num_steps, 3 * window) << "dataset too short to split";

  const int64_t train_end = static_cast<int64_t>(
      static_cast<float>(num_steps) * train_frac);
  const int64_t val_end = static_cast<int64_t>(
      static_cast<float>(num_steps) * (train_frac + val_frac));

  SplitWindows splits;
  for (int64_t s = 0; s + window <= train_end; ++s) splits.train.push_back(s);
  for (int64_t s = train_end; s + window <= val_end; ++s) {
    splits.val.push_back(s);
  }
  for (int64_t s = val_end; s + window <= num_steps; ++s) {
    splits.test.push_back(s);
  }
  D2_CHECK(!splits.train.empty());
  D2_CHECK(!splits.test.empty());
  return splits;
}

WindowDataLoader::WindowDataLoader(const TimeSeriesDataset* dataset,
                                   const StandardScaler* scaler,
                                   std::vector<int64_t> starts,
                                   int64_t input_len, int64_t output_len,
                                   int64_t batch_size)
    : dataset_(dataset),
      scaler_(scaler),
      starts_(std::move(starts)),
      input_len_(input_len),
      output_len_(output_len),
      batch_size_(batch_size) {
  D2_CHECK(dataset != nullptr);
  D2_CHECK(scaler != nullptr);
  D2_CHECK(!starts_.empty());
  D2_CHECK_GT(batch_size, 0);
  for (int64_t s : starts_) {
    D2_CHECK_GE(s, 0);
    D2_CHECK_LE(s + input_len_ + output_len_, dataset_->num_steps());
  }
}

int64_t WindowDataLoader::NumBatches() const {
  return (num_samples() + batch_size_ - 1) / batch_size_;
}

Batch WindowDataLoader::GetBatch(int64_t index) const {
  D2_CHECK_GE(index, 0);
  D2_CHECK_LT(index, NumBatches());
  const int64_t begin = index * batch_size_;
  const int64_t end = std::min<int64_t>(begin + batch_size_, num_samples());
  const int64_t b = end - begin;
  const int64_t n = dataset_->num_nodes();

  Batch batch;
  batch.batch_size = b;
  batch.input_len = input_len_;

  std::vector<float> x(static_cast<size_t>(b * input_len_ * n * 3));
  std::vector<float> y(static_cast<size_t>(b * output_len_ * n));
  batch.time_of_day.resize(static_cast<size_t>(b * input_len_));
  batch.day_of_week.resize(static_cast<size_t>(b * input_len_));

  const float mean = scaler_->mean();
  const float inv_std = 1.0f / scaler_->std_dev();
  const float inv_day = 1.0f / static_cast<float>(dataset_->steps_per_day);
  const std::vector<float>& values = dataset_->values.Data();
  for (int64_t i = 0; i < b; ++i) {
    const int64_t start = starts_[static_cast<size_t>(begin + i)];
    for (int64_t t = 0; t < input_len_; ++t) {
      const int64_t tod = dataset_->TimeOfDay(start + t);
      const int64_t dow = dataset_->DayOfWeek(start + t);
      const float* src = values.data() + (start + t) * n;
      float* dst = x.data() + (i * input_len_ + t) * n * 3;
      for (int64_t node = 0; node < n; ++node) {
        dst[node * 3] = (src[node] - mean) * inv_std;
        dst[node * 3 + 1] = static_cast<float>(tod) * inv_day;
        dst[node * 3 + 2] = static_cast<float>(dow) / 7.0f;
      }
      batch.time_of_day[static_cast<size_t>(i * input_len_ + t)] = tod;
      batch.day_of_week[static_cast<size_t>(i * input_len_ + t)] = dow;
    }
    for (int64_t t = 0; t < output_len_; ++t) {
      const float* src = values.data() + (start + input_len_ + t) * n;
      std::copy(src, src + n, y.data() + (i * output_len_ + t) * n);
    }
  }

  batch.x = Tensor({b, input_len_, n, 3}, std::move(x));
  batch.y = Tensor({b, output_len_, n, 1}, std::move(y));
  return batch;
}

std::vector<Batch> WindowDataLoader::AssembleAllBatches() const {
  std::vector<Batch> batches(static_cast<size_t>(NumBatches()));
  // GetBatch is a pure function of (loader state, index), so batches can be
  // built concurrently; each slot is written by exactly one chunk.
  ParallelFor(0, NumBatches(), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      batches[static_cast<size_t>(b)] = GetBatch(b);
    }
  });
  return batches;
}

void WindowDataLoader::Shuffle(Rng& rng) {
  // Permute the canonical (construction-time) order, not the current one:
  // composing permutations would make the order depend on the shuffle
  // history, which a resumed training run does not have.
  if (canonical_starts_.empty()) canonical_starts_ = starts_;
  const std::vector<int64_t> perm = rng.Permutation(num_samples());
  std::vector<int64_t> shuffled(canonical_starts_.size());
  for (size_t i = 0; i < canonical_starts_.size(); ++i) {
    shuffled[i] = canonical_starts_[static_cast<size_t>(perm[i])];
  }
  starts_ = std::move(shuffled);
}

}  // namespace d2stgnn::data
