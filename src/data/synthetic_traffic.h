#ifndef D2STGNN_DATA_SYNTHETIC_TRAFFIC_H_
#define D2STGNN_DATA_SYNTHETIC_TRAFFIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "graph/sensor_graph.h"

namespace d2stgnn::data {

/// Parameters of the synthetic traffic generator. The generator implements
/// the paper's generative premise (Fig. 2): every sensor's series is the
/// superposition of
///
///  * an INHERENT signal — node-specific daily demand profiles (AM/PM peak
///    mixtures with per-node amplitudes and phases), a weekday/weekend
///    factor, and slow AR(1) noise; independent of other sensors; and
///  * a DIFFUSION signal — traffic propagated from upstream neighbours with
///    a distance-dependent lag and a time-of-day-modulated intensity, so
///    the effective spatial dependency is DYNAMIC (Fig. 2(c)).
///
/// Speed datasets map congestion to mph in [0, 70] and inject occasional
/// sensor-failure bursts of zeros (visible in METR-LA, Fig. 8); flow
/// datasets produce integer vehicle counts up to a few hundred (Table 2's
/// characterization).
struct SyntheticTrafficOptions {
  std::string name = "synthetic";
  int64_t num_steps = 3456;  ///< 12 days of 5-minute slots
  int64_t steps_per_day = 288;
  int64_t start_day_of_week = 3;  ///< METR-LA starts on a Thursday
  bool flow = false;              ///< false => speed dataset
  uint64_t seed = 1;
  graph::SensorNetworkOptions network;

  /// Share of the total signal contributed by diffusion (0 disables it).
  float diffusion_strength = 0.45f;
  /// Maximum propagation lag in steps (lag grows with road distance).
  int64_t max_lag = 3;
  /// Std-dev of fast measurement noise, relative to signal scale.
  float noise_std = 0.04f;
  /// Per-(node, step) probability that a sensor-failure burst begins
  /// (speed datasets only; flow detectors in the PEMS archives are
  /// pre-cleaned).
  float failure_prob = 5e-4f;
  /// Length of a failure burst, in steps.
  int64_t failure_len = 8;

  /// Peak flow scale (vehicles per 5 minutes) for flow datasets.
  float flow_scale = 320.0f;
  /// Free-flow speed for speed datasets (mph).
  float free_flow_speed = 68.0f;

  /// Relative day-to-day jitter of each node's peak amplitudes. Without it
  /// traffic would be perfectly climatological and Historical Average would
  /// be unbeatable — real traffic is not (paper Table 3: HA is the worst
  /// baseline).
  float daily_jitter = 0.30f;
  /// Per-(node, step) probability that a congestion incident begins. An
  /// incident boosts local demand for `incident_len` steps and diffuses to
  /// neighbours — structure that is predictable from recent history but
  /// invisible to climatology.
  float incident_prob = 4e-4f;
  int64_t incident_len = 18;  ///< ~90 minutes
  float incident_boost = 1.2f;  ///< additive demand during an incident
};

/// Result of the generator: the dataset plus the latent component series
/// (useful for tests asserting the decomposition premise).
struct SyntheticTraffic {
  TimeSeriesDataset dataset;
  /// Latent inherent demand, [num_steps, num_nodes] in [0, ~1].
  Tensor inherent;
  /// Latent diffusion demand, [num_steps, num_nodes].
  Tensor diffusion;
};

/// Generates a synthetic traffic dataset. Deterministic in options.seed.
SyntheticTraffic GenerateSyntheticTraffic(const SyntheticTrafficOptions& options);

}  // namespace d2stgnn::data

#endif  // D2STGNN_DATA_SYNTHETIC_TRAFFIC_H_
