#include "data/synthetic_traffic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace d2stgnn::data {
namespace {

// Gaussian bump centered at `center` (in day fraction) with width `width`.
float DayBump(float day_fraction, float center, float width) {
  float delta = day_fraction - center;
  // Wrap around midnight.
  if (delta > 0.5f) delta -= 1.0f;
  if (delta < -0.5f) delta += 1.0f;
  return std::exp(-(delta * delta) / (2.0f * width * width));
}

}  // namespace

SyntheticTraffic GenerateSyntheticTraffic(
    const SyntheticTrafficOptions& options) {
  D2_CHECK_GT(options.num_steps, 0);
  D2_CHECK_GT(options.steps_per_day, 0);
  D2_CHECK_GE(options.diffusion_strength, 0.0f);
  D2_CHECK_LT(options.diffusion_strength, 1.0f);
  D2_CHECK_GE(options.max_lag, 1);

  Rng rng(options.seed);
  SyntheticTraffic result;
  TimeSeriesDataset& ds = result.dataset;
  ds.name = options.name;
  ds.steps_per_day = options.steps_per_day;
  ds.start_day_of_week = options.start_day_of_week;
  ds.is_flow = options.flow;
  ds.network = graph::BuildRandomSensorNetwork(options.network, rng);

  const int64_t n = ds.network.num_nodes;
  const int64_t steps = options.num_steps;

  // Per-node inherent profile parameters. Roughly half the nodes lean
  // "residential" (strong AM peak outbound), the rest "business" (strong PM
  // peak), with random phases so nodes are distinguishable (Fig. 8 shows
  // clearly different per-node patterns).
  std::vector<float> am_amp(static_cast<size_t>(n)), pm_amp(static_cast<size_t>(n));
  std::vector<float> am_center(static_cast<size_t>(n)), pm_center(static_cast<size_t>(n));
  std::vector<float> base_level(static_cast<size_t>(n)), capacity(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const bool residential = rng.Uniform() < 0.5f;
    am_amp[static_cast<size_t>(i)] =
        residential ? rng.Uniform(0.6f, 1.0f) : rng.Uniform(0.2f, 0.5f);
    pm_amp[static_cast<size_t>(i)] =
        residential ? rng.Uniform(0.2f, 0.5f) : rng.Uniform(0.6f, 1.0f);
    am_center[static_cast<size_t>(i)] = 8.0f / 24.0f + rng.Normal(0.0f, 0.01f);
    pm_center[static_cast<size_t>(i)] = 17.5f / 24.0f + rng.Normal(0.0f, 0.01f);
    base_level[static_cast<size_t>(i)] = rng.Uniform(0.10f, 0.25f);
    capacity[static_cast<size_t>(i)] = rng.Uniform(0.75f, 1.0f);
  }

  // Row-normalized off-diagonal adjacency drives the diffusion; lag grows
  // with road distance.
  std::vector<float> weight(static_cast<size_t>(n * n), 0.0f);
  std::vector<int64_t> lag(static_cast<size_t>(n * n), 1);
  {
    const std::vector<float>& adj = ds.network.adjacency.Data();
    const std::vector<float>& dist = ds.network.road_distance.Data();
    float max_dist = 0.0f;
    for (int64_t e = 0; e < n * n; ++e) {
      const float d = dist[static_cast<size_t>(e)];
      if (std::isfinite(d)) max_dist = std::max(max_dist, d);
    }
    for (int64_t i = 0; i < n; ++i) {
      float row_sum = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        if (i != j) row_sum += adj[static_cast<size_t>(i * n + j)];
      }
      if (row_sum <= 0.0f) continue;
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const size_t e = static_cast<size_t>(i * n + j);
        weight[e] = adj[e] / row_sum;
        if (weight[e] > 0.0f && max_dist > 0.0f) {
          const float frac = dist[e] / max_dist;
          lag[e] = 1 + static_cast<int64_t>(
                           frac * static_cast<float>(options.max_lag - 1) +
                           0.5f);
          lag[e] = std::min(lag[e], options.max_lag);
        }
      }
    }
  }

  // Latent signals. `total` is the congestion/demand level in [0, ~1.3].
  std::vector<float> inherent(static_cast<size_t>(steps * n), 0.0f);
  std::vector<float> diffusion(static_cast<size_t>(steps * n), 0.0f);
  std::vector<float> total(static_cast<size_t>(steps * n), 0.0f);
  std::vector<float> ar_state(static_cast<size_t>(n), 0.0f);

  const float gamma = options.diffusion_strength;
  // Day-to-day amplitude jitter per node (resampled every morning) and
  // active congestion incidents.
  std::vector<float> day_factor(static_cast<size_t>(n), 1.0f);
  std::vector<int64_t> incident_until(static_cast<size_t>(n), -1);
  for (int64_t t = 0; t < steps; ++t) {
    if (t % options.steps_per_day == 0) {
      for (auto& f : day_factor) {
        f = std::max(0.3f, 1.0f + rng.Normal(0.0f, options.daily_jitter));
      }
    }
    const float day_fraction = static_cast<float>(t % options.steps_per_day) /
                               static_cast<float>(options.steps_per_day);
    const int64_t dow =
        (options.start_day_of_week + t / options.steps_per_day) % 7;
    const bool weekend = dow >= 5;
    const float weekday_factor = weekend ? 0.55f : 1.0f;
    // Diffusion intensity is itself time-of-day dependent: commuting hours
    // move traffic between districts far more than off-peak hours, which is
    // exactly the dynamic spatial dependency of Fig. 2(c).
    const float intensity = 0.35f + 0.65f * (DayBump(day_fraction, 8.0f / 24.0f, 0.07f) +
                                             DayBump(day_fraction, 17.5f / 24.0f, 0.08f));

    for (int64_t i = 0; i < n; ++i) {
      const size_t ui = static_cast<size_t>(i);
      // Inherent: daily profile (with day-to-day amplitude jitter) + slow
      // AR(1) wander + occasional congestion incidents.
      ar_state[ui] = 0.99f * ar_state[ui] + rng.Normal(0.0f, 0.02f);
      if (incident_until[ui] < t &&
          rng.Uniform() < options.incident_prob) {
        incident_until[ui] = t + options.incident_len +
                             rng.UniformInt(options.incident_len);
      }
      const float incident =
          incident_until[ui] >= t ? options.incident_boost : 0.0f;
      float inh = base_level[ui] +
                  weekday_factor * day_factor[ui] *
                      (am_amp[ui] * DayBump(day_fraction, am_center[ui], 0.055f) +
                       pm_amp[ui] * DayBump(day_fraction, pm_center[ui], 0.065f)) +
                  ar_state[ui] + incident;
      inh = std::max(0.0f, inh);

      // Diffusion: lagged, intensity-modulated inflow from neighbours.
      float dif = 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        const size_t e = static_cast<size_t>(i * n + j);
        if (weight[e] == 0.0f) continue;
        const int64_t src_t = t - lag[e];
        if (src_t < 0) continue;
        dif += weight[e] * total[static_cast<size_t>(src_t * n + j)];
      }
      dif *= gamma * intensity;

      const size_t cell = static_cast<size_t>(t * n + i);
      inherent[cell] = inh;
      diffusion[cell] = dif;
      total[cell] = (1.0f - gamma) * inh + dif;
    }
  }

  // Observe: map latent demand to speed or flow readings.
  std::vector<float> values(static_cast<size_t>(steps * n));
  std::vector<int64_t> failure_until(static_cast<size_t>(n), -1);
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      const size_t ui = static_cast<size_t>(i);
      const size_t cell = static_cast<size_t>(t * n + i);
      const float demand = total[cell];
      float reading;
      if (options.flow) {
        float f = options.flow_scale * capacity[ui] * demand;
        f += rng.Normal(0.0f, options.noise_std * options.flow_scale * 0.5f);
        reading = std::max(0.0f, std::round(f));
      } else {
        // Speed falls as demand approaches capacity (smooth saturating map).
        const float congestion =
            std::min(1.0f, demand / (1.1f * capacity[ui]));
        float v = options.free_flow_speed *
                  (1.0f - 0.72f * congestion * congestion);
        v += rng.Normal(0.0f, options.noise_std * options.free_flow_speed);
        reading = std::clamp(v, 0.0f, options.free_flow_speed + 2.0f);
        // Sensor-failure bursts read exactly zero.
        if (failure_until[ui] >= t) {
          reading = 0.0f;
        } else if (rng.Uniform() < options.failure_prob) {
          failure_until[ui] = t + options.failure_len;
          reading = 0.0f;
        }
      }
      values[cell] = reading;
    }
  }

  ds.values = Tensor({steps, n}, std::move(values));
  result.inherent = Tensor({steps, n}, std::move(inherent));
  result.diffusion = Tensor({steps, n}, std::move(diffusion));
  return result;
}

}  // namespace d2stgnn::data
