#include "data/presets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace d2stgnn::data {
namespace {

int64_t ScaledNodes(int64_t full, float scale) {
  const int64_t scaled =
      static_cast<int64_t>(std::lround(static_cast<float>(full) * scale));
  return std::max<int64_t>(12, scaled);
}

int64_t ScaledSteps(int64_t full, float scale) {
  const int64_t scaled =
      static_cast<int64_t>(std::lround(static_cast<float>(full) * scale));
  return std::max<int64_t>(16 * 288, scaled);
}

}  // namespace

SyntheticTrafficOptions MetrLaOptions(float scale) {
  D2_CHECK_GT(scale, 0.0f);
  SyntheticTrafficOptions o;
  o.name = "METR-LA";
  o.num_steps = ScaledSteps(34272, scale);
  o.flow = false;
  o.seed = 101;
  o.start_day_of_week = 3;  // Mar 1st 2012 was a Thursday.
  o.network.num_nodes = ScaledNodes(207, scale);
  o.network.neighbors = 4;  // 1722 edges / 207 nodes ~ 8 directed edges/node
  o.network.directed = true;
  o.failure_prob = 6e-4f;  // METR-LA has frequent loop-detector failures.
  o.diffusion_strength = 0.45f;
  return o;
}

SyntheticTrafficOptions PemsBayOptions(float scale) {
  D2_CHECK_GT(scale, 0.0f);
  SyntheticTrafficOptions o;
  o.name = "PEMS-BAY";
  o.num_steps = ScaledSteps(52116, scale);
  o.flow = false;
  o.seed = 202;
  o.start_day_of_week = 6;  // Jan 1st 2017 was a Sunday.
  o.network.num_nodes = ScaledNodes(325, scale);
  o.network.neighbors = 4;
  o.network.directed = true;
  o.failure_prob = 1e-4f;  // PEMS-BAY is much cleaner than METR-LA.
  o.noise_std = 0.03f;
  o.diffusion_strength = 0.40f;
  return o;
}

SyntheticTrafficOptions Pems04Options(float scale) {
  D2_CHECK_GT(scale, 0.0f);
  SyntheticTrafficOptions o;
  o.name = "PEMS04";
  o.num_steps = ScaledSteps(16992, scale);
  o.flow = true;
  o.seed = 303;
  o.start_day_of_week = 0;  // Jan 1st 2018 was a Monday.
  o.network.num_nodes = ScaledNodes(307, scale);
  o.network.neighbors = 2;  // ASTGCN's flow networks are sparse (680 edges).
  o.network.directed = false;
  o.diffusion_strength = 0.5f;
  return o;
}

SyntheticTrafficOptions Pems08Options(float scale) {
  D2_CHECK_GT(scale, 0.0f);
  SyntheticTrafficOptions o;
  o.name = "PEMS08";
  o.num_steps = ScaledSteps(17856, scale);
  o.flow = true;
  o.seed = 404;
  o.start_day_of_week = 6;  // July 1st 2018 was a Sunday.
  o.network.num_nodes = ScaledNodes(170, scale);
  o.network.neighbors = 3;
  o.network.directed = false;
  o.diffusion_strength = 0.5f;
  return o;
}

std::vector<DatasetPreset> AllPresets(float scale) {
  return {
      {"METR-LA", MetrLaOptions(scale), 0.7f, 0.1f},
      {"PEMS-BAY", PemsBayOptions(scale), 0.7f, 0.1f},
      {"PEMS04", Pems04Options(scale), 0.6f, 0.2f},
      {"PEMS08", Pems08Options(scale), 0.6f, 0.2f},
  };
}

}  // namespace d2stgnn::data
