#include "core/d2stgnn.h"

#include "common/check.h"
#include "graph/localized_transition.h"
#include "graph/transition.h"
#include "tensor/ops.h"

namespace d2stgnn::core {
namespace {

DecoupledLayerConfig LayerConfigFrom(const D2StgnnConfig& c) {
  DecoupledLayerConfig lc;
  lc.hidden_dim = c.hidden_dim;
  lc.embed_dim = c.embed_dim;
  lc.k_s = c.k_s;
  lc.k_t = c.k_t;
  lc.num_heads = c.num_heads;
  lc.input_len = c.input_len;
  lc.horizon = c.output_len;
  lc.num_supports = c.use_adaptive ? 3 : 2;
  lc.inherent_first = c.inherent_first;
  lc.use_gate = c.use_gate;
  lc.use_residual = c.use_residual;
  lc.use_decouple = c.use_decouple;
  lc.use_gru = c.use_gru;
  lc.use_msa = c.use_msa;
  lc.autoregressive = c.autoregressive;
  return lc;
}

}  // namespace

D2Stgnn::D2Stgnn(const D2StgnnConfig& config, const Tensor& adjacency,
                 Rng& rng)
    : ForecastingModel("d2stgnn"),
      config_(config),
      input_proj_(data::kInputFeatures, config.hidden_dim, rng),
      node_source_(config.num_nodes, config.embed_dim, rng),
      node_target_(config.num_nodes, config.embed_dim, rng),
      time_of_day_(config.steps_per_day, config.embed_dim, rng),
      day_of_week_(7, config.embed_dim, rng),
      out_fc1_(config.hidden_dim, config.hidden_dim, rng),
      out_fc2_(config.hidden_dim, 1, rng) {
  D2_CHECK_GT(config.num_nodes, 0);
  D2_CHECK_EQ(adjacency.dim(), 2);
  D2_CHECK_EQ(adjacency.size(0), config.num_nodes);

  RegisterChild(&input_proj_);
  RegisterChild(&node_source_);
  RegisterChild(&node_target_);
  RegisterChild(&time_of_day_);
  RegisterChild(&day_of_week_);
  RegisterChild(&out_fc1_);
  RegisterChild(&out_fc2_);

  // Static transitions and their localized powers (constants).
  {
    NoGradGuard no_grad;
    p_forward_ = graph::ForwardTransition(adjacency);
    p_backward_ = graph::BackwardTransition(adjacency);
    for (const Tensor& p : {p_forward_, p_backward_}) {
      std::vector<Tensor> localized;
      for (const Tensor& power : graph::TransitionPowers(p, config.k_s)) {
        localized.push_back(graph::LocalizedTransition(power, config.k_t));
      }
      static_localized_.push_back(std::move(localized));
    }
  }

  if (config.use_dynamic_graph) {
    dynamic_graph_ = std::make_unique<DynamicGraphLearner>(
        config.input_len, config.hidden_dim, config.embed_dim, rng);
    RegisterChild(dynamic_graph_.get());
  }

  const DecoupledLayerConfig layer_config = LayerConfigFrom(config);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<DecoupledLayer>(layer_config, rng));
    RegisterChild(layers_.back().get());
  }
}

Tensor D2Stgnn::AdaptiveTransition() const {
  if (!config_.use_adaptive) return Tensor();
  // Eq. 7: P_apt = Softmax(ReLU(E^d (E^u)^T)).
  const Tensor logits =
      Relu(MatMul(node_target_.table(), Transpose(node_source_.table(), 0, 1)));
  return Softmax(logits, -1);
}

Tensor D2Stgnn::Forward(const data::Batch& batch) {
  const int64_t b = batch.batch_size;
  const int64_t steps = batch.input_len;
  const int64_t nodes = batch.num_nodes();
  D2_CHECK_EQ(steps, config_.input_len);
  D2_CHECK_EQ(nodes, config_.num_nodes);

  // Project the raw signal into the latent space (Sec. 4 intro).
  Tensor x = input_proj_.Forward(batch.x);  // [B, T, N, d]

  // Shared embeddings.
  const Tensor t_day = time_of_day_.Forward(batch.time_of_day, {b, steps});
  const Tensor t_week = day_of_week_.Forward(batch.day_of_week, {b, steps});
  const Tensor e_u = node_source_.table();
  const Tensor e_d = node_target_.table();

  // Assemble the localized supports shared by every layer (Algorithm 1,
  // lines 1-2): road-network transitions (dynamic when enabled) plus the
  // self-adaptive transition.
  std::vector<std::vector<Tensor>> supports;
  if (config_.use_dynamic_graph) {
    // Time embedding of the window's final step conditions the graph.
    const Tensor day_last =
        Reshape(Slice(t_day, 1, steps - 1, steps), {b, config_.embed_dim});
    const Tensor week_last =
        Reshape(Slice(t_week, 1, steps - 1, steps), {b, config_.embed_dim});
    const auto [p_f_dy, p_b_dy] = dynamic_graph_->Forward(
        x, day_last, week_last, e_u, e_d, p_forward_, p_backward_);
    for (const Tensor& p : {p_f_dy, p_b_dy}) {
      std::vector<Tensor> localized;
      for (const Tensor& power : graph::TransitionPowers(p, config_.k_s)) {
        localized.push_back(graph::LocalizedTransition(power, config_.k_t));
      }
      supports.push_back(std::move(localized));
    }
  } else {
    supports = static_localized_;
  }
  if (config_.use_adaptive) {
    const Tensor p_apt = AdaptiveTransition();
    std::vector<Tensor> localized;
    for (const Tensor& power : graph::TransitionPowers(p_apt, config_.k_s)) {
      localized.push_back(graph::LocalizedTransition(power, config_.k_t));
    }
    supports.push_back(std::move(localized));
  }

  // Stack the decoupled layers, summing forecast hidden states (Eq. 15).
  Tensor forecast_sum;
  for (const auto& layer : layers_) {
    const LayerOutput out =
        layer->Forward(x, t_day, t_week, e_u, e_d, supports);
    const Tensor layer_forecast = Add(out.forecast_dif, out.forecast_inh);
    forecast_sum = forecast_sum.defined() ? Add(forecast_sum, layer_forecast)
                                          : layer_forecast;
    x = out.next_input;
  }

  // Two-layer regression head on H (Sec. 5.4).
  return out_fc2_.Forward(Relu(out_fc1_.Forward(forecast_sum)));
}

D2StgnnConfig MakeStaticGraphConfig(D2StgnnConfig config) {
  config.use_dynamic_graph = false;
  return config;
}

D2StgnnConfig MakeCoupledConfig(D2StgnnConfig config) {
  config.use_dynamic_graph = false;
  config.use_decouple = false;
  config.use_gate = false;
  config.use_residual = false;
  return config;
}

}  // namespace d2stgnn::core
