#include "core/inherent_block.h"

#include <vector>

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::core {

InherentBlock::InherentBlock(int64_t hidden_dim, int64_t num_heads,
                             int64_t forecast_horizon, int64_t max_len,
                             bool use_gru, bool use_msa, bool autoregressive,
                             Rng& rng)
    : Module("inherent_block"),
      hidden_dim_(hidden_dim),
      horizon_(forecast_horizon),
      use_gru_(use_gru),
      use_msa_(use_msa),
      autoregressive_(autoregressive),
      positional_(max_len + forecast_horizon, hidden_dim) {
  if (use_gru_) {
    gru_ = std::make_unique<nn::GruCell>(hidden_dim, hidden_dim, rng);
    RegisterChild(gru_.get());
  } else {
    input_fc_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    RegisterChild(input_fc_.get());
  }
  if (use_msa_) {
    attention_ =
        std::make_unique<nn::MultiHeadSelfAttention>(hidden_dim, num_heads, rng);
    RegisterChild(attention_.get());
  }
  if (autoregressive_) {
    roll_fc_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    RegisterChild(roll_fc_.get());
  } else {
    forecast_fc1_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    forecast_fc2_ = std::make_unique<nn::Linear>(
        hidden_dim, forecast_horizon * hidden_dim, rng);
    RegisterChild(forecast_fc1_.get());
    RegisterChild(forecast_fc2_.get());
  }
  backcast_fc1_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
  backcast_fc2_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
  RegisterChild(backcast_fc1_.get());
  RegisterChild(backcast_fc2_.get());
}

BlockOutput InherentBlock::Forward(const Tensor& x) const {
  D2_CHECK_EQ(x.dim(), 4);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);
  const int64_t nodes = x.size(2);
  D2_CHECK_EQ(x.size(3), hidden_dim_);

  // Short-term dependencies: GRU over time, every node independent (Eq. 10).
  std::vector<Tensor> gru_states;
  gru_states.reserve(static_cast<size_t>(steps));
  Tensor state = Tensor::Zeros({batch, nodes, hidden_dim_});
  for (int64_t t = 0; t < steps; ++t) {
    const Tensor frame =
        Reshape(Slice(x, 1, t, t + 1), {batch, nodes, hidden_dim_});
    if (use_gru_) {
      state = gru_->Forward(frame, state);
    } else {
      state = Relu(input_fc_->Forward(frame));  // w/o gru: plain projection
    }
    gru_states.push_back(state);
  }
  Tensor recurrent = Stack(gru_states, 1);  // [B, T, N, d]

  // Long-term dependencies: positional encoding (Eq. 12) + multi-head
  // self-attention over the time axis per node (Eq. 11).
  Tensor hidden;
  if (use_msa_) {
    Tensor per_node = Permute(recurrent, {0, 2, 1, 3});     // [B, N, T, d]
    per_node = Reshape(per_node, {batch * nodes, steps, hidden_dim_});
    per_node = positional_.Forward(per_node);
    per_node = attention_->Forward(per_node);               // [B*N, T, d]
    per_node = Reshape(per_node, {batch, nodes, steps, hidden_dim_});
    hidden = Permute(per_node, {0, 2, 1, 3});               // [B, T, N, d]
  } else {
    hidden = recurrent;
  }

  BlockOutput out;
  out.hidden_sequence = hidden;

  // Forecast branch: simple sliding auto-regression (Sec. 5.2) — keep
  // stepping the recurrence, feeding back a projection of the last hidden
  // state (there is no ground truth for the hidden inherent series, so no
  // decoder).
  if (autoregressive_) {
    std::vector<Tensor> future;
    future.reserve(static_cast<size_t>(horizon_));
    Tensor roll_state = gru_states.back();
    for (int64_t f = 0; f < horizon_; ++f) {
      const Tensor next_input = Relu(roll_fc_->Forward(roll_state));
      if (use_gru_) {
        roll_state = gru_->Forward(next_input, roll_state);
      } else {
        roll_state = Relu(input_fc_->Forward(next_input));
      }
      future.push_back(roll_state);
    }
    out.hidden_forecast = Stack(future, 1);  // [B, Tf, N, d]
  } else {
    const Tensor last =
        Reshape(Slice(hidden, 1, steps - 1, steps), {batch, nodes, hidden_dim_});
    Tensor flat = forecast_fc2_->Forward(Relu(forecast_fc1_->Forward(last)));
    flat = Reshape(flat, {batch, nodes, horizon_, hidden_dim_});
    out.hidden_forecast = Permute(flat, {0, 2, 1, 3});
  }

  // Backcast branch (Eq. 2).
  out.backcast = backcast_fc2_->Forward(Relu(backcast_fc1_->Forward(hidden)));
  return out;
}

}  // namespace d2stgnn::core
