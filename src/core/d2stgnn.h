#ifndef D2STGNN_CORE_D2STGNN_H_
#define D2STGNN_CORE_D2STGNN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/decoupled_layer.h"
#include "core/dynamic_graph.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "train/forecasting_model.h"

namespace d2stgnn::core {

/// Full configuration of D²STGNN. Defaults follow the paper's Sec. 6.1
/// (hidden d = 32, embeddings 12, k_s = 2, k_t = 3); the boolean switches
/// expose every variant of Tables 4 and 5.
struct D2StgnnConfig {
  int64_t num_nodes = 0;       ///< required
  int64_t input_len = 12;      ///< T_h
  int64_t output_len = 12;     ///< T_f
  int64_t hidden_dim = 32;     ///< d
  int64_t embed_dim = 12;      ///< node/time embedding size
  int64_t num_layers = 2;      ///< L
  int64_t k_s = 2;             ///< spatial kernel size
  int64_t k_t = 3;             ///< temporal kernel size
  int64_t num_heads = 4;       ///< attention heads in the inherent model
  int64_t steps_per_day = 288; ///< N_D for the T^D embedding

  bool inherent_first = false;   ///< `switch`
  bool use_gate = true;          ///< `w/o gate`
  bool use_residual = true;      ///< `w/o res`
  bool use_decouple = true;      ///< `w/o decouple` → D²STGNN‡
  bool use_dynamic_graph = true; ///< `w/o dg` → D²STGNN†
  bool use_adaptive = true;      ///< `w/o apt`
  bool use_gru = true;           ///< `w/o gru`
  bool use_msa = true;           ///< `w/o msa`
  bool autoregressive = true;    ///< `w/o ar`
};

/// Decoupled Dynamic Spatial-Temporal Graph Neural Network (the paper's
/// model, Sec. 5 / Algorithm 1). Owns the node and time-slot embeddings
/// shared by the estimation gates, the self-adaptive transition matrix
/// (Eq. 7), and the dynamic graph learner (Eqs. 13–14); stacks L decoupled
/// spatial-temporal layers whose forecast hidden states are summed (Eq. 15)
/// and regressed by a two-layer MLP.
class D2Stgnn : public train::ForecastingModel {
 public:
  /// `adjacency` is the [N, N] road-network adjacency (Table 2 /
  /// Definition 2) from which the static transitions P_f and P_b derive.
  D2Stgnn(const D2StgnnConfig& config, const Tensor& adjacency, Rng& rng);

  /// Predicts [B, Tf, N, 1] normalized traffic signals.
  Tensor Forward(const data::Batch& batch) override;

  int64_t horizon() const override { return config_.output_len; }

  const D2StgnnConfig& config() const { return config_; }

  /// The self-adaptive transition matrix P_apt (Eq. 7) for inspection;
  /// undefined when use_adaptive is false.
  Tensor AdaptiveTransition() const;

 private:
  D2StgnnConfig config_;
  Tensor p_forward_;   // static P_f, [N, N]
  Tensor p_backward_;  // static P_b, [N, N]
  /// Precomputed localized powers of the static transitions (used when the
  /// dynamic graph is disabled), indexed [support][k-1].
  std::vector<std::vector<Tensor>> static_localized_;

  nn::Linear input_proj_;
  nn::Embedding node_source_;  // E^u
  nn::Embedding node_target_;  // E^d
  nn::Embedding time_of_day_;  // T^D
  nn::Embedding day_of_week_;  // T^W
  std::unique_ptr<DynamicGraphLearner> dynamic_graph_;
  std::vector<std::unique_ptr<DecoupledLayer>> layers_;
  nn::Linear out_fc1_;
  nn::Linear out_fc2_;
};

/// Convenience factories for the paper's named variants.
/// D²STGNN† — pre-defined static graph instead of the dynamic one (Table 4).
D2StgnnConfig MakeStaticGraphConfig(D2StgnnConfig config);
/// D²STGNN‡ — additionally removes the decoupling framework (Table 4).
D2StgnnConfig MakeCoupledConfig(D2StgnnConfig config);

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_D2STGNN_H_
