#ifndef D2STGNN_CORE_DYNAMIC_GRAPH_H_
#define D2STGNN_CORE_DYNAMIC_GRAPH_H_

#include <utility>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace d2stgnn::core {

/// Dynamic graph learning module (paper Sec. 5.3, Eqs. 13–14). Builds
/// per-window dynamic transition matrices by masking the static road-network
/// transitions with a self-attention score computed from the window's
/// traffic features, time embeddings, and static node embeddings:
///
///   DF^u_t = Concat[FC(‖_c X_c), T^D_t, T^W_t, E^u]
///   P^dy_{f,t} = P_f ⊙ Softmax(DF^u_t W^Q (DF^u_t W^K)^T / sqrt(d))
///
/// As the paper's cost note prescribes, P^dy is computed once per window
/// (static within T_h).
class DynamicGraphLearner : public nn::Module {
 public:
  /// `input_len` is T_h; `hidden_dim` d; `embed_dim` the width of time/node
  /// embeddings.
  DynamicGraphLearner(int64_t input_len, int64_t hidden_dim,
                      int64_t embed_dim, Rng& rng);

  /// Computes {P^dy_f, P^dy_b}, each [B, N, N].
  /// `x`: [B, T, N, d] latent window; `t_day`/`t_week`: [B, de] embeddings
  /// of the window's last step; `e_u`/`e_d`: [N, de]; `p_forward`/
  /// `p_backward`: static [N, N] transitions.
  std::pair<Tensor, Tensor> Forward(const Tensor& x, const Tensor& t_day,
                                    const Tensor& t_week, const Tensor& e_u,
                                    const Tensor& e_d,
                                    const Tensor& p_forward,
                                    const Tensor& p_backward) const;

 private:
  int64_t hidden_dim_;
  nn::Linear feature_fc1_;  // T*d -> d
  nn::Linear feature_fc2_;  // d -> d
  Tensor w_q_;              // [d + 3*de, d]
  Tensor w_k_;              // [d + 3*de, d]
};

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_DYNAMIC_GRAPH_H_
