#include "core/diffusion_block.h"

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace d2stgnn::core {

DiffusionBlock::DiffusionBlock(int64_t hidden_dim, int64_t k_s, int64_t k_t,
                               int64_t num_supports, int64_t forecast_horizon,
                               bool autoregressive, Rng& rng)
    : Module("diffusion_block"),
      hidden_dim_(hidden_dim),
      k_s_(k_s),
      k_t_(k_t),
      horizon_(forecast_horizon),
      autoregressive_(autoregressive) {
  D2_CHECK_GE(k_s, 1);
  D2_CHECK_GE(k_t, 1);
  D2_CHECK_GE(num_supports, 1);
  for (int64_t j = 0; j < k_t; ++j) {
    frame_fc_.push_back(
        std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng));
    RegisterChild(frame_fc_.back().get());
  }
  for (int64_t s = 0; s < num_supports; ++s) {
    for (int64_t k = 0; k < k_s; ++k) {
      conv_weight_.push_back(RegisterParameter(
          "W_conv", nn::XavierUniform({hidden_dim, hidden_dim}, rng)));
    }
  }
  if (autoregressive_) {
    forecast_fc1_ =
        std::make_unique<nn::Linear>(k_t * hidden_dim, hidden_dim, rng);
    forecast_fc2_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
  } else {
    forecast_fc1_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
    forecast_fc2_ = std::make_unique<nn::Linear>(
        hidden_dim, forecast_horizon * hidden_dim, rng);
  }
  RegisterChild(forecast_fc1_.get());
  RegisterChild(forecast_fc2_.get());
  backcast_fc1_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
  backcast_fc2_ = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng);
  RegisterChild(backcast_fc1_.get());
  RegisterChild(backcast_fc2_.get());
}

BlockOutput DiffusionBlock::Forward(
    const Tensor& x,
    const std::vector<std::vector<Tensor>>& localized_supports) const {
  D2_CHECK_EQ(x.dim(), 4);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);
  const int64_t nodes = x.size(2);
  D2_CHECK_EQ(x.size(3), hidden_dim_);
  D2_CHECK_LE(localized_supports.size(),
              conv_weight_.size() / static_cast<size_t>(k_s_));

  // Eq. 5: per-offset non-linear frame transforms, computed once for the
  // whole sequence. transformed[j] holds sigma(X W_j) where j is the offset
  // back from the target step. The sequence is zero-padded in front so
  // every step owns a full k_t window.
  std::vector<Tensor> transformed;
  transformed.reserve(static_cast<size_t>(k_t_));
  const Tensor padded = PadFront(x, 1, k_t_ - 1);  // [B, T+kt-1, N, d]
  for (int64_t j = 0; j < k_t_; ++j) {
    transformed.push_back(Relu(frame_fc_[static_cast<size_t>(j)]->Forward(padded)));
  }

  // Eqs. 6 & 8 per step: H_t = sum_s sum_k (P^lc_s)^k X^lc_t W_{s,k}.
  std::vector<Tensor> hidden_steps;
  hidden_steps.reserve(static_cast<size_t>(steps));
  for (int64_t t = 0; t < steps; ++t) {
    // X^lc_t: frames [t-kt+1 .. t] stacked on the node axis, earliest
    // first (matching the k_t blocks of the localized transition). The
    // frame at padded index t + j2 (original t - kt + 1 + j2) uses the
    // transform with offset j = kt - 1 - j2.
    std::vector<Tensor> rows;
    rows.reserve(static_cast<size_t>(k_t_));
    for (int64_t j2 = 0; j2 < k_t_; ++j2) {
      const Tensor frame = Reshape(
          Slice(transformed[static_cast<size_t>(k_t_ - 1 - j2)], 1, t + j2,
                t + j2 + 1),
          {batch, nodes, hidden_dim_});
      rows.push_back(frame);
    }
    const Tensor x_lc = Concat(rows, 1);  // [B, kt*N, d]

    Tensor h_t;
    for (size_t s = 0; s < localized_supports.size(); ++s) {
      D2_CHECK_EQ(static_cast<int64_t>(localized_supports[s].size()), k_s_);
      for (int64_t k = 0; k < k_s_; ++k) {
        Tensor p = localized_supports[s][static_cast<size_t>(k)];
        if (p.dim() == 2) p = Unsqueeze(p, 0);  // broadcast over batch
        const Tensor conv = MatMul(
            MatMul(p, x_lc),
            conv_weight_[s * static_cast<size_t>(k_s_) +
                         static_cast<size_t>(k)]);
        h_t = h_t.defined() ? Add(h_t, conv) : conv;
      }
    }
    hidden_steps.push_back(h_t);  // [B, N, d]
  }
  const Tensor hidden = Stack(hidden_steps, 1);  // [B, T, N, d]

  BlockOutput out;
  out.hidden_sequence = hidden;

  // Forecast branch (Sec. 5.1): roll an MLP over the last k_t hidden states
  // to produce H_{T+1..T+Tf} auto-regressively; the w/o-ar ablation
  // regresses all future hidden states from H_T at once.
  if (autoregressive_) {
    std::vector<Tensor> window;
    for (int64_t j = std::max<int64_t>(0, steps - k_t_); j < steps; ++j) {
      window.push_back(hidden_steps[static_cast<size_t>(j)]);
    }
    while (static_cast<int64_t>(window.size()) < k_t_) {
      window.insert(window.begin(),
                    Tensor::Zeros({batch, nodes, hidden_dim_}));
    }
    std::vector<Tensor> future;
    future.reserve(static_cast<size_t>(horizon_));
    for (int64_t f = 0; f < horizon_; ++f) {
      const Tensor context = Concat(window, -1);  // [B, N, kt*d]
      const Tensor next = forecast_fc2_->Forward(
          Relu(forecast_fc1_->Forward(context)));
      future.push_back(next);
      window.erase(window.begin());
      window.push_back(next);
    }
    out.hidden_forecast = Stack(future, 1);  // [B, Tf, N, d]
  } else {
    const Tensor last = hidden_steps.back();  // [B, N, d]
    Tensor flat =
        forecast_fc2_->Forward(Relu(forecast_fc1_->Forward(last)));
    flat = Reshape(flat, {batch, nodes, horizon_, hidden_dim_});
    out.hidden_forecast = Permute(flat, {0, 2, 1, 3});
  }

  // Backcast branch (Eq. 1's sigma(H W_b), realized as a two-layer
  // non-linear fully connected network).
  out.backcast = backcast_fc2_->Forward(Relu(backcast_fc1_->Forward(hidden)));
  return out;
}

}  // namespace d2stgnn::core
