#ifndef D2STGNN_CORE_ESTIMATION_GATE_H_
#define D2STGNN_CORE_ESTIMATION_GATE_H_

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace d2stgnn::core {

/// The estimation gate of the decouple block (paper Eq. 3). From the time
/// and node embeddings it learns a value Λ_{t,i} ∈ (0, 1) that estimates the
/// proportion of the diffusion signal at time slot t of node i, relieving
/// the first block in each layer from having to isolate its own signal:
///
///   Λ = Sigmoid(ReLU([T^D_t ‖ T^W_t ‖ E^u_i ‖ E^d_i] W₁) W₂)
///   X^dif = Λ ⊙ X^l
class EstimationGate : public nn::Module {
 public:
  /// `embed_dim` is the width of each of the four embeddings; `hidden_dim`
  /// the width of W₁'s output.
  EstimationGate(int64_t embed_dim, int64_t hidden_dim, Rng& rng);

  /// Applies the gate.
  /// `t_day`/`t_week`: [B, T, de] looked-up time-slot embeddings;
  /// `e_u`/`e_d`: [N, de] node embeddings; `x`: [B, T, N, d] layer input.
  /// Returns Λ ⊙ x with Λ broadcast over channels.
  Tensor Forward(const Tensor& t_day, const Tensor& t_week, const Tensor& e_u,
                 const Tensor& e_d, const Tensor& x) const;

 private:
  nn::Linear fc1_;
  nn::Linear fc2_;
};

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_ESTIMATION_GATE_H_
