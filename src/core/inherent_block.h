#ifndef D2STGNN_CORE_INHERENT_BLOCK_H_
#define D2STGNN_CORE_INHERENT_BLOCK_H_

#include <memory>

#include "common/rng.h"
#include "core/diffusion_block.h"  // for BlockOutput
#include "nn/attention.h"
#include "nn/gru_cell.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/positional_encoding.h"

namespace d2stgnn::core {

/// The inherent model (paper Sec. 5.2, Fig. 5): captures the hidden inherent
/// time series of each node independently. A GRU (Eq. 10) models short-term
/// dependencies, sinusoidal positional encoding (Eq. 12) restores order
/// information, and a multi-head self-attention layer (Eq. 11) over the time
/// axis captures long-term dependencies. The forecast branch continues the
/// GRU auto-regressively ("simple sliding auto-regression"); the backcast
/// branch reconstructs the block's input.
class InherentBlock : public nn::Module {
 public:
  /// `use_gru` / `use_msa` disable the respective component (Table 5's
  /// `w/o gru` / `w/o msa` ablations); `autoregressive` = false selects the
  /// `w/o ar` direct multi-step regression.
  InherentBlock(int64_t hidden_dim, int64_t num_heads,
                int64_t forecast_horizon, int64_t max_len, bool use_gru,
                bool use_msa, bool autoregressive, Rng& rng);

  /// Runs the block on the inherent signal `x` [B, T, N, d].
  BlockOutput Forward(const Tensor& x) const;

 private:
  int64_t hidden_dim_;
  int64_t horizon_;
  bool use_gru_;
  bool use_msa_;
  bool autoregressive_;
  std::unique_ptr<nn::GruCell> gru_;
  std::unique_ptr<nn::Linear> input_fc_;  // replaces the GRU when disabled
  nn::PositionalEncoding positional_;
  std::unique_ptr<nn::MultiHeadSelfAttention> attention_;
  std::unique_ptr<nn::Linear> roll_fc_;       // projects H_t to the next input
  std::unique_ptr<nn::Linear> forecast_fc1_;  // w/o-ar head
  std::unique_ptr<nn::Linear> forecast_fc2_;
  std::unique_ptr<nn::Linear> backcast_fc1_;
  std::unique_ptr<nn::Linear> backcast_fc2_;
};

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_INHERENT_BLOCK_H_
