#ifndef D2STGNN_CORE_DIFFUSION_BLOCK_H_
#define D2STGNN_CORE_DIFFUSION_BLOCK_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace d2stgnn::core {

/// Output of a diffusion or inherent block: the full hidden-state sequence,
/// the auto-regressive forecast of future hidden states, and the backcast
/// reconstruction of the block's input (paper Sec. 4.1).
struct BlockOutput {
  /// H over the input window, [B, T, N, d].
  Tensor hidden_sequence;
  /// Forecast hidden states [H_{T+1}, ..., H_{T+Tf}], [B, Tf, N, d].
  Tensor hidden_forecast;
  /// Backcast of the input signal, [B, T, N, d].
  Tensor backcast;
};

/// The diffusion model: a spatial-temporal localized convolutional layer
/// (paper Sec. 5.1, Eqs. 4–9). For each time step t it builds the localized
/// feature matrix X^lc_t from the last k_t frames — each frame passed
/// through its own non-linear transform W_{k'} (Eq. 5) — and convolves it
/// with the k_s powers of every localized transition matrix, each (support,
/// order) pair owning its output weight (Eq. 8).
class DiffusionBlock : public nn::Module {
 public:
  /// `num_supports` is the number of transition matrices (2 static/dynamic
  /// road-network directions + optionally the self-adaptive one).
  /// `autoregressive` selects the forecast branch of Sec. 5.1 (rolling
  /// prediction of future hidden states) versus the `w/o ar` ablation
  /// (direct multi-step regression from H_T).
  DiffusionBlock(int64_t hidden_dim, int64_t k_s, int64_t k_t,
                 int64_t num_supports, int64_t forecast_horizon,
                 bool autoregressive, Rng& rng);

  /// Runs the localized convolution.
  /// `x`: [B, T, N, d] diffusion-signal input;
  /// `localized_supports[s][k-1]`: the k-order localized transition of
  /// support s, [N, k_t*N] (static) or [B, N, k_t*N] (dynamic). The number
  /// of supports may be less than `num_supports` (e.g. w/o apt) — extra
  /// weights simply stay unused.
  BlockOutput Forward(
      const Tensor& x,
      const std::vector<std::vector<Tensor>>& localized_supports) const;

  int64_t k_t() const { return k_t_; }

 private:
  int64_t hidden_dim_;
  int64_t k_s_;
  int64_t k_t_;
  int64_t horizon_;
  bool autoregressive_;
  /// Frame transforms of Eq. 5; frame_fc_[j] applies to the frame j steps
  /// before the target step.
  std::vector<std::unique_ptr<nn::Linear>> frame_fc_;
  /// Output weights of Eq. 8, indexed [support * k_s + (k-1)].
  std::vector<Tensor> conv_weight_;
  // Forecast branch.
  std::unique_ptr<nn::Linear> forecast_fc1_;  // k_t*d -> d (AR) or d -> d
  std::unique_ptr<nn::Linear> forecast_fc2_;  // d -> d or d -> Tf*d
  // Backcast branch ("non-linear fully connected network", Sec. 4.1).
  std::unique_ptr<nn::Linear> backcast_fc1_;
  std::unique_ptr<nn::Linear> backcast_fc2_;
};

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_DIFFUSION_BLOCK_H_
