#include "core/decoupled_layer.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::core {

DecoupledLayer::DecoupledLayer(const DecoupledLayerConfig& config, Rng& rng)
    : Module("decoupled_layer"),
      config_(config),
      diffusion_(config.hidden_dim, config.k_s, config.k_t,
                 config.num_supports, config.horizon, config.autoregressive,
                 rng),
      inherent_(config.hidden_dim, config.num_heads, config.horizon,
                config.input_len, config.use_gru, config.use_msa,
                config.autoregressive, rng) {
  if (config.use_decouple && config.use_gate) {
    gate_ = std::make_unique<EstimationGate>(config.embed_dim,
                                             config.hidden_dim, rng);
    RegisterChild(gate_.get());
  }
  RegisterChild(&diffusion_);
  RegisterChild(&inherent_);
}

LayerOutput DecoupledLayer::Forward(
    const Tensor& x, const Tensor& t_day, const Tensor& t_week,
    const Tensor& e_u, const Tensor& e_d,
    const std::vector<std::vector<Tensor>>& localized_supports) const {
  LayerOutput out;

  if (!config_.use_decouple) {
    // Coupled variant (D²STGNN‡, Sec. 6.3): diffusion and inherent models
    // chained directly, hidden states feeding forward like in conventional
    // STGNNs; no gate, no residual decomposition.
    const BlockOutput dif = diffusion_.Forward(x, localized_supports);
    const BlockOutput inh = inherent_.Forward(dif.hidden_sequence);
    out.next_input = inh.hidden_sequence;
    out.forecast_dif = dif.hidden_forecast;
    out.forecast_inh = inh.hidden_forecast;
    return out;
  }

  if (!config_.inherent_first) {
    // Paper default (Fig. 3): estimation gate scales the diffusion share
    // (Eq. 3), the diffusion backcast is removed from the layer input
    // (Eq. 1), and the inherent backcast from the inherent input (Eq. 2).
    const Tensor x_dif =
        gate_ != nullptr ? gate_->Forward(t_day, t_week, e_u, e_d, x) : x;
    const BlockOutput dif = diffusion_.Forward(x_dif, localized_supports);
    const Tensor x_inh =
        config_.use_residual ? Sub(x, dif.backcast) : x;
    const BlockOutput inh = inherent_.Forward(x_inh);
    // Without the residual links the layer degenerates to plain stacking of
    // hidden states (there is no signal left to pass down otherwise).
    out.next_input = config_.use_residual ? Sub(x_inh, inh.backcast)
                                          : inh.hidden_sequence;
    out.forecast_dif = dif.hidden_forecast;
    out.forecast_inh = inh.hidden_forecast;
    return out;
  }

  // `switch` variant (Sec. 6.5): inherent block first. The gate then
  // estimates the inherent share of the signal.
  const Tensor x_inh =
      gate_ != nullptr ? gate_->Forward(t_day, t_week, e_u, e_d, x) : x;
  const BlockOutput inh = inherent_.Forward(x_inh);
  const Tensor x_dif = config_.use_residual ? Sub(x, inh.backcast) : x;
  const BlockOutput dif = diffusion_.Forward(x_dif, localized_supports);
  out.next_input = config_.use_residual ? Sub(x_dif, dif.backcast)
                                        : dif.hidden_sequence;
  out.forecast_dif = dif.hidden_forecast;
  out.forecast_inh = inh.hidden_forecast;
  return out;
}

}  // namespace d2stgnn::core
