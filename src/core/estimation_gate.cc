#include "core/estimation_gate.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace d2stgnn::core {

EstimationGate::EstimationGate(int64_t embed_dim, int64_t hidden_dim, Rng& rng)
    : Module("estimation_gate"),
      fc1_(4 * embed_dim, hidden_dim, rng),
      fc2_(hidden_dim, 1, rng) {
  RegisterChild(&fc1_);
  RegisterChild(&fc2_);
}

Tensor EstimationGate::Forward(const Tensor& t_day, const Tensor& t_week,
                               const Tensor& e_u, const Tensor& e_d,
                               const Tensor& x) const {
  D2_CHECK_EQ(x.dim(), 4);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);
  const int64_t nodes = x.size(2);
  const int64_t de = e_u.size(-1);
  D2_CHECK_EQ(t_day.size(0), batch);
  D2_CHECK_EQ(t_day.size(1), steps);
  D2_CHECK_EQ(e_u.size(0), nodes);

  // Broadcast all four embeddings to [B, T, N, de] and concatenate.
  const Shape full = {batch, steps, nodes, de};
  const Tensor day = BroadcastTo(Unsqueeze(t_day, 2), full);
  const Tensor week = BroadcastTo(Unsqueeze(t_week, 2), full);
  const Tensor src = BroadcastTo(Reshape(e_u, {1, 1, nodes, de}), full);
  const Tensor dst = BroadcastTo(Reshape(e_d, {1, 1, nodes, de}), full);
  const Tensor features = Concat({day, week, src, dst}, -1);

  const Tensor gate = Sigmoid(fc2_.Forward(Relu(fc1_.Forward(features))));
  return Mul(gate, x);  // gate [B,T,N,1] broadcasts over channels
}

}  // namespace d2stgnn::core
