#ifndef D2STGNN_CORE_DECOUPLED_LAYER_H_
#define D2STGNN_CORE_DECOUPLED_LAYER_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/diffusion_block.h"
#include "core/estimation_gate.h"
#include "core/inherent_block.h"
#include "nn/module.h"

namespace d2stgnn::core {

/// Configuration of one decoupled spatial-temporal layer. The boolean
/// switches correspond one-to-one to the paper's Table 5 ablations.
struct DecoupledLayerConfig {
  int64_t hidden_dim = 32;
  int64_t embed_dim = 12;
  int64_t k_s = 2;
  int64_t k_t = 3;
  int64_t num_heads = 4;
  int64_t input_len = 12;
  int64_t horizon = 12;
  int64_t num_supports = 3;
  bool inherent_first = false;  ///< `switch` ablation
  bool use_gate = true;         ///< `w/o gate`
  bool use_residual = true;     ///< `w/o res`
  bool use_decouple = true;     ///< `w/o decouple` (coupled D²STGNN‡)
  bool use_gru = true;          ///< `w/o gru`
  bool use_msa = true;          ///< `w/o msa`
  bool autoregressive = true;   ///< `w/o ar`
};

/// What a layer hands back to the model.
struct LayerOutput {
  /// X^{l+1}, the residual signal feeding the next layer, [B, T, N, d].
  Tensor next_input;
  /// Forecast hidden states of the diffusion block, [B, Tf, N, d].
  Tensor forecast_dif;
  /// Forecast hidden states of the inherent block, [B, Tf, N, d].
  Tensor forecast_inh;
};

/// One decoupled spatial-temporal layer (paper Fig. 3): estimation gate →
/// diffusion block → residual link (Eq. 1) → inherent block → residual link
/// (Eq. 2). The `switch` variant swaps block order (Sec. 6.5); the coupled
/// variant (`w/o decouple`) chains the blocks directly, like conventional
/// STGNNs.
class DecoupledLayer : public nn::Module {
 public:
  DecoupledLayer(const DecoupledLayerConfig& config, Rng& rng);

  /// Runs the layer.
  /// `x`: [B, T, N, d] layer input; `t_day`/`t_week`: [B, T, de] time-slot
  /// embeddings; `e_u`/`e_d`: [N, de] node embeddings;
  /// `localized_supports[s][k-1]`: localized transition matrices shared by
  /// every layer of the model.
  LayerOutput Forward(
      const Tensor& x, const Tensor& t_day, const Tensor& t_week,
      const Tensor& e_u, const Tensor& e_d,
      const std::vector<std::vector<Tensor>>& localized_supports) const;

 private:
  DecoupledLayerConfig config_;
  std::unique_ptr<EstimationGate> gate_;
  DiffusionBlock diffusion_;
  InherentBlock inherent_;
};

}  // namespace d2stgnn::core

#endif  // D2STGNN_CORE_DECOUPLED_LAYER_H_
