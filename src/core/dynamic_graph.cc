#include "core/dynamic_graph.h"

#include <cmath>

#include "common/check.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace d2stgnn::core {

DynamicGraphLearner::DynamicGraphLearner(int64_t input_len,
                                         int64_t hidden_dim,
                                         int64_t embed_dim, Rng& rng)
    : Module("dynamic_graph"),
      hidden_dim_(hidden_dim),
      feature_fc1_(input_len * hidden_dim, hidden_dim, rng),
      feature_fc2_(hidden_dim, hidden_dim, rng) {
  RegisterChild(&feature_fc1_);
  RegisterChild(&feature_fc2_);
  const int64_t df_dim = hidden_dim + 3 * embed_dim;
  w_q_ = RegisterParameter("W_q", nn::XavierUniform({df_dim, hidden_dim}, rng));
  w_k_ = RegisterParameter("W_k", nn::XavierUniform({df_dim, hidden_dim}, rng));
}

std::pair<Tensor, Tensor> DynamicGraphLearner::Forward(
    const Tensor& x, const Tensor& t_day, const Tensor& t_week,
    const Tensor& e_u, const Tensor& e_d, const Tensor& p_forward,
    const Tensor& p_backward) const {
  D2_CHECK_EQ(x.dim(), 4);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);
  const int64_t nodes = x.size(2);
  const int64_t dim = x.size(3);
  const int64_t de = e_u.size(-1);

  // Eq. 13: per-node dynamic feature from the whole window,
  // FC(‖_c X_c): [B, N, T*d] -> [B, N, d] with a two-layer network.
  Tensor per_node = Permute(x, {0, 2, 1, 3});  // [B, N, T, d]
  per_node = Reshape(per_node, {batch, nodes, steps * dim});
  Tensor dyn = feature_fc2_.Forward(Relu(feature_fc1_.Forward(per_node)));

  // Broadcast time and node embeddings to [B, N, de].
  const Shape bn_shape = {batch, nodes, de};
  const Tensor day = BroadcastTo(Unsqueeze(t_day, 1), bn_shape);
  const Tensor week = BroadcastTo(Unsqueeze(t_week, 1), bn_shape);
  const Tensor src = BroadcastTo(Reshape(e_u, {1, nodes, de}), bn_shape);
  const Tensor dst = BroadcastTo(Reshape(e_d, {1, nodes, de}), bn_shape);

  const Tensor df_u = Concat({dyn, day, week, src}, -1);  // [B, N, d+3de]
  const Tensor df_d = Concat({dyn, day, week, dst}, -1);

  const float scale = 1.0f / std::sqrt(static_cast<float>(hidden_dim_));
  auto attention_mask = [&](const Tensor& df) {
    const Tensor q = MatMul(df, w_q_);  // [B, N, d]
    const Tensor k = MatMul(df, w_k_);
    const Tensor scores = MulScalar(MatMul(q, Transpose(k, -1, -2)), scale);
    return Softmax(scores, -1);  // [B, N, N]
  };

  // Eq. 14: element-wise mask of the static transitions (which broadcast
  // over the batch dimension).
  Tensor p_f_dy = Mul(Unsqueeze(p_forward, 0), attention_mask(df_u));
  Tensor p_b_dy = Mul(Unsqueeze(p_backward, 0), attention_mask(df_d));
  return {p_f_dy, p_b_dy};
}

}  // namespace d2stgnn::core
