// verify_plan: static plan-IR verification across the model registry.
//
// For every model the experiment registry knows (statistical entries have
// no captured-plan surface and are skipped with a notice), the tool builds
// the model on a small synthetic network, captures an ExecutionPlan per
// requested batch size through the public session API — the same eager
// forward Warmup records — and runs exec/plan_verifier.h over it. Every
// error diagnostic is printed with step/op/level provenance.
//
// Exit codes: 0 = every captured plan verified clean, 2 = verification
// errors (what CI gates on), 1 = usage or model/capture failure.
//
// --inject flips the contract for CI's negative test: it captures one valid
// plan, applies each plan_mutator.h corruption class, and exits 2 only when
// the verifier caught *all* of them — a missed corruption exits 0 so the
// CI assertion of exit 2 fails loudly.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "data/scaler.h"
#include "data/synthetic_traffic.h"
#include "exec/graph_capture.h"
#include "exec/plan_mutator.h"
#include "exec/plan_verifier.h"
#include "experiment/registry.h"
#include "infer/session.h"
#include "tensor/kernels/registry.h"
#include "train/checkpoint.h"

namespace d2stgnn {
namespace {

struct ToolConfig {
  std::vector<int64_t> batch_sizes;
  std::string only_model;   // empty = every registry model
  std::string checkpoint;   // optional; requires --model
  int64_t num_nodes = 8;
  bool inject = false;
  bool verbose = false;
};

std::vector<int64_t> ParseBatchSizes(const std::string& csv,
                                     std::string* error) {
  std::vector<int64_t> sizes;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    try {
      const int64_t size = std::stoll(token);
      if (size <= 0) throw std::invalid_argument(token);
      sizes.push_back(size);
    } catch (const std::exception&) {
      *error = "bad --batch-sizes entry: '" + token + "'";
      return {};
    }
  }
  if (sizes.empty()) *error = "--batch-sizes is empty";
  return sizes;
}

/// Captures the plan an InferenceSession would replay for `batch_size`
/// using only public API: bind the assembled batch, run the eager Predict
/// under capture, finish on its output tensor.
std::shared_ptr<const exec::ExecutionPlan> CapturePlan(
    infer::InferenceSession& session, int64_t batch_size,
    std::string* error) {
  std::vector<infer::ForecastRequest> requests(
      static_cast<size_t>(batch_size));
  for (infer::ForecastRequest& request : requests) {
    request.window.assign(
        static_cast<size_t>(session.input_len() * session.num_nodes()), 0.0f);
  }
  const data::Batch batch = session.AssembleBatch(requests);
  exec::GraphCapture capture;
  capture.BindInput("x", batch.x);
  capture.BindIndexInput("tod", batch.time_of_day);
  capture.BindIndexInput("dow", batch.day_of_week);
  const Tensor out = session.Predict(batch);
  std::shared_ptr<const exec::ExecutionPlan> plan = capture.Finish(out);
  if (plan == nullptr) *error = capture.error();
  return plan;
}

/// Builds a session for one registry entry over a shared synthetic network.
std::unique_ptr<infer::InferenceSession> BuildSession(
    const experiment::ModelEntry& entry, const data::SyntheticTraffic& traffic,
    const data::StandardScaler& scaler, const ToolConfig& config,
    std::string* error) {
  baselines::ModelConfig model_config;
  model_config.num_nodes = config.num_nodes;
  model_config.steps_per_day = traffic.dataset.steps_per_day;
  Rng rng(7);
  auto model = experiment::BuildModel(
      entry, model_config, traffic.dataset.network.adjacency, rng, error);
  if (model == nullptr) return nullptr;
  if (!config.checkpoint.empty() &&
      !train::LoadCheckpoint(model.get(), config.checkpoint)) {
    *error = "checkpoint " + config.checkpoint + " rejected";
    return nullptr;
  }

  infer::SessionOptions session_options;
  session_options.num_nodes = config.num_nodes;
  session_options.input_len = model_config.input_len;
  session_options.steps_per_day = traffic.dataset.steps_per_day;
  session_options.use_plans = false;     // capture by hand, always eager
  session_options.verify_plans = false;  // this tool runs the verifier itself
  auto session =
      infer::InferenceSession::Wrap(std::move(model), scaler, session_options);
  if (session == nullptr) *error = "session construction failed";
  return session;
}

int RunInject(infer::InferenceSession& session, int64_t batch_size) {
  std::string error;
  const auto plan = CapturePlan(session, batch_size, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "verify_plan: --inject capture failed: %s\n",
                 error.c_str());
    return 1;
  }
  const exec::VerifierReport baseline = exec::VerifyPlan(*plan);
  if (!baseline.ok()) {
    std::fprintf(stderr,
                 "verify_plan: --inject baseline plan is not clean:\n%s\n",
                 baseline.ToString().c_str());
    return 1;
  }

  struct Case {
    exec::PlanMutation mutation;
    const char* name;
  };
  const Case cases[] = {
      {exec::PlanMutation::kOverlapSameLevelWrites, "overlap-same-level-writes"},
      {exec::PlanMutation::kReadReusedSlabRegion, "read-reused-slab-region"},
      {exec::PlanMutation::kDanglingValueRef, "dangling-value-ref"},
      {exec::PlanMutation::kWrongZeroOutput, "wrong-zero-output"},
      {exec::PlanMutation::kStaleConstantPointer, "stale-constant-pointer"},
      {exec::PlanMutation::kCorruptBackend, "corrupt-backend"},
  };
  bool all_detected = true;
  for (const Case& c : cases) {
    const auto mutant = exec::MutatePlan(*plan, c.mutation);
    if (mutant == nullptr) {
      std::printf("inject %-28s NOT APPLICABLE (plan shape)\n", c.name);
      all_detected = false;
      continue;
    }
    const exec::VerifierReport report = exec::VerifyPlan(*mutant);
    std::printf("inject %-28s %s (%d error(s))\n", c.name,
                report.ok() ? "MISSED" : "detected", report.errors);
    if (report.ok()) all_detected = false;
  }
  // Detection is the expected outcome, so CI asserts exit 2; a missed
  // corruption exits 0 and fails that assertion loudly.
  return all_detected ? 2 : 0;
}

int Run(const ToolConfig& config) {
  data::SyntheticTrafficOptions traffic_options;
  traffic_options.network.num_nodes = config.num_nodes;
  traffic_options.network.neighbors = 2;
  traffic_options.num_steps = 128;
  traffic_options.seed = 31;
  const data::SyntheticTraffic traffic =
      data::GenerateSyntheticTraffic(traffic_options);
  data::StandardScaler scaler;
  scaler.Fit(traffic.dataset.values, traffic_options.num_steps * 2 / 3, true);

  if (config.inject) {
    experiment::ModelEntry entry;
    std::string error;
    const std::string name =
        config.only_model.empty() ? "D2STGNN" : config.only_model;
    if (!experiment::ResolveModel(name, &entry, &error)) {
      std::fprintf(stderr, "verify_plan: %s\n", error.c_str());
      return 1;
    }
    auto session = BuildSession(entry, traffic, scaler, config, &error);
    if (session == nullptr) {
      std::fprintf(stderr, "verify_plan: %s: %s\n", name.c_str(),
                   error.c_str());
      return 1;
    }
    return RunInject(*session, config.batch_sizes.front());
  }

  int verified = 0;
  int skipped = 0;
  int total_errors = 0;
  for (const experiment::ModelEntry& entry : experiment::AllModels()) {
    if (!config.only_model.empty() && entry.name != config.only_model) {
      continue;
    }
    if (entry.family == "statistical") {
      std::printf("%-20s skip (statistical: no captured-plan surface)\n",
                  entry.name.c_str());
      ++skipped;
      continue;
    }
    std::string error;
    auto session = BuildSession(entry, traffic, scaler, config, &error);
    if (session == nullptr) {
      std::fprintf(stderr, "verify_plan: %s: %s\n", entry.name.c_str(),
                   error.c_str());
      return 1;
    }
    for (const int64_t batch_size : config.batch_sizes) {
      const auto plan = CapturePlan(*session, batch_size, &error);
      if (plan == nullptr) {
        std::fprintf(stderr, "verify_plan: %s batch-%lld capture failed: %s\n",
                     entry.name.c_str(),
                     static_cast<long long>(batch_size), error.c_str());
        return 1;
      }
      const exec::VerifierReport report = exec::VerifyPlan(*plan);
      ++verified;
      total_errors += report.errors;
      std::printf(
          "%-20s batch-%-3lld %s  steps=%zu levels=%zu slab=%lld  "
          "errors=%d advisories=%d frag=%.1f%%\n",
          entry.name.c_str(), static_cast<long long>(batch_size),
          report.ok() ? "ok  " : "FAIL", plan->steps().size(),
          plan->levels().size(),
          static_cast<long long>(plan->slab_floats()), report.errors,
          report.advisories, report.slab_fragmentation_pct);
      if (!report.ok() || config.verbose) {
        std::printf("%s\n", report.ToString().c_str());
      }
    }
  }
  std::printf("verify_plan: %d plan(s) verified, %d model(s) skipped, "
              "%d error(s)\n",
              verified, skipped, total_errors);
  if (verified == 0 && skipped == 0) {
    std::fprintf(stderr, "verify_plan: no model matched '%s'\n",
                 config.only_model.c_str());
    return 1;
  }
  return total_errors > 0 ? 2 : 0;
}

}  // namespace
}  // namespace d2stgnn

int main(int argc, char** argv) {
  d2stgnn::ToolConfig config;
  std::string batch_sizes_csv = "1,4";
  std::string backend;
  d2stgnn::FlagParser flags(
      "verify_plan",
      "statically verify captured execution plans across the model registry");
  flags.AddString("batch-sizes", &batch_sizes_csv,
                  "comma-separated batch sizes to capture and verify");
  flags.AddString("backend", &backend,
                  "kernel backend to capture plans under (scalar, avx2; "
                  "default: runtime detection, D2STGNN_FORCE_BACKEND "
                  "honored)");
  flags.AddString("model", &config.only_model,
                  "verify a single registry model (default: all)");
  flags.AddString("checkpoint", &config.checkpoint,
                  "optional checkpoint to load (requires --model)");
  flags.AddInt("num-nodes", &config.num_nodes,
               "synthetic network size the plans are captured at");
  flags.AddBool("inject", &config.inject,
                "corrupt a valid plan per mutation class; exit 2 when every "
                "corruption is detected");
  flags.AddBool("verbose", &config.verbose,
                "print the full report for clean plans too");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: %s\n%s", argv[0], flags.error().c_str(),
                 flags.Usage().c_str());
    return 1;
  }
  std::string error;
  if (!backend.empty() &&
      !d2stgnn::kernels::SetActiveBackend(backend, &error)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }
  config.batch_sizes = d2stgnn::ParseBatchSizes(batch_sizes_csv, &error);
  if (config.batch_sizes.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
    return 1;
  }
  if (!config.checkpoint.empty() && config.only_model.empty()) {
    std::fprintf(stderr, "%s: --checkpoint requires --model\n", argv[0]);
    return 1;
  }
  return d2stgnn::Run(config);
}
