// The one experiment CLI: expands declarative spec files (specs/*.spec) into
// their measurement matrices and drives the training, serving, and dataset
// stacks through the experiment runner, printing the result table and writing
// schema-versioned BENCH_*.json. When the spec (or --baseline) names a
// baseline JSON, the regression gate compares the fresh numbers against its
// bounds and a violation exits with code 2 and a readable diff.
//
//   run_experiment specs/table3_main.spec
//   run_experiment --dry-run specs/serving_sweep.spec
//   run_experiment --set trainer.epochs=2 specs/smoke_training.spec
//   run_experiment --list
//
// Exit codes: 0 success, 1 error (bad spec, failed run, unreadable
// baseline), 2 regression-gate violation.

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "experiment/registry.h"
#include "experiment/runner.h"
#include "experiment/spec.h"
#include "infer/fleet/fleet.h"
#include "tensor/kernels/registry.h"

namespace d2stgnn::experiment {
namespace {

void PrintRegistry() {
  std::printf("datasets:\n");
  for (const DatasetEntry& d : AllDatasets()) {
    std::printf("  %-16s %s\n", d.name.c_str(), d.description.c_str());
  }
  std::printf("\nmodels:\n");
  for (const ModelEntry& m : AllModels()) {
    std::printf("  %-20s %-12s %s\n", m.name.c_str(), m.family.c_str(),
                m.description.c_str());
  }
  std::printf("\ntrainer scenarios:\n");
  for (const TrainerScenario& s : TrainerScenarios()) {
    std::printf("  %-16s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::printf("\nserving scenarios:\n");
  for (const ServingScenario& s : ServingScenarios()) {
    std::printf("  %-16s %s\n", s.name.c_str(), s.description.c_str());
  }
  std::printf("\nkernel backends ([serving] backends = ..., --backend):\n");
  for (const BackendEntry& b : AllBackends()) {
    std::printf("  %-16s %s\n", b.name.c_str(), b.description.c_str());
  }
  std::printf("\nfleet SLO classes ([fleet] models = <id>:<class>, ...):\n");
  for (const infer::SloClass& slo : infer::BuiltinSloClasses()) {
    std::printf("  %-16s priority %lld, target p99 %lldms, weight %.0f\n",
                slo.name.c_str(), static_cast<long long>(slo.priority),
                static_cast<long long>(slo.target_p99_ms), slo.weight);
  }
}

/// Applies one `--set section.key=value` override to the spec.
bool ApplyOverride(const std::string& override_text, Spec* spec,
                   std::string* error) {
  const size_t eq = override_text.find('=');
  if (eq == std::string::npos) {
    *error = "--set needs section.key=value, got '" + override_text + "'";
    return false;
  }
  const std::string path = override_text.substr(0, eq);
  const std::string value = override_text.substr(eq + 1);
  const size_t dot = path.find('.');
  if (dot == std::string::npos || dot == 0 || dot + 1 >= path.size()) {
    *error = "--set needs section.key=value, got '" + override_text + "'";
    return false;
  }
  spec->Set(path.substr(0, dot), path.substr(dot + 1), value);
  return true;
}

int Main(int argc, char** argv) {
  bool list = false;
  bool dry_run = false;
  std::string out_dir = D2STGNN_REPO_ROOT;
  std::string baseline;
  std::string backend;
  std::vector<std::string> overrides;
  std::vector<std::string> spec_paths;

  FlagParser flags("run_experiment",
                   "runs declarative experiment specs (see specs/)");
  flags.AddBool("list", &list, "list the registry axes and exit");
  flags.AddBool("dry-run", &dry_run,
                "expand and validate the matrix without running");
  flags.AddString("backend", &backend,
                  "kernel backend to run under (see --list; default: "
                  "runtime detection, D2STGNN_FORCE_BACKEND honored)");
  flags.AddString("out-dir", &out_dir,
                  "directory for BENCH_*.json (default: repo root)");
  flags.AddString("baseline", &baseline,
                  "baseline JSON for the regression gate; 'none' disables "
                  "gating even when the spec names one");
  flags.AddStringList("set", &overrides,
                      "override a spec key: --set trainer.epochs=2 "
                      "(repeatable)");
  flags.AddTrailing("spec", &spec_paths, "spec file(s) to run");
  if (!flags.Parse(argc, argv)) {
    if (flags.help_requested()) {
      std::fputs(flags.Usage().c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "run_experiment: %s\n%s", flags.error().c_str(),
                 flags.Usage().c_str());
    return 1;
  }

  if (!backend.empty()) {
    std::string resolved;
    std::string error;
    if (!ResolveBackend(backend, &resolved, &error) ||
        !d2stgnn::kernels::SetActiveBackend(resolved, &error)) {
      std::fprintf(stderr, "run_experiment: %s\n", error.c_str());
      return 1;
    }
    std::printf("kernel backend: %s\n", resolved.c_str());
  }

  if (list) {
    PrintRegistry();
    return 0;
  }
  if (spec_paths.empty()) {
    std::fprintf(stderr, "run_experiment: no spec files given\n%s",
                 flags.Usage().c_str());
    return 1;
  }

  RunOptions options;
  options.out_dir = out_dir;
  options.baseline_path = baseline;
  options.dry_run = dry_run;

  bool gate_violation = false;
  for (const std::string& path : spec_paths) {
    Spec spec;
    std::string error;
    if (!Spec::ParseFile(path, &spec, &error)) {
      std::fprintf(stderr, "run_experiment: %s\n", error.c_str());
      return 1;
    }
    for (const std::string& override_text : overrides) {
      if (!ApplyOverride(override_text, &spec, &error)) {
        std::fprintf(stderr, "run_experiment: %s\n", error.c_str());
        return 1;
      }
    }

    const RunResult result = RunSpec(spec, options);
    if (!result.experiment.empty()) {
      std::printf("== %s (%s, %lld cell%s) ==\n", result.experiment.c_str(),
                  result.kind.c_str(), static_cast<long long>(result.cells),
                  result.cells == 1 ? "" : "s");
    }
    if (!result.table.empty()) std::fputs(result.table.c_str(), stdout);
    if (!result.ok) {
      std::fprintf(stderr, "run_experiment: %s: %s\n", path.c_str(),
                   result.error.c_str());
      if (!result.gate_violation) return 1;
      gate_violation = true;
      continue;
    }
    if (!result.json_path.empty()) {
      std::printf("wrote %s\n", result.json_path.c_str());
    }
    if (!result.gate_report.empty()) {
      std::fputs(result.gate_report.c_str(), stdout);
    }
  }
  return gate_violation ? 2 : 0;
}

}  // namespace
}  // namespace d2stgnn::experiment

int main(int argc, char** argv) {
  return d2stgnn::experiment::Main(argc, argv);
}
