#!/usr/bin/env bash
# Static-analysis lint stage: clang-tidy (config in .clang-tidy) over every
# translation unit under src/, tests/, and tools/, fanned out across cores
# with xargs -P. Fails on any finding (WarningsAsErrors: '*').
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
# clang-tidy is optional tooling: when it is not installed the stage reports
# itself skipped and exits 0, so scripts/ci.sh still runs end-to-end on
# minimal containers.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy" \
       "to enable the lint stage)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configuring..."
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t sources < <(find src tests tools -name '*.cc' | sort)
jobs="$(nproc)"
echo "lint: clang-tidy over ${#sources[@]} files, ${jobs} jobs" \
     "(${BUILD_DIR}/compile_commands.json)"

# One clang-tidy process per file, ${jobs} at a time. xargs exits non-zero
# when any invocation fails, so findings in any file fail the stage.
if ! printf '%s\0' "${sources[@]}" | \
     xargs -0 -n 1 -P "${jobs}" clang-tidy -p "${BUILD_DIR}" --quiet; then
  echo "lint: FAILED (findings above)"
  exit 1
fi
echo "lint: OK"
