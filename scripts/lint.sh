#!/usr/bin/env bash
# Static-analysis lint stage: clang-tidy (config in .clang-tidy) over every
# translation unit in the compilation database. Fails on any finding
# (WarningsAsErrors: '*').
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
#
# clang-tidy is optional tooling: when it is not installed the stage reports
# itself skipped and exits 0, so scripts/ci.sh still runs end-to-end on
# minimal containers.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy" \
       "to enable the lint stage)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configuring..."
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
echo "lint: clang-tidy over ${#sources[@]} files (${BUILD_DIR}/compile_commands.json)"

status=0
for source in "${sources[@]}"; do
  if ! clang-tidy -p "${BUILD_DIR}" --quiet "${source}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "lint: FAILED (findings above)"
  exit 1
fi
echo "lint: OK"
