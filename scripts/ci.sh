#!/usr/bin/env bash
# CI entry point: builds and tests the repo in stages.
#
#   1. Release (+Werror)  — the full tier-1 suite; warnings are errors.
#      Then a forced-scalar lane: the numeric/exec/serving suites re-run
#      with D2STGNN_FORCE_BACKEND=scalar, proving the kernel-backend env
#      override reaches every layer and the scalar reference path stays
#      green on SIMD hosts.
#   2. ThreadSanitizer    — the execution-layer and tensor tests, to catch
#      data races in the thread pool and parallel kernels.
#   3. Inference suite    — the inference session and batching server under
#      TSan (concurrent submitters), plus the overload/admission and
#      checkpoint hot-reload suites, then the smoke serving spec through
#      run_experiment, asserting the emitted JSON is schema-versioned and
#      well-formed.
#   3b. Chaos smoke       — the overload scenario (specs/smoke_overload.spec)
#      through the TSan run_experiment with all four serving fault points
#      scripted (server.admit, server.deadline, server.degrade,
#      infer.hot_reload). The `timeout` wrapper is the no-deadlock
#      assertion; the baseline gate asserts deterministic invariants (work
#      completed, faults fired, the mid-load hot swap landed bitwise) and
#      never wall-clock throughput, which TSan distorts.
#   3c. Fleet smoke       — the multi-model fleet scenario
#      (specs/smoke_fleet.spec) under TSan: two tenants with distinct SLO
#      classes behind one shared queue, scripted admission faults, and a
#      mid-run hot reload of one model. Gated on structural isolation
#      invariants only (both models bitwise vs standalone sessions, the
#      reload touched exactly one lane), never timing.
#   4. Plan replay        — the capture/plan/replay suite under TSan
#      (level-parallel replays, concurrent plan-serving submitters; the
#      Release run happened in stage 1, where the plan-vs-eager latency
#      floor is asserted), then the canonical repo-root artifacts:
#      `run_experiment specs/serving_sweep.spec` (BENCH_serving.json, gated
#      on bench/baselines/serving.json), `run_experiment specs/fleet.spec`
#      (BENCH_fleet.json, gated on the tenant-isolation bounds in
#      bench/baselines/fleet.json), and bench_micro_kernels
#      (BENCH_kernels.json), all shape-validated.
#   5. Experiments        — the declarative harness end to end: the smoke
#      training spec runs gated against its checked-in baseline, --list
#      enumerates the registry, and a run against an impossible baseline
#      must exit 2 with a readable violation diff.
#   6. UBSanitizer        — the full suite under -fsanitize=undefined.
#   7. ASan+UBSan         — the fault-injection / crash-safety suite
#      (checkpoints, durable I/O, divergence recovery, death tests), where
#      torn buffers and use-after-free bugs would hide, plus the
#      kernel-backend suite: the AVX2 masked head/tail loads and stores are
#      exactly where an out-of-bounds lane read would live.
#   8. Plan verification  — tools/verify_plan under ASan+UBSan: every
#      registry model's captured plans must prove race- and lifetime-sound
#      (exit 0), and the --inject corrupted-plan fixture must be caught
#      (exit 2) — the verifier failing open fails CI loudly. The sweep runs
#      under both kernel backends: the default invocation captures under
#      the detected backend (avx2 on SIMD hosts), --backend scalar forces
#      the reference.
#   9. Corruption smoke   — end-to-end: train with checkpointing, flip one
#      byte in the newest checkpoint, assert resume rejects it.
#  10. Lint               — clang-tidy in parallel over src/, tests/, and
#      tools/ (skipped with a notice when clang-tidy is not installed).
#
# Both ctest invocations pass --no-tests=error so a filter that matches zero
# tests (e.g. after a rename) fails CI instead of silently passing.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build (+Werror) + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DD2STGNN_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" --no-tests=error
# Forced-scalar lane: same binaries, kernel dispatch pinned to the scalar
# reference backend. Covers the tensor/kernel suites and every plan-capture
# and serving path that records backend-qualified closures.
D2STGNN_FORCE_BACKEND=scalar ctest --test-dir build --output-on-failure \
  -j "$(nproc)" \
  -R 'Tensor|Backend|UlpDiff|MemoryPlanner|ZooCapture|GraphCapture|ExecSession|InferSession' \
  --no-tests=error

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor' --no-tests=error

echo "=== Inference suite: batching server under TSan + serving smoke ==="
cmake --build build-tsan -j "$(nproc)" \
  --target infer_server_test infer_session_test overload_test \
  hot_reload_test fleet_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'InferServer|InferSession|RejectReason|Admission|Overload|Backoff|HotReload|Fleet' \
  --no-tests=error
cmake --build build -j "$(nproc)" --target run_experiment
smoke_out="build/experiment-smoke"
rm -rf "$smoke_out"
mkdir -p "$smoke_out"
# Smoke scale: few iterations, gated only on sanity floors (the spec's
# baseline bounds throughput > 1 rps and bitwise plan/eager parity).
build/tools/run_experiment --out-dir "$smoke_out" \
  specs/smoke_serving.spec > /dev/null
python3 - "$smoke_out/BENCH_smoke_serving.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema_version"] == 1, doc["schema_version"]
assert doc["kind"] == "serving"
records = doc["records"]
assert records, "BENCH_smoke_serving.json has no records"
for r in records:
    assert r["mode"] in ("session-eager", "session-plan", "server",
                         "eager", "plan"), r
    assert r["throughput_rps"] > 0, r
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
summary = doc["summary"]
for key in ("eager_p50_ms", "plan_p50_ms", "plan_speedup",
            "bitwise_identical"):
    assert key in summary, key
assert summary["bitwise_identical"] == 1
print("BENCH_smoke_serving.json well-formed:", len(records), "records")
EOF

echo "=== Chaos smoke: overload scenario under TSan with scripted faults ==="
cmake --build build-tsan -j "$(nproc)" --target run_experiment
chaos_out="build-tsan/chaos-smoke"
rm -rf "$chaos_out"
mkdir -p "$chaos_out"
# The timeout is the no-deadlock assertion: a stuck dispatcher, a promise
# that never resolves, or a reloader that can't join its watcher all hang
# the run instead of failing its gates. Generous bound — TSan is ~10x slow.
timeout 900 build-tsan/tools/run_experiment --out-dir "$chaos_out" \
  specs/smoke_overload.spec > /dev/null
python3 - "$chaos_out/BENCH_smoke_overload.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1
assert doc["kind"] == "serving"
records = doc["records"]
assert records, "BENCH_smoke_overload.json has no records"
for r in records:
    assert r["mode"] == "overload", r
    assert r["completed"] + r["shed"] + r["expired"] <= r["requests"], r
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
summary = doc["summary"]
assert summary["overload_completed"] >= 1, summary
assert summary["hot_swaps"] >= 1, summary
assert summary["post_swap_bitwise"] == 1, summary
assert summary["faults_armed"] >= 4, summary
assert summary["faults_fired"] >= summary["faults_armed"], summary
print("chaos smoke survived:", summary["overload_completed"],
      "completed,", summary["faults_fired"], "faults fired,",
      summary["hot_swaps"], "hot swap(s)")
EOF

echo "=== Fleet smoke: multi-tenant scenario under TSan with faults ==="
fleet_out="build-tsan/fleet-smoke"
rm -rf "$fleet_out"
mkdir -p "$fleet_out"
# Same no-deadlock rationale as the chaos smoke: a stuck fleet dispatcher
# or a reloader that cannot join hangs here instead of failing a gate.
timeout 900 build-tsan/tools/run_experiment --out-dir "$fleet_out" \
  specs/smoke_fleet.spec > /dev/null
python3 - "$fleet_out/BENCH_smoke_fleet.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1
assert doc["kind"] == "serving"
records = doc["records"]
assert records, "BENCH_smoke_fleet.json has no records"
models = set()
for r in records:
    assert r["mode"] == "fleet", r
    models.add(r["model"])
    assert r["completed"] + r["shed"] + r["expired"] <= r["requests"], r
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
assert len(models) == 2, models
summary = doc["summary"]
assert summary["fleet_completed"] >= 1, summary
assert summary["hot_swaps"] >= 1, summary
assert summary["post_swap_bitwise"] == 1, summary
assert summary["bitwise_models"] == 2, summary
assert summary["others_session_swaps"] == 0, summary
assert summary["faults_armed"] >= 2, summary
assert summary["faults_fired"] >= summary["faults_armed"], summary
print("fleet smoke survived:", int(summary["fleet_completed"]),
      "completed across", len(models), "models,",
      int(summary["hot_swaps"]), "hot swap(s), isolation held")
EOF

echo "=== Plan replay: exec suite under TSan + canonical bench JSONs ==="
cmake --build build-tsan -j "$(nproc)" --target exec_plan_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'MemoryPlanner|ZooCapture|GraphCapture|ExecSession' --no-tests=error
# Full-scale serving sweep: regenerates the canonical repo-root
# BENCH_serving.json and gates it on bench/baselines/serving.json
# (plan-speedup floor, throughput floors, bitwise parity).
build/tools/run_experiment specs/serving_sweep.spec > /dev/null
# Full-scale fleet run: regenerates the canonical BENCH_fleet.json and
# gates it on bench/baselines/fleet.json (tenant isolation: the healthy
# gold tenant's shed rate and p99 stay bounded while the bronze tenant is
# offered 2x saturation, sheds land as typed quota rejections, every model
# is bitwise vs a standalone session, the reload touches one lane).
build/tools/run_experiment specs/fleet.spec > /dev/null
cmake --build build -j "$(nproc)" --target bench_micro_kernels
# Skip the google-benchmark section (nothing matches); the hand-timed sweep
# that feeds BENCH_kernels.json still runs.
build/bench/bench_micro_kernels --benchmark_filter='^$' > /dev/null
python3 - BENCH_serving.json BENCH_kernels.json BENCH_fleet.json <<'EOF'
import json, sys
serving_doc = json.load(open(sys.argv[1]))
assert serving_doc["schema_version"] == 1
modes = {r["mode"] for r in serving_doc["records"]}
assert modes == {"session-eager", "session-plan", "server",
                 "eager", "plan", "overload"}, modes
for r in serving_doc["records"]:
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
summary = serving_doc["summary"]
for key in ("eager_p50_ms", "plan_p50_ms", "plan_speedup",
            "bitwise_identical"):
    assert key in summary, key
assert summary["bitwise_identical"] == 1
kernel_doc = json.load(open(sys.argv[2]))
assert kernel_doc["schema_version"] == 1
assert kernel_doc["records"], "BENCH_kernels.json has no records"
for r in kernel_doc["records"]:
    assert r["seconds_per_iter"] > 0, r
fleet_doc = json.load(open(sys.argv[3]))
assert fleet_doc["schema_version"] == 1
fleet_models = {r["model"] for r in fleet_doc["records"]}
assert len(fleet_models) == 4, fleet_models
fleet_summary = fleet_doc["summary"]
assert fleet_summary["bitwise_models"] == len(fleet_models), fleet_summary
assert fleet_summary["post_swap_bitwise"] == 1, fleet_summary
assert fleet_summary["others_session_swaps"] == 0, fleet_summary
print("canonical bench JSONs well-formed:",
      len(serving_doc["records"]), "serving records,",
      len(kernel_doc["records"]), "kernel records,",
      len(fleet_doc["records"]), "fleet records")
EOF

echo "=== Experiments: smoke spec end-to-end + regression-gate demo ==="
# The registry must enumerate cleanly, and the listing must surface the
# fleet scenario and its SLO-class axes.
list_output="$(build/tools/run_experiment --list)"
for needle in fleet gold silver bronze; do
  if ! grep -q "$needle" <<< "$list_output"; then
    echo "FAIL: run_experiment --list does not mention '$needle'" >&2
    exit 1
  fi
done
# ...and the smoke training spec must run end to end, gated against its
# checked-in baseline (bench/baselines/smoke_training.json).
build/tools/run_experiment --out-dir "$smoke_out" \
  specs/smoke_training.spec > /dev/null
python3 - "$smoke_out/BENCH_smoke_training.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema_version"] == 1
assert doc["kind"] == "training"
models = {r["model"] for r in doc["records"]}
assert models == {"HA", "D2STGNN"}, models
for r in doc["records"]:
    assert r["h3_mae"] > 0 and r["h12_mae"] > 0, r
assert doc["summary"]["best_model"] in models
print("BENCH_smoke_training.json well-formed:", len(doc["records"]),
      "records")
EOF
# The gate must demonstrably fail: re-checking the same run against an
# impossible baseline has to exit 2 with a readable violation diff.
set +e
gate_output="$(build/tools/run_experiment --out-dir "$smoke_out" \
  --baseline bench/baselines/impossible.json specs/smoke_training.spec 2>&1)"
gate_status=$?
set -e
if [[ "$gate_status" -ne 2 ]]; then
  echo "FAIL: impossible baseline exited $gate_status, want 2" >&2
  echo "$gate_output" >&2
  exit 1
fi
if ! grep -q "regression gate FAILED" <<< "$gate_output"; then
  echo "FAIL: exit 2 without a readable gate diff" >&2
  echo "$gate_output" >&2
  exit 1
fi
echo "regression gate failed loudly as expected (exit 2)"

echo "=== UBSanitizer build + full test suite ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=undefined
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" \
  --no-tests=error

echo "=== ASan+UBSan build + fault-injection suite ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=address,undefined
cmake --build build-asan -j "$(nproc)" \
  --target fault_injection_test checkpoint_test death_test io_test \
  kernel_backend_test
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|CheckpointFault|CheckpointResume|DivergenceRecovery|Checkpoint|CsvLoader|DeathTest|Backend|UlpDiff' \
  --no-tests=error

echo "=== Plan verification: registry-wide verify_plan under ASan+UBSan ==="
cmake --build build-asan -j "$(nproc)" --target verify_plan
# Every captured plan across the model registry must verify clean — once
# under the detected backend (avx2 on SIMD hosts) and once forced onto the
# scalar reference, so both backends' captured closures face the verifier.
build-asan/tools/verify_plan
build-asan/tools/verify_plan --backend scalar > /dev/null
echo "verify_plan clean under --backend scalar too"
# ...and each injected corruption class must be detected (exit 2; a missed
# corruption exits 0, failing this assertion).
set +e
build-asan/tools/verify_plan --inject
inject_status=$?
set -e
if [[ "$inject_status" -ne 2 ]]; then
  echo "FAIL: verify_plan --inject exited $inject_status, want 2" >&2
  echo "      (a corrupted plan slipped past the static verifier)" >&2
  exit 1
fi
echo "corrupted plans rejected as expected (exit 2)"

echo "=== Checkpoint corruption smoke (save -> corrupt -> resume rejects) ==="
smoke_dir="build/ckpt-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
build/examples/quickstart --checkpoint-dir "$smoke_dir" \
  --checkpoint-every 4 > /dev/null
latest="$(ls "$smoke_dir"/ckpt-*.d2ck | sort | tail -n 1)"
# An intact checkpoint resumes cleanly...
build/examples/quickstart --resume "$latest" > /dev/null
# ...and a single flipped byte must be detected and rejected.
printf '\x5a' | dd of="$latest" bs=1 seek=100 conv=notrunc status=none
if build/examples/quickstart --resume "$latest" > /dev/null 2>&1; then
  echo "FAIL: corrupt checkpoint was accepted on resume" >&2
  exit 1
fi
echo "corrupt checkpoint rejected as expected"

echo "=== Lint (clang-tidy) ==="
scripts/lint.sh build

echo "CI OK"
