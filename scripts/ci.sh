#!/usr/bin/env bash
# CI entry point: builds and tests the repo in four stages.
#
#   1. Release (+Werror)  — the full tier-1 suite; warnings are errors.
#   2. ThreadSanitizer    — the execution-layer and tensor tests, to catch
#      data races in the thread pool and parallel kernels.
#   3. UBSanitizer        — the full suite under -fsanitize=undefined.
#   4. ASan+UBSan         — the fault-injection / crash-safety suite
#      (checkpoints, durable I/O, divergence recovery, death tests), where
#      torn buffers and use-after-free bugs would hide.
#   5. Corruption smoke   — end-to-end: train with checkpointing, flip one
#      byte in the newest checkpoint, assert resume rejects it.
#   6. Lint               — clang-tidy over the compilation database
#      (skipped with a notice when clang-tidy is not installed).
#
# Both ctest invocations pass --no-tests=error so a filter that matches zero
# tests (e.g. after a rename) fails CI instead of silently passing.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build (+Werror) + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DD2STGNN_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" --no-tests=error

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor' --no-tests=error

echo "=== UBSanitizer build + full test suite ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=undefined
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" \
  --no-tests=error

echo "=== ASan+UBSan build + fault-injection suite ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=address,undefined
cmake --build build-asan -j "$(nproc)" \
  --target fault_injection_test checkpoint_test death_test io_test
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|CheckpointFault|CheckpointResume|DivergenceRecovery|Checkpoint|CsvLoader|DeathTest' \
  --no-tests=error

echo "=== Checkpoint corruption smoke (save -> corrupt -> resume rejects) ==="
smoke_dir="build/ckpt-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
build/examples/quickstart --checkpoint-dir "$smoke_dir" \
  --checkpoint-every 4 > /dev/null
latest="$(ls "$smoke_dir"/ckpt-*.d2ck | sort | tail -n 1)"
# An intact checkpoint resumes cleanly...
build/examples/quickstart --resume "$latest" > /dev/null
# ...and a single flipped byte must be detected and rejected.
printf '\x5a' | dd of="$latest" bs=1 seek=100 conv=notrunc status=none
if build/examples/quickstart --resume "$latest" > /dev/null 2>&1; then
  echo "FAIL: corrupt checkpoint was accepted on resume" >&2
  exit 1
fi
echo "corrupt checkpoint rejected as expected"

echo "=== Lint (clang-tidy) ==="
scripts/lint.sh build

echo "CI OK"
