#!/usr/bin/env bash
# CI entry point: builds and tests the repo in four stages.
#
#   1. Release (+Werror)  — the full tier-1 suite; warnings are errors.
#   2. ThreadSanitizer    — the execution-layer and tensor tests, to catch
#      data races in the thread pool and parallel kernels.
#   3. UBSanitizer        — the full suite under -fsanitize=undefined.
#   4. Lint               — clang-tidy over the compilation database
#      (skipped with a notice when clang-tidy is not installed).
#
# Both ctest invocations pass --no-tests=error so a filter that matches zero
# tests (e.g. after a rename) fails CI instead of silently passing.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build (+Werror) + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DD2STGNN_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" --no-tests=error

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor' --no-tests=error

echo "=== UBSanitizer build + full test suite ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=undefined
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" \
  --no-tests=error

echo "=== Lint (clang-tidy) ==="
scripts/lint.sh build

echo "CI OK"
