#!/usr/bin/env bash
# CI entry point: builds and tests the repo in stages.
#
#   1. Release (+Werror)  — the full tier-1 suite; warnings are errors.
#   2. ThreadSanitizer    — the execution-layer and tensor tests, to catch
#      data races in the thread pool and parallel kernels.
#   3. Inference suite    — the inference session and batching server under
#      TSan (concurrent submitters), then a reduced bench_inference run
#      asserting BENCH_inference.json is produced and well-formed.
#   4. Plan replay        — the capture/plan/replay suite under TSan
#      (level-parallel replays, concurrent plan-serving submitters; the
#      Release run happened in stage 1, where the plan-vs-eager latency
#      floor is asserted), then a `bench_inference --plan` smoke plus a
#      kernel-bench run, validating the canonical repo-root
#      BENCH_inference.json / BENCH_plan.json / BENCH_kernels.json.
#   5. UBSanitizer        — the full suite under -fsanitize=undefined.
#   6. ASan+UBSan         — the fault-injection / crash-safety suite
#      (checkpoints, durable I/O, divergence recovery, death tests), where
#      torn buffers and use-after-free bugs would hide.
#   7. Corruption smoke   — end-to-end: train with checkpointing, flip one
#      byte in the newest checkpoint, assert resume rejects it.
#   8. Lint               — clang-tidy over the compilation database
#      (skipped with a notice when clang-tidy is not installed).
#
# Both ctest invocations pass --no-tests=error so a filter that matches zero
# tests (e.g. after a rename) fails CI instead of silently passing.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build (+Werror) + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DD2STGNN_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" --no-tests=error

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor' --no-tests=error

echo "=== Inference suite: batching server under TSan + bench smoke ==="
cmake --build build-tsan -j "$(nproc)" \
  --target infer_server_test infer_session_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'InferServer|InferSession' --no-tests=error
cmake --build build -j "$(nproc)" --target bench_inference
bench_out="build/infer-bench-smoke"
rm -rf "$bench_out"
# The speedup gates are disabled for the smoke: 3 iterations on a shared CI
# box measure nothing; full runs keep the 1.3x plan floor.
D2STGNN_BENCH_OUT_DIR="$bench_out" \
D2STGNN_INFER_BENCH_ITERS=3 D2STGNN_INFER_BENCH_SERVER_REQS=8 \
D2STGNN_PLAN_BENCH_ITERS=10 D2STGNN_PLAN_SPEEDUP_MIN=0 \
  build/bench/bench_inference > /dev/null
python3 - "$bench_out/BENCH_inference.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
records = doc["records"]
assert records, "BENCH_inference.json has no records"
for r in records:
    assert r["mode"] in ("session", "server", "eager", "plan"), r
    assert r["throughput_rps"] > 0, r
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
assert "batch8_speedup_vs_single" in doc["summary"]
print("BENCH_inference.json well-formed:", len(records), "records")
EOF

echo "=== Plan replay: exec suite under TSan + canonical bench JSONs ==="
cmake --build build-tsan -j "$(nproc)" --target exec_plan_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'MemoryPlanner|ZooCapture|GraphCapture|ExecSession' --no-tests=error
D2STGNN_BENCH_OUT_DIR="$bench_out" build/bench/bench_inference --plan \
  > /dev/null
cmake --build build -j "$(nproc)" --target bench_micro_kernels
# Skip the google-benchmark section (nothing matches); the hand-timed sweep
# that feeds BENCH_kernels.json still runs.
build/bench/bench_micro_kernels --benchmark_filter='^$' > /dev/null
python3 - BENCH_inference.json BENCH_plan.json BENCH_kernels.json <<'EOF'
import json, sys
infer_doc = json.load(open(sys.argv[1]))
assert infer_doc["records"], "BENCH_inference.json has no records"
assert "batch8_speedup_vs_single" in infer_doc["summary"]
plan_doc = json.load(open(sys.argv[2]))
modes = {r["mode"] for r in plan_doc["records"]}
assert modes == {"eager", "plan"}, modes
for r in plan_doc["records"]:
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
summary = plan_doc["summary"]
for key in ("eager_p50_ms_4t", "plan_p50_ms_4t", "plan_speedup_4t",
            "bitwise_identical"):
    assert key in summary, key
assert summary["bitwise_identical"] is True
kernel_doc = json.load(open(sys.argv[3]))
assert kernel_doc["ops"], "BENCH_kernels.json has no ops"
for r in kernel_doc["ops"]:
    assert r["seconds_per_iter"] > 0, r
print("canonical bench JSONs well-formed:",
      len(infer_doc["records"]), "inference records,",
      len(plan_doc["records"]), "plan records,",
      len(kernel_doc["ops"]), "kernel records")
EOF

echo "=== UBSanitizer build + full test suite ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=undefined
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" \
  --no-tests=error

echo "=== ASan+UBSan build + fault-injection suite ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=address,undefined
cmake --build build-asan -j "$(nproc)" \
  --target fault_injection_test checkpoint_test death_test io_test
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|CheckpointFault|CheckpointResume|DivergenceRecovery|Checkpoint|CsvLoader|DeathTest' \
  --no-tests=error

echo "=== Checkpoint corruption smoke (save -> corrupt -> resume rejects) ==="
smoke_dir="build/ckpt-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
build/examples/quickstart --checkpoint-dir "$smoke_dir" \
  --checkpoint-every 4 > /dev/null
latest="$(ls "$smoke_dir"/ckpt-*.d2ck | sort | tail -n 1)"
# An intact checkpoint resumes cleanly...
build/examples/quickstart --resume "$latest" > /dev/null
# ...and a single flipped byte must be detected and rejected.
printf '\x5a' | dd of="$latest" bs=1 seek=100 conv=notrunc status=none
if build/examples/quickstart --resume "$latest" > /dev/null 2>&1; then
  echo "FAIL: corrupt checkpoint was accepted on resume" >&2
  exit 1
fi
echo "corrupt checkpoint rejected as expected"

echo "=== Lint (clang-tidy) ==="
scripts/lint.sh build

echo "CI OK"
