#!/usr/bin/env bash
# CI entry point: builds and tests the repo in stages.
#
#   1. Release (+Werror)  — the full tier-1 suite; warnings are errors.
#   2. ThreadSanitizer    — the execution-layer and tensor tests, to catch
#      data races in the thread pool and parallel kernels.
#   3. Inference suite    — the inference session and batching server under
#      TSan (concurrent submitters), then a reduced bench_inference run
#      asserting BENCH_inference.json is produced and well-formed.
#   4. UBSanitizer        — the full suite under -fsanitize=undefined.
#   5. ASan+UBSan         — the fault-injection / crash-safety suite
#      (checkpoints, durable I/O, divergence recovery, death tests), where
#      torn buffers and use-after-free bugs would hide.
#   6. Corruption smoke   — end-to-end: train with checkpointing, flip one
#      byte in the newest checkpoint, assert resume rejects it.
#   7. Lint               — clang-tidy over the compilation database
#      (skipped with a notice when clang-tidy is not installed).
#
# Both ctest invocations pass --no-tests=error so a filter that matches zero
# tests (e.g. after a rename) fails CI instead of silently passing.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build (+Werror) + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release -DD2STGNN_WERROR=ON
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)" --no-tests=error

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor' --no-tests=error

echo "=== Inference suite: batching server under TSan + bench smoke ==="
cmake --build build-tsan -j "$(nproc)" \
  --target infer_server_test infer_session_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'InferServer|InferSession' --no-tests=error
cmake --build build -j "$(nproc)" --target bench_inference
bench_out="build/infer-bench-smoke"
rm -rf "$bench_out"
D2STGNN_BENCH_OUT_DIR="$bench_out" \
D2STGNN_INFER_BENCH_ITERS=3 D2STGNN_INFER_BENCH_SERVER_REQS=8 \
  build/bench/bench_inference > /dev/null
python3 - "$bench_out/BENCH_inference.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
records = doc["records"]
assert records, "BENCH_inference.json has no records"
for r in records:
    assert r["mode"] in ("session", "server"), r
    assert r["throughput_rps"] > 0, r
    assert r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"], r
assert "batch8_speedup_vs_single" in doc["summary"]
print("BENCH_inference.json well-formed:", len(records), "records")
EOF

echo "=== UBSanitizer build + full test suite ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=undefined
cmake --build build-ubsan -j "$(nproc)"
ctest --test-dir build-ubsan --output-on-failure -j "$(nproc)" \
  --no-tests=error

echo "=== ASan+UBSan build + fault-injection suite ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=address,undefined
cmake --build build-asan -j "$(nproc)" \
  --target fault_injection_test checkpoint_test death_test io_test
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
  -R 'FaultInjection|CheckpointFault|CheckpointResume|DivergenceRecovery|Checkpoint|CsvLoader|DeathTest' \
  --no-tests=error

echo "=== Checkpoint corruption smoke (save -> corrupt -> resume rejects) ==="
smoke_dir="build/ckpt-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
build/examples/quickstart --checkpoint-dir "$smoke_dir" \
  --checkpoint-every 4 > /dev/null
latest="$(ls "$smoke_dir"/ckpt-*.d2ck | sort | tail -n 1)"
# An intact checkpoint resumes cleanly...
build/examples/quickstart --resume "$latest" > /dev/null
# ...and a single flipped byte must be detected and rejected.
printf '\x5a' | dd of="$latest" bs=1 seek=100 conv=notrunc status=none
if build/examples/quickstart --resume "$latest" > /dev/null 2>&1; then
  echo "FAIL: corrupt checkpoint was accepted on resume" >&2
  exit 1
fi
echo "corrupt checkpoint rejected as expected"

echo "=== Lint (clang-tidy) ==="
scripts/lint.sh build

echo "CI OK"
