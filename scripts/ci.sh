#!/usr/bin/env bash
# CI entry point: builds and tests the repo in two configurations.
#
#   1. Release        — the full tier-1 suite.
#   2. ThreadSanitizer — the execution-layer and tensor tests, to catch data
#      races in the thread pool and parallel kernels.
#
# Usage: scripts/ci.sh [--release-only]

set -euo pipefail
cd "$(dirname "$0")/.."

echo "=== Release build + full test suite ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--release-only" ]]; then
  exit 0
fi

echo "=== ThreadSanitizer build + concurrency-sensitive tests ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DD2STGNN_SANITIZE=thread
cmake --build build-tsan -j "$(nproc)" \
  --target thread_pool_test parallel_determinism_test tensor_test
ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelDeterminism|Tensor'

echo "CI OK"
