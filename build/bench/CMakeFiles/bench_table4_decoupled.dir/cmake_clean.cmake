file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_decoupled.dir/bench_table4_decoupled.cc.o"
  "CMakeFiles/bench_table4_decoupled.dir/bench_table4_decoupled.cc.o.d"
  "bench_table4_decoupled"
  "bench_table4_decoupled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_decoupled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
