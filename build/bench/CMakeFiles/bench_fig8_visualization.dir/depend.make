# Empty dependencies file for bench_fig8_visualization.
# This may be replaced when dependencies are built.
