file(REMOVE_RECURSE
  "CMakeFiles/extended_ops_test.dir/extended_ops_test.cc.o"
  "CMakeFiles/extended_ops_test.dir/extended_ops_test.cc.o.d"
  "extended_ops_test"
  "extended_ops_test.pdb"
  "extended_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
