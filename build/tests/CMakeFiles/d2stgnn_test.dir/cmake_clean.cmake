file(REMOVE_RECURSE
  "CMakeFiles/d2stgnn_test.dir/d2stgnn_test.cc.o"
  "CMakeFiles/d2stgnn_test.dir/d2stgnn_test.cc.o.d"
  "d2stgnn_test"
  "d2stgnn_test.pdb"
  "d2stgnn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/d2stgnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
