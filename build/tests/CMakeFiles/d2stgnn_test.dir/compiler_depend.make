# Empty compiler generated dependencies file for d2stgnn_test.
# This may be replaced when dependencies are built.
