file(REMOVE_RECURSE
  "CMakeFiles/baseline_components_test.dir/baseline_components_test.cc.o"
  "CMakeFiles/baseline_components_test.dir/baseline_components_test.cc.o.d"
  "baseline_components_test"
  "baseline_components_test.pdb"
  "baseline_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
