# Empty dependencies file for baseline_components_test.
# This may be replaced when dependencies are built.
