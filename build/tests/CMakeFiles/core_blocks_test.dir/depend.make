# Empty dependencies file for core_blocks_test.
# This may be replaced when dependencies are built.
