# Empty compiler generated dependencies file for flow_decomposition.
# This may be replaced when dependencies are built.
