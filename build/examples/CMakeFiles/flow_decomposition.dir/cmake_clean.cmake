file(REMOVE_RECURSE
  "CMakeFiles/flow_decomposition.dir/flow_decomposition.cpp.o"
  "CMakeFiles/flow_decomposition.dir/flow_decomposition.cpp.o.d"
  "flow_decomposition"
  "flow_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
