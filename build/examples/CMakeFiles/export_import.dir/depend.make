# Empty dependencies file for export_import.
# This may be replaced when dependencies are built.
